// ANN frontier bench: HNSW-style graph search (serve/ann_index.h) versus the
// exact O(N) scan on a large community-mixture embedding table, sweeping the
// query beam width (ef) to trace the recall/QPS frontier.
//
// The table mimics what serving actually indexes: nodes drawn from a mixture
// of Gaussian community centroids (an H-SBM embedding geometry), queried with
// held-out vectors from the same mixture. Recall@10 is measured against the
// exact scan's ground truth on identical queries.
//
// BENCH_ann_frontier.json feeds scripts/check_bench_regression.py: at the
// committed scale (>= 1M nodes) the ef=128 operating point (the server's
// default beam) must hold recall@10 >= 0.95 at >= 10x the exact scan's
// QPS; smaller CI scales relax the speedup floor (the graph's advantage
// grows with N) but never the recall floor.
//
// The bench also sweeps the parallel graph build over {1, 2, 4, 8} worker
// threads, CHECKing that every build is byte-identical to the 1-thread
// build (the construction schedule is batch-synchronous and deterministic)
// and emitting build_seconds_tN / build_speedup_tN entries the regression
// gate holds to hardware-aware scaling floors.
//
//   TRANSN_BENCH_SCALE  scales the node count (default 1.0 = 1M nodes)
//   TRANSN_BENCH_SEED   base seed (default 42)

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "nn/matrix.h"
#include "serve/ann_index.h"
#include "serve/knn_index.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/vec.h"

namespace {

using namespace transn;
using namespace transn::bench;

constexpr size_t kDim = 32;
constexpr size_t kCommunities = 64;
constexpr size_t kNumQueries = 64;
constexpr size_t kK = 10;

/// Community-mixture table: each row is its community's centroid plus
/// unit-variance noise, giving the clustered geometry trained embeddings
/// have (H-SBM communities) rather than a featureless isotropic cloud.
Matrix MixtureTable(size_t rows, size_t dim, const Matrix& centers,
                    uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    const double* c = centers.Row(r % centers.rows());
    double* row = m.Row(r);
    for (size_t d = 0; d < dim; ++d) row[d] = c[d] + rng.NextGaussian();
  }
  return m;
}

double Recall(const std::vector<KnnResult>& approx,
              const std::vector<KnnResult>& exact) {
  double hit = 0.0;
  for (const KnnResult& e : exact) {
    for (const KnnResult& a : approx) {
      if (a.row == e.row) {
        hit += 1.0;
        break;
      }
    }
  }
  return exact.empty() ? 1.0 : hit / static_cast<double>(exact.size());
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double scale = BenchScale();
  const size_t rows =
      std::max<size_t>(10'000, static_cast<size_t>(1'000'000 * scale));
  std::printf(
      "ANN FRONTIER: hnsw graph search vs exact scan\n"
      "%zu nodes, dim %zu, %zu communities, %zu queries, k=%zu; "
      "kernel ISA: %s\n\n",
      rows, kDim, kCommunities, kNumQueries, kK, vec::IsaName(vec::ActiveIsa()));

  const uint64_t seed = BenchSeed();
  Rng center_rng(seed);
  // Centroids spread wide (sigma 4) relative to unit per-node noise so the
  // mixture has genuine cluster structure.
  Matrix centers(kCommunities, kDim);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = 4.0 * center_rng.NextGaussian();
  }
  const Matrix base = MixtureTable(rows, kDim, centers, seed + 1);
  const Matrix queries = MixtureTable(kNumQueries, kDim, centers, seed + 2);

  // Build-scaling sweep. The 1-thread (no pool) build is the baseline; every
  // pooled build must reproduce its serialized bytes exactly, so the sweep
  // doubles as an end-to-end determinism check at bench scale. Thread counts
  // above the host's core count still run (the regression gate is
  // hardware-aware and only enforces speedup floors the hardware can hit).
  AnnBuildParams params;  // M=16, ef_construction=100, seed=42
  std::unique_ptr<AnnIndex> ann_holder;
  std::string baseline_bytes;
  double build_seconds = 0.0;
  std::vector<std::pair<size_t, double>> build_times;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    WallTimer build_timer;
    StatusOr<AnnIndex> built =
        AnnIndex::Build(base, KnnMetric::kCosine, params, pool.get());
    const double secs = build_timer.ElapsedSeconds();
    CHECK(built.ok()) << built.status().ToString();
    std::string bytes;
    built->AppendTo(&bytes);
    if (threads == 1) {
      baseline_bytes = std::move(bytes);
      build_seconds = secs;
      ann_holder = std::make_unique<AnnIndex>(std::move(built).value());
      std::printf(
          "build t1: %.2fs (max level %d, avg degree %.1f, %zu edges)\n",
          secs, ann_holder->max_level(), ann_holder->avg_degree(),
          ann_holder->num_edges());
    } else {
      CHECK(bytes == baseline_bytes)
          << "build with " << threads
          << " threads diverged from the 1-thread bytes";
      std::printf("build t%zu: %.2fs (%.2fx vs t1, bytes identical)\n",
                  threads, secs, secs > 0.0 ? build_seconds / secs : 0.0);
    }
    build_times.emplace_back(threads, secs);
  }
  const AnnIndex& ann = *ann_holder;

  // Exact ground truth + exact QPS in one pass.
  KnnIndexOptions exact_opts;
  exact_opts.metric = KnnMetric::kCosine;
  const KnnIndex exact(&base, exact_opts);
  std::vector<std::vector<KnnResult>> truth(kNumQueries);
  WallTimer exact_timer;
  for (size_t q = 0; q < kNumQueries; ++q) {
    truth[q] = exact.Search(queries.Row(q), kK, nullptr);
  }
  const double exact_seconds = exact_timer.ElapsedSeconds();
  const double exact_qps =
      exact_seconds > 0.0 ? kNumQueries / exact_seconds : 0.0;
  std::printf("exact scan: %.1f QPS (%.3fs for %zu queries)\n\n", exact_qps,
              exact_seconds, kNumQueries);

  std::vector<BenchJsonEntry> json;
  json.push_back({"num_nodes", "table_rows", static_cast<double>(rows),
                  "nodes"});
  json.push_back({"build_seconds", "wall_time", build_seconds, "s"});
  for (const auto& [threads, secs] : build_times) {
    json.push_back(
        {StrFormat("build_seconds_t%zu", threads), "wall_time", secs, "s"});
    json.push_back({StrFormat("build_speedup_t%zu", threads),
                    "speedup_vs_t1",
                    secs > 0.0 ? build_seconds / secs : 0.0, "x"});
  }
  json.push_back({"exact_qps", "queries_per_second", exact_qps, "qps"});

  TablePrinter table(
      {"ef", "recall@10", "QPS", "speedup vs exact", "hops/query"});
  double frontier_recall = 0.0;
  double frontier_speedup = 0.0;
  for (size_t ef : {size_t{16}, size_t{32}, size_t{64}, size_t{128}}) {
    // The graph search is microseconds per query; repeat the sweep so each
    // timing covers a meaningful wall interval.
    const size_t reps = 50;
    double hops = 0.0;
    double recall_sum = 0.0;
    WallTimer ann_timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (size_t q = 0; q < kNumQueries; ++q) {
        AnnSearchStats stats;
        std::vector<KnnResult> hits = ann.Search(queries.Row(q), kK, ef,
                                                 &stats);
        if (rep == 0) {
          recall_sum += Recall(hits, truth[q]);
          hops += static_cast<double>(stats.hops);
        }
      }
    }
    const double ann_seconds = ann_timer.ElapsedSeconds();
    const double qps =
        ann_seconds > 0.0 ? (reps * kNumQueries) / ann_seconds : 0.0;
    const double recall = recall_sum / static_cast<double>(kNumQueries);
    const double speedup = exact_qps > 0.0 ? qps / exact_qps : 0.0;
    const double hops_per_query = hops / static_cast<double>(kNumQueries);
    table.AddRow({StrFormat("%zu", ef), TablePrinter::Num(recall, 4),
                  TablePrinter::Num(qps, 0), TablePrinter::Num(speedup, 1),
                  TablePrinter::Num(hops_per_query, 0)});
    json.push_back({StrFormat("recall_at_10_ef%zu", ef), "recall", recall,
                    "fraction"});
    json.push_back({StrFormat("qps_ef%zu", ef), "queries_per_second", qps,
                    "qps"});
    if (ef == 128) {  // the gated operating point (the server's default ef)
      frontier_recall = recall;
      frontier_speedup = speedup;
    }
  }
  EmitTable(table, "ann_frontier");

  // Canonical gated entries (scripts/check_bench_regression.py).
  json.push_back({"recall_at_10", "recall", frontier_recall, "fraction"});
  json.push_back(
      {"speedup_vs_exact", "speedup_vs_exact", frontier_speedup, "x"});
  WriteBenchJson("ann_frontier", json);
  return 0;
}
