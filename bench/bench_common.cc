#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include <cinttypes>
#include <cstring>
#include <fstream>
#include <thread>

#include "baselines/hin2vec.h"
#include "baselines/line.h"
#include "baselines/metapath2vec.h"
#include "baselines/mve.h"
#include "baselines/node2vec.h"
#include "baselines/rgcn.h"
#include "baselines/simple_kg.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "obs/json_escape.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/vec.h"

namespace transn {
namespace bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

}  // namespace

double BenchScale() {
  static const double scale = EnvDouble("TRANSN_BENCH_SCALE", 1.0);
  return scale;
}

uint64_t BenchSeed() {
  static const uint64_t seed =
      static_cast<uint64_t>(EnvDouble("TRANSN_BENCH_SEED", 42.0));
  return seed;
}

TransNConfig BenchTransNConfig(uint64_t seed) {
  TransNConfig cfg;
  cfg.dim = kBenchDim;
  cfg.iterations = 3;
  cfg.walk.walk_length = 20;            // paper: 80
  cfg.walk.min_walks_per_node = 2;      // paper: 10
  cfg.walk.max_walks_per_node = 6;      // paper: 32
  cfg.sgns.negatives = 5;
  cfg.translator_encoders = 3;          // paper: 6
  cfg.translator_seq_len = 8;
  cfg.cross_paths_per_pair = 500;
  cfg.seed = seed;
  return cfg;
}

Matrix RunTransNWithConfig(const HeteroGraph& g, const TransNConfig& config) {
  TransNModel model(&g, config);
  model.Fit();
  return model.FinalEmbeddings();
}

std::vector<Method> PaperMethods() {
  std::vector<Method> methods;
  methods.push_back(
      {"LINE", [](const HeteroGraph& g, const std::string&, uint64_t seed) {
         LineConfig cfg;
         cfg.dim = kBenchDim;
         // Sparse graphs need ~100 samples/edge before LINE's
         // second-order embeddings become informative.
         cfg.samples = 100 * g.num_edges();
         cfg.seed = seed;
         return RunLine(g, cfg);
       }});
  methods.push_back(
      {"Node2Vec", [](const HeteroGraph& g, const std::string&,
                      uint64_t seed) {
         Node2VecBaselineConfig cfg;
         cfg.dim = kBenchDim;
         cfg.walk = {.p = 1.0, .q = 1.0, .walk_length = 20,
                     .walks_per_node = 4};
         cfg.window = 3;
         cfg.epochs = 2;
         cfg.seed = seed;
         return RunNode2Vec(g, cfg);
       }});
  methods.push_back(
      {"Metapath2Vec", [](const HeteroGraph& g, const std::string& dataset,
                          uint64_t seed) {
         Metapath2VecConfig cfg;
         cfg.dim = kBenchDim;
         cfg.metapath = RecommendedMetapath(dataset);
         CHECK(!cfg.metapath.empty()) << "no meta-path for " << dataset;
         // Meta-path walks start only at the first pattern type, so longer
         // and more numerous walks are needed to cover the other types.
         cfg.walk_length = 40;
         cfg.walks_per_node = 20;
         cfg.window = 3;
         cfg.epochs = 2;
         cfg.seed = seed;
         auto result = RunMetapath2Vec(g, cfg);
         CHECK(result.ok()) << result.status().ToString();
         return std::move(result).value();
       }});
  methods.push_back(
      {"HIN2VEC", [](const HeteroGraph& g, const std::string&,
                     uint64_t seed) {
         Hin2VecConfig cfg;
         cfg.dim = kBenchDim;
         cfg.walk_length = 20;
         cfg.walks_per_node = 4;
         cfg.window = 3;
         cfg.negatives = 3;
         cfg.epochs = 2;
         cfg.seed = seed;
         return RunHin2Vec(g, cfg);
       }});
  methods.push_back(
      {"MVE", [](const HeteroGraph& g, const std::string&, uint64_t seed) {
         MveConfig cfg;
         cfg.dim = kBenchDim;
         cfg.walk_length = 15;
         cfg.walks_per_node = 3;
         cfg.window = 2;
         cfg.epochs = 2;
         cfg.seed = seed;
         return RunMve(g, cfg);
       }});
  methods.push_back(
      {"R-GCN", [](const HeteroGraph& g, const std::string&, uint64_t seed) {
         RgcnConfig cfg;
         cfg.dim = kBenchDim;
         cfg.epochs = 25;
         cfg.batch_edges = 2048;
         cfg.negatives = 2;
         cfg.seed = seed;
         return RunRgcn(g, cfg);
       }});
  methods.push_back(
      {"SimplE", [](const HeteroGraph& g, const std::string&, uint64_t seed) {
         SimpleKgConfig cfg;
         cfg.dim = kBenchDim;
         cfg.epochs = 60;
         cfg.learning_rate = 0.1;
         cfg.negatives = 4;
         cfg.seed = seed;
         return RunSimplE(g, cfg);
       }});
  methods.push_back(
      {"TransN", [](const HeteroGraph& g, const std::string&, uint64_t seed) {
         return RunTransNWithConfig(g, BenchTransNConfig(seed));
       }});
  return methods;
}

std::vector<Method> AblationMethods() {
  auto variant = [](const std::string& name,
                    const std::function<void(TransNConfig&)>& tweak) {
    return Method{name, [tweak](const HeteroGraph& g, const std::string&,
                                uint64_t seed) {
                    TransNConfig cfg = BenchTransNConfig(seed);
                    tweak(cfg);
                    return RunTransNWithConfig(g, cfg);
                  }};
  };
  return {
      variant("TransN-Without-Cross-View",
              [](TransNConfig& c) { c.enable_cross_view = false; }),
      variant("TransN-With-Simple-Walk",
              [](TransNConfig& c) { c.simple_walk = true; }),
      variant("TransN-With-Simple-Translator",
              [](TransNConfig& c) { c.simple_translator = true; }),
      variant("TransN-Without-Translation-Tasks",
              [](TransNConfig& c) { c.enable_translation_tasks = false; }),
      variant("TransN-Without-Reconstruction-Tasks",
              [](TransNConfig& c) { c.enable_reconstruction_tasks = false; }),
      variant("TransN", [](TransNConfig&) {}),
  };
}

void EmitTable(const TablePrinter& table, const std::string& name) {
  std::printf("%s", table.ToAlignedString().c_str());
  const std::string path = name + ".csv";
  Status s = table.WriteCsv(path);
  if (!s.ok()) {
    LOG(WARNING) << "could not write " << path << ": " << s.ToString();
  } else {
    std::printf("(csv written to %s)\n", path.c_str());
  }
  // Sidecar observability snapshot: everything the run recorded so far
  // (walk/train/io metrics + nested spans), for timing regressions that the
  // result table alone cannot explain.
  const std::string metrics_path = name + ".metrics.json";
  s = obs::DumpDefaultObservability(metrics_path);
  if (!s.ok()) {
    LOG(WARNING) << "could not write " << metrics_path << ": "
                 << s.ToString();
  } else {
    std::printf("(metrics snapshot written to %s)\n", metrics_path.c_str());
  }
}

void WriteBenchJson(const std::string& name,
                    const std::vector<BenchJsonEntry>& entries) {
  const char* dir = std::getenv("TRANSN_BENCH_OUT_DIR");
  std::string path = dir != nullptr && dir[0] != '\0'
                         ? std::string(dir) + "/BENCH_" + name + ".json"
                         : "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    LOG(WARNING) << "could not open " << path << " for writing";
    return;
  }
  out << "{\n  \"schema\": \"transn-bench-v1\",\n  \"bench\": \""
      << obs::JsonEscape(name) << "\",\n  \"isa\": \""
      << vec::IsaName(vec::ActiveIsa())
      // Hardware concurrency of the machine that produced the numbers:
      // scripts/check_bench_regression.py scales its floors by it (a 1-core
      // CI runner cannot demonstrate multi-thread speedups).
      << "\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n  \"benches\": {";
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << obs::JsonEscape(e.name) << "\": {\"metric\": \""
        << obs::JsonEscape(e.metric) << "\", \"value\": "
        << StrFormat("%.17g", e.value) << ", \"unit\": \""
        << obs::JsonEscape(e.unit) << "\"}";
  }
  out << "\n  }\n}\n";
  out.close();
  if (!out) {
    LOG(WARNING) << "could not write " << path;
    return;
  }
  std::printf("(bench json written to %s)\n", path.c_str());
}

}  // namespace bench
}  // namespace transn
