#ifndef TRANSN_BENCH_BENCH_COMMON_H_
#define TRANSN_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "core/transn_config.h"
#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "util/csv.h"

namespace transn {
namespace bench {

/// Environment knobs shared by every table/figure bench:
///   TRANSN_BENCH_SCALE — dataset size multiplier (default 1.0)
///   TRANSN_BENCH_SEED  — base RNG seed (default 42)
double BenchScale();
uint64_t BenchSeed();

/// Embedding dimensionality used by all bench runs. The paper uses 128; the
/// benches use 64 to keep single-core wall time reasonable — relative
/// method ordering is unaffected (EXPERIMENTS.md).
inline constexpr size_t kBenchDim = 64;

/// TransN configuration used across the benches (paper §IV-A3 defaults,
/// scaled: see EXPERIMENTS.md "Scaling" for the mapping).
TransNConfig BenchTransNConfig(uint64_t seed);

/// Trains TransN with `config` and returns the final embeddings.
Matrix RunTransNWithConfig(const HeteroGraph& g, const TransNConfig& config);

/// One embedding method as benchmarked: name + runner. `dataset` selects
/// dataset-specific settings (Metapath2Vec's meta-path).
struct Method {
  std::string name;
  std::function<Matrix(const HeteroGraph& g, const std::string& dataset,
                       uint64_t seed)>
      run;
};

/// The paper's eight methods in Table III/IV row order:
/// LINE, Node2Vec, Metapath2Vec, HIN2VEC, MVE, R-GCN, SimplE, TransN.
std::vector<Method> PaperMethods();

/// The Table V rows: five degenerate variants plus full TransN.
std::vector<Method> AblationMethods();

/// Prints the aligned table to stdout and writes `<name>.csv` next to the
/// working directory.
void EmitTable(const TablePrinter& table, const std::string& name);

/// One scalar result in a BENCH_*.json dump: bench name -> {metric, value,
/// unit}. `name` keys the "benches" object, so it must be unique per file.
struct BenchJsonEntry {
  std::string name;    // e.g. "dot_d128_avx2"
  std::string metric;  // e.g. "speedup_vs_scalar", "pairs_per_second"
  double value = 0.0;
  std::string unit;    // e.g. "x", "pairs/s", "ns/op"
};

/// Writes `BENCH_<name>.json` (schema transn-bench-v1) to the working
/// directory — CI runs the benches from the repo root, so the dumps land
/// there. TRANSN_BENCH_OUT_DIR overrides the directory. Schema:
///   {"schema": "transn-bench-v1", "bench": "<name>",
///    "isa": "<active kernel ISA>",
///    "hardware_threads": <hardware concurrency of the producing machine>,
///    "benches": {"<entry name>": {"metric": ..., "value": ..., "unit": ...}}}
/// A write failure is a stderr warning, not an exit-code change.
void WriteBenchJson(const std::string& name,
                    const std::vector<BenchJsonEntry>& entries);

}  // namespace bench
}  // namespace transn

#endif  // TRANSN_BENCH_BENCH_COMMON_H_
