// Deterministic chaos soak for the serving stack: drives load_gen-style
// closed-loop traffic against an in-process server while a seeded fault
// schedule tears at the transport, then proves the stack degrades gracefully
// and recovers. Phases (each `TRANSN_CHAOS_SECONDS` long):
//
//   1. baseline   — clean traffic; p99 here is the reference bound.
//   2. accept     — net.accept=prob: accepted sockets dropped before
//                   registration (clients reconnect every few requests to
//                   keep hitting the accept path).
//   3. read       — net.read=prob: connections torn down mid-request.
//   4. write      — net.write=prob: responses dropped, connection closed.
//   5. slow       — net.slow=prob: reactor stalls ~20 ms per fired request.
//   6. reload     — clean transport, but an admin driver fires hot reloads
//                   mid-traffic, injects two failing reloads (bad path) to
//                   exercise the stale-model/degraded-healthz path, and
//                   delivers one SIGHUP.
//   7. recovery   — all faults disarmed; clean traffic again, then /healthz
//                   must report fully healthy within the recovery window.
//
// Invariants (CHECKed here, gated again by check_bench_regression.py on the
// emitted BENCH_chaos_soak.json):
//   - the process never crashes;
//   - every non-2xx response is a 429 or a 503 (other_http == 0);
//   - transport-level request failures only happen in fault phases;
//   - /healthz returns to "ok" within 5 s of the last fault.
//
// A slice of the traffic carries X-Transn-Deadline-Ms headers: generous
// deadlines that should survive, plus (in fault/reload phases only) "0"
// deadlines that must be shed with 503 at admission.
//
// Environment knobs:
//   TRANSN_CHAOS_SECONDS  per-phase duration  (default 1.5)
//   TRANSN_CHAOS_THREADS  client threads      (default 4)
//   TRANSN_BENCH_SEED     base RNG seed       (default 42)

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model_io.h"
#include "core/transn.h"
#include "data/hsbm.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "util/fault.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace transn;
using namespace transn::bench;

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

/// Same tiny model as load_gen: real enough for the query path.
std::string TrainAndExportModel(uint64_t seed) {
  HsbmSpec spec;
  spec.node_types = {{"User", 600}, {"Item", 300}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 2400},
      {.name = "UI", .type_a = 0, .type_b = 1, .num_edges = 2400},
  };
  spec.num_communities = 4;
  spec.labeled_type = 0;
  spec.seed = seed;
  HeteroGraph graph = GenerateHsbm(spec);

  TransNConfig config;
  config.dim = 32;
  config.iterations = 1;
  config.walk.walk_length = 10;
  config.walk.min_walks_per_node = 2;
  config.walk.max_walks_per_node = 3;
  config.translator_encoders = 2;
  config.translator_seq_len = 4;
  config.cross_paths_per_pair = 10;
  config.seed = seed;
  TransNModel model(&graph, config);
  model.Fit();

  const char* tmp = std::getenv("TMPDIR");
  const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/transn_chaos_soak_model.bin";
  Status s = ExportServingModel(model, path);
  if (!s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return path;
}

struct PhaseStats {
  size_t requests = 0;
  size_t ok_2xx = 0;
  size_t rejected_429 = 0;
  size_t unavailable_503 = 0;
  size_t other_http = 0;        // budget: zero, in every phase
  size_t transport_errors = 0;  // budget: zero outside fault phases
  LatencyHistogram latency;     // seconds per request, retries included
};

struct ChaosPhase {
  const char* name;
  const char* failpoint;  // nullptr = clean transport
  double probability = 0.0;
  bool faulted = false;      // transport errors tolerated
  bool reload_churn = false; // run the admin reload driver
  /// Force a reconnect every N requests per thread (0 = pure keep-alive);
  /// the accept-fault phase needs fresh connections to hit net.accept.
  size_t disconnect_every = 0;
};

/// Closed-loop traffic for one phase. Every 16th request carries a generous
/// deadline (survives under clean load); in fault/reload phases every 64th
/// carries deadline 0 and must come back 503 without touching the executor.
PhaseStats RunPhase(uint16_t port, const std::vector<std::string>& nodes,
                    const ChaosPhase& phase, size_t threads, double seconds,
                    uint64_t seed) {
  std::vector<PhaseStats> per_thread(threads);
  std::vector<std::thread> workers;
  const bool send_expired = phase.faulted || phase.reload_churn;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PhaseStats& out = per_thread[t];
      net::HttpRetryOptions retry;
      retry.base_backoff_ms = 2;
      retry.max_backoff_ms = 50;
      retry.jitter_seed = seed + t;
      net::HttpClient client("127.0.0.1", port, /*timeout_ms=*/2'000, retry);
      WallTimer timer;
      size_t i = t;  // stagger the node rotation across threads
      while (timer.ElapsedSeconds() < seconds) {
        ++i;
        if (phase.disconnect_every != 0 && i % phase.disconnect_every == 0) {
          client.Disconnect();
        }
        std::string_view deadline_header;
        if (send_expired && i % 64 == 0) {
          deadline_header = "X-Transn-Deadline-Ms: 0\r\n";
        } else if (i % 16 == 0) {
          deadline_header = "X-Transn-Deadline-Ms: 1000\r\n";
        }
        WallTimer rt;
        auto r = client.Get("/v1/knn?node=" + nodes[i % nodes.size()],
                            deadline_header);
        out.latency.Record(rt.ElapsedSeconds());
        ++out.requests;
        if (!r.ok()) {
          ++out.transport_errors;
        } else if (r->code >= 200 && r->code < 300) {
          ++out.ok_2xx;
        } else if (r->code == 429) {
          ++out.rejected_429;
        } else if (r->code == 503) {
          ++out.unavailable_503;
        } else {
          ++out.other_http;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  PhaseStats total;
  for (PhaseStats& p : per_thread) {
    total.requests += p.requests;
    total.ok_2xx += p.ok_2xx;
    total.rejected_429 += p.rejected_429;
    total.unavailable_503 += p.unavailable_503;
    total.other_http += p.other_http;
    total.transport_errors += p.transport_errors;
    total.latency.Merge(p.latency);
  }
  return total;
}

net::ServeApp* g_app = nullptr;
void OnSighup(int) {
  if (g_app != nullptr) g_app->TriggerReloadFromSignal();
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kError);
  const double phase_seconds = EnvDouble("TRANSN_CHAOS_SECONDS", 1.5);
  const size_t threads =
      static_cast<size_t>(EnvDouble("TRANSN_CHAOS_THREADS", 4));
  const uint64_t seed = BenchSeed();

  std::printf("training model ...\n");
  const std::string model_path = TrainAndExportModel(seed);
  auto store = EmbeddingStore::Load(model_path);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> nodes;
  for (NodeId n = 0; n < store->num_nodes(); ++n) {
    nodes.push_back(store->node_name(n));
  }

  net::ServeAppOptions app_opts;
  app_opts.model_path = model_path;
  app_opts.query.k = 10;
  net::ServeApp app(app_opts);
  g_app = &app;
  struct sigaction sa {};
  sa.sa_handler = OnSighup;
  sigaction(SIGHUP, &sa, nullptr);
  Status s = app.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::HttpServerOptions http_opts;
  http_opts.reactor_threads = 2;
  net::HttpServer server(
      http_opts, [&app](net::HttpRequest&& req, net::ResponseHandle handle) {
        app.HandleRequest(std::move(req), std::move(handle));
      });
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("soaking %zu nodes on 127.0.0.1:%u, %zu threads, %.1fs/phase\n",
              nodes.size(), server.port(), threads, phase_seconds);

  const std::vector<ChaosPhase> phases = {
      {.name = "baseline", .failpoint = nullptr},
      {.name = "accept-drop", .failpoint = fault::kNetAccept,
       .probability = 0.4, .faulted = true, .disconnect_every = 8},
      {.name = "read-reset", .failpoint = fault::kNetRead,
       .probability = 0.25, .faulted = true},
      {.name = "write-drop", .failpoint = fault::kNetWrite,
       .probability = 0.25, .faulted = true},
      {.name = "slow-reactor", .failpoint = fault::kNetSlow,
       .probability = 0.15, .faulted = true},
      {.name = "reload-churn", .failpoint = nullptr, .reload_churn = true},
      {.name = "recovery", .failpoint = nullptr},
  };

  PhaseStats totals;
  double baseline_p99_ms = 0.0;
  double recovery_p99_ms = 0.0;
  size_t transport_errors_clean = 0;
  size_t transport_errors_fault = 0;
  std::atomic<size_t> reloads_ok{0};
  std::atomic<size_t> reloads_failed_injected{0};

  fault::FaultInjector& injector = fault::FaultInjector::Default();
  for (size_t pi = 0; pi < phases.size(); ++pi) {
    const ChaosPhase& phase = phases[pi];
    injector.DisarmAll();
    if (phase.failpoint != nullptr) {
      injector.Arm(phase.failpoint,
                   fault::FaultSpec::Probability(phase.probability,
                                                 seed + 100 + pi));
    }

    std::thread reload_driver;
    std::atomic<bool> stop_driver{false};
    if (phase.reload_churn) {
      reload_driver = std::thread([&] {
        net::HttpClient admin("127.0.0.1", server.port());
        size_t round = 0;
        while (!stop_driver.load(std::memory_order_acquire)) {
          ++round;
          if (round == 2 || round == 3) {
            // A reload pointed at a missing file must fail, leave the old
            // generation serving, and flip /healthz to "degraded".
            auto r = admin.Post("/admin/reload?path=/nonexistent/chaos.bin",
                                "");
            if (r.ok() && r->code >= 500) reloads_failed_injected.fetch_add(1);
          } else if (round == 4) {
            raise(SIGHUP);  // picked up by the app's signal poll <=100ms later
          } else {
            auto r = admin.Post("/admin/reload", "");
            if (r.ok() && r->code == 200) reloads_ok.fetch_add(1);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
        }
        // Leave the server on a freshly-loaded healthy generation.
        auto r = admin.Post("/admin/reload", "");
        if (r.ok() && r->code == 200) reloads_ok.fetch_add(1);
      });
    }

    PhaseStats stats = RunPhase(server.port(), nodes, phase, threads,
                                phase_seconds, seed + 1000 * (pi + 1));
    if (phase.reload_churn) {
      stop_driver.store(true, std::memory_order_release);
      reload_driver.join();
    }

    const double p99_ms = stats.latency.Percentile(99) * 1e3;
    std::printf(
        "%-12s %7zu req  2xx=%zu 429=%zu 503=%zu other=%zu transport=%zu  "
        "p99=%.2fms\n",
        phase.name, stats.requests, stats.ok_2xx, stats.rejected_429,
        stats.unavailable_503, stats.other_http, stats.transport_errors,
        p99_ms);
    if (std::string(phase.name) == "baseline") baseline_p99_ms = p99_ms;
    if (std::string(phase.name) == "recovery") recovery_p99_ms = p99_ms;
    (phase.faulted ? transport_errors_fault : transport_errors_clean) +=
        stats.transport_errors;

    totals.requests += stats.requests;
    totals.ok_2xx += stats.ok_2xx;
    totals.rejected_429 += stats.rejected_429;
    totals.unavailable_503 += stats.unavailable_503;
    totals.other_http += stats.other_http;
    totals.transport_errors += stats.transport_errors;
  }
  injector.DisarmAll();

  // Recovery probe: with faults disarmed and the last reload healthy, light
  // query traffic must walk the degradation controller back to tier 0 and
  // /healthz back to "ok" within the window. Queries are required — tier
  // transitions happen per executed batch, never while idle.
  const double kRecoveryWindowSeconds = 5.0;
  bool recovered = false;
  double recovery_seconds = 0.0;
  {
    net::HttpClient probe("127.0.0.1", server.port());
    WallTimer timer;
    while (timer.ElapsedSeconds() < kRecoveryWindowSeconds) {
      (void)probe.Get("/v1/knn?node=" + nodes[0]);
      auto h = probe.Get("/healthz");
      if (h.ok() && h->code == 200 &&
          h->body.find("\"status\":\"ok\"") != std::string::npos) {
        recovered = true;
        recovery_seconds = timer.ElapsedSeconds();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!recovered) recovery_seconds = timer.ElapsedSeconds();
  }
  std::printf("recovery: healthz %s after %.2fs\n",
              recovered ? "ok" : "STILL DEGRADED", recovery_seconds);

  const uint64_t faults_injected =
      obs::MetricsRegistry::Default()
          .GetCounter(obs::kNetFaultsInjectedTotal)
          ->Value();
  const uint64_t deadline_expired =
      obs::MetricsRegistry::Default()
          .GetCounter(obs::kServeDeadlineExpiredTotal)
          ->Value();
  const uint64_t generation_final = app.manager().generation();

  server.Stop();
  app.Stop();
  g_app = nullptr;
  std::remove(model_path.c_str());

  std::printf(
      "totals: %zu requests, 2xx=%zu 429=%zu 503=%zu other=%zu "
      "transport(clean=%zu fault=%zu)  faults_injected=%llu "
      "deadline_expired=%llu generation=%llu\n",
      totals.requests, totals.ok_2xx, totals.rejected_429,
      totals.unavailable_503, totals.other_http, transport_errors_clean,
      transport_errors_fault,
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(generation_final));

  // The soak's hard invariants, independent of the JSON gate: a violation
  // here is a resilience bug, not a perf regression.
  CHECK_EQ(totals.other_http, 0u)
      << "non-2xx responses other than 429/503 appeared under chaos";
  CHECK_EQ(transport_errors_clean, 0u)
      << "transport-level failures in a no-fault phase";
  CHECK(recovered) << "/healthz did not return to ok within "
                   << kRecoveryWindowSeconds << "s of the last fault";
  CHECK_GE(faults_injected, 1u) << "the fault schedule never fired";
  CHECK_GE(reloads_ok.load(), 1u) << "no successful hot reload mid-soak";
  CHECK_GE(reloads_failed_injected.load(), 1u)
      << "the failing-reload (stale model) path was never exercised";
  CHECK_GT(totals.ok_2xx, totals.requests / 2)
      << "fewer than half of all requests succeeded";

  WriteBenchJson(
      "chaos_soak",
      {
          {"total_requests", "count", static_cast<double>(totals.requests), "requests"},
          {"ok_2xx", "count", static_cast<double>(totals.ok_2xx), "requests"},
          {"rejected_429", "count", static_cast<double>(totals.rejected_429), "requests"},
          {"unavailable_503", "count", static_cast<double>(totals.unavailable_503), "requests"},
          {"other_http", "error_count", static_cast<double>(totals.other_http), "requests"},
          {"transport_errors_clean", "error_count", static_cast<double>(transport_errors_clean), "requests"},
          {"transport_errors_fault", "count", static_cast<double>(transport_errors_fault), "requests"},
          {"baseline_p99_ms", "latency_p99", baseline_p99_ms, "ms"},
          {"recovery_p99_ms", "latency_p99", recovery_p99_ms, "ms"},
          {"recovery_seconds", "seconds", recovery_seconds, "s"},
          {"recovered_healthz", "bool", recovered ? 1.0 : 0.0, "flag"},
          {"reloads_ok", "count", static_cast<double>(reloads_ok.load()), "reloads"},
          {"reloads_failed_injected", "count", static_cast<double>(reloads_failed_injected.load()), "reloads"},
          {"faults_injected", "count", static_cast<double>(faults_injected), "faults"},
          {"deadline_expired", "count", static_cast<double>(deadline_expired), "requests"},
          {"generation_final", "count", static_cast<double>(generation_final), "generations"},
      });
  return 0;
}
