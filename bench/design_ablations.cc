// Ablations over *our* design choices (the points where the paper is
// ambiguous and DESIGN.md documents a decision):
//   1. cross-view loss form: cosine (default) vs literal sign-corrected
//      negative inner product (DESIGN.md §2.3);
//   2. translator sequence length L (DESIGN.md §2.5);
//   3. link-prediction negative sampling: type-matched (default) vs the
//      paper's unconstrained non-adjacent pairs.
// Each block reports the impact on the AMiner and App-Daily analogues.

#include <cstdio>

#include "bench_common.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "eval/link_prediction.h"
#include "eval/node_classification.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace transn;
using namespace transn::bench;

NodeClassificationResult Classify(const HeteroGraph& g,
                                  const TransNConfig& cfg) {
  Matrix emb = RunTransNWithConfig(g, cfg);
  NodeClassificationConfig eval;
  eval.repeats = 5;
  eval.seed = BenchSeed();
  return EvaluateNodeClassification(g, emb, eval);
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  std::printf(
      "DESIGN ABLATIONS: impact of this reproduction's documented choices "
      "(scale %.2f, seed %llu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()));

  HeteroGraph aminer = MakeAminerLike(BenchScale(), BenchSeed());
  HeteroGraph app = MakeAppDailyLike(BenchScale(), BenchSeed() + 2);

  // --- 1. Cross-view loss form ---------------------------------------
  TablePrinter loss_table({"Cross-view loss", "AMiner Macro-F1",
                           "App-Daily Macro-F1"});
  for (auto [name, kind] :
       {std::pair<const char*, CrossViewLossKind>{"cosine (default)",
                                                  CrossViewLossKind::kCosine},
        {"negative inner product", CrossViewLossKind::kNegativeDot}}) {
    TransNConfig cfg = BenchTransNConfig(BenchSeed() + 31);
    cfg.cross_loss = kind;
    WallTimer t;
    auto a = Classify(aminer, cfg);
    auto b = Classify(app, cfg);
    loss_table.AddRow({name, TablePrinter::Num(a.macro_f1),
                       TablePrinter::Num(b.macro_f1)});
    std::fprintf(stderr, "  [loss=%s] %.1fs\n", name, t.ElapsedSeconds());
  }
  EmitTable(loss_table, "design_ablation_loss");
  std::printf("\n");

  // --- 1b. Final feed-forward ReLU (literal Eq. 9) vs linear ----------
  TablePrinter relu_table({"Final layer", "AMiner Macro-F1",
                           "App-Daily Macro-F1"});
  for (bool relu : {false, true}) {
    TransNConfig cfg = BenchTransNConfig(BenchSeed() + 34);
    cfg.translator_final_relu = relu;
    WallTimer t;
    auto a = Classify(aminer, cfg);
    auto b = Classify(app, cfg);
    relu_table.AddRow({relu ? "ReLU (literal Eq. 9)" : "linear (default)",
                       TablePrinter::Num(a.macro_f1),
                       TablePrinter::Num(b.macro_f1)});
    std::fprintf(stderr, "  [final_relu=%d] %.1fs\n", relu,
                 t.ElapsedSeconds());
  }
  EmitTable(relu_table, "design_ablation_final_relu");
  std::printf("\n");

  // --- 1c. View-space alignment choices -------------------------------
  TablePrinter align_table({"Variant", "AMiner Macro-F1",
                            "App-Daily Macro-F1"});
  struct AlignVariant {
    const char* name;
    void (*tweak)(TransNConfig&);
  };
  const AlignVariant variants[] = {
      {"default (shared init, view-normalized avg)", [](TransNConfig&) {}},
      {"independent per-view init",
       [](TransNConfig& c) { c.shared_view_init = false; }},
      {"plain average",
       [](TransNConfig& c) { c.view_average = ViewAverageKind::kPlain; }},
      {"row-normalized average",
       [](TransNConfig& c) {
         c.view_average = ViewAverageKind::kRowNormalized;
       }},
  };
  for (const AlignVariant& v : variants) {
    TransNConfig cfg = BenchTransNConfig(BenchSeed() + 35);
    v.tweak(cfg);
    WallTimer t;
    auto a = Classify(aminer, cfg);
    auto b = Classify(app, cfg);
    align_table.AddRow({v.name, TablePrinter::Num(a.macro_f1),
                        TablePrinter::Num(b.macro_f1)});
    std::fprintf(stderr, "  [align=%s] %.1fs\n", v.name, t.ElapsedSeconds());
  }
  EmitTable(align_table, "design_ablation_alignment");
  std::printf("\n");

  // --- 2. Translator sequence length L -------------------------------
  TablePrinter len_table(
      {"L (translator path len)", "AMiner Macro-F1", "App-Daily Macro-F1"});
  for (size_t len : {4u, 8u, 16u}) {
    TransNConfig cfg = BenchTransNConfig(BenchSeed() + 32);
    cfg.translator_seq_len = len;
    WallTimer t;
    auto a = Classify(aminer, cfg);
    auto b = Classify(app, cfg);
    len_table.AddRow({StrFormat("%zu", len), TablePrinter::Num(a.macro_f1),
                      TablePrinter::Num(b.macro_f1)});
    std::fprintf(stderr, "  [L=%zu] %.1fs\n", len, t.ElapsedSeconds());
  }
  EmitTable(len_table, "design_ablation_seqlen");
  std::printf("\n");

  // --- 3. Link-prediction negative sampling policy -------------------
  TablePrinter neg_table({"Negative sampling", "AMiner AUC", "App-Daily AUC"});
  for (bool matched : {true, false}) {
    WallTimer t;
    std::vector<std::string> row = {matched
                                        ? "type-matched (default)"
                                        : "uniform non-adjacent (paper)"};
    for (const HeteroGraph* g : {&aminer, &app}) {
      LinkPredictionTask task = MakeLinkPredictionTask(
          *g, {.type_matched_negatives = matched, .seed = BenchSeed() + 5});
      Matrix emb = RunTransNWithConfig(task.residual,
                                       BenchTransNConfig(BenchSeed() + 33));
      row.push_back(TablePrinter::Num(ScoreLinkPrediction(emb, task)));
    }
    neg_table.AddRow(std::move(row));
    std::fprintf(stderr, "  [matched=%d] %.1fs\n", matched,
                 t.ElapsedSeconds());
  }
  EmitTable(neg_table, "design_ablation_negatives");
  std::printf(
      "\nExpected: cosine ~= or > negative-dot (stability), mid L best "
      "(short windows lose context, long windows rarely fill), uniform "
      "negatives inflate every AUC equally.\n");
  return 0;
}
