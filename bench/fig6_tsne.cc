// Reproduces Figure 6: 2-D t-SNE projections of 90 applet embeddings (10
// per category) from the App-Daily analogue, for HIN2VEC, SimplE, and
// TransN (§IV-D). Emits the 2-D coordinates as CSV series and summarizes
// the visual separation with silhouette scores (higher = more separated,
// matching the paper's qualitative reading).

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "baselines/hin2vec.h"
#include "baselines/simple_kg.h"
#include "data/datasets.h"
#include "eval/metrics.h"
#include "eval/tsne.h"
#include "util/string_util.h"

int main() {
  using namespace transn;
  using namespace transn::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  std::printf(
      "FIGURE 6 analogue: t-SNE projections of 90 applets from App-Daily "
      "(scale %.2f, seed %llu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()));

  HeteroGraph g = MakeAppDailyLike(BenchScale(), BenchSeed() + 2);

  // Select ten labeled applets per category. The paper picks well-known
  // applets (all its applets have real usage); our random 20% labeling
  // includes barely-connected ones whose embeddings are noise, so we
  // restrict the draw to each category's best-connected applets.
  std::map<int, std::vector<NodeId>> by_category;
  for (NodeId n : g.LabeledNodes()) by_category[g.label(n)].push_back(n);
  std::vector<NodeId> selected;
  std::vector<int> labels;
  Rng rng(BenchSeed() + 5);
  for (auto& [category, nodes] : by_category) {
    std::sort(nodes.begin(), nodes.end(), [&g](NodeId a, NodeId b) {
      return g.degree(a) > g.degree(b);
    });
    if (nodes.size() > 25) nodes.resize(25);  // top-connected pool
    rng.Shuffle(nodes);
    const size_t take = std::min<size_t>(10, nodes.size());
    for (size_t i = 0; i < take; ++i) {
      selected.push_back(nodes[i]);
      labels.push_back(category);
    }
  }
  std::printf("selected %zu applets across %zu categories\n\n",
              selected.size(), by_category.size());

  struct Fig6Method {
    std::string name;
    std::function<Matrix()> run;
  };
  const std::vector<Fig6Method> methods = {
      {"HIN2VEC",
       [&] {
         Hin2VecConfig cfg;
         cfg.dim = kBenchDim;
         cfg.walk_length = 15;
         cfg.walks_per_node = 2;
         cfg.window = 2;
         cfg.epochs = 1;
         cfg.seed = BenchSeed() + 11;
         return RunHin2Vec(g, cfg);
       }},
      {"SimplE",
       [&] {
         SimpleKgConfig cfg;
         cfg.dim = kBenchDim;
         cfg.epochs = 10;
         cfg.negatives = 4;
         cfg.seed = BenchSeed() + 12;
         return RunSimplE(g, cfg);
       }},
      {"TransN",
       [&] {
         return RunTransNWithConfig(g, BenchTransNConfig(BenchSeed() + 13));
       }},
  };

  TablePrinter summary({"Method", "Silhouette (2-D t-SNE)",
                        "Silhouette (raw embedding)"});
  TablePrinter points({"method", "applet", "category", "x", "y"});
  for (const Fig6Method& method : methods) {
    Matrix emb = method.run();
    Matrix features(selected.size(), emb.cols());
    for (size_t i = 0; i < selected.size(); ++i) {
      const double* src = emb.Row(selected[i]);
      std::copy(src, src + emb.cols(), features.Row(i));
    }
    TsneConfig tsne;
    tsne.perplexity = 12.0;
    tsne.iterations = 600;
    tsne.seed = BenchSeed() + 21;
    Matrix projected = Tsne(features, tsne);

    summary.AddRow({method.name,
                    TablePrinter::Num(SilhouetteScore(projected, labels)),
                    TablePrinter::Num(SilhouetteScore(features, labels))});
    for (size_t i = 0; i < selected.size(); ++i) {
      points.AddRow({method.name, g.node_name(selected[i]),
                     StrFormat("%d", labels[i]),
                     TablePrinter::Num(projected(i, 0), 3),
                     TablePrinter::Num(projected(i, 1), 3)});
    }
    std::fprintf(stderr, "  [%s] projected\n", method.name.c_str());
  }

  EmitTable(summary, "fig6_tsne_summary");
  Status s = points.WriteCsv("fig6_tsne_points.csv");
  if (s.ok()) {
    std::printf("(2-D coordinates written to fig6_tsne_points.csv — one "
                "series per method, color by category)\n");
  }
  std::printf(
      "\nPaper's qualitative claim: TransN's categories are more separated "
      "than HIN2VEC's and SimplE's -> TransN should have the highest "
      "silhouette above.\n");
  return 0;
}
