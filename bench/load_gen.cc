// Closed- and open-loop load harness for the network serving subsystem.
// Fully self-contained: generates a synthetic HSBM network, trains a small
// TransN model, exports it, serves it in-process over the epoll HTTP front
// end on an ephemeral port, then drives three phases:
//
//   1. closed loop  — N keep-alive client threads issue /v1/knn queries
//                     back to back for the phase duration: the sustained
//                     throughput ceiling and its latency distribution.
//   2. open loop    — Poisson arrivals at a target QPS; latency is measured
//                     from the *scheduled* arrival time, so queueing delay
//                     (coordinated omission) is included. Hot reloads fire
//                     mid-run via POST /admin/reload; the error budget is
//                     zero non-2xx across the whole phase.
//   3. overload     — a second server instance with max_queue=0 proves the
//                     admission-control path: every query draws 429 with a
//                     Retry-After header while /healthz stays 200.
//
// Emits BENCH_serve_load.json (schema transn-bench-v1) consumed by
// scripts/check_bench_regression.py. Environment knobs:
//   TRANSN_LOADGEN_SECONDS  per-phase duration      (default 3.0)
//   TRANSN_LOADGEN_THREADS  client threads          (default 4)
//   TRANSN_LOADGEN_QPS      open-loop target QPS    (default 400)
//   TRANSN_BENCH_SEED       base RNG seed           (default 42)

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model_io.h"
#include "core/transn.h"
#include "data/hsbm.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "serve/embedding_store.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace transn;
using namespace transn::bench;

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

/// Small two-type network + short training run: the model only has to be
/// real enough for the query path (names, views, k-NN index), not accurate.
std::string TrainAndExportModel(uint64_t seed) {
  HsbmSpec spec;
  spec.node_types = {{"User", 600}, {"Item", 300}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 2400},
      {.name = "UI", .type_a = 0, .type_b = 1, .num_edges = 2400},
  };
  spec.num_communities = 4;
  spec.labeled_type = 0;
  spec.seed = seed;
  HeteroGraph graph = GenerateHsbm(spec);

  TransNConfig config;
  config.dim = 32;
  config.iterations = 1;
  config.walk.walk_length = 10;
  config.walk.min_walks_per_node = 2;
  config.walk.max_walks_per_node = 3;
  config.translator_encoders = 2;
  config.translator_seq_len = 4;
  config.cross_paths_per_pair = 10;
  config.seed = seed;
  TransNModel model(&graph, config);
  model.Fit();

  const char* tmp = std::getenv("TMPDIR");
  const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/transn_load_gen_model.bin";
  Status s = ExportServingModel(model, path);
  if (!s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return path;
}

struct PhaseResult {
  LatencyHistogram latency;  // seconds per request
  size_t requests = 0;
  size_t non_2xx = 0;
  double seconds = 0.0;

  double Qps() const { return seconds > 0.0 ? requests / seconds : 0.0; }
};

/// Closed loop: each thread issues requests back to back until the deadline.
PhaseResult RunClosedLoop(uint16_t port, const std::vector<std::string>& nodes,
                          size_t threads, double seconds) {
  std::vector<PhaseResult> per_thread(threads);
  std::vector<std::thread> workers;
  WallTimer phase_timer;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PhaseResult& out = per_thread[t];
      net::HttpClient client("127.0.0.1", port);
      WallTimer timer;
      size_t i = t;  // stagger the node rotation across threads
      while (timer.ElapsedSeconds() < seconds) {
        WallTimer rt;
        auto r = client.Get("/v1/knn?node=" + nodes[i++ % nodes.size()]);
        out.latency.Record(rt.ElapsedSeconds());
        ++out.requests;
        if (!r.ok() || r->code < 200 || r->code >= 300) ++out.non_2xx;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  PhaseResult total;
  total.seconds = phase_timer.ElapsedSeconds();
  for (PhaseResult& p : per_thread) {
    total.latency.Merge(p.latency);
    total.requests += p.requests;
    total.non_2xx += p.non_2xx;
  }
  return total;
}

/// Open loop: Poisson arrivals at `target_qps`, shared across the worker
/// pool via an atomic ticket over precomputed arrival offsets. Latency is
/// measured from the scheduled arrival, not the actual send.
PhaseResult RunOpenLoop(uint16_t port, const std::vector<std::string>& nodes,
                        size_t threads, double seconds, double target_qps,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<double> arrivals;  // offsets from phase start, seconds
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.NextDouble()) / target_qps;
    if (t >= seconds) break;
    arrivals.push_back(t);
  }

  std::vector<PhaseResult> per_thread(threads);
  std::vector<std::thread> workers;
  std::atomic<size_t> ticket{0};
  const auto start = std::chrono::steady_clock::now();
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      PhaseResult& out = per_thread[w];
      net::HttpClient client("127.0.0.1", port);
      while (true) {
        const size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
        if (i >= arrivals.size()) break;
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(due);
        auto r = client.Get("/v1/knn?node=" + nodes[i % nodes.size()]);
        const double latency =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          due)
                .count();
        out.latency.Record(latency);
        ++out.requests;
        if (!r.ok() || r->code < 200 || r->code >= 300) ++out.non_2xx;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  PhaseResult total;
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (PhaseResult& p : per_thread) {
    total.latency.Merge(p.latency);
    total.requests += p.requests;
    total.non_2xx += p.non_2xx;
  }
  return total;
}

void PrintPhase(const char* name, const PhaseResult& r) {
  std::printf(
      "%-12s %7zu requests in %5.2fs  (%8.1f QPS)  "
      "p50=%.3fms p95=%.3fms p99=%.3fms  non-2xx=%zu\n",
      name, r.requests, r.seconds, r.Qps(), r.latency.Percentile(50) * 1e3,
      r.latency.Percentile(95) * 1e3, r.latency.Percentile(99) * 1e3,
      r.non_2xx);
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double phase_seconds = EnvDouble("TRANSN_LOADGEN_SECONDS", 3.0);
  const size_t threads =
      static_cast<size_t>(EnvDouble("TRANSN_LOADGEN_THREADS", 4));
  const double target_qps = EnvDouble("TRANSN_LOADGEN_QPS", 400.0);
  const uint64_t seed = BenchSeed();

  std::printf("training model ...\n");
  const std::string model_path = TrainAndExportModel(seed);
  auto store = EmbeddingStore::Load(model_path);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> nodes;
  for (NodeId n = 0; n < store->num_nodes(); ++n) {
    nodes.push_back(store->node_name(n));
  }

  // --- main server -----------------------------------------------------------
  net::ServeAppOptions app_opts;
  app_opts.model_path = model_path;
  app_opts.query.k = 10;
  net::ServeApp app(app_opts);
  Status s = app.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::HttpServerOptions http_opts;
  http_opts.reactor_threads = 2;
  net::HttpServer server(
      http_opts, [&app](net::HttpRequest&& req, net::ResponseHandle handle) {
        app.HandleRequest(std::move(req), std::move(handle));
      });
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu nodes on 127.0.0.1:%u\n", nodes.size(),
              server.port());

  // Phase 1: closed loop (throughput ceiling).
  PhaseResult closed =
      RunClosedLoop(server.port(), nodes, threads, phase_seconds);
  PrintPhase("closed-loop", closed);

  // Phase 2: open loop at the target QPS with hot reloads mid-run.
  std::atomic<size_t> reloads_ok{0};
  std::atomic<size_t> reloads_bad{0};
  std::atomic<bool> stop_reloader{false};
  std::thread reloader([&] {
    net::HttpClient admin("127.0.0.1", server.port());
    while (!stop_reloader.load(std::memory_order_acquire)) {
      auto r = admin.Post("/admin/reload", "");
      if (r.ok() && r->code == 200) {
        reloads_ok.fetch_add(1);
      } else {
        reloads_bad.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  });
  PhaseResult open = RunOpenLoop(server.port(), nodes, threads, phase_seconds,
                                 target_qps, seed + 1);
  stop_reloader.store(true, std::memory_order_release);
  reloader.join();
  PrintPhase("open-loop", open);
  auto snapshot = app.manager().Current();
  const double model_load_seconds = snapshot->load_seconds;
  const double index_build_seconds = snapshot->index_build_seconds;
  std::printf(
      "reloads: %zu ok, %zu failed  (last: model_load=%.4fs index_build=%.4fs, "
      "generation %lu)\n",
      reloads_ok.load(), reloads_bad.load(), model_load_seconds,
      index_build_seconds,
      static_cast<unsigned long>(snapshot->generation));
  server.Stop();
  app.Stop();

  // Phase 3: overload — max_queue=0 makes admission control reject every
  // query deterministically; the 429 path must carry Retry-After.
  net::ServeAppOptions full_opts = app_opts;
  full_opts.max_queue = 0;
  net::ServeApp full_app(full_opts);
  size_t overload_429 = 0;
  size_t overload_retry_after = 0;
  size_t overload_other = 0;
  if (full_app.Start().ok()) {
    net::HttpServer full_server(
        {}, [&full_app](net::HttpRequest&& req, net::ResponseHandle handle) {
          full_app.HandleRequest(std::move(req), std::move(handle));
        });
    if (full_server.Start().ok()) {
      net::HttpClient client("127.0.0.1", full_server.port());
      for (int i = 0; i < 50; ++i) {
        auto r = client.Get("/v1/knn?node=" + nodes[i % nodes.size()]);
        if (r.ok() && r->code == 429) {
          ++overload_429;
          if (r->Header("retry-after") == "1") ++overload_retry_after;
        } else {
          ++overload_other;
        }
      }
      full_server.Stop();
    }
    full_app.Stop();
  }
  std::printf("overload     %zu/50 rejected with 429 (%zu with Retry-After)\n",
              overload_429, overload_retry_after);
  std::remove(model_path.c_str());

  const double achieved_ratio =
      target_qps > 0.0 ? open.Qps() / target_qps : 0.0;
  WriteBenchJson(
      "serve_load",
      {
          {"closed_loop_qps", "requests_per_second", closed.Qps(), "req/s"},
          {"closed_loop_p50_ms", "latency_p50", closed.latency.Percentile(50) * 1e3, "ms"},
          {"closed_loop_p99_ms", "latency_p99", closed.latency.Percentile(99) * 1e3, "ms"},
          {"closed_loop_non_2xx", "error_count", static_cast<double>(closed.non_2xx), "requests"},
          {"open_loop_target_qps", "requests_per_second", target_qps, "req/s"},
          {"open_loop_achieved_qps", "requests_per_second", open.Qps(), "req/s"},
          {"open_loop_achieved_ratio", "achieved_over_target", achieved_ratio, "x"},
          {"open_loop_p50_ms", "latency_p50", open.latency.Percentile(50) * 1e3, "ms"},
          {"open_loop_p95_ms", "latency_p95", open.latency.Percentile(95) * 1e3, "ms"},
          {"open_loop_p99_ms", "latency_p99", open.latency.Percentile(99) * 1e3, "ms"},
          {"open_loop_non_2xx", "error_count", static_cast<double>(open.non_2xx), "requests"},
          {"reloads_ok", "count", static_cast<double>(reloads_ok.load()), "reloads"},
          {"reloads_failed", "count", static_cast<double>(reloads_bad.load()), "reloads"},
          {"model_load_seconds", "seconds", model_load_seconds, "s"},
          {"index_build_seconds", "seconds", index_build_seconds, "s"},
          {"overload_429", "count", static_cast<double>(overload_429), "requests"},
          {"overload_retry_after", "count", static_cast<double>(overload_retry_after), "requests"},
          {"overload_other", "count", static_cast<double>(overload_other), "requests"},
      });
  return 0;
}
