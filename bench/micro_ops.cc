// Google-benchmark microbenchmarks for the hot primitives: alias sampling,
// biased correlated walk steps, SGNS pair updates, dense/sparse matmul, and
// translator forward+backward — plus before/after timings of every vector
// kernel (util/vec.h) against its scalar reference. main() first writes the
// kernel speedups to BENCH_kernels.json (schema transn-bench-v1, see
// bench_common.h), then runs the registered google benchmarks as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "core/translator.h"
#include "data/datasets.h"
#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "graph/view.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/timer.h"
#include "util/vec.h"
#include "walk/random_walk.h"

namespace transn {
namespace {

const HeteroGraph& BenchGraph() {
  static const HeteroGraph* g = new HeteroGraph(MakeAminerLike(0.3, 1));
  return *g;
}

void BM_AliasSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDouble(0.1, 5.0);
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 18);

void BM_BiasedCorrelatedWalk(benchmark::State& state) {
  static const std::vector<View>* views = [] {
    return new std::vector<View>(BuildViews(BenchGraph()));
  }();
  const View& view = (*views)[1];  // AP heter-view
  RandomWalker walker(&view.graph, view.is_heter,
                      {.walk_length = static_cast<size_t>(state.range(0))});
  Rng rng(2);
  size_t nodes = 0;
  for (auto _ : state) {
    auto walk = walker.Walk(
        static_cast<ViewGraph::LocalId>(rng.NextUint64(view.graph.num_nodes())),
        rng);
    nodes += walk.size();
    benchmark::DoNotOptimize(walk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes));
}
BENCHMARK(BM_BiasedCorrelatedWalk)->Arg(20)->Arg(80);

void BM_SgnsTrainPair(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(3);
  EmbeddingTable input(1000, dim, rng);
  EmbeddingTable context(1000, dim);
  std::vector<double> counts(1000, 1.0);
  NegativeSampler sampler(counts);
  SgnsTrainer trainer(&input, &context, &sampler, {.negatives = 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainPair(
        static_cast<uint32_t>(rng.NextUint64(1000)),
        static_cast<uint32_t>(rng.NextUint64(1000)), rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgnsTrainPair)->Arg(64)->Arg(128);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix a = GaussianInit(n, n, 1.0, rng);
  Matrix b = GaussianInit(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

void BM_SpMM(benchmark::State& state) {
  const HeteroGraph& g = BenchGraph();
  std::vector<std::tuple<size_t, size_t, double>> trip;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    trip.emplace_back(g.edge_u(e), g.edge_v(e), 1.0);
    trip.emplace_back(g.edge_v(e), g.edge_u(e), 1.0);
  }
  SparseMat s(g.num_nodes(), g.num_nodes(), trip);
  Rng rng(5);
  Matrix x = GaussianInit(g.num_nodes(), 64, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Multiply(x));
  }
}
BENCHMARK(BM_SpMM);

void BM_TranslatorForwardBackward(benchmark::State& state) {
  const size_t encoders = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Translator t(8, 64, encoders, false, rng);
  Matrix in = GaussianInit(8, 64, 1.0, rng);
  Matrix target = GaussianInit(8, 64, 1.0, rng);
  for (auto _ : state) {
    Tape tape;
    Var x = tape.Input(in, true);
    Var loss = RowCosineLoss(t.Apply(tape, x), tape.Input(target, false));
    tape.Backward(loss);
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_TranslatorForwardBackward)->Arg(1)->Arg(3)->Arg(6);

// --- vec.h kernels: dispatched vs scalar reference -------------------------

/// Fills `n` doubles with a reproducible non-trivial pattern in (-1, 1).
std::vector<double> KernelOperand(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble(-1.0, 1.0);
  return v;
}

void BM_VecDot(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto a = KernelOperand(d, 10);
  const auto b = KernelOperand(d, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Dot(a.data(), b.data(), d));
  }
}
BENCHMARK(BM_VecDot)->Arg(64)->Arg(128);

void BM_VecDotScalarRef(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto a = KernelOperand(d, 10);
  const auto b = KernelOperand(d, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::ref::Dot(a.data(), b.data(), d));
  }
}
BENCHMARK(BM_VecDotScalarRef)->Arg(64)->Arg(128);

void BM_VecAxpy(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto x = KernelOperand(d, 12);
  auto y = KernelOperand(d, 13);
  for (auto _ : state) {
    vec::Axpy(0.25, x.data(), y.data(), d);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_VecAxpy)->Arg(64)->Arg(128);

void BM_VecFusedSgnsUpdate(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto v = KernelOperand(d, 14);
  auto u = KernelOperand(d, 15);
  std::vector<double> grad(d, 0.0);
  for (auto _ : state) {
    vec::FusedSgnsUpdate(0.5, 0.0125, v.data(), u.data(), grad.data(), d);
    benchmark::DoNotOptimize(u.data());
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_VecFusedSgnsUpdate)->Arg(64)->Arg(128);

// --- BENCH_kernels.json: hand-timed before/after per kernel ----------------

/// Times `fn` (one run = `d`-sized kernel call) and returns ns/call. The
/// repeat count targets a few milliseconds per measurement; the minimum of
/// several trials is reported — the standard microbenchmark estimator, since
/// scheduler preemption and frequency dips only ever inflate a trial.
template <typename Fn>
double TimeKernelNs(size_t iters, Fn&& fn) {
  // Warm up (first AVX2 call pays the dispatch branch + frequency ramp).
  for (size_t i = 0; i < iters / 16 + 1; ++i) fn();
  constexpr size_t kTrials = 5;
  const size_t per_trial = iters / kTrials + 1;
  double best_ns = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < kTrials; ++t) {
    WallTimer timer;
    for (size_t i = 0; i < per_trial; ++i) fn();
    best_ns = std::min(best_ns, timer.ElapsedSeconds() * 1e9 /
                                    static_cast<double>(per_trial));
  }
  return best_ns;
}

void AppendKernelEntries(const std::string& kernel, size_t d, double ref_ns,
                         double simd_ns,
                         std::vector<bench::BenchJsonEntry>* entries) {
  const std::string base = kernel + "_d" + std::to_string(d);
  entries->push_back({base + "_scalar", "latency", ref_ns, "ns/op"});
  entries->push_back({base + "_" + vec::IsaName(vec::ActiveIsa()), "latency",
                      simd_ns, "ns/op"});
  entries->push_back({base + "_speedup", "speedup_vs_scalar",
                      simd_ns > 0.0 ? ref_ns / simd_ns : 0.0, "x"});
}

/// Benchmarks every vec.h kernel against its scalar reference at the two
/// embedding dims the repo actually trains with, and dumps the results to
/// BENCH_kernels.json in the working directory.
void WriteKernelBenchJson() {
  std::vector<bench::BenchJsonEntry> entries;
  constexpr size_t kIters = 400000;
  for (size_t d : {size_t{64}, size_t{128}}) {
    const auto a = KernelOperand(d, 20);
    const auto b = KernelOperand(d, 21);
    auto y = KernelOperand(d, 22);
    std::vector<double> grad(d, 0.0);
    volatile double sink = 0.0;

    AppendKernelEntries(
        "dot", d,
        TimeKernelNs(kIters,
                     [&] { sink = vec::ref::Dot(a.data(), b.data(), d); }),
        TimeKernelNs(kIters, [&] { sink = vec::Dot(a.data(), b.data(), d); }),
        &entries);
    AppendKernelEntries(
        "axpy", d,
        TimeKernelNs(kIters,
                     [&] { vec::ref::Axpy(0.25, a.data(), y.data(), d); }),
        TimeKernelNs(kIters, [&] { vec::Axpy(0.25, a.data(), y.data(), d); }),
        &entries);
    AppendKernelEntries(
        "scaled_sub", d,
        TimeKernelNs(
            kIters, [&] { vec::ref::ScaledSub(y.data(), 0.25, a.data(), d); }),
        TimeKernelNs(kIters,
                     [&] { vec::ScaledSub(y.data(), 0.25, a.data(), d); }),
        &entries);
    AppendKernelEntries(
        "squared_distance", d,
        TimeKernelNs(
            kIters,
            [&] { sink = vec::ref::SquaredDistance(a.data(), b.data(), d); }),
        TimeKernelNs(
            kIters,
            [&] { sink = vec::SquaredDistance(a.data(), b.data(), d); }),
        &entries);
    AppendKernelEntries(
        "fused_sgns", d,
        TimeKernelNs(kIters,
                     [&] {
                       vec::ref::FusedSgnsUpdate(0.5, 0.0125, a.data(),
                                                 y.data(), grad.data(), d);
                     }),
        TimeKernelNs(kIters,
                     [&] {
                       vec::FusedSgnsUpdate(0.5, 0.0125, a.data(), y.data(),
                                            grad.data(), d);
                     }),
        &entries);
    (void)sink;
  }
  // Sigmoid: LUT (active whenever SIMD is) vs exact std::exp reference.
  {
    const auto xs = KernelOperand(256, 23);
    volatile double sink = 0.0;
    const double ref_ns = TimeKernelNs(40000, [&] {
      double acc = 0.0;
      for (double x : xs) acc += vec::ref::Sigmoid(8.0 * x);
      sink = acc;
    });
    const double lut_ns = TimeKernelNs(40000, [&] {
      double acc = 0.0;
      for (double x : xs) acc += vec::Sigmoid(8.0 * x);
      sink = acc;
    });
    (void)sink;
    AppendKernelEntries("sigmoid_x256", 1, ref_ns, lut_ns, &entries);
  }
  bench::WriteBenchJson("kernels", entries);
}

}  // namespace
}  // namespace transn

int main(int argc, char** argv) {
  std::printf("vector kernel ISA: %s\n",
              transn::vec::IsaName(transn::vec::ActiveIsa()));
  transn::WriteKernelBenchJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
