// Google-benchmark microbenchmarks for the hot primitives: alias sampling,
// biased correlated walk steps, SGNS pair updates, dense/sparse matmul, and
// translator forward+backward.

#include <benchmark/benchmark.h>

#include "core/translator.h"
#include "data/datasets.h"
#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "graph/view.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "walk/random_walk.h"

namespace transn {
namespace {

const HeteroGraph& BenchGraph() {
  static const HeteroGraph* g = new HeteroGraph(MakeAminerLike(0.3, 1));
  return *g;
}

void BM_AliasSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDouble(0.1, 5.0);
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 18);

void BM_BiasedCorrelatedWalk(benchmark::State& state) {
  static const std::vector<View>* views = [] {
    return new std::vector<View>(BuildViews(BenchGraph()));
  }();
  const View& view = (*views)[1];  // AP heter-view
  RandomWalker walker(&view.graph, view.is_heter,
                      {.walk_length = static_cast<size_t>(state.range(0))});
  Rng rng(2);
  size_t nodes = 0;
  for (auto _ : state) {
    auto walk = walker.Walk(
        static_cast<ViewGraph::LocalId>(rng.NextUint64(view.graph.num_nodes())),
        rng);
    nodes += walk.size();
    benchmark::DoNotOptimize(walk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes));
}
BENCHMARK(BM_BiasedCorrelatedWalk)->Arg(20)->Arg(80);

void BM_SgnsTrainPair(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(3);
  EmbeddingTable input(1000, dim, rng);
  EmbeddingTable context(1000, dim);
  std::vector<double> counts(1000, 1.0);
  NegativeSampler sampler(counts);
  SgnsTrainer trainer(&input, &context, &sampler, {.negatives = 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainPair(
        static_cast<uint32_t>(rng.NextUint64(1000)),
        static_cast<uint32_t>(rng.NextUint64(1000)), rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgnsTrainPair)->Arg(64)->Arg(128);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix a = GaussianInit(n, n, 1.0, rng);
  Matrix b = GaussianInit(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

void BM_SpMM(benchmark::State& state) {
  const HeteroGraph& g = BenchGraph();
  std::vector<std::tuple<size_t, size_t, double>> trip;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    trip.emplace_back(g.edge_u(e), g.edge_v(e), 1.0);
    trip.emplace_back(g.edge_v(e), g.edge_u(e), 1.0);
  }
  SparseMat s(g.num_nodes(), g.num_nodes(), trip);
  Rng rng(5);
  Matrix x = GaussianInit(g.num_nodes(), 64, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Multiply(x));
  }
}
BENCHMARK(BM_SpMM);

void BM_TranslatorForwardBackward(benchmark::State& state) {
  const size_t encoders = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Translator t(8, 64, encoders, false, rng);
  Matrix in = GaussianInit(8, 64, 1.0, rng);
  Matrix target = GaussianInit(8, 64, 1.0, rng);
  for (auto _ : state) {
    Tape tape;
    Var x = tape.Input(in, true);
    Var loss = RowCosineLoss(t.Apply(tape, x), tape.Input(target, false));
    tape.Backward(loss);
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_TranslatorForwardBackward)->Arg(1)->Arg(3)->Arg(6);

}  // namespace
}  // namespace transn

BENCHMARK_MAIN();
