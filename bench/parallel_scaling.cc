// Parallel scaling bench: single-view training throughput (pairs/sec and
// walks/sec) versus thread count on a synthetic HSBM network, reporting the
// speedup and parallel efficiency (speedup / threads) over the sequential
// (1-thread, bit-reproducible) path. Cross-view training is disabled to
// isolate the episodic block engine that TransNConfig::num_threads fans out
// across the thread pool (core/single_view.cc).
//
// The speedup_t*/efficiency_t* entries of BENCH_parallel_scaling.json feed
// scripts/check_bench_regression.py, whose floors scale with the recorded
// hardware_threads: on a machine with >= 8 hardware threads the 8-thread
// row must reach >= 4x the 1-thread pairs/sec; on smaller hosts the curve
// saturates at hardware concurrency and the gate relaxes accordingly.
//
//   TRANSN_BENCH_SCALE  scales the dataset (default 1.0)
//   TRANSN_BENCH_SEED   base seed (default 42)

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/transn.h"
#include "data/hsbm.h"
#include "util/string_util.h"
#include "util/vec.h"

namespace {

using namespace transn;
using namespace transn::bench;

HeteroGraph ScalingHsbm(double scale, uint64_t seed) {
  const auto n = [scale](size_t base) {
    return static_cast<size_t>(base * scale);
  };
  HsbmSpec spec;
  spec.node_types = {{"User", n(2000)}, {"Item", n(1000)}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = n(8000)},
      {.name = "UI",
       .type_a = 0,
       .type_b = 1,
       .num_edges = n(8000),
       .weighted = true},
  };
  spec.num_communities = 4;
  spec.labeled_type = 0;
  spec.seed = seed;
  return GenerateHsbm(spec);
}

/// One measured training run: total single-view pairs/sec over
/// `cfg.iterations` iterations at `threads` workers.
double MeasurePairsPerSec(const HeteroGraph& g, TransNConfig cfg,
                          size_t threads, size_t* pairs_out = nullptr,
                          size_t* walks_out = nullptr,
                          double* seconds_out = nullptr) {
  cfg.num_threads = threads;
  TransNModel model(&g, cfg);
  size_t pairs = 0;
  size_t walks = 0;
  double seconds = 0.0;
  for (size_t i = 0; i < cfg.iterations; ++i) {
    const TransNIterationStats stats = model.RunIteration();
    pairs += stats.single_view_pairs;
    walks += stats.single_view_walks;
    seconds += stats.single_view_seconds;
  }
  if (pairs_out != nullptr) *pairs_out = pairs;
  if (walks_out != nullptr) *walks_out = walks;
  if (seconds_out != nullptr) *seconds_out = seconds;
  return seconds > 0.0 ? pairs / seconds : 0.0;
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double scale = BenchScale();
  HeteroGraph g = ScalingHsbm(scale, BenchSeed());
  std::printf(
      "PARALLEL SCALING: single-view training throughput vs thread "
      "count\nHSBM network (scale %.2f): %zu nodes, %zu edges; hardware "
      "threads: %u; kernel ISA: %s\n\n",
      scale, g.num_nodes(), g.num_edges(),
      std::thread::hardware_concurrency(),
      vec::IsaName(vec::ActiveIsa()));

  TransNConfig base = BenchTransNConfig(BenchSeed());
  base.dim = 64;
  base.iterations = 2;
  base.walk.walk_length = 20;
  base.walk.min_walks_per_node = 2;
  base.walk.max_walks_per_node = 6;
  base.enable_cross_view = false;  // isolate the episodic SGNS hot path

  std::vector<BenchJsonEntry> json;
  TablePrinter table({"threads", "pairs", "seconds", "pairs/sec", "walks/sec",
                      "speedup vs 1 thread", "efficiency"});
  double base_pairs_per_sec = 0.0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    size_t pairs = 0;
    size_t walks = 0;
    double seconds = 0.0;
    const double pairs_per_sec =
        MeasurePairsPerSec(g, base, threads, &pairs, &walks, &seconds);
    const double walks_per_sec = seconds > 0.0 ? walks / seconds : 0.0;
    if (threads == 1) base_pairs_per_sec = pairs_per_sec;
    const double speedup =
        base_pairs_per_sec > 0.0 ? pairs_per_sec / base_pairs_per_sec : 0.0;
    const double efficiency = speedup / static_cast<double>(threads);
    table.AddRow({StrFormat("%zu", threads), StrFormat("%zu", pairs),
                  TablePrinter::Num(seconds, 3),
                  TablePrinter::Num(pairs_per_sec, 0),
                  TablePrinter::Num(walks_per_sec, 0),
                  TablePrinter::Num(speedup, 2),
                  TablePrinter::Num(efficiency, 2)});
    std::fprintf(stderr, "  threads=%zu: %.0f pairs/s (%.2fx, eff %.2f)\n",
                 threads, pairs_per_sec, speedup, efficiency);
    json.push_back({StrFormat("pairs_per_sec_t%zu", threads),
                    "pairs_per_second", pairs_per_sec, "pairs/s"});
    json.push_back({StrFormat("speedup_t%zu", threads), "speedup_vs_1_thread",
                    speedup, "x"});
    json.push_back({StrFormat("efficiency_t%zu", threads),
                    "parallel_efficiency", efficiency, "ratio"});
  }

  EmitTable(table, "parallel_scaling");
  std::printf(
      "\n1 thread is the exact sequential path (bit-reproducible from the "
      "seed); >1 threads run the episodic block engine — also "
      "bit-deterministic for a fixed (seed, threads, episode blocks), with "
      "concurrent workers owning disjoint embedding rows. Rows beyond the "
      "hardware thread count oversubscribe and plateau.\n");

  // --- Vector kernels on vs off (util/vec.h) -------------------------------
  // Same workload at 1 and hardware-concurrency threads, with the SIMD
  // kernels force-disabled and then re-enabled: the per-PR record of what
  // the kernel layer buys on top of thread scaling.
  const size_t hw = std::thread::hardware_concurrency() > 0
                        ? std::thread::hardware_concurrency()
                        : 1;
  std::printf("\nKERNELS ON vs OFF: pairs/sec with the vec.h SIMD kernels "
              "(isa %s) vs the scalar fallback\n\n",
              vec::IsaName(vec::BestIsa()));
  TablePrinter kernels_table(
      {"threads", "pairs/sec scalar", "pairs/sec simd", "kernel speedup"});
  const bool simd_was_enabled = vec::SimdEnabled();
  for (size_t threads : {size_t{1}, hw}) {
    vec::SetSimdEnabled(false);
    const double scalar_pps = MeasurePairsPerSec(g, base, threads);
    vec::SetSimdEnabled(true);
    const double simd_pps = MeasurePairsPerSec(g, base, threads);
    kernels_table.AddRow(
        {StrFormat("%zu", threads), TablePrinter::Num(scalar_pps, 0),
         TablePrinter::Num(simd_pps, 0),
         TablePrinter::Num(scalar_pps > 0.0 ? simd_pps / scalar_pps : 0.0,
                           2)});
    std::fprintf(stderr, "  threads=%zu: scalar %.0f, simd %.0f pairs/s\n",
                 threads, scalar_pps, simd_pps);
    json.push_back({StrFormat("pairs_per_sec_t%zu_scalar", threads),
                    "pairs_per_second", scalar_pps, "pairs/s"});
    json.push_back({StrFormat("pairs_per_sec_t%zu_simd", threads),
                    "pairs_per_second", simd_pps, "pairs/s"});
    json.push_back({StrFormat("kernel_speedup_t%zu", threads),
                    "speedup_vs_scalar",
                    scalar_pps > 0.0 ? simd_pps / scalar_pps : 0.0, "x"});
    if (threads == hw) break;  // hw may equal 1; don't measure twice
  }
  vec::SetSimdEnabled(simd_was_enabled);
  EmitTable(kernels_table, "parallel_scaling_kernels");
  WriteBenchJson("parallel_scaling", json);
  return 0;
}
