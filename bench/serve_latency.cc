// Google-benchmark coverage for the serving read path: exact and quantized
// k-NN scans (single-thread and sharded) over synthetic embedding tables,
// plus the end-to-end QueryServer batch loop against a real exported model,
// reporting items/s (QPS) and the server's own p50/p99 latency counters.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/transn.h"
#include "data/hsbm.h"
#include "nn/init.h"
#include "serve/embedding_store.h"
#include "serve/knn_index.h"
#include "serve/query_server.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace transn {
namespace {

constexpr size_t kDim = 64;

const Matrix& BaseTable(size_t rows) {
  static std::map<size_t, Matrix>* tables = new std::map<size_t, Matrix>();
  auto it = tables->find(rows);
  if (it == tables->end()) {
    Rng rng(rows);
    it = tables->emplace(rows, GaussianInit(rows, kDim, 1.0, rng)).first;
  }
  return it->second;
}

void BM_ExactScan(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const Matrix& base = BaseTable(rows);
  KnnIndex index(&base, {.metric = KnnMetric::kCosine});
  Rng rng(7);
  Matrix queries = GaussianInit(64, kDim, 1.0, rng);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(queries.Row(q % 64), 10));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());  // items/s == QPS
}
BENCHMARK(BM_ExactScan)->Arg(1 << 12)->Arg(1 << 16);

void BM_ExactScanSharded(benchmark::State& state) {
  const size_t rows = 1 << 16;
  const Matrix& base = BaseTable(rows);
  KnnIndex index(&base, {.metric = KnnMetric::kCosine});
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  Matrix queries = GaussianInit(64, kDim, 1.0, rng);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(queries.Row(q % 64), 10, &pool));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactScanSharded)->Arg(2)->Arg(4)->Arg(8);

void BM_QuantizedScan(benchmark::State& state) {
  const size_t rows = 1 << 16;
  const Matrix& base = BaseTable(rows);
  KnnIndexOptions opts;
  opts.metric = KnnMetric::kCosine;
  opts.num_centroids = 256;
  static KnnIndex* index = new KnnIndex(&base, opts);  // k-means built once
  Rng rng(7);
  Matrix queries = GaussianInit(64, kDim, 1.0, rng);
  const size_t nprobe = static_cast<size_t>(state.range(0));
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->SearchQuantized(queries.Row(q % 64), 10, nprobe));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantizedScan)->Arg(8)->Arg(32)->Arg(64);

/// A real exported model for the end-to-end path: HSBM-trained TransN,
/// written through ExportServingModel once and memory-loaded back.
const EmbeddingStore& BenchStore() {
  static const EmbeddingStore* store = [] {
    HsbmSpec spec;
    spec.node_types = {{"user", 600}, {"item", 300}};
    spec.edge_types = {
        {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 2400},
        {.name = "UI", .type_a = 0, .type_b = 1, .num_edges = 1800},
    };
    spec.num_communities = 4;
    spec.seed = 9;
    HeteroGraph g = GenerateHsbm(spec);
    TransNConfig cfg;
    cfg.dim = kDim;
    cfg.iterations = 1;
    cfg.walk.walk_length = 10;
    cfg.walk.min_walks_per_node = 2;
    cfg.walk.max_walks_per_node = 3;
    cfg.translator_encoders = 2;
    cfg.translator_seq_len = 4;
    cfg.cross_paths_per_pair = 10;
    cfg.seed = 13;
    TransNModel model(&g, cfg);
    model.Fit();
    const std::string path = "/tmp/transn_serve_latency_model.bin";
    CHECK(ExportServingModel(model, path).ok());
    auto loaded = EmbeddingStore::Load(path);
    CHECK(loaded.ok());
    std::remove(path.c_str());
    return new EmbeddingStore(std::move(loaded).value());
  }();
  return *store;
}

void BM_QueryServerBatch(benchmark::State& state) {
  const EmbeddingStore& store = BenchStore();
  QueryServerOptions opts;
  opts.k = 10;
  opts.num_threads = static_cast<size_t>(state.range(0));
  QueryServer server(&store, opts);
  std::vector<std::string> names;
  for (NodeId n = 0; n < store.num_nodes(); ++n) {
    names.push_back(store.node_name(n));
  }
  server.Warmup(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.HandleBatch(names));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() *
                                               names.size()));
  state.counters["qps"] = server.qps();
  state.counters["p50_ms"] = server.latency().Percentile(50) * 1e3;
  state.counters["p99_ms"] = server.latency().Percentile(99) * 1e3;
}
BENCHMARK(BM_QueryServerBatch)->Arg(1)->Arg(4);

void BM_ColdStartResolve(benchmark::State& state) {
  const EmbeddingStore& store = BenchStore();
  // View 0 ("UU") holds only users; any item node is a cold-start query.
  QueryServerOptions opts;
  opts.target_view = 0;
  opts.k = 10;
  QueryServer server(&store, opts);
  std::vector<std::string> items;
  for (NodeId n = 0; n < store.num_nodes(); ++n) {
    if (store.view(0).LocalOf(n) < 0) items.push_back(store.node_name(n));
  }
  CHECK(!items.empty());
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Handle(items[q % items.size()]));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["p99_ms"] = server.latency().Percentile(99) * 1e3;
}
BENCHMARK(BM_ColdStartResolve);

}  // namespace
}  // namespace transn

BENCHMARK_MAIN();
