// Reproduces Table II: statistics of the four heterogeneous network
// datasets (synthetic analogues; DESIGN.md §2.1).

#include <cstdio>

#include "bench_common.h"
#include "data/datasets.h"
#include "graph/graph_stats.h"
#include "util/string_util.h"

int main() {
  using namespace transn;
  using namespace transn::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  std::printf(
      "TABLE II analogue: Statistics of the synthetic heterogeneous "
      "networks (scale %.2f, seed %llu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()));

  TablePrinter table({"Dataset", "#Nodes", "#Edges",
                      "Node Types (#Nodes of Each Type)", "#Labeled Nodes",
                      "Edge Types (#Edges of Each Type)", "AvgDeg",
                      "Density"});
  uint64_t seed = BenchSeed();
  for (const std::string& name : DatasetNames()) {
    auto g = MakeDataset(name, BenchScale(), seed++);
    CHECK(g.ok()) << g.status().ToString();
    GraphStats s = ComputeStats(*g);
    table.AddRow({name, StrFormat("%zu", s.num_nodes),
                  StrFormat("%zu", s.num_edges),
                  FormatTypeCounts(s.nodes_per_type),
                  StrFormat("%s(%zu)", s.labeled_type.c_str(), s.num_labeled),
                  FormatTypeCounts(s.edges_per_type),
                  TablePrinter::Num(s.average_degree, 2),
                  StrFormat("%.2e", s.density)});
  }
  EmitTable(table, "table2_datasets");
  return 0;
}
