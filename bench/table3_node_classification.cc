// Reproduces Table III: node classification macro/micro-F1 for the eight
// methods on the four dataset analogues (90/10 stratified splits, logistic
// regression, 10 repeats — §IV-B1).

#include <cstdio>

#include "bench_common.h"
#include "data/datasets.h"
#include "eval/node_classification.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace transn;
  using namespace transn::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  std::printf(
      "TABLE III analogue: Results of the Node Classification Task "
      "(scale %.2f, seed %llu, d=%zu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()), kBenchDim);

  const std::vector<std::string> datasets = DatasetNames();
  std::vector<std::string> header = {"Method"};
  for (const std::string& d : datasets) {
    header.push_back(d + " Macro-F1");
    header.push_back(d + " Micro-F1");
  }
  TablePrinter table(header);

  // Generate each dataset once and share it across methods.
  std::vector<HeteroGraph> graphs;
  uint64_t seed = BenchSeed();
  for (const std::string& name : datasets) {
    auto g = MakeDataset(name, BenchScale(), seed++);
    CHECK(g.ok()) << g.status().ToString();
    graphs.push_back(std::move(g).value());
  }

  WallTimer total;
  for (const Method& method : PaperMethods()) {
    std::vector<std::string> row = {method.name};
    for (size_t d = 0; d < datasets.size(); ++d) {
      WallTimer timer;
      Matrix emb = method.run(graphs[d], datasets[d], BenchSeed() + 100 + d);
      NodeClassificationConfig eval;
      eval.repeats = 10;
      eval.seed = BenchSeed() + d;
      NodeClassificationResult res =
          EvaluateNodeClassification(graphs[d], emb, eval);
      row.push_back(TablePrinter::Num(res.macro_f1));
      row.push_back(TablePrinter::Num(res.micro_f1));
      std::fprintf(stderr, "  [%s / %s] macro=%.4f micro=%.4f (%.1fs)\n",
                   method.name.c_str(), datasets[d].c_str(), res.macro_f1,
                   res.micro_f1, timer.ElapsedSeconds());
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  EmitTable(table, "table3_node_classification");
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
