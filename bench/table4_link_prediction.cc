// Reproduces Table IV: link-prediction AUC for the eight methods on the
// four dataset analogues (40% edges removed, equal negatives, inner-product
// scores — §IV-B2).

#include <cstdio>

#include "bench_common.h"
#include "data/datasets.h"
#include "eval/link_prediction.h"
#include "util/timer.h"

int main() {
  using namespace transn;
  using namespace transn::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  std::printf(
      "TABLE IV analogue: AUC Scores of the Link Prediction Task "
      "(scale %.2f, seed %llu, d=%zu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()), kBenchDim);

  const std::vector<std::string> datasets = DatasetNames();
  std::vector<std::string> header = {"Method"};
  for (const std::string& d : datasets) header.push_back(d);
  TablePrinter table(header);

  // One link-prediction task per dataset, shared across methods.
  std::vector<LinkPredictionTask> tasks;
  uint64_t seed = BenchSeed();
  for (const std::string& name : datasets) {
    auto g = MakeDataset(name, BenchScale(), seed++);
    CHECK(g.ok()) << g.status().ToString();
    tasks.push_back(
        MakeLinkPredictionTask(*g, {.removal_fraction = 0.4,
                                    .seed = BenchSeed() + 7}));
  }

  WallTimer total;
  for (const Method& method : PaperMethods()) {
    std::vector<std::string> row = {method.name};
    for (size_t d = 0; d < datasets.size(); ++d) {
      WallTimer timer;
      Matrix emb =
          method.run(tasks[d].residual, datasets[d], BenchSeed() + 200 + d);
      double auc = ScoreLinkPrediction(emb, tasks[d]);
      row.push_back(TablePrinter::Num(auc));
      std::fprintf(stderr, "  [%s / %s] auc=%.4f (%.1fs)\n",
                   method.name.c_str(), datasets[d].c_str(), auc,
                   timer.ElapsedSeconds());
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  EmitTable(table, "table4_link_prediction");
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
