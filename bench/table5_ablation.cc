// Reproduces Table V: ablation study — five degenerate TransN variants vs
// the full framework on node classification (§IV-C).

#include <cstdio>

#include "bench_common.h"
#include "data/datasets.h"
#include "eval/node_classification.h"
#include "util/timer.h"

int main() {
  using namespace transn;
  using namespace transn::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  std::printf(
      "TABLE V analogue: Results of the Ablation Study on TransN "
      "(scale %.2f, seed %llu, d=%zu)\n\n",
      BenchScale(), static_cast<unsigned long long>(BenchSeed()), kBenchDim);

  const std::vector<std::string> datasets = DatasetNames();
  std::vector<std::string> header = {"Method"};
  for (const std::string& d : datasets) {
    header.push_back(d + " Macro-F1");
    header.push_back(d + " Micro-F1");
  }
  TablePrinter table(header);

  std::vector<HeteroGraph> graphs;
  uint64_t seed = BenchSeed();
  for (const std::string& name : datasets) {
    auto g = MakeDataset(name, BenchScale(), seed++);
    CHECK(g.ok()) << g.status().ToString();
    graphs.push_back(std::move(g).value());
  }

  WallTimer total;
  for (const Method& method : AblationMethods()) {
    std::vector<std::string> row = {method.name};
    for (size_t d = 0; d < datasets.size(); ++d) {
      WallTimer timer;
      Matrix emb = method.run(graphs[d], datasets[d], BenchSeed() + 100 + d);
      NodeClassificationConfig eval;
      eval.repeats = 10;
      eval.seed = BenchSeed() + d;
      NodeClassificationResult res =
          EvaluateNodeClassification(graphs[d], emb, eval);
      row.push_back(TablePrinter::Num(res.macro_f1));
      row.push_back(TablePrinter::Num(res.micro_f1));
      std::fprintf(stderr, "  [%s / %s] macro=%.4f micro=%.4f (%.1fs)\n",
                   method.name.c_str(), datasets[d].c_str(), res.macro_f1,
                   res.micro_f1, timer.ElapsedSeconds());
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  EmitTable(table, "table5_ablation");
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
