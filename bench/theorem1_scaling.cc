// Empirically validates Theorem 1's complexity shape,
//   O(δTρ(z+z') + dTρ(z log μ + z' H ρ)),
// by timing one Algorithm-1 iteration while sweeping one factor at a time
// (walk budget T via walks-per-node, walk length ρ, dimension d, encoder
// count H). Each sweep reports wall time and the ratio to the smallest
// setting; the expected growth is near-linear in T, d and H, and
// super-linear (between linear and quadratic) in ρ because of the
// translator's ρ-quadratic term.

#include <cstdio>

#include "bench_common.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace transn;
using namespace transn::bench;

double TimeOneIteration(const HeteroGraph& g, const TransNConfig& cfg) {
  TransNModel model(&g, cfg);
  WallTimer timer;
  model.RunIteration();
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  std::printf(
      "THEOREM 1 check: wall time of one Algorithm-1 iteration vs each "
      "complexity factor (AMiner analogue, scale %.2f)\n\n",
      0.3 * BenchScale());

  HeteroGraph g = MakeAminerLike(0.3 * BenchScale(), BenchSeed());
  TransNConfig base = BenchTransNConfig(BenchSeed());
  base.dim = 32;
  base.iterations = 1;
  base.walk.walk_length = 10;
  base.walk.min_walks_per_node = 2;
  base.walk.max_walks_per_node = 2;
  base.translator_encoders = 1;
  base.translator_seq_len = 4;
  base.cross_paths_per_pair = 40;

  TablePrinter table({"factor", "value", "seconds", "ratio vs min"});
  auto sweep = [&](const std::string& factor, std::vector<size_t> values,
                   const std::function<void(TransNConfig&, size_t)>& apply) {
    double first = -1.0;
    for (size_t v : values) {
      TransNConfig cfg = base;
      apply(cfg, v);
      const double secs = TimeOneIteration(g, cfg);
      if (first < 0) first = secs;
      table.AddRow({factor, StrFormat("%zu", v), TablePrinter::Num(secs, 3),
                    TablePrinter::Num(secs / first, 2)});
      std::fprintf(stderr, "  %s=%zu: %.3fs\n", factor.c_str(), v, secs);
    }
  };

  sweep("T (walks per node)", {2, 4, 8},
        [](TransNConfig& c, size_t v) {
          c.walk.min_walks_per_node = v;
          c.walk.max_walks_per_node = v;
        });
  sweep("rho (walk length)", {10, 20, 40},
        [](TransNConfig& c, size_t v) { c.walk.walk_length = v; });
  sweep("d (dimensions)", {16, 32, 64},
        [](TransNConfig& c, size_t v) { c.dim = v; });
  sweep("H (encoders)", {1, 2, 4},
        [](TransNConfig& c, size_t v) { c.translator_encoders = v; });
  sweep("L (translator path len)", {4, 8, 16},
        [](TransNConfig& c, size_t v) { c.translator_seq_len = v; });

  std::printf("\n");
  EmitTable(table, "theorem1_scaling");
  std::printf(
      "\nExpected shape per Theorem 1: ~linear in T, d, H; the rho sweep "
      "mixes the linear single-view term with the translator's "
      "rho-quadratic term; L enters the cross-view term quadratically "
      "through the L x L feed-forward weights.\n");
  return 0;
}
