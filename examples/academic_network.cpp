// Academic-network walkthrough: generate the AMiner-like dataset, train
// TransN and a homogeneous baseline, and compare them on paper-topic
// classification (the paper's Table III protocol at example scale).
//
//   ./academic_network [scale]      (default scale 0.2)

#include <cstdio>
#include <cstdlib>

#include "baselines/node2vec.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "eval/node_classification.h"
#include "graph/graph_stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace transn;
  SetMinLogSeverity(LogSeverity::kWarning);

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  HeteroGraph g = MakeAminerLike(scale, /*seed=*/1);
  GraphStats stats = ComputeStats(g);
  std::printf("AMiner-like network (scale %.2f):\n", scale);
  std::printf("  nodes: %s\n", FormatTypeCounts(stats.nodes_per_type).c_str());
  std::printf("  edges: %s\n", FormatTypeCounts(stats.edges_per_type).c_str());
  std::printf("  labeled papers: %zu (topics: %d)\n\n", stats.num_labeled,
              g.num_labels());

  // --- TransN ---
  TransNConfig cfg;
  cfg.dim = 48;
  cfg.iterations = 4;
  cfg.walk.walk_length = 20;
  cfg.walk.min_walks_per_node = 3;
  cfg.walk.max_walks_per_node = 8;
  cfg.translator_encoders = 3;
  cfg.translator_seq_len = 8;
  cfg.cross_paths_per_pair = 60;
  cfg.seed = 11;
  // 0 = Hogwild training on all hardware threads. Set to 1 for the exact
  // (bit-reproducible) sequential path.
  cfg.num_threads = 0;

  WallTimer timer;
  TransNModel model(&g, cfg);
  model.Fit();
  Matrix transn_emb = model.FinalEmbeddings();
  std::printf("TransN trained in %.1fs (%zu views, %zu view-pairs)\n",
              timer.ElapsedSeconds(), model.views().size(),
              model.view_pairs().size());

  // --- Node2Vec baseline (type-blind) ---
  timer.Restart();
  Node2VecBaselineConfig n2v;
  n2v.dim = 48;
  n2v.walk = {.p = 1.0, .q = 1.0, .walk_length = 20, .walks_per_node = 6};
  n2v.window = 4;
  n2v.epochs = 2;
  n2v.seed = 12;
  Matrix n2v_emb = RunNode2Vec(g, n2v);
  std::printf("Node2Vec trained in %.1fs\n\n", timer.ElapsedSeconds());

  // --- Evaluate: 90/10 stratified splits, logistic regression, 10 repeats.
  NodeClassificationConfig eval;
  eval.repeats = 10;
  auto transn_res = EvaluateNodeClassification(g, transn_emb, eval);
  auto n2v_res = EvaluateNodeClassification(g, n2v_emb, eval);

  std::printf("Paper-topic classification (10 repeats):\n");
  std::printf("  %-10s macro-F1 %.4f +/- %.4f   micro-F1 %.4f +/- %.4f\n",
              "TransN", transn_res.macro_f1, transn_res.macro_f1_stddev,
              transn_res.micro_f1, transn_res.micro_f1_stddev);
  std::printf("  %-10s macro-F1 %.4f +/- %.4f   micro-F1 %.4f +/- %.4f\n",
              "Node2Vec", n2v_res.macro_f1, n2v_res.macro_f1_stddev,
              n2v_res.micro_f1, n2v_res.micro_f1_stddev);
  std::printf("\nTransN %s the type-blind baseline.\n",
              transn_res.micro_f1 > n2v_res.micro_f1 ? "beats" : "trails");
  return 0;
}
