// Applet recommendation: train TransN on the App-Daily-like network with
// 40% of the usage edges held out, then recommend applets to users by
// embedding inner product — the paper's link-prediction protocol (Table IV)
// turned into a top-k recommender.
//
//   ./app_recommendation [scale]    (default scale 0.1)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/transn.h"
#include "data/datasets.h"
#include "eval/link_prediction.h"
#include "util/timer.h"
#include "util/vec.h"

int main(int argc, char** argv) {
  using namespace transn;
  SetMinLogSeverity(LogSeverity::kWarning);

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  HeteroGraph g = MakeAppDailyLike(scale, /*seed=*/2);
  std::printf("App-Daily-like network (scale %.2f): %zu nodes, %zu edges\n",
              scale, g.num_nodes(), g.num_edges());

  // Hold out 40% of the edges (the paper's protocol).
  LinkPredictionTask task = MakeLinkPredictionTask(g, {.seed = 3});
  std::printf("Held out %zu edges; %zu remain for training\n\n",
              task.positives.size(), task.residual.num_edges());

  TransNConfig cfg;
  cfg.dim = 48;
  cfg.iterations = 3;
  cfg.walk.walk_length = 20;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 6;
  cfg.translator_encoders = 3;
  cfg.translator_seq_len = 8;
  cfg.cross_paths_per_pair = 60;
  cfg.seed = 4;

  WallTimer timer;
  TransNModel model(&task.residual, cfg);
  model.Fit();
  Matrix emb = model.FinalEmbeddings();
  std::printf("TransN trained in %.1fs\n", timer.ElapsedSeconds());

  double auc = ScoreLinkPrediction(emb, task);
  std::printf("Held-out usage-edge AUC: %.4f\n\n", auc);

  // Recommend top-5 unseen applets for a few users.
  std::vector<NodeId> users, applets;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.node_type_name(g.node_type(n)) == "User") users.push_back(n);
    if (g.node_type_name(g.node_type(n)) == "Applet") applets.push_back(n);
  }
  for (size_t k = 0; k < 3 && k < users.size(); ++k) {
    NodeId user = users[k * 7];
    std::vector<std::pair<double, NodeId>> scored;
    for (NodeId applet : applets) {
      if (task.residual.HasEdge(user, applet)) continue;  // already used
      scored.push_back(
          {vec::Dot(emb.Row(user), emb.Row(applet), emb.cols()), applet});
    }
    std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("Top applets for %s:", g.node_name(user).c_str());
    for (int i = 0; i < 5; ++i) {
      bool held_out = g.HasEdge(user, scored[i].second);
      std::printf(" %s%s", g.node_name(scored[i].second).c_str(),
                  held_out ? "*" : "");
    }
    std::printf("   (* = actually used, edge was held out)\n");
  }
  return 0;
}
