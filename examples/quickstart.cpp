// Quickstart: build a small heterogeneous network by hand, train TransN,
// and inspect the learned embeddings via nearest neighbors.
//
//   ./quickstart

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/transn.h"
#include "graph/hetero_graph.h"
#include "util/vec.h"

namespace {

using namespace transn;  // example code; the library itself never does this

// A toy review network: users befriend users and rate restaurants.
// Users 0-4 are "vegetarians", users 5-9 are "barbecue fans"; restaurants
// v0/v1 are vegetarian, b0/b1 are barbecue joints.
HeteroGraph BuildToyNetwork() {
  HeteroGraphBuilder b;
  NodeTypeId user = b.AddNodeType("User");
  NodeTypeId restaurant = b.AddNodeType("Restaurant");
  EdgeTypeId friendship = b.AddEdgeType("friendship");
  EdgeTypeId rating = b.AddEdgeType("rating");

  std::vector<NodeId> users;
  for (int i = 0; i < 10; ++i) {
    users.push_back(b.AddNode(user, "user" + std::to_string(i)));
  }
  NodeId veg0 = b.AddNode(restaurant, "veggie_garden");
  NodeId veg1 = b.AddNode(restaurant, "green_bowl");
  NodeId bbq0 = b.AddNode(restaurant, "smoke_house");
  NodeId bbq1 = b.AddNode(restaurant, "rib_shack");

  // Friendships mostly within each taste community.
  for (int i = 0; i < 5; ++i) {
    b.AddEdge(users[i], users[(i + 1) % 5], friendship);
    b.AddEdge(users[5 + i], users[5 + (i + 1) % 5], friendship);
  }
  b.AddEdge(users[0], users[5], friendship);  // one cross-community tie

  // Ratings: weight = stars (1-5).
  for (int i = 0; i < 5; ++i) {
    b.AddEdge(users[i], i % 2 == 0 ? veg0 : veg1, rating, 5.0);
    b.AddEdge(users[i], i % 2 == 0 ? bbq0 : bbq1, rating, 1.0);
    b.AddEdge(users[5 + i], i % 2 == 0 ? bbq0 : bbq1, rating, 5.0);
    b.AddEdge(users[5 + i], i % 2 == 0 ? veg0 : veg1, rating, 2.0);
  }
  return b.Build();
}

double Cosine(const Matrix& emb, NodeId a, NodeId b) {
  double ab = vec::Dot(emb.Row(a), emb.Row(b), emb.cols());
  double aa = vec::Dot(emb.Row(a), emb.Row(a), emb.cols());
  double bb = vec::Dot(emb.Row(b), emb.Row(b), emb.cols());
  return ab / std::sqrt(std::max(aa * bb, 1e-30));
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  HeteroGraph g = BuildToyNetwork();
  std::printf("Toy network: %zu nodes, %zu edges, %zu views\n", g.num_nodes(),
              g.num_edges(), g.num_edge_types());

  // Configure TransN at toy scale: everything else is the paper default.
  TransNConfig cfg;
  cfg.dim = 32;
  cfg.iterations = 6;
  cfg.walk.walk_length = 12;
  cfg.walk.min_walks_per_node = 4;
  cfg.walk.max_walks_per_node = 8;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 40;
  cfg.seed = 7;
  // num_threads = 1 (the default) keeps this run bit-reproducible from the
  // seed; set 0 (all cores) or >1 for Hogwild parallel training on larger
  // graphs — statistically equivalent, not bit-identical.
  cfg.num_threads = 1;

  TransNModel model(&g, cfg);
  model.Fit();
  Matrix emb = model.FinalEmbeddings();

  // Nearest neighbors of user0 (a vegetarian) among all users.
  std::printf("\nNearest users to %s by cosine similarity:\n",
              g.node_name(0).c_str());
  std::vector<std::pair<double, NodeId>> ranked;
  for (NodeId u = 1; u < 10; ++u) ranked.push_back({Cosine(emb, 0, u), u});
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [score, u] : ranked) {
    std::printf("  %-8s %+.3f  (%s)\n", g.node_name(u).c_str(), score,
                u < 5 ? "vegetarian" : "barbecue fan");
  }

  double intra = 0, inter = 0;
  for (NodeId u = 1; u < 5; ++u) intra += Cosine(emb, 0, u);
  for (NodeId u = 5; u < 10; ++u) inter += Cosine(emb, 0, u);
  std::printf(
      "\nMean similarity to same-taste users: %.3f, other-taste: %.3f\n",
      intra / 4, inter / 5);
  std::printf("TransN placed user0 closer to its own community: %s\n",
              intra / 4 > inter / 5 ? "yes" : "no");
  return 0;
}
