// View translation demo: after training TransN on the BLOG-like network,
// push common nodes' friendship-view embeddings through the learned
// translator T_{friendship->keyword-usage} and verify that each node's
// translated embedding lands nearer its own keyword-view embedding than
// other nodes' (the dual-learning objective of §III-B in action).
//
//   ./view_translation [scale]      (default scale 0.05)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/transn.h"
#include "data/datasets.h"
#include "util/vec.h"

namespace {

using namespace transn;

double RowCosine(const Matrix& a, size_t ra, const Matrix& b, size_t rb) {
  double ab = vec::Dot(a.Row(ra), b.Row(rb), a.cols());
  double aa = vec::Dot(a.Row(ra), a.Row(ra), a.cols());
  double bb = vec::Dot(b.Row(rb), b.Row(rb), b.cols());
  return ab / std::sqrt(std::max(aa * bb, 1e-30));
}

}  // namespace

int main(int argc, char** argv) {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  HeteroGraph g = MakeBlogLike(scale, /*seed=*/5);
  std::printf("BLOG-like network (scale %.2f): %zu nodes, %zu edges\n", scale,
              g.num_nodes(), g.num_edges());

  TransNConfig cfg;
  cfg.dim = 32;
  cfg.iterations = 6;
  cfg.walk.walk_length = 15;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 6;
  cfg.translator_encoders = 3;
  cfg.translator_seq_len = 6;
  cfg.cross_paths_per_pair = 200;
  cfg.seed = 6;

  TransNModel model(&g, cfg);
  model.Fit();

  // Find the (UU, UK) cross-view trainer.
  CrossViewTrainer* cross_ptr = nullptr;
  for (size_t t = 0; t < model.num_cross_trainers(); ++t) {
    CrossViewTrainer& candidate = model.cross_view_trainer(t);
    const ViewPair& pr = candidate.pair();
    if (g.edge_type_name(model.views()[pr.view_i].edge_type) == "UU" &&
        g.edge_type_name(model.views()[pr.view_j].edge_type) == "UK") {
      cross_ptr = &candidate;
      break;
    }
  }
  if (cross_ptr == nullptr) {
    std::printf("no UU/UK view pair found\n");
    return 1;
  }
  CrossViewTrainer& cross = *cross_ptr;
  const ViewPair& pair = cross.pair();
  std::printf("View pair UU/UK shares %zu users\n\n",
              pair.common_nodes.size());

  // Translate a block of common users and rank targets.
  const size_t len = cfg.translator_seq_len;
  size_t better = 0, total = 0;
  for (size_t start = 0; start + len <= pair.common_nodes.size() && total < 60;
       start += len) {
    // Gather the block's UU-view embeddings.
    Matrix a(len, cfg.dim);
    Matrix target(len, cfg.dim);
    for (size_t k = 0; k < len; ++k) {
      NodeId node = pair.common_nodes[start + k];
      std::vector<double> src = model.ViewEmbedding(pair.view_i, node);
      std::vector<double> dst = model.ViewEmbedding(pair.view_j, node);
      for (size_t c = 0; c < cfg.dim; ++c) {
        a(k, c) = src[c];
        target(k, c) = dst[c];
      }
    }
    Matrix translated = cross.translator_ij().Forward(a);
    for (size_t k = 0; k < len; ++k) {
      // Does translation move the friendship-view embedding closer to the
      // node's keyword-view embedding than it already was?
      double after = RowCosine(translated, k, target, k);
      double before = RowCosine(a, k, target, k);
      better += after > before;
      ++total;
    }
  }
  std::printf(
      "Translating moved the friendship-view embedding closer to the same\n"
      "node's keyword-view embedding in %zu/%zu cases (%.0f%%).\n",
      better, total, 100.0 * better / std::max<size_t>(total, 1));
  std::printf("Dual-learning translation %s the cross-view correspondence.\n",
              2 * better > total ? "learned" : "did not learn");
  return 0;
}
