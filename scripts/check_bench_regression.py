#!/usr/bin/env python3
"""CI gate on BENCH_parallel_scaling.json: parallel speedup must not regress.

Usage:
    scripts/check_bench_regression.py [BENCH_parallel_scaling.json]

Reads the bench dump produced by bench/parallel_scaling (schema
transn-bench-v1) and fails (exit 1) when the measured t8/t1 (or the largest
available tN/t1) speedup falls below the committed floor for the machine
class that produced the numbers.

The floors scale with the "hardware_threads" field recorded in the dump,
because a small CI runner physically cannot demonstrate a large speedup:

    hardware_threads >= 8  ->  speedup_t8 >= 4.0   (the PR target)
    hardware_threads >= 4  ->  speedup_t4 >= 2.0
    hardware_threads >= 2  ->  speedup_t2 >= 1.2
    hardware_threads <  2  ->  speedup_t8 >= 0.7   (no-regression bound:
        oversubscribing one core must not collapse throughput)

Dumps that predate the hardware_threads field are rejected: regenerate the
JSON with the current bench binary so the gate knows the machine class.
"""

import json
import sys

# (min hardware threads, thread count to check, speedup floor)
FLOORS = [
    (8, 8, 4.0),
    (4, 4, 2.0),
    (2, 2, 1.2),
    (0, 8, 0.7),
]


def fail(msg: str) -> None:
    print(f"check_bench_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_parallel_scaling.json"
    try:
        with open(path, encoding="utf-8") as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    if dump.get("schema") != "transn-bench-v1":
        fail(f"{path}: unexpected schema {dump.get('schema')!r}")
    hardware = dump.get("hardware_threads")
    if not isinstance(hardware, int) or hardware < 0:
        fail(
            f"{path}: missing hardware_threads field — regenerate the dump "
            "with the current bench/parallel_scaling binary"
        )
    benches = dump.get("benches", {})

    def value(name: str) -> float:
        entry = benches.get(name)
        if not isinstance(entry, dict) or "value" not in entry:
            fail(f"{path}: missing bench entry {name!r}")
        return float(entry["value"])

    t1 = value("pairs_per_sec_t1")
    if t1 <= 0.0:
        fail(f"{path}: pairs_per_sec_t1 is {t1}; bench did not run")

    for min_hw, threads, floor in FLOORS:
        if hardware >= min_hw:
            break
    speedup_name = f"speedup_t{threads}"
    if speedup_name in benches:
        speedup = value(speedup_name)
    else:
        # Fall back to the raw pairs/sec ratio for dumps whose bench binary
        # predates the explicit speedup entries.
        speedup = value(f"pairs_per_sec_t{threads}") / t1

    print(
        f"check_bench_regression: hardware_threads={hardware} -> "
        f"checking t{threads}/t1 speedup {speedup:.2f}x against floor "
        f"{floor:.1f}x"
    )
    if speedup < floor:
        fail(
            f"t{threads}/t1 speedup {speedup:.2f}x is below the committed "
            f"floor {floor:.1f}x for a {hardware}-thread machine "
            "(bench/parallel_scaling regressed, or the dump was produced on "
            "a loaded machine — rerun on a quiet runner)"
        )
    print("check_bench_regression: OK")


if __name__ == "__main__":
    main()
