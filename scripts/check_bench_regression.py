#!/usr/bin/env python3
"""CI gate on transn-bench-v1 dumps: committed perf floors must not regress.

Usage:
    scripts/check_bench_regression.py [BENCH_*.json ...]

With no arguments, checks BENCH_parallel_scaling.json. Each dump is
dispatched on its "bench" field:

parallel_scaling — the measured t8/t1 (or the largest available tN/t1)
speedup must stay above the committed floor for the machine class that
produced the numbers. The floors scale with the recorded
"hardware_threads", because a small CI runner physically cannot demonstrate
a large speedup:

    hardware_threads >= 8  ->  speedup_t8 >= 4.0   (the PR target)
    hardware_threads >= 4  ->  speedup_t4 >= 2.0
    hardware_threads >= 2  ->  speedup_t2 >= 1.2
    hardware_threads <  2  ->  speedup_t8 >= 0.7   (no-regression bound:
        oversubscribing one core must not collapse throughput)

serve_load — the HTTP serving stack (bench/load_gen) must sustain traffic
with a zero error budget:

    closed/open-loop non-2xx == 0 and zero failed hot reloads (>= 1 reload
    must have fired mid-run), the overload phase must reject with 429 only,
    the open-loop achieved/target QPS ratio must reach 0.9, open-loop p99
    must stay under 250 ms, and the closed-loop QPS must clear a
    hardware-aware floor:

    hardware_threads >= 8  ->  closed_loop_qps >= 4000
    hardware_threads >= 4  ->  closed_loop_qps >= 2000
    hardware_threads >= 2  ->  closed_loop_qps >= 1000
    hardware_threads <  2  ->  closed_loop_qps >=  500

ann_frontier — the HNSW-style graph index (bench/ann_frontier) must hold
recall@10 >= 0.95 at its default operating point (ef=128) at every scale,
and its speedup over the exact scan must clear a floor that grows with the
table size (the graph's O(log N) advantage over the O(N) scan is only
demonstrable on a large table; small CI scales just prove no regression):

    num_nodes >= 1,000,000  ->  speedup_vs_exact >= 10.0  (the PR target)
    num_nodes >=   200,000  ->  speedup_vs_exact >=  3.0
    num_nodes >=    50,000  ->  speedup_vs_exact >=  1.5
    num_nodes <     50,000  ->  speedup_vs_exact >=  1.0

When the dump carries build-scaling entries (build_speedup_tN, emitted by
the current bench binary), the parallel graph build must also clear a
hardware-aware scaling floor — same machine-class logic as
parallel_scaling, since a small runner physically cannot demonstrate a
large build speedup (the bench itself CHECKs that every thread count
produced byte-identical output, so the gate only has to police speed):

    hardware_threads >= 8  ->  build_speedup_t8 >= 3.0   (the PR target)
    hardware_threads >= 4  ->  build_speedup_t4 >= 2.0
    hardware_threads >= 2  ->  build_speedup_t2 >= 1.2
    hardware_threads <  2  ->  build_speedup_t8 >= 0.7   (no-collapse bound:
        oversubscribing one core must not collapse build throughput)

chaos_soak — the deterministic chaos soak (bench/chaos_soak) must show the
serving stack degrading gracefully and recovering:

    every non-2xx response is a 429 or 503 (other_http == 0), transport
    errors only ever happen in fault phases (transport_errors_clean == 0),
    /healthz returned to fully healthy within 5 s of the last fault
    (recovered_healthz == 1, recovery_seconds <= 5), the fault schedule
    actually fired (faults_injected >= 1), at least one hot reload succeeded
    and at least one injected reload failure exercised the stale-model path,
    a majority of all requests still succeeded under chaos, and p99 in the
    two clean phases (baseline, recovery) stays under the serving ceiling
    (250 ms).

Dumps that predate the hardware_threads field are rejected: regenerate the
JSON with the current bench binary so the gate knows the machine class.
"""

import json
import sys

# (min hardware threads, thread count to check, speedup floor)
SCALING_FLOORS = [
    (8, 8, 4.0),
    (4, 4, 2.0),
    (2, 2, 1.2),
    (0, 8, 0.7),
]

# (min hardware threads, closed-loop QPS floor)
SERVE_QPS_FLOORS = [
    (8, 4000.0),
    (4, 2000.0),
    (2, 1000.0),
    (0, 500.0),
]

SERVE_OPEN_LOOP_MIN_RATIO = 0.9
SERVE_OPEN_LOOP_MAX_P99_MS = 250.0

ANN_MIN_RECALL_AT_10 = 0.95
# (min table rows, speedup-vs-exact floor at ef=128)
ANN_SPEEDUP_FLOORS = [
    (1_000_000, 10.0),
    (200_000, 3.0),
    (50_000, 1.5),
    (0, 1.0),
]

# (min hardware threads, thread count to check, build speedup floor) for the
# parallel graph build — mirrors SCALING_FLOORS.
ANN_BUILD_FLOORS = [
    (8, 8, 3.0),
    (4, 4, 2.0),
    (2, 2, 1.2),
    (0, 8, 0.7),
]


def fail(msg: str) -> None:
    print(f"check_bench_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_dump(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if dump.get("schema") != "transn-bench-v1":
        fail(f"{path}: unexpected schema {dump.get('schema')!r}")
    hardware = dump.get("hardware_threads")
    if not isinstance(hardware, int) or hardware < 0:
        fail(
            f"{path}: missing hardware_threads field — regenerate the dump "
            "with the current bench binary"
        )
    return dump


def bench_value(path: str, dump: dict, name: str) -> float:
    entry = dump.get("benches", {}).get(name)
    if not isinstance(entry, dict) or "value" not in entry:
        fail(f"{path}: missing bench entry {name!r}")
    return float(entry["value"])


def check_parallel_scaling(path: str, dump: dict) -> None:
    hardware = dump["hardware_threads"]
    benches = dump.get("benches", {})

    t1 = bench_value(path, dump, "pairs_per_sec_t1")
    if t1 <= 0.0:
        fail(f"{path}: pairs_per_sec_t1 is {t1}; bench did not run")

    for min_hw, threads, floor in SCALING_FLOORS:
        if hardware >= min_hw:
            break
    speedup_name = f"speedup_t{threads}"
    if speedup_name in benches:
        speedup = bench_value(path, dump, speedup_name)
    else:
        # Fall back to the raw pairs/sec ratio for dumps whose bench binary
        # predates the explicit speedup entries.
        speedup = bench_value(path, dump, f"pairs_per_sec_t{threads}") / t1

    print(
        f"check_bench_regression: hardware_threads={hardware} -> "
        f"checking t{threads}/t1 speedup {speedup:.2f}x against floor "
        f"{floor:.1f}x"
    )
    if speedup < floor:
        fail(
            f"t{threads}/t1 speedup {speedup:.2f}x is below the committed "
            f"floor {floor:.1f}x for a {hardware}-thread machine "
            "(bench/parallel_scaling regressed, or the dump was produced on "
            "a loaded machine — rerun on a quiet runner)"
        )


def check_serve_load(path: str, dump: dict) -> None:
    hardware = dump["hardware_threads"]

    # Error budget: zero non-2xx in both load phases, zero failed reloads.
    for name in ("closed_loop_non_2xx", "open_loop_non_2xx", "reloads_failed",
                 "overload_other"):
        v = bench_value(path, dump, name)
        if v != 0.0:
            fail(f"{path}: {name} is {v:g}; the serving error budget is zero")
    if bench_value(path, dump, "reloads_ok") < 1.0:
        fail(f"{path}: no hot reload fired during the open-loop phase")
    if bench_value(path, dump, "overload_429") < 1.0:
        fail(f"{path}: overload phase produced no 429 rejections")
    if (bench_value(path, dump, "overload_retry_after")
            != bench_value(path, dump, "overload_429")):
        fail(f"{path}: some 429 responses lacked the Retry-After header")

    ratio = bench_value(path, dump, "open_loop_achieved_ratio")
    if ratio < SERVE_OPEN_LOOP_MIN_RATIO:
        fail(
            f"{path}: open-loop achieved/target QPS ratio {ratio:.3f} is "
            f"below {SERVE_OPEN_LOOP_MIN_RATIO} — the server cannot sustain "
            "the target arrival rate"
        )
    p99_ms = bench_value(path, dump, "open_loop_p99_ms")
    if p99_ms > SERVE_OPEN_LOOP_MAX_P99_MS:
        fail(
            f"{path}: open-loop p99 {p99_ms:.1f} ms exceeds the "
            f"{SERVE_OPEN_LOOP_MAX_P99_MS:.0f} ms ceiling"
        )

    for min_hw, qps_floor in SERVE_QPS_FLOORS:
        if hardware >= min_hw:
            break
    qps = bench_value(path, dump, "closed_loop_qps")
    print(
        f"check_bench_regression: hardware_threads={hardware} -> "
        f"closed-loop {qps:.0f} req/s against floor {qps_floor:.0f}, "
        f"open-loop ratio {ratio:.3f}, p99 {p99_ms:.2f} ms"
    )
    if qps < qps_floor:
        fail(
            f"{path}: closed-loop QPS {qps:.0f} is below the committed floor "
            f"{qps_floor:.0f} for a {hardware}-thread machine "
            "(the serving hot path regressed, or the dump was produced on a "
            "loaded machine — rerun on a quiet runner)"
        )


def check_ann_frontier(path: str, dump: dict) -> None:
    num_nodes = bench_value(path, dump, "num_nodes")
    recall = bench_value(path, dump, "recall_at_10")
    speedup = bench_value(path, dump, "speedup_vs_exact")

    if recall < ANN_MIN_RECALL_AT_10:
        fail(
            f"{path}: ANN recall@10 {recall:.4f} is below the "
            f"{ANN_MIN_RECALL_AT_10} floor at ef=128 — the graph build or "
            "neighbor-selection heuristic regressed"
        )
    for min_nodes, floor in ANN_SPEEDUP_FLOORS:
        if num_nodes >= min_nodes:
            break
    print(
        f"check_bench_regression: num_nodes={num_nodes:.0f} -> checking "
        f"ANN speedup {speedup:.1f}x against floor {floor:.1f}x "
        f"(recall@10 {recall:.4f})"
    )
    if speedup < floor:
        fail(
            f"{path}: ANN speedup over the exact scan {speedup:.1f}x is "
            f"below the committed floor {floor:.1f}x for a "
            f"{num_nodes:.0f}-row table (the graph search regressed, or the "
            "dump was produced on a loaded machine — rerun on a quiet runner)"
        )

    # Build-scaling gate: only for dumps from a bench binary that emits the
    # build_speedup_tN entries (older committed dumps lack them and are
    # gated on recall/QPS alone).
    benches = dump.get("benches", {})
    if not any(n.startswith("build_speedup_t") for n in benches):
        return
    hardware = dump["hardware_threads"]
    for min_hw, threads, build_floor in ANN_BUILD_FLOORS:
        if hardware >= min_hw:
            break
    build_speedup = bench_value(path, dump, f"build_speedup_t{threads}")
    print(
        f"check_bench_regression: hardware_threads={hardware} -> checking "
        f"ANN build t{threads}/t1 speedup {build_speedup:.2f}x against "
        f"floor {build_floor:.1f}x"
    )
    if build_speedup < build_floor:
        fail(
            f"{path}: parallel ANN build t{threads}/t1 speedup "
            f"{build_speedup:.2f}x is below the committed floor "
            f"{build_floor:.1f}x for a {hardware}-thread machine (the "
            "batch-synchronous build serialized, or the dump was produced "
            "on a loaded machine — rerun on a quiet runner)"
        )


CHAOS_MAX_CLEAN_P99_MS = 250.0
CHAOS_MAX_RECOVERY_SECONDS = 5.0


def check_chaos_soak(path: str, dump: dict) -> None:
    # Hard error budget: the only acceptable failures under chaos are the
    # intentional ones (429 admission rejects, 503 sheds/deadlines) plus
    # transport errors while a net.* fault is actually armed.
    for name in ("other_http", "transport_errors_clean"):
        v = bench_value(path, dump, name)
        if v != 0.0:
            fail(f"{path}: {name} is {v:g}; the chaos error budget is zero")

    if bench_value(path, dump, "recovered_healthz") != 1.0:
        fail(f"{path}: /healthz never returned to ok after the fault phases")
    recovery_s = bench_value(path, dump, "recovery_seconds")
    if recovery_s > CHAOS_MAX_RECOVERY_SECONDS:
        fail(
            f"{path}: recovery took {recovery_s:.2f} s, over the "
            f"{CHAOS_MAX_RECOVERY_SECONDS:.0f} s window"
        )
    if bench_value(path, dump, "faults_injected") < 1.0:
        fail(f"{path}: the fault schedule never fired — the soak tested "
             "nothing")
    if bench_value(path, dump, "reloads_ok") < 1.0:
        fail(f"{path}: no hot reload succeeded mid-soak")
    if bench_value(path, dump, "reloads_failed_injected") < 1.0:
        fail(f"{path}: the injected failing reload never exercised the "
             "stale-model path")

    total = bench_value(path, dump, "total_requests")
    ok = bench_value(path, dump, "ok_2xx")
    if total < 1.0:
        fail(f"{path}: the soak issued no requests")
    if ok <= total / 2.0:
        fail(
            f"{path}: only {ok:.0f}/{total:.0f} requests succeeded — the "
            "stack collapsed under chaos instead of degrading"
        )

    baseline_p99 = bench_value(path, dump, "baseline_p99_ms")
    recovery_p99 = bench_value(path, dump, "recovery_p99_ms")
    print(
        f"check_bench_regression: chaos soak {total:.0f} requests, "
        f"{ok:.0f} ok, recovery {recovery_s:.2f} s, clean p99 "
        f"{baseline_p99:.2f}/{recovery_p99:.2f} ms"
    )
    for name, p99 in (("baseline_p99_ms", baseline_p99),
                      ("recovery_p99_ms", recovery_p99)):
        if p99 > CHAOS_MAX_CLEAN_P99_MS:
            fail(
                f"{path}: {name} {p99:.1f} ms exceeds the "
                f"{CHAOS_MAX_CLEAN_P99_MS:.0f} ms ceiling in a no-fault phase"
            )


CHECKS = {
    "parallel_scaling": check_parallel_scaling,
    "serve_load": check_serve_load,
    "ann_frontier": check_ann_frontier,
    "chaos_soak": check_chaos_soak,
}


def main() -> None:
    paths = sys.argv[1:] if len(sys.argv) > 1 else [
        "BENCH_parallel_scaling.json"
    ]
    for path in paths:
        dump = load_dump(path)
        bench = dump.get("bench")
        check = CHECKS.get(bench)
        if check is None:
            fail(
                f"{path}: no regression gate registered for bench "
                f"{bench!r} (known: {sorted(CHECKS)})"
            )
        check(path, dump)
    print("check_bench_regression: OK")


if __name__ == "__main__":
    main()
