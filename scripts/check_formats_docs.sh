#!/usr/bin/env bash
# Fails when a serving-file section name defined in
# src/serve/serving_format.h (the kServingSection* constants, which are also
# the names Status messages use for CRC failures) is missing from the
# on-disk format spec in docs/FORMATS.md. Run from the repository root (the
# docs-consistency CI job does); no arguments.
#
# The docs must mention each section name in backticks, the way the section
# tables render them, so an operator can grep a "section 'view' CRC
# mismatch" error straight to the byte layout that produced it.
set -euo pipefail

format_header="src/serve/serving_format.h"
docs="docs/FORMATS.md"

[[ -f "$format_header" ]] || { echo "missing $format_header" >&2; exit 1; }
[[ -f "$docs" ]] || { echo "missing $docs" >&2; exit 1; }

names=$(grep -oE 'kServingSection[A-Za-z0-9]+\[\] = "[^"]+"' "$format_header" \
          | sed 's/.*= "//; s/"$//' | sort -u)
[[ -n "$names" ]] || {
  echo "no kServingSection* names found in $format_header" >&2; exit 1;
}

missing=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" "$docs"; then
    echo "section '$name' is defined in $format_header but not documented" \
         "in $docs" >&2
    missing=1
  fi
done <<< "$names"

if [[ "$missing" -ne 0 ]]; then
  echo "document the missing sections in $docs" >&2
  exit 1
fi
echo "OK: every serving section in $format_header is documented in $docs"
