#!/usr/bin/env bash
# Fails when a private dot-product / sigmoid implementation creeps back into
# src/ outside the shared kernel layer (util/vec.*). Run from the repository
# root (the docs-consistency CI job does); no arguments.
#
# PR 4 rewired the three historical private dot loops (sgns.cc, knn_index.cc
# Dot4, matrix.cc Dot) through vec::Dot — this guard keeps it that way. Two
# shapes are banned outside src/util/vec.cc:
#
#   1. scalar dot accumulation:   acc += a[i] * b[i];
#   2. a private logistic sigmoid named Sigmoid returning 1/(1+exp(-x))
#      (the emb/ trainers must use vec::Sigmoid; baselines/ and nn/ops.cc
#      autograd kernels are grandfathered below — they are not hot paths and
#      nn::Sigmoid is a Matrix op, not a scalar helper).
set -euo pipefail

src_dir="src"
allow_sigmoid_regex='^src/(util/vec\.(cc|h)|nn/ops\.cc|baselines/)'

[[ -d "$src_dir" ]] || { echo "run from the repository root" >&2; exit 1; }

fail=0

# 1. Private dot-accumulation loops: `x += a[i] * b[i];` over any index var.
dot_hits=$(grep -rnE \
    '\+= *[A-Za-z_][A-Za-z_0-9]*\[[a-z]+\] *\* *[A-Za-z_][A-Za-z_0-9]*\[[a-z]+\] *;' \
    "$src_dir" --include='*.cc' --include='*.h' \
  | grep -v '^src/util/vec\.cc' || true)
if [[ -n "$dot_hits" ]]; then
  echo "private dot-product loops found outside src/util/vec.cc —" \
       "use vec::Dot (util/vec.h):" >&2
  echo "$dot_hits" >&2
  fail=1
fi

# 2. Private scalar Sigmoid helpers outside the allowlist.
sig_hits=$(grep -rnE 'double +Sigmoid *\( *double' \
    "$src_dir" --include='*.cc' --include='*.h' \
  | grep -vE "$allow_sigmoid_regex" || true)
if [[ -n "$sig_hits" ]]; then
  echo "private scalar Sigmoid found outside the kernel layer —" \
       "use vec::Sigmoid (util/vec.h):" >&2
  echo "$sig_hits" >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "route inner-product / sigmoid hot loops through util/vec.h" >&2
  exit 1
fi
echo "OK: no private dot-product or sigmoid implementations outside util/vec"
