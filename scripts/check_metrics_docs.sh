#!/usr/bin/env bash
# Fails when a metric name registered in src/obs/metric_names.h is missing
# from the catalog in docs/OPERATIONS.md. Run from the repository root (the
# docs-consistency CI job does); no arguments.
#
# A "metric name" is any quoted dotted identifier in metric_names.h, e.g.
# "train.pairs_total". Requiring at least one dot keeps incidental quoted
# strings (and the hyphenated schema id) out of the extraction. The docs must
# mention each name in backticks, the way the catalog table renders them.
set -euo pipefail

names_header="src/obs/metric_names.h"
docs="docs/OPERATIONS.md"

[[ -f "$names_header" ]] || { echo "missing $names_header" >&2; exit 1; }
[[ -f "$docs" ]] || { echo "missing $docs" >&2; exit 1; }

names=$(grep -oE '"[a-z0-9_]+(\.[a-z0-9_]+)+"' "$names_header" \
          | tr -d '"' | sort -u)
[[ -n "$names" ]] || { echo "no metric names found in $names_header" >&2; exit 1; }

missing=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" "$docs"; then
    echo "metric '$name' is registered in $names_header but not documented" \
         "in $docs" >&2
    missing=1
  fi
done <<< "$names"

if [[ "$missing" -ne 0 ]]; then
  echo "add the missing names to the catalog table in $docs" >&2
  exit 1
fi
echo "OK: every metric name in $names_header is documented in $docs"
