#!/usr/bin/env bash
# End-to-end smoke test of the HTTP serving stack (CI: the serve-smoke job).
#
#   1. trains a tiny model and starts `transn_serve serve` on an ephemeral
#      port,
#   2. curls /healthz, /v1/knn, /v1/translate and /metrics,
#   3. fires hot reloads (POST /admin/reload and SIGHUP) while a background
#      query loop hammers the k-NN endpoint — every response must be 2xx
#      (or 429 from admission control); anything else fails the job,
#   4. shuts the server down with SIGTERM and requires a clean exit.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/transn_cli"
SERVE="$BUILD_DIR/tools/transn_serve"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $1" >&2
  [ -f "$WORK/serve.log" ] && sed 's/^/serve_smoke:   server: /' "$WORK/serve.log" >&2
  exit 1
}

echo "serve_smoke: training a tiny model"
"$CLI" generate --dataset BLOG --scale 0.05 --out "$WORK/g.tsv" >/dev/null
"$CLI" train --graph "$WORK/g.tsv" --out "$WORK/emb.tsv" \
  --export-serving "$WORK/model.bin" --iterations 1 --dim 16 >/dev/null
NODE="$(sed -n 2p "$WORK/emb.tsv" | cut -f1)"
[ -n "$NODE" ] || fail "could not extract a node name from emb.tsv"

echo "serve_smoke: starting server"
"$SERVE" serve --model "$WORK/model.bin" --listen 127.0.0.1:0 \
  --reactor-threads 2 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
PORT="$(sed -n 's#.*listening on http://[^:]*:\([0-9]*\).*#\1#p' "$WORK/serve.log" | head -1)"
[ -n "$PORT" ] || fail "server never printed its listening port"
BASE="http://127.0.0.1:$PORT"
echo "serve_smoke: serving on $BASE (pid $SERVER_PID)"

# --- basic endpoints --------------------------------------------------------
curl -fsS "$BASE/healthz" | grep -q '"generation":1' \
  || fail "/healthz did not report generation 1"
curl -fsS "$BASE/v1/knn?node=$NODE&k=5" | grep -q '"neighbors":\[' \
  || fail "/v1/knn returned no neighbors for $NODE"
# grep without -q: -q exits at first match and closes the pipe while curl
# is still writing the (large) body, which pipefail reports as a failure.
curl -fsS "$BASE/metrics" | grep '^transn_net_requests_total' >/dev/null \
  || fail "/metrics is missing transn_net_requests_total"
curl -fsS "$BASE/metrics" | grep '^transn_serve_model_generation 1' >/dev/null \
  || fail "/metrics is missing transn_serve_model_generation"

# --- hot reload mid-traffic -------------------------------------------------
echo "serve_smoke: hot reload under load"
: >"$WORK/codes.txt"
(
  for _ in $(seq 1 200); do
    curl -s -o /dev/null -w '%{http_code}\n' "$BASE/v1/knn?node=$NODE" \
      >>"$WORK/codes.txt"
  done
) &
LOAD_PID=$!
for _ in 1 2 3; do
  code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/admin/reload")"
  [ "$code" = "200" ] || fail "POST /admin/reload returned $code"
  sleep 0.2
done
wait "$LOAD_PID"
TOTAL="$(wc -l <"$WORK/codes.txt")"
BAD="$(grep -Ecv '^(2..|429)$' "$WORK/codes.txt" || true)"
[ "$TOTAL" = "200" ] || fail "query loop issued $TOTAL/200 requests"
[ "$BAD" = "0" ] || fail "$BAD/200 responses were neither 2xx nor 429 during reloads"
curl -fsS "$BASE/healthz" | grep -q '"generation":4' \
  || fail "/healthz did not reach generation 4 after 3 reloads"

# --- SIGHUP reload ----------------------------------------------------------
kill -HUP "$SERVER_PID"
for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" | grep -q '"generation":5' && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"generation":5' \
  || fail "SIGHUP did not trigger a reload to generation 5"

# --- graceful shutdown ------------------------------------------------------
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  fail "server did not exit cleanly on SIGTERM"
fi
SERVER_PID=""

# --- hnsw index leg ---------------------------------------------------------
# Pre-build an ANN graph into a v3 model, verify `info` reports it, then
# serve with --index hnsw and require healthz to confirm the index kind.
echo "serve_smoke: hnsw index"
"$SERVE" index --model "$WORK/model.bin" --out "$WORK/model_v3.bin" \
  >/dev/null 2>&1 || fail "transn_serve index failed"
"$SERVE" info --model "$WORK/model_v3.bin" | grep -q "ann index: target final" \
  || fail "info does not report the embedded ann index"
"$SERVE" serve --model "$WORK/model_v3.bin" --listen 127.0.0.1:0 \
  --index hnsw >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "hnsw server exited during startup"
  sleep 0.1
done
PORT="$(sed -n 's#.*listening on http://[^:]*:\([0-9]*\).*#\1#p' "$WORK/serve.log" | head -1)"
[ -n "$PORT" ] || fail "hnsw server never printed its listening port"
BASE="http://127.0.0.1:$PORT"
curl -fsS "$BASE/healthz" | grep -q '"index":"hnsw"' \
  || fail "/healthz did not report the hnsw index kind"
curl -fsS "$BASE/v1/knn?node=$NODE&k=5" | grep -q '"neighbors":\[' \
  || fail "hnsw /v1/knn returned no neighbors for $NODE"
curl -fsS "$BASE/metrics" | grep '^transn_ann_recall_probe' >/dev/null \
  || fail "/metrics is missing transn_ann_recall_probe"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  fail "hnsw server did not exit cleanly on SIGTERM"
fi
SERVER_PID=""
echo "serve_smoke: OK ($TOTAL queries, 0 failures, 5 generations, hnsw leg)"
