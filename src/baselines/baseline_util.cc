#include "baselines/baseline_util.h"

#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "walk/corpus.h"

namespace transn {

Matrix SgnsOverWalks(const std::vector<std::vector<uint32_t>>& corpus,
                     size_t vocab, const SgnsWalkParams& params) {
  CHECK_GT(vocab, 0u);
  Rng rng(params.seed);
  EmbeddingTable input(vocab, params.dim, rng);
  EmbeddingTable context(vocab, params.dim);
  NegativeSampler sampler(CountOccurrences(corpus, vocab));
  SgnsTrainer trainer(&input, &context, &sampler,
                      SgnsConfig{.negatives = params.negatives,
                                 .learning_rate = params.learning_rate});
  for (size_t epoch = 0; epoch < params.epochs; ++epoch) {
    // word2vec-style linear learning-rate decay across epochs.
    trainer.set_learning_rate(params.learning_rate *
                              (1.0 - static_cast<double>(epoch) /
                                         static_cast<double>(params.epochs)));
    for (const auto& walk : corpus) {
      ForEachWindowPair(walk, params.window, [&](ContextPair p) {
        trainer.TrainPair(p.center, p.context, rng);
      });
    }
  }
  return input.values();
}

Matrix ScatterRows(const Matrix& local, const std::vector<NodeId>& to_global,
                   size_t num_global) {
  CHECK_EQ(local.rows(), to_global.size());
  Matrix out(num_global, local.cols(), 0.0);
  for (size_t r = 0; r < local.rows(); ++r) {
    CHECK_LT(to_global[r], num_global);
    const double* src = local.Row(r);
    double* dst = out.Row(to_global[r]);
    for (size_t c = 0; c < local.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace transn
