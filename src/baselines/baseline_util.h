#ifndef TRANSN_BASELINES_BASELINE_UTIL_H_
#define TRANSN_BASELINES_BASELINE_UTIL_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// Shared SGNS-over-a-walk-corpus training loop used by the walk-based
/// baselines (Node2Vec, Metapath2Vec, MVE's per-view step).
struct SgnsWalkParams {
  size_t dim = 128;
  size_t window = 5;
  int negatives = 5;
  double learning_rate = 0.025;
  /// Passes over the corpus.
  size_t epochs = 2;
  uint64_t seed = 1;
};

/// Trains skip-gram with negative sampling over `corpus` (ids must be
/// < vocab) and returns the input-embedding matrix (vocab x dim).
Matrix SgnsOverWalks(const std::vector<std::vector<uint32_t>>& corpus,
                     size_t vocab, const SgnsWalkParams& params);

/// Expands a local embedding matrix to one row per global node id
/// (num_global x dim); unmapped global nodes get zero rows.
Matrix ScatterRows(const Matrix& local, const std::vector<NodeId>& to_global,
                   size_t num_global);

}  // namespace transn

#endif  // TRANSN_BASELINES_BASELINE_UTIL_H_
