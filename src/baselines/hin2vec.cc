#include "baselines/hin2vec.h"

#include <cmath>
#include <map>
#include <vector>

#include "emb/embedding_table.h"
#include "util/rng.h"

namespace transn {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// A random walk over the heterogeneous graph that records the edge type of
/// every hop (needed to identify the meta-path between co-occurring nodes).
struct TypedWalk {
  std::vector<NodeId> nodes;
  std::vector<EdgeTypeId> hop_types;  // hop_types[k] joins nodes[k], nodes[k+1]
};

TypedWalk SampleTypedWalk(const HeteroGraph& g, NodeId start, size_t length,
                          Rng& rng) {
  TypedWalk walk;
  walk.nodes.push_back(start);
  NodeId cur = start;
  std::vector<double> weights;
  while (walk.nodes.size() < length) {
    const size_t deg = g.degree(cur);
    if (deg == 0) break;
    const Adjacency* begin = g.NeighborsBegin(cur);
    weights.resize(deg);
    for (size_t k = 0; k < deg; ++k) weights[k] = begin[k].weight;
    const Adjacency& pick = begin[rng.NextDiscrete(weights)];
    walk.nodes.push_back(pick.neighbor);
    walk.hop_types.push_back(pick.edge_type);
    cur = pick.neighbor;
  }
  return walk;
}

}  // namespace

Matrix RunHin2Vec(const HeteroGraph& g, const Hin2VecConfig& config) {
  CHECK_GT(g.num_nodes(), 0u);
  CHECK_GE(config.window, 1u);
  Rng rng(config.seed);

  EmbeddingTable nodes(g.num_nodes(), config.dim, rng);
  // Hadamard-product scoring needs a larger init than the word2vec default
  // or the early gradients (products of two near-zero factors) vanish.
  {
    Matrix& m = nodes.mutable_values();
    for (size_t i = 0; i < m.size(); ++i) m.data()[i] = 0.1 * rng.NextGaussian();
  }

  // Relation vocabulary: every edge-type sequence of length 1..window gets
  // an embedding, interned on first sight.
  std::map<std::vector<EdgeTypeId>, size_t> relation_ids;
  std::vector<std::unique_ptr<EmbeddingTable>> relations;  // grown lazily
  auto relation_row = [&](const std::vector<EdgeTypeId>& path) -> double* {
    auto [it, inserted] = relation_ids.try_emplace(path, relations.size());
    if (inserted) {
      relations.push_back(
          std::make_unique<EmbeddingTable>(1, config.dim, rng));
    }
    return relations[it->second]->Row(0);
  };

  // Per-type node pools for type-preserving negative sampling.
  std::vector<std::vector<NodeId>> by_type(g.num_node_types());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    by_type[g.node_type(n)].push_back(n);
  }

  std::vector<double> x_grad(config.dim);
  auto train_triple = [&](NodeId x, NodeId y, double* r, double label,
                          double lr) {
    double* wx = nodes.Row(x);
    double* wy = nodes.Row(y);
    double score = 0.0;
    for (size_t d = 0; d < config.dim; ++d) {
      score += wx[d] * wy[d] * Sigmoid(r[d]);
    }
    const double gradient = Sigmoid(score) - label;
    for (size_t d = 0; d < config.dim; ++d) {
      const double sr = Sigmoid(r[d]);
      const double gx = gradient * wy[d] * sr;
      const double gy = gradient * wx[d] * sr;
      const double gr = gradient * wx[d] * wy[d] * sr * (1.0 - sr);
      x_grad[d] = gx;  // defer x so wy/r updates use the pre-update wx
      wy[d] -= lr * gy;
      r[d] -= lr * gr;
    }
    for (size_t d = 0; d < config.dim; ++d) wx[d] -= lr * x_grad[d];
  };

  std::vector<EdgeTypeId> rel_path;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const double lr =
        config.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(config.epochs));
    for (size_t w = 0; w < config.walks_per_node; ++w) {
      for (NodeId start = 0; start < g.num_nodes(); ++start) {
        TypedWalk walk = SampleTypedWalk(g, start, config.walk_length, rng);
        for (size_t i = 0; i < walk.nodes.size(); ++i) {
          for (size_t hop = 1;
               hop <= config.window && i + hop < walk.nodes.size(); ++hop) {
            rel_path.assign(walk.hop_types.begin() + i,
                            walk.hop_types.begin() + i + hop);
            double* r = relation_row(rel_path);
            const NodeId x = walk.nodes[i];
            const NodeId y = walk.nodes[i + hop];
            train_triple(x, y, r, 1.0, lr);
            // Negative sampling: corrupt x with a random same-type node.
            const auto& pool = by_type[g.node_type(x)];
            for (int neg = 0; neg < config.negatives; ++neg) {
              NodeId fake = pool[rng.NextUint64(pool.size())];
              if (fake == x) continue;
              train_triple(fake, y, r, 0.0, lr);
            }
          }
        }
      }
    }
  }
  return nodes.values();
}

}  // namespace transn
