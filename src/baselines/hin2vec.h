#ifndef TRANSN_BASELINES_HIN2VEC_H_
#define TRANSN_BASELINES_HIN2VEC_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// HIN2Vec (Fu et al., 2017): jointly learns node embeddings and meta-path
/// (relation) embeddings. Training samples are (x, y, r) where x and y
/// co-occur within `window` hops on a random walk and r identifies the
/// sequence of edge types between them (a meta-path of bounded length, per
/// §IV-A2: "meta-paths with fixed lengths"). The binary objective is
///   P(r | x, y) = sigmoid( Σ_d  W_x[d] * W_y[d] * sigma(W_r[d]) )
/// with negative samples replacing x by a random node of the same type.
struct Hin2VecConfig {
  size_t dim = 128;
  size_t walk_length = 80;
  size_t walks_per_node = 10;
  /// Maximum meta-path hop count (relation vocabulary covers lengths
  /// 1..window).
  size_t window = 3;
  int negatives = 5;
  double learning_rate = 0.025;
  size_t epochs = 2;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim node embeddings.
Matrix RunHin2Vec(const HeteroGraph& g, const Hin2VecConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_HIN2VEC_H_
