#include "baselines/line.h"

#include <algorithm>

#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/alias_table.h"

namespace transn {

Matrix RunLine(const HeteroGraph& g, const LineConfig& config) {
  CHECK_GT(g.num_edges(), 0u);
  Rng rng(config.seed);
  const size_t n = g.num_nodes();

  EmbeddingTable vertex(n, config.dim, rng);
  EmbeddingTable context(n, config.dim);

  // Edge sampling proportional to weight.
  std::vector<double> edge_weights(g.num_edges());
  for (size_t e = 0; e < g.num_edges(); ++e) edge_weights[e] = g.edge_weight(e);
  AliasTable edge_sampler(edge_weights);
  obs::MetricsRegistry::Default()
      .GetCounter(obs::kWalkAliasRebuildsTotal, "rebuilds",
                  "alias-table constructions (noise/edge samplers)")
      ->Increment();

  // Noise distribution: weighted degree ^ 0.75.
  std::vector<double> degrees(n, 0.0);
  for (size_t e = 0; e < g.num_edges(); ++e) {
    degrees[g.edge_u(e)] += g.edge_weight(e);
    degrees[g.edge_v(e)] += g.edge_weight(e);
  }
  for (double& d : degrees) d += 1e-9;  // keep isolated nodes sampleable
  NegativeSampler sampler(degrees);

  SgnsTrainer trainer(&vertex, &context, &sampler,
                      SgnsConfig{.negatives = config.negatives,
                                 .learning_rate = config.learning_rate});

  const size_t samples =
      config.samples > 0 ? config.samples : 40 * g.num_edges();
  for (size_t s = 0; s < samples; ++s) {
    trainer.set_learning_rate(
        config.learning_rate *
        std::max(1e-4, 1.0 - static_cast<double>(s) /
                                 static_cast<double>(samples)));
    const size_t e = edge_sampler.Sample(rng);
    // Undirected edge: train both directions with equal probability.
    NodeId u = g.edge_u(e), v = g.edge_v(e);
    if (rng.NextBernoulli(0.5)) std::swap(u, v);
    trainer.TrainPair(u, v, rng);
  }
  return vertex.values();
}

}  // namespace transn
