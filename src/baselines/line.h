#ifndef TRANSN_BASELINES_LINE_H_
#define TRANSN_BASELINES_LINE_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// LINE with second-order proximity (Tang et al., 2015), the variant the
/// paper compares against (§IV-A2). Types are ignored: the network is
/// flattened to a single weighted graph; edges are sampled by weight (alias
/// method) and optimized with negative sampling over vertex/context tables.
struct LineConfig {
  size_t dim = 128;
  int negatives = 5;
  double learning_rate = 0.025;
  /// Total edge samples; 0 selects 40 * |E|.
  size_t samples = 0;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim embeddings (zero rows for isolated nodes).
Matrix RunLine(const HeteroGraph& g, const LineConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_LINE_H_
