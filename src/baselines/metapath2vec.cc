#include "baselines/metapath2vec.h"

#include "baselines/baseline_util.h"
#include "walk/metapath_walk.h"

namespace transn {

StatusOr<Matrix> RunMetapath2Vec(const HeteroGraph& g,
                                 const Metapath2VecConfig& config) {
  if (config.metapath.size() < 2) {
    return Status::InvalidArgument("meta-path needs at least two types");
  }
  if (config.metapath.front() != config.metapath.back()) {
    return Status::InvalidArgument("meta-path must be cyclic");
  }
  MetapathConfig walk_config;
  walk_config.walk_length = config.walk_length;
  walk_config.walks_per_node = config.walks_per_node;
  for (const std::string& name : config.metapath) {
    bool found = false;
    for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
      if (g.node_type_name(t) == name) {
        walk_config.pattern.push_back(t);
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("unknown node type: " + name);
  }

  Rng rng(config.seed);
  MetapathWalker walker(&g, walk_config);
  std::vector<std::vector<uint32_t>> corpus = walker.SampleCorpus(rng);
  if (corpus.empty()) {
    return Status::FailedPrecondition("meta-path produced no walks");
  }

  SgnsWalkParams params{.dim = config.dim,
                        .window = config.window,
                        .negatives = config.negatives,
                        .learning_rate = config.learning_rate,
                        .epochs = config.epochs,
                        .seed = rng.NextUint64()};
  // Walks carry global node ids directly; the vocab is the whole node set.
  return SgnsOverWalks(corpus, g.num_nodes(), params);
}

}  // namespace transn
