#ifndef TRANSN_BASELINES_METAPATH2VEC_H_
#define TRANSN_BASELINES_METAPATH2VEC_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace transn {

/// Metapath2Vec (Dong et al., 2017): skip-gram over walks constrained to a
/// user-specified meta-path (the paper uses APVPA on AMiner, UTU on BLOG,
/// UAKAU on the App networks; see data/datasets.h RecommendedMetapath()).
struct Metapath2VecConfig {
  size_t dim = 128;
  /// Cyclic node-type name sequence, e.g. {"Author","Paper","Venue",
  /// "Paper","Author"}.
  std::vector<std::string> metapath;
  size_t walk_length = 80;
  size_t walks_per_node = 10;
  size_t window = 5;
  int negatives = 5;
  double learning_rate = 0.025;
  size_t epochs = 2;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim embeddings. Nodes of types absent from the
/// meta-path (or never visited) get zero rows. Fails on unknown type names
/// or non-cyclic paths.
StatusOr<Matrix> RunMetapath2Vec(const HeteroGraph& g,
                                 const Metapath2VecConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_METAPATH2VEC_H_
