#include "baselines/mve.h"

#include <memory>

#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "graph/view.h"
#include "walk/corpus.h"
#include "walk/random_walk.h"

namespace transn {

Matrix RunMve(const HeteroGraph& g, const MveConfig& config) {
  Rng rng(config.seed);
  std::vector<View> views = BuildViews(g);

  struct ViewState {
    const View* view;
    std::unique_ptr<EmbeddingTable> input;
    std::unique_ptr<EmbeddingTable> context;
    std::unique_ptr<NegativeSampler> sampler;
    std::unique_ptr<RandomWalker> walker;
  };
  std::vector<ViewState> states;
  WalkConfig walk_config;
  walk_config.walk_length = config.walk_length;
  walk_config.min_walks_per_node = config.walks_per_node;
  walk_config.max_walks_per_node = config.walks_per_node;
  walk_config.correlated = false;  // MVE has no correlated-walk machinery

  for (const View& view : views) {
    const size_t n = view.graph.num_nodes();
    if (n == 0) continue;
    ViewState state;
    state.view = &view;
    state.input = std::make_unique<EmbeddingTable>(n, config.dim, rng);
    state.context = std::make_unique<EmbeddingTable>(n, config.dim);
    std::vector<double> counts(n);
    for (ViewGraph::LocalId i = 0; i < n; ++i) {
      counts[i] = view.graph.weighted_degree(i) + 1e-9;
    }
    state.sampler = std::make_unique<NegativeSampler>(counts);
    state.walker =
        std::make_unique<RandomWalker>(&view.graph, false, walk_config);
    states.push_back(std::move(state));
  }
  CHECK(!states.empty()) << "graph has no non-empty views";

  Matrix center(g.num_nodes(), config.dim, 0.0);
  auto recompute_center = [&] {
    center.Fill(0.0);
    std::vector<int> counts(g.num_nodes(), 0);
    for (const ViewState& s : states) {
      const ViewGraph& vg = s.view->graph;
      for (ViewGraph::LocalId local = 0; local < vg.num_nodes(); ++local) {
        const NodeId global = vg.ToGlobal(local);
        const double* row = s.input->Row(local);
        double* dst = center.Row(global);
        for (size_t c = 0; c < config.dim; ++c) dst[c] += row[c];
        ++counts[global];
      }
    }
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (counts[n] > 1) {
        double* row = center.Row(n);
        for (size_t c = 0; c < config.dim; ++c) {
          row[c] /= static_cast<double>(counts[n]);
        }
      }
    }
  };

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Per-view skip-gram pass.
    for (ViewState& s : states) {
      SgnsTrainer trainer(s.input.get(), s.context.get(), s.sampler.get(),
                          SgnsConfig{.negatives = config.negatives,
                                     .learning_rate = config.learning_rate});
      for (ViewGraph::LocalId node = 0; node < s.view->graph.num_nodes();
           ++node) {
        for (size_t w = 0; w < config.walks_per_node; ++w) {
          std::vector<uint32_t> walk = s.walker->Walk(node, rng);
          ForEachWindowPair(walk, config.window, [&](ContextPair p) {
            trainer.TrainPair(p.center, p.context, rng);
          });
        }
      }
    }
    // Alignment: pull each view embedding toward the (equal-weight) center.
    recompute_center();
    for (ViewState& s : states) {
      const ViewGraph& vg = s.view->graph;
      for (ViewGraph::LocalId local = 0; local < vg.num_nodes(); ++local) {
        double* row = s.input->Row(local);
        const double* c_row = center.Row(vg.ToGlobal(local));
        for (size_t c = 0; c < config.dim; ++c) {
          row[c] += config.align_weight * (c_row[c] - row[c]);
        }
      }
    }
  }
  recompute_center();
  return center;
}

}  // namespace transn
