#ifndef TRANSN_BASELINES_MVE_H_
#define TRANSN_BASELINES_MVE_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// MVE (Qu et al., 2017), unsupervised variant with equal view weights
/// (§IV-A2). The network is split into one view per edge type; each view
/// learns view-specific embeddings by skip-gram over simple weighted walks
/// while a regularizer ties them to a shared center embedding; with equal
/// weights the optimal center is the mean of a node's view embeddings. The
/// center embedding is the output.
struct MveConfig {
  size_t dim = 128;
  size_t walk_length = 40;
  size_t walks_per_node = 5;
  size_t window = 3;
  int negatives = 5;
  double learning_rate = 0.025;
  /// Strength of the view-to-center alignment pull applied after each
  /// epoch's skip-gram pass.
  double align_weight = 0.5;
  size_t epochs = 3;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim center embeddings.
Matrix RunMve(const HeteroGraph& g, const MveConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_MVE_H_
