#include "baselines/node2vec.h"

#include "baselines/baseline_util.h"
#include "graph/view.h"

namespace transn {

Matrix RunNode2Vec(const HeteroGraph& g,
                   const Node2VecBaselineConfig& config) {
  ViewGraph flat = FlattenToViewGraph(g);
  CHECK_GT(flat.num_nodes(), 0u);
  Rng rng(config.seed);
  Node2VecWalker walker(&flat, config.walk);
  std::vector<std::vector<uint32_t>> corpus = walker.SampleCorpus(rng);

  SgnsWalkParams params{.dim = config.dim,
                        .window = config.window,
                        .negatives = config.negatives,
                        .learning_rate = config.learning_rate,
                        .epochs = config.epochs,
                        .seed = rng.NextUint64()};
  Matrix local = SgnsOverWalks(corpus, flat.num_nodes(), params);
  return ScatterRows(local, flat.nodes(), g.num_nodes());
}

}  // namespace transn
