#ifndef TRANSN_BASELINES_NODE2VEC_H_
#define TRANSN_BASELINES_NODE2VEC_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "walk/node2vec_walk.h"

namespace transn {

/// Node2Vec (Grover & Leskovec, 2016) on the type-flattened network:
/// (p, q)-biased walks + skip-gram with negative sampling. With p = q = 1
/// this degenerates to DeepWalk.
struct Node2VecBaselineConfig {
  size_t dim = 128;
  Node2VecConfig walk;  // p, q, walk_length, walks_per_node
  size_t window = 5;
  int negatives = 5;
  double learning_rate = 0.025;
  size_t epochs = 2;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim embeddings (zero rows for isolated nodes).
Matrix RunNode2Vec(const HeteroGraph& g,
                   const Node2VecBaselineConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_NODE2VEC_H_
