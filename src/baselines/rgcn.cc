#include "baselines/rgcn.h"

#include <cmath>
#include <memory>
#include <tuple>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace transn {
namespace {

/// Row-normalized per-relation adjacency (both directions of every edge,
/// unit weights).
SparseMat BuildNormalizedAdjacency(const HeteroGraph& g, EdgeTypeId r) {
  std::vector<size_t> degree(g.num_nodes(), 0);
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) != r) continue;
    ++degree[g.edge_u(e)];
    ++degree[g.edge_v(e)];
  }
  std::vector<std::tuple<size_t, size_t, double>> triplets;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) != r) continue;
    const NodeId u = g.edge_u(e), v = g.edge_v(e);
    triplets.emplace_back(u, v, 1.0 / static_cast<double>(degree[u]));
    triplets.emplace_back(v, u, 1.0 / static_cast<double>(degree[v]));
  }
  return SparseMat(g.num_nodes(), g.num_nodes(), triplets);
}

}  // namespace

Matrix RunRgcn(const HeteroGraph& g, const RgcnConfig& config) {
  CHECK_GT(g.num_edges(), 0u);
  CHECK_GE(config.layers, 1u);
  Rng rng(config.seed);
  const size_t n = g.num_nodes();
  const size_t d = config.dim;
  const size_t num_rel = g.num_edge_types();

  // Precompute normalized adjacency and its transpose per relation.
  std::vector<SparseMat> adj(num_rel), adj_t(num_rel);
  for (EdgeTypeId r = 0; r < num_rel; ++r) {
    adj[r] = BuildNormalizedAdjacency(g, r);
    adj_t[r] = adj[r].Transposed();
  }

  // Parameters.
  Parameter features(GaussianInit(n, d, 0.1, rng));
  std::vector<std::unique_ptr<Parameter>> w_self, w_rel;  // layers, layers*R
  for (size_t l = 0; l < config.layers; ++l) {
    w_self.push_back(std::make_unique<Parameter>(XavierUniform(d, d, rng)));
    for (EdgeTypeId r = 0; r < num_rel; ++r) {
      w_rel.push_back(std::make_unique<Parameter>(XavierUniform(d, d, rng)));
    }
  }
  // Non-negative DistMult relation weights: the evaluation protocol scores
  // links by the plain inner product of the encoder output, which only
  // correlates with the trained DistMult score when the relation weights
  // do not flip signs per dimension.
  Matrix decoder_init = GaussianInit(num_rel, d, 0.5, rng);
  for (size_t i = 0; i < decoder_init.size(); ++i) {
    decoder_init.data()[i] = std::fabs(decoder_init.data()[i]);
  }
  Parameter decoder(std::move(decoder_init));

  AdamOptimizer opt(AdamConfig{.learning_rate = config.learning_rate});
  opt.Register(&features);
  for (auto& p : w_self) opt.Register(p.get());
  for (auto& p : w_rel) opt.Register(p.get());
  opt.Register(&decoder);

  auto encode = [&](Tape& tape) -> Var {
    Var h = tape.Leaf(&features);
    for (size_t l = 0; l < config.layers; ++l) {
      Var out = MatMul(h, tape.Leaf(w_self[l].get()));
      for (EdgeTypeId r = 0; r < num_rel; ++r) {
        Var propagated = SpMM(&adj[r], &adj_t[r], h);
        out = Add(out,
                  MatMul(propagated, tape.Leaf(w_rel[l * num_rel + r].get())));
      }
      h = (l + 1 < config.layers) ? Relu(out) : out;
    }
    return h;
  };

  const size_t batch = config.batch_edges == 0
                           ? g.num_edges()
                           : std::min(config.batch_edges, g.num_edges());
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    Tape tape;
    Var h = encode(tape);

    // Sample positives and corrupted negatives.
    std::vector<size_t> heads, rels, tails;
    std::vector<double> signs;
    for (size_t b = 0; b < batch; ++b) {
      const size_t e = rng.NextUint64(g.num_edges());
      heads.push_back(g.edge_u(e));
      rels.push_back(g.edge_type(e));
      tails.push_back(g.edge_v(e));
      signs.push_back(1.0);
      for (int k = 0; k < config.negatives; ++k) {
        NodeId fake = static_cast<NodeId>(rng.NextUint64(n));
        heads.push_back(g.edge_u(e));
        rels.push_back(g.edge_type(e));
        tails.push_back(fake);
        signs.push_back(-1.0);
      }
    }

    Var dec = tape.Leaf(&decoder);
    Var scores = RowwiseDot(Hadamard(GatherRows(h, heads),
                                     GatherRows(dec, rels)),
                            GatherRows(h, tails));
    Var loss = LogSigmoidLoss(scores, signs);
    tape.Backward(loss);
    opt.Step();
  }

  // Final encoder output.
  Tape tape;
  return encode(tape).value();
}

}  // namespace transn
