#ifndef TRANSN_BASELINES_RGCN_H_
#define TRANSN_BASELINES_RGCN_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// R-GCN (Schlichtkrull et al., 2017) trained unsupervised: a relational
/// graph-convolutional encoder
///   H^{l+1} = relu( H^l W_self^l + Σ_r Â_r H^l W_r^l )
/// (Â_r row-normalized per relation, relu omitted on the output layer) with
/// a DistMult link-reconstruction decoder
///   score(u, r, v) = Σ_d H_u[d] * w_r[d] * H_v[d]
/// optimized by logistic loss over sampled positive edges and corrupted
/// negatives. Edge weights are ignored (§IV-A2). Gradients flow through the
/// hand-rolled autograd (nn/).
struct RgcnConfig {
  /// Output (and hidden) dimensionality.
  size_t dim = 128;
  size_t layers = 2;
  size_t epochs = 30;
  /// Positive edges sampled per epoch (0 = all edges).
  size_t batch_edges = 4096;
  int negatives = 2;
  double learning_rate = 0.01;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim embeddings (the encoder output after training).
Matrix RunRgcn(const HeteroGraph& g, const RgcnConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_RGCN_H_
