#include "baselines/simple_kg.h"

#include <cmath>

#include "emb/embedding_table.h"
#include "util/rng.h"

namespace transn {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Matrix RunSimplE(const HeteroGraph& g, const SimpleKgConfig& config) {
  CHECK_EQ(config.dim % 2, 0u) << "SimplE needs an even dimension";
  CHECK_GT(g.num_edges(), 0u);
  const size_t half = config.dim / 2;
  Rng rng(config.seed);

  EmbeddingTable heads(g.num_nodes(), half, rng);
  EmbeddingTable tails(g.num_nodes(), half, rng);
  EmbeddingTable rel(g.num_edge_types(), half, rng);
  EmbeddingTable rel_inv(g.num_edge_types(), half, rng);
  // Multiplicative scoring needs a larger init than the word2vec default or
  // the early gradients (products of three near-zero factors) vanish.
  for (EmbeddingTable* t : {&heads, &tails, &rel, &rel_inv}) {
    Matrix& m = t->mutable_values();
    for (size_t i = 0; i < m.size(); ++i) m.data()[i] = 0.1 * rng.NextGaussian();
  }

  // One gradient step on triple (ei, r, ej) with the given 0/1 label.
  auto train = [&](NodeId ei, EdgeTypeId r, NodeId ej, double label,
                   double lr) {
    double* h1 = heads.Row(ei);
    double* t2 = tails.Row(ej);
    double* h2 = heads.Row(ej);
    double* t1 = tails.Row(ei);
    double* vr = rel.Row(r);
    double* vi = rel_inv.Row(r);
    double score = 0.0;
    for (size_t d = 0; d < half; ++d) {
      score += 0.5 * (h1[d] * vr[d] * t2[d] + h2[d] * vi[d] * t1[d]);
    }
    const double grad = Sigmoid(score) - label;
    const double gl2 = config.l2;
    for (size_t d = 0; d < half; ++d) {
      const double gh1 = 0.5 * grad * vr[d] * t2[d] + gl2 * h1[d];
      const double gt2 = 0.5 * grad * h1[d] * vr[d] + gl2 * t2[d];
      const double gvr = 0.5 * grad * h1[d] * t2[d] + gl2 * vr[d];
      const double gh2 = 0.5 * grad * vi[d] * t1[d] + gl2 * h2[d];
      const double gt1 = 0.5 * grad * h2[d] * vi[d] + gl2 * t1[d];
      const double gvi = 0.5 * grad * h2[d] * t1[d] + gl2 * vi[d];
      h1[d] -= lr * gh1;
      t2[d] -= lr * gt2;
      vr[d] -= lr * gvr;
      h2[d] -= lr * gh2;
      t1[d] -= lr * gt1;
      vi[d] -= lr * gvi;
    }
  };

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const double lr =
        config.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(config.epochs));
    for (size_t e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.edge_u(e);
      const NodeId v = g.edge_v(e);
      const EdgeTypeId r = g.edge_type(e);
      train(u, r, v, 1.0, lr);
      for (int k = 0; k < config.negatives; ++k) {
        // Corrupt head or tail uniformly.
        NodeId fake = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
        if (rng.NextBernoulli(0.5)) {
          if (fake != u) train(fake, r, v, 0.0, lr);
        } else {
          if (fake != v) train(u, r, fake, 0.0, lr);
        }
      }
    }
  }

  Matrix out(g.num_nodes(), config.dim);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    double* dst = out.Row(n);
    const double* h = heads.Row(n);
    const double* t = tails.Row(n);
    for (size_t d = 0; d < half; ++d) {
      dst[d] = h[d];
      dst[half + d] = t[d];
    }
  }
  return out;
}

}  // namespace transn
