#ifndef TRANSN_BASELINES_SIMPLE_KG_H_
#define TRANSN_BASELINES_SIMPLE_KG_H_

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// SimplE (Kazemi & Poole, 2018): each entity e has a head vector h_e and a
/// tail vector t_e; each relation r has v_r and an inverse v_r'. A triple
/// (ei, r, ej) scores
///   1/2 ( <h_ei, v_r, t_ej> + <h_ej, v_r', t_ei> )
/// and is trained with logistic loss over negative samples that corrupt one
/// endpoint. Edge weights are ignored (§IV-A2); each undirected edge yields
/// one triple in a fixed orientation (the inverse relation covers the other
/// direction). The output embedding of a node is [h_e ; t_e].
struct SimpleKgConfig {
  /// Output dimensionality; h and t each get dim/2 (dim must be even).
  size_t dim = 128;
  int negatives = 5;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  size_t epochs = 20;
  uint64_t seed = 1;
};

/// Returns num_nodes x dim embeddings.
Matrix RunSimplE(const HeteroGraph& g, const SimpleKgConfig& config);

}  // namespace transn

#endif  // TRANSN_BASELINES_SIMPLE_KG_H_
