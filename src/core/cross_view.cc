#include "core/cross_view.h"

#include <algorithm>
#include <unordered_map>

#include "nn/ops.h"
#include "obs/metric_names.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "util/vec.h"

namespace transn {
namespace {

Var CrossLoss(CrossViewLossKind kind, const Var& pred, const Var& target) {
  switch (kind) {
    case CrossViewLossKind::kCosine:
      return RowCosineLoss(pred, target);
    case CrossViewLossKind::kNegativeDot:
      return NegativeDotLoss(pred, target);
  }
  LOG(FATAL) << "unknown CrossViewLossKind";
  return Var();
}

}  // namespace

CrossViewTrainer::CrossViewTrainer(const ViewPair* pair,
                                   SingleViewTrainer* side_i,
                                   SingleViewTrainer* side_j,
                                   const TransNConfig& config, Rng& rng)
    : pair_(pair),
      side_i_(side_i),
      side_j_(side_j),
      config_(config),
      translator_opt_(AdamConfig{.learning_rate = config.cross_learning_rate}),
      embedding_adam_(AdamConfig{.learning_rate = config.cross_learning_rate}) {
  CHECK(pair_ != nullptr && side_i_ != nullptr && side_j_ != nullptr);
  CHECK(!pair_->common_nodes.empty());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  windows_counter_ =
      registry.GetCounter(obs::kTrainCrossWindowsTotal, "windows",
                          "common-node windows trained (T/R objectives)");
  translator_steps_counter_ =
      registry.GetCounter(obs::kTrainTranslatorStepsTotal, "steps",
                          "dense Adam steps on the translator parameters");
  adam_row_updates_counter_ =
      registry.GetCounter(obs::kTrainAdamRowUpdatesTotal, "rows",
                          "sparse Adam embedding-row updates from cross-view");
  adam_step_seconds_hist_ = registry.GetHistogram(
      obs::kTrainAdamStepSeconds, "seconds",
      "optimizer phase (translator step + row updates) of one window");

  subview_i_ = BuildPairedSubview(side_i_->view(), pair_->common_nodes);
  subview_j_ = BuildPairedSubview(side_j_->view(), pair_->common_nodes);

  const WalkConfig walk = config_.EffectiveWalkConfig();
  walker_i_ = std::make_unique<RandomWalker>(&subview_i_.graph,
                                             side_i_->view().is_heter, walk);
  walker_j_ = std::make_unique<RandomWalker>(&subview_j_.graph,
                                             side_j_->view().is_heter, walk);

  translator_ij_ = std::make_unique<Translator>(
      config_.translator_seq_len, config_.dim, config_.translator_encoders,
      config_.simple_translator, rng, config_.translator_final_relu);
  translator_ji_ = std::make_unique<Translator>(
      config_.translator_seq_len, config_.dim, config_.translator_encoders,
      config_.simple_translator, rng, config_.translator_final_relu);
  translator_ij_->RegisterParams(&translator_opt_);
  translator_ji_->RegisterParams(&translator_opt_);
}

std::vector<std::vector<NodeId>> CrossViewTrainer::SampleCommonWindows(
    int side, Rng& rng, size_t max_windows) const {
  CHECK(side == 0 || side == 1);
  const PairedSubview& sub = side == 0 ? subview_i_ : subview_j_;
  RandomWalker* walker = side == 0 ? walker_i_.get() : walker_j_.get();
  const size_t window_len = config_.translator_seq_len;

  // Start walks at common nodes only; they are the information bridges.
  std::vector<ViewGraph::LocalId> common_locals;
  for (ViewGraph::LocalId n = 0; n < sub.graph.num_nodes(); ++n) {
    if (sub.is_common[n] && sub.graph.degree(n) > 0) common_locals.push_back(n);
  }
  std::vector<std::vector<NodeId>> windows;
  if (common_locals.empty()) return windows;

  // Bounded attempts: sparse common structure may yield few usable windows.
  const size_t max_attempts = 4 * max_windows + 16;
  std::vector<NodeId> filtered;
  std::vector<ViewGraph::LocalId> walk;  // per-call scratch (allocation-free
  std::vector<double> probs;             // across attempts)
  for (size_t attempt = 0;
       attempt < max_attempts && windows.size() < max_windows; ++attempt) {
    ViewGraph::LocalId start =
        common_locals[rng.NextUint64(common_locals.size())];
    walker->WalkInto(start, rng, &walk, &probs);
    // Keep only the nodes shared between the paired subviews (step (e) in
    // Fig. 3 / §III-B1).
    filtered.clear();
    for (ViewGraph::LocalId local : walk) {
      if (sub.is_common[local]) filtered.push_back(sub.graph.ToGlobal(local));
    }
    // Cut into non-overlapping windows of exactly |λ| = window_len.
    for (size_t begin = 0; begin + window_len <= filtered.size();
         begin += window_len) {
      if (windows.size() >= max_windows) break;
      windows.emplace_back(filtered.begin() + begin,
                           filtered.begin() + begin + window_len);
    }
  }
  return windows;
}

void CrossViewTrainer::ApplyEmbeddingGrads(const std::vector<NodeId>& window,
                                           const Matrix& grads,
                                           SingleViewTrainer* side) {
  // A node can repeat within a window; sum its row gradients so Adam sees
  // one update per row per step.
  std::unordered_map<size_t, std::vector<double>> row_grads;
  for (size_t k = 0; k < window.size(); ++k) {
    ViewGraph::LocalId local = side->graph().ToLocal(window[k]);
    CHECK_NE(local, kInvalidNode);
    auto [it, inserted] =
        row_grads.try_emplace(local, std::vector<double>(grads.cols(), 0.0));
    vec::Axpy(1.0, grads.Row(k), it->second.data(), grads.cols());
  }
  EmbeddingTable& table = side->embeddings();
  table.BeginAdamStep();
  for (const auto& [row, grad] : row_grads) {
    table.AdamStep(row, grad.data(), embedding_adam_);
  }
  adam_row_updates_counter_->Increment(row_grads.size());
}

double CrossViewTrainer::TrainWindow(const std::vector<NodeId>& window,
                                     bool from_i, Rng& rng) {
  SingleViewTrainer* src = from_i ? side_i_ : side_j_;
  SingleViewTrainer* dst = from_i ? side_j_ : side_i_;
  Translator* fwd = from_i ? translator_ij_.get() : translator_ji_.get();
  Translator* bwd = from_i ? translator_ji_.get() : translator_ij_.get();

  // A: source-view embeddings of the window; A': target-view embeddings.
  std::vector<size_t> src_rows, dst_rows;
  src_rows.reserve(window.size());
  dst_rows.reserve(window.size());
  for (NodeId global : window) {
    ViewGraph::LocalId ls = src->graph().ToLocal(global);
    ViewGraph::LocalId ld = dst->graph().ToLocal(global);
    CHECK_NE(ls, kInvalidNode);
    CHECK_NE(ld, kInvalidNode);
    src_rows.push_back(ls);
    dst_rows.push_back(ld);
  }

  Tape tape;
  Var a = tape.Input(src->embeddings().GatherRows(src_rows),
                     /*requires_grad=*/true);
  Var a_target = tape.Input(dst->embeddings().GatherRows(dst_rows),
                            /*requires_grad=*/true);

  Var translated = fwd->Apply(tape, a);
  Var loss;
  bool have_loss = false;
  if (config_.enable_translation_tasks) {
    loss = CrossLoss(config_.cross_loss, translated, a_target);
    have_loss = true;
  }
  if (config_.enable_reconstruction_tasks) {
    Var reconstructed = bwd->Apply(tape, translated);
    Var recon_loss = CrossLoss(config_.cross_loss, reconstructed, a);
    loss = have_loss ? Add(loss, recon_loss) : recon_loss;
    have_loss = true;
  }
  CHECK(have_loss)
      << "cross-view enabled with both translation and reconstruction off";

  const double loss_value = loss.value()(0, 0);
  tape.Backward(loss);
  WallTimer step_timer;
  translator_opt_.Step();
  ApplyEmbeddingGrads(window, a.grad(), src);
  ApplyEmbeddingGrads(window, a_target.grad(), dst);
  adam_step_seconds_hist_->Record(step_timer.ElapsedSeconds());
  translator_steps_counter_->Increment();
  windows_counter_->Increment();
  return loss_value;
}

double CrossViewTrainer::RunIteration(Rng& rng, ThreadPool* pool) {
  const obs::TraceSpan cross_span("cross_view");
  double total = 0.0;
  size_t count = 0;
  const size_t max_windows = config_.cross_paths_per_pair;
  for (int side = 0; side <= 1; ++side) {
    std::vector<std::vector<NodeId>> windows;
    const size_t num_shards =
        pool != nullptr ? std::min(pool->num_threads(), max_windows) : 1;
    if (num_shards <= 1) {
      windows = SampleCommonWindows(side, rng, max_windows);
    } else {
      // Fan the walk-heavy sampling out across the pool; each shard samples
      // its slice of the window quota with its own split RNG. Merging in
      // shard order keeps the result independent of scheduling.
      std::vector<Rng> shard_rngs;
      shard_rngs.reserve(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        shard_rngs.push_back(rng.Split());
      }
      std::vector<std::vector<std::vector<NodeId>>> shard_windows(num_shards);
      // Workers start with empty span stacks, so shard spans nest under the
      // cross_view span via an explicit parent path.
      const std::string span_parent = cross_span.path();
      for (size_t s = 0; s < num_shards; ++s) {
        const size_t quota = max_windows / num_shards +
                             (s < max_windows % num_shards ? 1 : 0);
        pool->Schedule(
            [this, side, quota, s, &shard_rngs, &shard_windows, span_parent] {
              const obs::TraceSpan shard_span("walk_shard", span_parent,
                                              nullptr);
              shard_windows[s] =
                  SampleCommonWindows(side, shard_rngs[s], quota);
            });
      }
      pool->Wait();
      for (auto& shard : shard_windows) {
        for (auto& window : shard) windows.push_back(std::move(window));
      }
    }
    // Translator weights and Adam state are shared across windows, so the
    // optimization itself stays sequential.
    for (const auto& window : windows) {
      total += TrainWindow(window, /*from_i=*/side == 0, rng);
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace transn
