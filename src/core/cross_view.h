#ifndef TRANSN_CORE_CROSS_VIEW_H_
#define TRANSN_CORE_CROSS_VIEW_H_

#include <memory>
#include <vector>

#include "core/single_view.h"
#include "core/translator.h"
#include "core/transn_config.h"
#include "graph/view_pair.h"
#include "obs/metrics.h"

namespace transn {

/// The cross-view algorithm (§III-B) for one view-pair η_{i,j}: builds the
/// paired subviews φ'_i/φ'_j, owns the two translators T_{i→j}/T_{j→i}, and
/// per iteration samples common-node path windows and optimizes the
/// translation (T1/T2) and reconstruction (R1/R2) objectives, updating both
/// the translators (dense Adam) and the common nodes' view-specific
/// embeddings (sparse-row Adam).
class CrossViewTrainer {
 public:
  /// `pair`, `side_i`, and `side_j` must outlive the trainer; side_i/side_j
  /// are the single-view trainers of views pair->view_i / pair->view_j.
  CrossViewTrainer(const ViewPair* pair, SingleViewTrainer* side_i,
                   SingleViewTrainer* side_j, const TransNConfig& config,
                   Rng& rng);

  /// One pass of lines 9–12 of Algorithm 1. Returns the mean per-window
  /// loss (0 when no trainable window could be sampled).
  ///
  /// With a pool of more than one thread, window *sampling* (the walk-heavy
  /// part) fans out across workers with split RNGs; the translator/Adam
  /// optimization stays sequential because its state (dense Adam moments,
  /// shared step counter) is not safe to update concurrently. Null pool (or
  /// one thread) is bit-identical to the sequential algorithm.
  double RunIteration(Rng& rng, ThreadPool* pool);
  double RunIteration(Rng& rng) { return RunIteration(rng, nullptr); }

  /// The view-pair this trainer operates on.
  const ViewPair& pair() const { return *pair_; }

  const PairedSubview& subview_i() const { return subview_i_; }
  const PairedSubview& subview_j() const { return subview_j_; }
  const Translator& translator_ij() const { return *translator_ij_; }
  const Translator& translator_ji() const { return *translator_ji_; }
  /// Mutable access for checkpoint restore.
  Translator& mutable_translator_ij() { return *translator_ij_; }
  Translator& mutable_translator_ji() { return *translator_ji_; }
  /// The dense Adam over both translators' parameters; checkpointing
  /// saves/restores its step count alongside the parameters' moments.
  AdamOptimizer& translator_optimizer() { return translator_opt_; }
  const AdamOptimizer& translator_optimizer() const { return translator_opt_; }

  /// Samples up to `max_windows` fixed-length common-node windows from one
  /// side's paired subview (side 0 = i, 1 = j), as global node ids. Public
  /// for tests and the Theorem-1 bench. Const and reentrant: parallel
  /// iterations call it concurrently with per-shard RNGs.
  std::vector<std::vector<NodeId>> SampleCommonWindows(
      int side, Rng& rng, size_t max_windows) const;

 private:
  /// Runs translation+reconstruction for one window sampled on `from_i`'s
  /// side; returns the window loss.
  double TrainWindow(const std::vector<NodeId>& window, bool from_i, Rng& rng);

  /// Applies accumulated embedding-row gradients with sparse Adam.
  void ApplyEmbeddingGrads(const std::vector<NodeId>& window,
                           const Matrix& grads, SingleViewTrainer* side);

  const ViewPair* pair_;
  SingleViewTrainer* side_i_;
  SingleViewTrainer* side_j_;
  TransNConfig config_;
  PairedSubview subview_i_;
  PairedSubview subview_j_;
  std::unique_ptr<RandomWalker> walker_i_;
  std::unique_ptr<RandomWalker> walker_j_;
  std::unique_ptr<Translator> translator_ij_;
  std::unique_ptr<Translator> translator_ji_;
  AdamOptimizer translator_opt_;
  AdamConfig embedding_adam_;
  /// Registry handles cached at construction (see obs/metric_names.h).
  obs::Counter* windows_counter_;
  obs::Counter* translator_steps_counter_;
  obs::Counter* adam_row_updates_counter_;
  obs::Histogram* adam_step_seconds_hist_;
};

}  // namespace transn

#endif  // TRANSN_CORE_CROSS_VIEW_H_
