#include "core/model_io.h"

#include <string.h>

#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "core/transn.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/ann_index.h"
#include "serve/serving_format.h"
#include "util/safe_io.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace transn {
namespace {

/// Scoped wall-time recording for one of the io.* histograms.
obs::Histogram* IoHistogram(const char* name, const char* help) {
  return obs::MetricsRegistry::Default().GetHistogram(name, "seconds", help);
}

}  // namespace

Status SaveEmbeddings(const HeteroGraph& g, const Matrix& embeddings,
                      const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoEmbeddingsSaveSeconds, "SaveEmbeddings wall time"));
  if (embeddings.rows() != g.num_nodes()) {
    return Status::InvalidArgument("embedding rows != graph nodes");
  }
  std::ostringstream out;
  out << embeddings.rows() << "\t" << embeddings.cols() << "\n";
  // max_digits10 makes the text round-trip bit-exact (shortest precision
  // that distinguishes every double); 9 digits used to lose the low bits.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out << g.node_name(n);
    const double* row = embeddings.Row(n);
    for (size_t c = 0; c < embeddings.cols(); ++c) out << "\t" << row[c];
    out << "\n";
  }
  AtomicFileWriter writer(path);
  writer.Write(out.str());
  return writer.Commit();
}

StatusOr<LoadedEmbeddings> LoadEmbeddings(const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoEmbeddingsLoadSeconds, "LoadEmbeddings wall time"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const double file_size = static_cast<double>(std::streamoff(in.tellg()));
  in.seekg(0, std::ios::beg);

  std::string line;
  if (!std::getline(in, line) || Trim(line).empty()) {
    return Status::InvalidArgument("empty embedding file: " + path);
  }
  // Trim handles CRLF line endings and stray surrounding whitespace on every
  // line (files written on Windows or hand-edited must not crash the loader).
  std::vector<std::string> header = Split(Trim(line), '\t');
  int64_t rows = 0, cols = 0;
  if (header.size() != 2 || !ParseInt64(header[0], &rows) ||
      !ParseInt64(header[1], &cols) || rows < 0 || cols <= 0) {
    return Status::InvalidArgument("bad embedding header: " + line);
  }
  // A row needs at least "x" + cols * "\t0" + "\n" bytes, so a header whose
  // claim exceeds what the file can physically hold is rejected *before* the
  // matrix allocation (a corrupt header must not drive a bad_alloc crash).
  if (static_cast<double>(rows) * (2.0 * static_cast<double>(cols) + 2.0) >
      file_size) {
    return Status::InvalidArgument(StrFormat(
        "embedding header claims %lld x %lld values but the file is only "
        "%.0f bytes",
        static_cast<long long>(rows), static_cast<long long>(cols),
        file_size));
  }
  LoadedEmbeddings out;
  out.embeddings.Resize(static_cast<size_t>(rows), static_cast<size_t>(cols));
  out.names.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(
          StrFormat("truncated embedding file: %lld of %lld rows",
                    static_cast<long long>(r), static_cast<long long>(rows)));
    }
    std::vector<std::string> fields = Split(Trim(line), '\t');
    if (fields.size() != static_cast<size_t>(cols) + 1) {
      return Status::InvalidArgument(StrFormat(
          "row %lld: expected %lld values, got %zu",
          static_cast<long long>(r), static_cast<long long>(cols),
          fields.size() - (fields.empty() ? 0 : 1)));
    }
    out.names.push_back(fields[0]);
    for (int64_t c = 0; c < cols; ++c) {
      double v = 0.0;
      // ParseDouble trims, so per-field stray whitespace is tolerated; any
      // non-numeric residue is a hard error.
      if (!ParseDouble(fields[static_cast<size_t>(c) + 1], &v)) {
        return Status::InvalidArgument(StrFormat(
            "row %lld: bad embedding value '%s'", static_cast<long long>(r),
            fields[static_cast<size_t>(c) + 1].c_str()));
      }
      out.embeddings(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
    }
  }
  // Blank trailing lines are fine; any further payload means the header row
  // count disagrees with the data, which deserves a loud failure.
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) {
      return Status::InvalidArgument(
          StrFormat("trailing data after %lld embedding rows",
                    static_cast<long long>(rows)));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TransN checkpoints.
//
// v2 layout (text, LF-only; DESIGN.md §8):
//
//   # transn checkpoint v2
//   ITER\t<completed iterations>
//   RNG\t<s0>\t<s1>\t<s2>\t<s3>\t<0|1>\t<cached gaussian>   (all 16-hex u64)
//   SCALAR\t<name>\t<int64>                                 (Adam step counts)
//   MATRIX\t<name>\t<rows>\t<cols>
//   <rows lines of tab-separated precision-17 doubles>
//   CRC\t<8-hex CRC-32 of the section, MATRIX line through last data row>
//   ... more MATRIX sections ...
//   END\t<matrix count>\t<8-hex CRC-32 of every preceding byte>
//
// The loader parses the whole file strictly — required trailing newline,
// per-section CRCs, and the END trailer — so every possible truncation point
// and any single corrupted byte yields a non-OK Status. v1 files (weights
// only, no CRCs) still load through the legacy parser.
// ---------------------------------------------------------------------------

namespace {

constexpr char kCheckpointHeaderV1[] = "# transn checkpoint v1";
constexpr char kCheckpointHeaderV2[] = "# transn checkpoint v2";

std::string FormatMatrixSection(
    const std::string& name, size_t rows, size_t cols,
    const std::function<const double*(size_t)>& row_fn) {
  std::ostringstream out;
  out.precision(17);
  out << "MATRIX\t" << name << "\t" << rows << "\t" << cols << "\n";
  for (size_t r = 0; r < rows; ++r) {
    const double* row = row_fn(r);
    for (size_t c = 0; c < cols; ++c) {
      out << (c ? "\t" : "") << row[c];
    }
    out << "\n";
  }
  return out.str();
}

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int d = 0;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

bool ParseHexU32(std::string_view s, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseHexU64(s, &v) || v > 0xFFFFFFFFull) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

/// One writable slot the checkpoint can address: expected shape for
/// validation plus deferred per-row accessors. Rows rather than whole
/// matrices, because the backing stores differ — table values are a dense
/// Matrix while Adam moments live in the cache-line-padded AdamMomentStore —
/// and because the lazy Adam buffers must not be materialized until
/// assignment. The on-disk section format is unchanged.
struct MatrixSlot {
  size_t rows = 0;
  size_t cols = 0;
  /// Core model weights are required in every checkpoint and restored by
  /// plain LoadTransNCheckpoint; non-core (Adam moment) slots are optional
  /// and restored only by ResumeTransNCheckpoint.
  bool core = false;
  /// Destination row for restore; allocates lazy Adam buffers when needed.
  std::function<double*(size_t)> resolve_row;
  /// Whether the backing buffer is materialized; save skips absent slots (a
  /// table whose rows have never seen a sparse AdamStep) without allocating.
  std::function<bool()> present;
  /// Read access to one row for save (valid while present()).
  std::function<const double*(size_t)> peek_row;
};

struct ScalarSlot {
  std::function<void(int64_t)> apply;
};

struct ModelSlots {
  std::map<std::string, MatrixSlot> matrices;
  std::map<std::string, ScalarSlot> scalars;
};

ModelSlots BuildModelSlots(TransNModel& model) {
  ModelSlots slots;
  auto always = [] { return true; };
  auto add_table = [&slots, &always](const std::string& base,
                                     EmbeddingTable& table) {
    slots.matrices[base] = {
        table.num_rows(), table.dim(), true,
        [&table](size_t r) { return table.Row(r); }, always,
        [&table](size_t r) -> const double* { return table.Row(r); }};
    slots.matrices[base + ".adam_m"] = {
        table.num_rows(), table.dim(), false,
        [&table](size_t r) { return table.mutable_adam_m_row(r); },
        [&table] { return table.has_adam_state(); },
        [&table](size_t r) { return table.adam_m_row(r); }};
    slots.matrices[base + ".adam_v"] = {
        table.num_rows(), table.dim(), false,
        [&table](size_t r) { return table.mutable_adam_v_row(r); },
        [&table] { return table.has_adam_state(); },
        [&table](size_t r) { return table.adam_v_row(r); }};
    slots.scalars[base + ".adam_t"] = {
        [&table](int64_t t) { table.set_adam_step_count(t); }};
  };
  auto add_param = [&slots, &always](const std::string& base,
                                     Parameter& param) {
    auto rows_of = [](Matrix& m) {
      return [&m](size_t r) { return m.Row(r); };
    };
    auto const_rows_of = [](const Matrix& m) {
      return [&m](size_t r) { return m.Row(r); };
    };
    slots.matrices[base] = {param.value.rows(), param.value.cols(), true,
                            rows_of(param.value), always,
                            const_rows_of(param.value)};
    // AdamOptimizer::Register allocates the moments at construction, so
    // translator parameters always have (possibly all-zero) Adam state.
    slots.matrices[base + ".adam_m"] = {param.value.rows(), param.value.cols(),
                                        false, rows_of(param.adam_m), always,
                                        const_rows_of(param.adam_m)};
    slots.matrices[base + ".adam_v"] = {param.value.rows(), param.value.cols(),
                                        false, rows_of(param.adam_v), always,
                                        const_rows_of(param.adam_v)};
  };

  for (size_t i = 0; i < model.views().size(); ++i) {
    SingleViewTrainer* sv = model.single_view_trainer_or_null(i);
    if (sv == nullptr) continue;
    add_table(StrFormat("view%zu.input", i), sv->embeddings());
    add_table(StrFormat("view%zu.context", i), sv->context_embeddings());
  }
  for (size_t p = 0; p < model.num_cross_trainers(); ++p) {
    CrossViewTrainer& cross = model.cross_view_trainer(p);
    for (auto [dir, translator] :
         {std::pair<const char*, Translator*>{"ij",
                                              &cross.mutable_translator_ij()},
          {"ji", &cross.mutable_translator_ji()}}) {
      for (size_t e = 0; e < translator->num_encoders(); ++e) {
        add_param(StrFormat("cross%zu.%s.w%zu", p, dir, e),
                  translator->weight(e));
        add_param(StrFormat("cross%zu.%s.b%zu", p, dir, e),
                  translator->bias(e));
      }
    }
    slots.scalars[StrFormat("cross%zu.adam_t", p)] = {
        [&cross](int64_t t) { cross.translator_optimizer().set_step_count(t); }};
  }
  return slots;
}

/// Everything a checkpoint file can carry, parsed but not yet applied.
struct ParsedCheckpoint {
  int version = 0;
  uint64_t iterations = 0;
  bool has_rng = false;
  RngState rng;
  std::map<std::string, int64_t> scalars;
  std::map<std::string, Matrix> matrices;
};

/// Parses the tab-separated data rows of one matrix. `header` is the split
/// MATRIX line; `next_line` yields successive data lines.
Status ParseMatrixBody(const std::vector<std::string>& header,
                       const std::function<bool(std::string_view*)>& next_line,
                       std::string* name, Matrix* out) {
  if (header.size() != 4 || header[0] != "MATRIX") {
    return Status::InvalidArgument("bad checkpoint MATRIX line");
  }
  int64_t rows = 0, cols = 0;
  if (!ParseInt64(header[2], &rows) || !ParseInt64(header[3], &cols) ||
      rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("bad matrix shape for " + header[1]);
  }
  *name = header[1];
  out->Resize(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (int64_t r = 0; r < rows; ++r) {
    std::string_view line;
    if (!next_line(&line)) {
      return Status::InvalidArgument("truncated matrix " + *name);
    }
    std::vector<std::string> cells = Split(Trim(line), '\t');
    if (cells.size() != static_cast<size_t>(cols)) {
      return Status::InvalidArgument("bad row arity in " + *name);
    }
    for (int64_t c = 0; c < cols; ++c) {
      double v = 0.0;
      if (!ParseDouble(cells[static_cast<size_t>(c)], &v)) {
        return Status::InvalidArgument("bad value in " + *name);
      }
      (*out)(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
    }
  }
  return Status::Ok();
}

/// The legacy v1 reader: comment/blank lines permitted, no checksums, no
/// training state. Kept so checkpoints written before the v2 format load
/// unchanged.
Status ParseCheckpointV1(std::string_view content, ParsedCheckpoint* out) {
  out->version = 1;
  std::istringstream in{std::string(content)};
  std::string line;
  auto next_line = [&in, &line](std::string_view* lv) {
    if (!std::getline(in, line)) return false;
    *lv = line;
    return true;
  };
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> header = Split(trimmed, '\t');
    std::string name;
    Matrix m;
    RETURN_IF_ERROR(ParseMatrixBody(header, next_line, &name, &m));
    if (!out->matrices.emplace(name, std::move(m)).second) {
      return Status::InvalidArgument("duplicate matrix " + name);
    }
  }
  return Status::Ok();
}

/// The strict v2 reader: every line accounted for, per-section and
/// whole-file CRCs verified, trailing newline required. Any truncation
/// point or corrupted byte yields a non-OK Status.
Status ParseCheckpointV2(std::string_view content, const std::string& path,
                         ParsedCheckpoint* out) {
  out->version = 2;
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument("truncated checkpoint (no final newline): " +
                                   path);
  }
  size_t pos = 0;
  // Pops the next line (sans newline), recording its start offset.
  auto next_line = [&content, &pos](std::string_view* lv,
                                    size_t* start) -> bool {
    if (pos >= content.size()) return false;
    if (start != nullptr) *start = pos;
    const size_t nl = content.find('\n', pos);
    // content ends with '\n', so nl is always found.
    *lv = content.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };

  std::string_view line;
  next_line(&line, nullptr);  // the version header, already dispatched on

  if (!next_line(&line, nullptr) || !StartsWith(line, "ITER\t")) {
    return Status::InvalidArgument("checkpoint missing ITER line: " + path);
  }
  int64_t iter = 0;
  if (!ParseInt64(line.substr(5), &iter) || iter < 0) {
    return Status::InvalidArgument("bad ITER line: " + std::string(line));
  }
  out->iterations = static_cast<uint64_t>(iter);

  if (!next_line(&line, nullptr) || !StartsWith(line, "RNG\t")) {
    return Status::InvalidArgument("checkpoint missing RNG line: " + path);
  }
  {
    std::vector<std::string> f = Split(line, '\t');
    uint64_t gaussian_bits = 0;
    int64_t has = 0;
    if (f.size() != 7 || !ParseHexU64(f[1], &out->rng.s[0]) ||
        !ParseHexU64(f[2], &out->rng.s[1]) ||
        !ParseHexU64(f[3], &out->rng.s[2]) ||
        !ParseHexU64(f[4], &out->rng.s[3]) || !ParseInt64(f[5], &has) ||
        (has != 0 && has != 1) || !ParseHexU64(f[6], &gaussian_bits)) {
      return Status::InvalidArgument("bad RNG line: " + std::string(line));
    }
    out->rng.has_cached_gaussian = has == 1;
    memcpy(&out->rng.cached_gaussian, &gaussian_bits, sizeof(double));
    out->has_rng = true;
  }

  // SCALAR lines, then MATRIX sections, then the END trailer.
  bool saw_end = false;
  bool in_scalars = true;
  while (true) {
    size_t line_start = 0;
    if (!next_line(&line, &line_start)) {
      return Status::InvalidArgument("checkpoint missing END trailer: " +
                                     path);
    }
    if (StartsWith(line, "SCALAR\t")) {
      if (!in_scalars) {
        return Status::InvalidArgument(
            "SCALAR line after first MATRIX section: " + path);
      }
      std::vector<std::string> f = Split(line, '\t');
      int64_t v = 0;
      if (f.size() != 3 || f[1].empty() || !ParseInt64(f[2], &v)) {
        return Status::InvalidArgument("bad SCALAR line: " + std::string(line));
      }
      if (!out->scalars.emplace(f[1], v).second) {
        return Status::InvalidArgument("duplicate scalar " + f[1]);
      }
      continue;
    }
    if (StartsWith(line, "MATRIX\t")) {
      in_scalars = false;
      auto data_line = [&next_line](std::string_view* lv) {
        return next_line(lv, nullptr);
      };
      std::string name;
      Matrix m;
      RETURN_IF_ERROR(
          ParseMatrixBody(Split(line, '\t'), data_line, &name, &m));
      // The CRC trailer covers the MATRIX line through the last data row.
      const size_t section_end = pos;
      std::string_view crc_line;
      if (!next_line(&crc_line, nullptr) || !StartsWith(crc_line, "CRC\t")) {
        return Status::InvalidArgument("matrix " + name +
                                       " missing CRC trailer");
      }
      uint32_t stored = 0;
      if (!ParseHexU32(crc_line.substr(4), &stored)) {
        return Status::InvalidArgument("bad CRC line for matrix " + name);
      }
      const uint32_t actual =
          Crc32(content.substr(line_start, section_end - line_start));
      if (actual != stored) {
        return Status::DataLoss(StrFormat(
            "CRC mismatch in checkpoint matrix %s: stored %08x, computed "
            "%08x",
            name.c_str(), stored, actual));
      }
      if (!out->matrices.emplace(name, std::move(m)).second) {
        return Status::InvalidArgument("duplicate matrix " + name);
      }
      continue;
    }
    if (StartsWith(line, "END\t")) {
      std::vector<std::string> f = Split(line, '\t');
      int64_t count = 0;
      uint32_t stored = 0;
      if (f.size() != 3 || !ParseInt64(f[1], &count) ||
          !ParseHexU32(f[2], &stored)) {
        return Status::InvalidArgument("bad END line: " + std::string(line));
      }
      if (count < 0 ||
          static_cast<size_t>(count) != out->matrices.size()) {
        return Status::DataLoss(StrFormat(
            "checkpoint END declares %lld matrices, found %zu",
            static_cast<long long>(count), out->matrices.size()));
      }
      const uint32_t actual = Crc32(content.substr(0, line_start));
      if (actual != stored) {
        return Status::DataLoss(StrFormat(
            "whole-file CRC mismatch: stored %08x, computed %08x", stored,
            actual));
      }
      saw_end = true;
      break;
    }
    return Status::InvalidArgument("unexpected checkpoint line: " +
                                   std::string(line.substr(0, 64)));
  }
  if (!saw_end || pos != content.size()) {
    return Status::InvalidArgument("trailing data after END trailer: " + path);
  }
  return Status::Ok();
}

Status ParseCheckpointFile(const std::string& path, ParsedCheckpoint* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in) return Status::IoError("read failed: " + path);
  const std::string content = buf.str();

  const size_t nl = content.find('\n');
  const std::string_view first =
      nl == std::string::npos ? std::string_view(content)
                              : std::string_view(content).substr(0, nl);
  if (first == kCheckpointHeaderV2) {
    return ParseCheckpointV2(content, path, out);
  }
  if (first == kCheckpointHeaderV1) {
    return ParseCheckpointV1(content, out);
  }
  return Status::InvalidArgument("not a transn checkpoint (bad header): " +
                                 path);
}

/// Validates every parsed matrix against the model's slots, then assigns.
/// Nothing in the model is touched until validation has fully passed, so a
/// bad checkpoint never leaves a partially mutated model. With
/// `restore_training_state`, Adam moments, step counts, RNG state, and the
/// iteration counter are applied too.
Status ApplyCheckpoint(TransNModel* model, ParsedCheckpoint& parsed,
                       bool restore_training_state) {
  ModelSlots slots = BuildModelSlots(*model);

  // Validation pass: unknown names, shape mismatches, missing core
  // matrices, and half-present Adam pairs all fail here.
  for (const auto& [name, m] : parsed.matrices) {
    auto it = slots.matrices.find(name);
    if (it == slots.matrices.end()) {
      return Status::InvalidArgument("checkpoint matrix " + name +
                                     " does not exist in this model");
    }
    if (m.rows() != it->second.rows || m.cols() != it->second.cols) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for %s: checkpoint %zux%zu vs model %zux%zu",
          name.c_str(), m.rows(), m.cols(), it->second.rows,
          it->second.cols));
    }
  }
  for (const auto& [name, slot] : slots.matrices) {
    if (slot.core && parsed.matrices.find(name) == parsed.matrices.end()) {
      return Status::InvalidArgument("checkpoint missing matrix " + name);
    }
    if (!slot.core) {
      // .adam_m and .adam_v must come as a pair or not at all.
      const bool present = parsed.matrices.find(name) != parsed.matrices.end();
      const std::string sibling =
          name.substr(0, name.size() - 1) + (name.back() == 'm' ? "v" : "m");
      const bool sibling_present =
          parsed.matrices.find(sibling) != parsed.matrices.end();
      if (present != sibling_present) {
        return Status::InvalidArgument("checkpoint has " +
                                       (present ? name : sibling) +
                                       " without its Adam twin");
      }
    }
  }
  for (const auto& [name, value] : parsed.scalars) {
    (void)value;
    if (slots.scalars.find(name) == slots.scalars.end()) {
      return Status::InvalidArgument("checkpoint scalar " + name +
                                     " does not exist in this model");
    }
  }
  if (restore_training_state) {
    if (parsed.version < 2) {
      return Status::InvalidArgument(
          "cannot resume from a v1 checkpoint (no training state); "
          "use --load-checkpoint to restart from its weights");
    }
    CHECK(parsed.has_rng);  // guaranteed by ParseCheckpointV2
  }

  // Assignment pass — cannot fail.
  for (auto& [name, m] : parsed.matrices) {
    const MatrixSlot& slot = slots.matrices.at(name);
    if (!slot.core && !restore_training_state) continue;
    for (size_t r = 0; r < m.rows(); ++r) {
      const double* src = m.Row(r);
      double* dst = slot.resolve_row(r);
      for (size_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
    }
  }
  if (restore_training_state) {
    for (const auto& [name, value] : parsed.scalars) {
      slots.scalars.at(name).apply(value);
    }
    model->mutable_rng().RestoreState(parsed.rng);
    model->set_completed_iterations(parsed.iterations);
  }
  return Status::Ok();
}

}  // namespace

Status SaveTransNCheckpoint(const TransNModel& model,
                            const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoCheckpointSaveSeconds, "SaveTransNCheckpoint wall time"));
  // BuildModelSlots needs mutable access structurally, but saving only
  // reads; the const_cast is confined here.
  ModelSlots slots = BuildModelSlots(const_cast<TransNModel&>(model));

  std::string file = std::string(kCheckpointHeaderV2) + "\n";
  file += StrFormat("ITER\t%llu\n",
                    static_cast<unsigned long long>(
                        model.completed_iterations()));
  const RngState rng = model.rng().SaveState();
  uint64_t gaussian_bits = 0;
  memcpy(&gaussian_bits, &rng.cached_gaussian, sizeof(double));
  file += StrFormat(
      "RNG\t%016llx\t%016llx\t%016llx\t%016llx\t%d\t%016llx\n",
      static_cast<unsigned long long>(rng.s[0]),
      static_cast<unsigned long long>(rng.s[1]),
      static_cast<unsigned long long>(rng.s[2]),
      static_cast<unsigned long long>(rng.s[3]),
      rng.has_cached_gaussian ? 1 : 0,
      static_cast<unsigned long long>(gaussian_bits));

  TransNModel& m = const_cast<TransNModel&>(model);
  for (size_t i = 0; i < m.views().size(); ++i) {
    SingleViewTrainer* sv = m.single_view_trainer_or_null(i);
    if (sv == nullptr) continue;
    file += StrFormat("SCALAR\tview%zu.input.adam_t\t%lld\n", i,
                      static_cast<long long>(
                          sv->embeddings().adam_step_count()));
    file += StrFormat("SCALAR\tview%zu.context.adam_t\t%lld\n", i,
                      static_cast<long long>(
                          sv->context_embeddings().adam_step_count()));
  }
  for (size_t p = 0; p < m.num_cross_trainers(); ++p) {
    file += StrFormat("SCALAR\tcross%zu.adam_t\t%lld\n", p,
                      static_cast<long long>(
                          m.cross_view_trainer(p)
                              .translator_optimizer()
                              .step_count()));
  }

  // Matrix sections in slot-map (name) order; Adam moments ride along only
  // when allocated. Each section gets its own CRC trailer.
  size_t num_matrices = 0;
  for (const auto& [name, slot] : slots.matrices) {
    // Table moments exist only after the first sparse AdamStep; present()
    // reports them absent without allocating (resolve_row() would).
    if (!slot.present()) continue;
    const std::string section =
        FormatMatrixSection(name, slot.rows, slot.cols, slot.peek_row);
    file += section;
    file += StrFormat("CRC\t%08x\n", Crc32(section));
    ++num_matrices;
  }
  file += StrFormat("END\t%zu\t%08x\n", num_matrices, Crc32(file));

  AtomicFileWriter writer(path);
  writer.Write(file);
  Status status = writer.Commit();
  if (status.ok()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry
        .GetCounter(obs::kCheckpointSavesTotal, "checkpoints",
                    "checkpoints committed (periodic and final)")
        ->Increment();
    registry
        .GetGauge(obs::kCheckpointLastGoodIteration, "iteration",
                  "iteration recorded in the last committed checkpoint")
        ->Set(static_cast<double>(model.completed_iterations()));
  }
  return status;
}

Status LoadTransNCheckpoint(TransNModel* model, const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoCheckpointLoadSeconds, "LoadTransNCheckpoint wall time"));
  CHECK(model != nullptr);
  ParsedCheckpoint parsed;
  RETURN_IF_ERROR(ParseCheckpointFile(path, &parsed));
  return ApplyCheckpoint(model, parsed, /*restore_training_state=*/false);
}

Status ResumeTransNCheckpoint(TransNModel* model, const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoCheckpointLoadSeconds, "ResumeTransNCheckpoint wall time"));
  CHECK(model != nullptr);
  ParsedCheckpoint parsed;
  RETURN_IF_ERROR(ParseCheckpointFile(path, &parsed));
  RETURN_IF_ERROR(ApplyCheckpoint(model, parsed,
                                  /*restore_training_state=*/true));
  obs::MetricsRegistry::Default()
      .GetCounter(obs::kCheckpointResumesTotal, "resumes",
                  "training runs resumed from a checkpoint")
      ->Increment();
  return Status::Ok();
}

namespace {

void AppendMatrix(std::string* buf, const Matrix& m) {
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) AppendF64(buf, data[i]);
}

void AppendTranslator(std::string* buf, const Translator& t, uint32_t from,
                      uint32_t to) {
  AppendU32(buf, from);
  AppendU32(buf, to);
  AppendU8(buf, t.simple() ? 1 : 0);
  AppendU8(buf, t.final_relu() ? 1 : 0);
  AppendU32(buf, static_cast<uint32_t>(t.num_encoders()));
  for (size_t e = 0; e < t.num_encoders(); ++e) {
    AppendMatrix(buf, t.weight(e).value);
    AppendMatrix(buf, t.bias(e).value);
  }
}

/// Appends the v2 per-section CRC-32 covering buf[section_start..end).
void AppendSectionCrc(std::string* buf, size_t section_start) {
  AppendU32(buf,
            Crc32(buf->data() + section_start, buf->size() - section_start));
}

}  // namespace

Status ExportServingModel(const TransNModel& model, const std::string& path,
                          const ServingExportOptions& options) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoServingExportSeconds, "ExportServingModel wall time"));
  const HeteroGraph& g = model.graph();
  const std::vector<View>& views = model.views();
  const size_t num_translators = 2 * model.num_cross_trainers();
  if (g.num_nodes() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("graph too large for serving format");
  }
  const Matrix final_embeddings = model.FinalEmbeddings();

  // A model without an ANN index is still written as v2, so existing files
  // and their byte-level goldens never change; v3 only when the new section
  // is actually present.
  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, options.ann_index ? kServingFormatVersionV3
                                    : kServingFormatVersion);
  size_t section = buf.size();
  AppendU32(&buf, static_cast<uint32_t>(model.config().dim));
  AppendU32(&buf, num_translators > 0
                      ? static_cast<uint32_t>(model.config().translator_seq_len)
                      : 0);
  AppendU32(&buf, static_cast<uint32_t>(g.num_nodes()));
  AppendU32(&buf, static_cast<uint32_t>(views.size()));
  AppendU32(&buf, static_cast<uint32_t>(num_translators));
  AppendU8(&buf, static_cast<uint8_t>(
                     kServingFlagFinalEmbeddings |
                     (options.ann_index ? kServingFlagAnnIndex : 0)));
  AppendSectionCrc(&buf, section);

  section = buf.size();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    AppendString(&buf, g.node_name(n));
  }
  AppendSectionCrc(&buf, section);

  section = buf.size();
  AppendMatrix(&buf, final_embeddings);
  AppendSectionCrc(&buf, section);

  for (size_t i = 0; i < views.size(); ++i) {
    const View& view = views[i];
    section = buf.size();
    AppendString(&buf, g.edge_type_name(view.edge_type));
    AppendU8(&buf, view.is_heter ? 1 : 0);
    const SingleViewTrainer* sv = model.single_view_trainer_or_null(i);
    if (sv == nullptr) {  // empty view: metadata only
      AppendU32(&buf, 0);
      AppendSectionCrc(&buf, section);
      continue;
    }
    const std::vector<NodeId>& locals = view.graph.nodes();
    AppendU32(&buf, static_cast<uint32_t>(locals.size()));
    for (NodeId global : locals) AppendU32(&buf, global);
    AppendMatrix(&buf, sv->embeddings().values());
    AppendSectionCrc(&buf, section);
  }

  for (size_t p = 0; p < model.num_cross_trainers(); ++p) {
    const CrossViewTrainer& cross = model.cross_view_trainer(p);
    const uint32_t vi = static_cast<uint32_t>(cross.pair().view_i);
    const uint32_t vj = static_cast<uint32_t>(cross.pair().view_j);
    section = buf.size();
    AppendTranslator(&buf, cross.translator_ij(), vi, vj);
    AppendSectionCrc(&buf, section);
    section = buf.size();
    AppendTranslator(&buf, cross.translator_ji(), vj, vi);
    AppendSectionCrc(&buf, section);
  }

  if (options.ann_index) {
    std::unique_ptr<ThreadPool> build_pool;
    if (options.ann_build_threads != 1) {
      build_pool = std::make_unique<ThreadPool>(options.ann_build_threads);
    }
    StatusOr<AnnIndex> ann =
        AnnIndex::Build(final_embeddings, options.ann_metric,
                        options.ann_params, build_pool.get());
    if (!ann.ok()) return ann.status();
    std::string payload;
    AppendU32(&payload, kServingAnnTargetFinal);
    ann->AppendTo(&payload);
    section = buf.size();
    AppendU32(&buf, static_cast<uint32_t>(payload.size()));
    buf.append(payload);
    AppendSectionCrc(&buf, section);
  }

  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));

  AtomicFileWriter writer(path);
  writer.Write(buf);
  return writer.Commit();
}

Status ExportServingModel(const TransNModel& model, const std::string& path) {
  return ExportServingModel(model, path, ServingExportOptions());
}

}  // namespace transn
