#include "core/model_io.h"

#include <fstream>
#include <map>

#include "core/transn.h"
#include "util/string_util.h"

namespace transn {

Status SaveEmbeddings(const HeteroGraph& g, const Matrix& embeddings,
                      const std::string& path) {
  if (embeddings.rows() != g.num_nodes()) {
    return Status::InvalidArgument("embedding rows != graph nodes");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << embeddings.rows() << "\t" << embeddings.cols() << "\n";
  out.precision(9);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out << g.node_name(n);
    const double* row = embeddings.Row(n);
    for (size_t c = 0; c < embeddings.cols(); ++c) out << "\t" << row[c];
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<LoadedEmbeddings> LoadEmbeddings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::InvalidArgument("empty file");
  std::vector<std::string> header = Split(Trim(line), '\t');
  int64_t rows = 0, cols = 0;
  if (header.size() != 2 || !ParseInt64(header[0], &rows) ||
      !ParseInt64(header[1], &cols) || rows < 0 || cols <= 0) {
    return Status::InvalidArgument("bad embedding header: " + line);
  }
  LoadedEmbeddings out;
  out.embeddings.Resize(static_cast<size_t>(rows), static_cast<size_t>(cols));
  out.names.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated embedding file");
    }
    std::vector<std::string> fields = Split(Trim(line), '\t');
    if (fields.size() != static_cast<size_t>(cols) + 1) {
      return Status::InvalidArgument(
          StrFormat("row %lld: expected %lld values", static_cast<long long>(r),
                    static_cast<long long>(cols)));
    }
    out.names.push_back(fields[0]);
    for (int64_t c = 0; c < cols; ++c) {
      double v = 0.0;
      if (!ParseDouble(fields[static_cast<size_t>(c) + 1], &v)) {
        return Status::InvalidArgument("bad embedding value: " + fields[c + 1]);
      }
      out.embeddings(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
    }
  }
  return out;
}

namespace {

void WriteMatrix(std::ofstream& out, const std::string& name,
                 const Matrix& m) {
  out << "MATRIX\t" << name << "\t" << m.rows() << "\t" << m.cols() << "\n";
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      out << (c ? "\t" : "") << row[c];
    }
    out << "\n";
  }
}

/// Applies fn(name, matrix_ref) to every checkpointable matrix of the
/// model, in a deterministic order shared by save and load.
template <typename Fn>
void ForEachModelMatrix(TransNModel& model, Fn&& fn) {
  for (size_t i = 0; i < model.views().size(); ++i) {
    SingleViewTrainer* sv = model.single_view_trainer_or_null(i);
    if (sv == nullptr) continue;
    fn(StrFormat("view%zu.input", i), sv->embeddings().mutable_values());
    fn(StrFormat("view%zu.context", i),
       sv->context_embeddings().mutable_values());
  }
  for (size_t p = 0; p < model.num_cross_trainers(); ++p) {
    CrossViewTrainer& cross = model.cross_view_trainer(p);
    for (auto [dir, translator] :
         {std::pair<const char*, Translator*>{"ij",
                                              &cross.mutable_translator_ij()},
          {"ji", &cross.mutable_translator_ji()}}) {
      for (size_t e = 0; e < translator->num_encoders(); ++e) {
        fn(StrFormat("cross%zu.%s.w%zu", p, dir, e),
           translator->weight(e).value);
        fn(StrFormat("cross%zu.%s.b%zu", p, dir, e),
           translator->bias(e).value);
      }
    }
  }
}

}  // namespace

Status SaveTransNCheckpoint(const TransNModel& model,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# transn checkpoint v1\n";
  out.precision(17);
  // ForEachModelMatrix needs mutable access structurally, but saving only
  // reads; the const_cast is confined here.
  ForEachModelMatrix(const_cast<TransNModel&>(model),
                     [&out](const std::string& name, const Matrix& m) {
                       WriteMatrix(out, name, m);
                     });
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadTransNCheckpoint(TransNModel* model, const std::string& path) {
  CHECK(model != nullptr);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::map<std::string, Matrix> matrices;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> header = Split(trimmed, '\t');
    if (header.size() != 4 || header[0] != "MATRIX") {
      return Status::InvalidArgument("bad checkpoint header line: " + line);
    }
    int64_t rows = 0, cols = 0;
    if (!ParseInt64(header[2], &rows) || !ParseInt64(header[3], &cols) ||
        rows <= 0 || cols <= 0) {
      return Status::InvalidArgument("bad matrix shape: " + line);
    }
    Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated matrix " + header[1]);
      }
      std::vector<std::string> cells = Split(Trim(line), '\t');
      if (cells.size() != static_cast<size_t>(cols)) {
        return Status::InvalidArgument("bad row arity in " + header[1]);
      }
      for (int64_t c = 0; c < cols; ++c) {
        double v = 0.0;
        if (!ParseDouble(cells[static_cast<size_t>(c)], &v)) {
          return Status::InvalidArgument("bad value in " + header[1]);
        }
        m(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
      }
    }
    matrices.emplace(header[1], std::move(m));
  }

  // Assign with shape validation; every expected matrix must be present.
  Status status = Status::Ok();
  size_t assigned = 0;
  ForEachModelMatrix(*model, [&](const std::string& name, Matrix& dst) {
    if (!status.ok()) return;
    auto it = matrices.find(name);
    if (it == matrices.end()) {
      status = Status::InvalidArgument("checkpoint missing matrix " + name);
      return;
    }
    if (!it->second.SameShape(dst)) {
      status = Status::InvalidArgument(
          StrFormat("shape mismatch for %s: checkpoint %zux%zu vs model "
                    "%zux%zu",
                    name.c_str(), it->second.rows(), it->second.cols(),
                    dst.rows(), dst.cols()));
      return;
    }
    dst = it->second;
    ++assigned;
  });
  if (!status.ok()) return status;
  if (assigned != matrices.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %zu matrices but model expects %zu",
                  matrices.size(), assigned));
  }
  return Status::Ok();
}

}  // namespace transn
