#include "core/model_io.h"

#include <fstream>
#include <limits>
#include <map>

#include "core/transn.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/serving_format.h"
#include "util/string_util.h"

namespace transn {
namespace {

/// Scoped wall-time recording for one of the io.* histograms.
obs::Histogram* IoHistogram(const char* name, const char* help) {
  return obs::MetricsRegistry::Default().GetHistogram(name, "seconds", help);
}

}  // namespace

Status SaveEmbeddings(const HeteroGraph& g, const Matrix& embeddings,
                      const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoEmbeddingsSaveSeconds, "SaveEmbeddings wall time"));
  if (embeddings.rows() != g.num_nodes()) {
    return Status::InvalidArgument("embedding rows != graph nodes");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << embeddings.rows() << "\t" << embeddings.cols() << "\n";
  // max_digits10 makes the text round-trip bit-exact (shortest precision
  // that distinguishes every double); 9 digits used to lose the low bits.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out << g.node_name(n);
    const double* row = embeddings.Row(n);
    for (size_t c = 0; c < embeddings.cols(); ++c) out << "\t" << row[c];
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<LoadedEmbeddings> LoadEmbeddings(const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoEmbeddingsLoadSeconds, "LoadEmbeddings wall time"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const double file_size = static_cast<double>(std::streamoff(in.tellg()));
  in.seekg(0, std::ios::beg);

  std::string line;
  if (!std::getline(in, line) || Trim(line).empty()) {
    return Status::InvalidArgument("empty embedding file: " + path);
  }
  // Trim handles CRLF line endings and stray surrounding whitespace on every
  // line (files written on Windows or hand-edited must not crash the loader).
  std::vector<std::string> header = Split(Trim(line), '\t');
  int64_t rows = 0, cols = 0;
  if (header.size() != 2 || !ParseInt64(header[0], &rows) ||
      !ParseInt64(header[1], &cols) || rows < 0 || cols <= 0) {
    return Status::InvalidArgument("bad embedding header: " + line);
  }
  // A row needs at least "x" + cols * "\t0" + "\n" bytes, so a header whose
  // claim exceeds what the file can physically hold is rejected *before* the
  // matrix allocation (a corrupt header must not drive a bad_alloc crash).
  if (static_cast<double>(rows) * (2.0 * static_cast<double>(cols) + 2.0) >
      file_size) {
    return Status::InvalidArgument(StrFormat(
        "embedding header claims %lld x %lld values but the file is only "
        "%.0f bytes",
        static_cast<long long>(rows), static_cast<long long>(cols),
        file_size));
  }
  LoadedEmbeddings out;
  out.embeddings.Resize(static_cast<size_t>(rows), static_cast<size_t>(cols));
  out.names.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(
          StrFormat("truncated embedding file: %lld of %lld rows",
                    static_cast<long long>(r), static_cast<long long>(rows)));
    }
    std::vector<std::string> fields = Split(Trim(line), '\t');
    if (fields.size() != static_cast<size_t>(cols) + 1) {
      return Status::InvalidArgument(StrFormat(
          "row %lld: expected %lld values, got %zu",
          static_cast<long long>(r), static_cast<long long>(cols),
          fields.size() - (fields.empty() ? 0 : 1)));
    }
    out.names.push_back(fields[0]);
    for (int64_t c = 0; c < cols; ++c) {
      double v = 0.0;
      // ParseDouble trims, so per-field stray whitespace is tolerated; any
      // non-numeric residue is a hard error.
      if (!ParseDouble(fields[static_cast<size_t>(c) + 1], &v)) {
        return Status::InvalidArgument(StrFormat(
            "row %lld: bad embedding value '%s'", static_cast<long long>(r),
            fields[static_cast<size_t>(c) + 1].c_str()));
      }
      out.embeddings(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
    }
  }
  // Blank trailing lines are fine; any further payload means the header row
  // count disagrees with the data, which deserves a loud failure.
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) {
      return Status::InvalidArgument(
          StrFormat("trailing data after %lld embedding rows",
                    static_cast<long long>(rows)));
    }
  }
  return out;
}

namespace {

void WriteMatrix(std::ofstream& out, const std::string& name,
                 const Matrix& m) {
  out << "MATRIX\t" << name << "\t" << m.rows() << "\t" << m.cols() << "\n";
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      out << (c ? "\t" : "") << row[c];
    }
    out << "\n";
  }
}

/// Applies fn(name, matrix_ref) to every checkpointable matrix of the
/// model, in a deterministic order shared by save and load.
template <typename Fn>
void ForEachModelMatrix(TransNModel& model, Fn&& fn) {
  for (size_t i = 0; i < model.views().size(); ++i) {
    SingleViewTrainer* sv = model.single_view_trainer_or_null(i);
    if (sv == nullptr) continue;
    fn(StrFormat("view%zu.input", i), sv->embeddings().mutable_values());
    fn(StrFormat("view%zu.context", i),
       sv->context_embeddings().mutable_values());
  }
  for (size_t p = 0; p < model.num_cross_trainers(); ++p) {
    CrossViewTrainer& cross = model.cross_view_trainer(p);
    for (auto [dir, translator] :
         {std::pair<const char*, Translator*>{"ij",
                                              &cross.mutable_translator_ij()},
          {"ji", &cross.mutable_translator_ji()}}) {
      for (size_t e = 0; e < translator->num_encoders(); ++e) {
        fn(StrFormat("cross%zu.%s.w%zu", p, dir, e),
           translator->weight(e).value);
        fn(StrFormat("cross%zu.%s.b%zu", p, dir, e),
           translator->bias(e).value);
      }
    }
  }
}

}  // namespace

Status SaveTransNCheckpoint(const TransNModel& model,
                            const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoCheckpointSaveSeconds, "SaveTransNCheckpoint wall time"));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# transn checkpoint v1\n";
  out.precision(17);
  // ForEachModelMatrix needs mutable access structurally, but saving only
  // reads; the const_cast is confined here.
  ForEachModelMatrix(const_cast<TransNModel&>(model),
                     [&out](const std::string& name, const Matrix& m) {
                       WriteMatrix(out, name, m);
                     });
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadTransNCheckpoint(TransNModel* model, const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoCheckpointLoadSeconds, "LoadTransNCheckpoint wall time"));
  CHECK(model != nullptr);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::map<std::string, Matrix> matrices;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> header = Split(trimmed, '\t');
    if (header.size() != 4 || header[0] != "MATRIX") {
      return Status::InvalidArgument("bad checkpoint header line: " + line);
    }
    int64_t rows = 0, cols = 0;
    if (!ParseInt64(header[2], &rows) || !ParseInt64(header[3], &cols) ||
        rows <= 0 || cols <= 0) {
      return Status::InvalidArgument("bad matrix shape: " + line);
    }
    Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated matrix " + header[1]);
      }
      std::vector<std::string> cells = Split(Trim(line), '\t');
      if (cells.size() != static_cast<size_t>(cols)) {
        return Status::InvalidArgument("bad row arity in " + header[1]);
      }
      for (int64_t c = 0; c < cols; ++c) {
        double v = 0.0;
        if (!ParseDouble(cells[static_cast<size_t>(c)], &v)) {
          return Status::InvalidArgument("bad value in " + header[1]);
        }
        m(static_cast<size_t>(r), static_cast<size_t>(c)) = v;
      }
    }
    matrices.emplace(header[1], std::move(m));
  }

  // Assign with shape validation; every expected matrix must be present.
  Status status = Status::Ok();
  size_t assigned = 0;
  ForEachModelMatrix(*model, [&](const std::string& name, Matrix& dst) {
    if (!status.ok()) return;
    auto it = matrices.find(name);
    if (it == matrices.end()) {
      status = Status::InvalidArgument("checkpoint missing matrix " + name);
      return;
    }
    if (!it->second.SameShape(dst)) {
      status = Status::InvalidArgument(
          StrFormat("shape mismatch for %s: checkpoint %zux%zu vs model "
                    "%zux%zu",
                    name.c_str(), it->second.rows(), it->second.cols(),
                    dst.rows(), dst.cols()));
      return;
    }
    dst = it->second;
    ++assigned;
  });
  if (!status.ok()) return status;
  if (assigned != matrices.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %zu matrices but model expects %zu",
                  matrices.size(), assigned));
  }
  return Status::Ok();
}

namespace {

void AppendMatrix(std::string* buf, const Matrix& m) {
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) AppendF64(buf, data[i]);
}

void AppendTranslator(std::string* buf, const Translator& t, uint32_t from,
                      uint32_t to) {
  AppendU32(buf, from);
  AppendU32(buf, to);
  AppendU8(buf, t.simple() ? 1 : 0);
  AppendU8(buf, t.final_relu() ? 1 : 0);
  AppendU32(buf, static_cast<uint32_t>(t.num_encoders()));
  for (size_t e = 0; e < t.num_encoders(); ++e) {
    AppendMatrix(buf, t.weight(e).value);
    AppendMatrix(buf, t.bias(e).value);
  }
}

}  // namespace

Status ExportServingModel(const TransNModel& model, const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(IoHistogram(
      obs::kIoServingExportSeconds, "ExportServingModel wall time"));
  const HeteroGraph& g = model.graph();
  const std::vector<View>& views = model.views();
  const size_t num_translators = 2 * model.num_cross_trainers();
  if (g.num_nodes() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("graph too large for serving format v1");
  }

  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, kServingFormatVersion);
  AppendU32(&buf, static_cast<uint32_t>(model.config().dim));
  AppendU32(&buf, num_translators > 0
                      ? static_cast<uint32_t>(model.config().translator_seq_len)
                      : 0);
  AppendU32(&buf, static_cast<uint32_t>(g.num_nodes()));
  AppendU32(&buf, static_cast<uint32_t>(views.size()));
  AppendU32(&buf, static_cast<uint32_t>(num_translators));
  AppendU8(&buf, kServingFlagFinalEmbeddings);

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    AppendString(&buf, g.node_name(n));
  }
  AppendMatrix(&buf, model.FinalEmbeddings());

  for (size_t i = 0; i < views.size(); ++i) {
    const View& view = views[i];
    AppendString(&buf, g.edge_type_name(view.edge_type));
    AppendU8(&buf, view.is_heter ? 1 : 0);
    const SingleViewTrainer* sv = model.single_view_trainer_or_null(i);
    if (sv == nullptr) {  // empty view: metadata only
      AppendU32(&buf, 0);
      continue;
    }
    const std::vector<NodeId>& locals = view.graph.nodes();
    AppendU32(&buf, static_cast<uint32_t>(locals.size()));
    for (NodeId global : locals) AppendU32(&buf, global);
    AppendMatrix(&buf, sv->embeddings().values());
  }

  for (size_t p = 0; p < model.num_cross_trainers(); ++p) {
    const CrossViewTrainer& cross = model.cross_view_trainer(p);
    const uint32_t vi = static_cast<uint32_t>(cross.pair().view_i);
    const uint32_t vj = static_cast<uint32_t>(cross.pair().view_j);
    AppendTranslator(&buf, cross.translator_ij(), vi, vj);
    AppendTranslator(&buf, cross.translator_ji(), vj, vi);
  }

  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace transn
