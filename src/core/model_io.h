#ifndef TRANSN_CORE_MODEL_IO_H_
#define TRANSN_CORE_MODEL_IO_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace transn {

/// Saves node embeddings as TSV: first line "<num_nodes>\t<dim>", then one
/// line per node: "<node_name>\t<v_0>\t...\t<v_{d-1}>" (word2vec text-format
/// style). Row n of `embeddings` corresponds to node id n of `g`.
Status SaveEmbeddings(const HeteroGraph& g, const Matrix& embeddings,
                      const std::string& path);

/// Loaded embeddings: node names aligned with rows of the matrix.
struct LoadedEmbeddings {
  std::vector<std::string> names;
  Matrix embeddings;
};

StatusOr<LoadedEmbeddings> LoadEmbeddings(const std::string& path);

class TransNModel;

/// Checkpoints a trained TransN model: every view-specific input/context
/// embedding table and every translator's W/b parameters (Adam state is not
/// saved; resumed training restarts the moment estimates). The graph and
/// configuration are NOT stored — restoring requires constructing a
/// TransNModel over the same graph with the same config and seed, then
/// calling LoadTransNCheckpoint, which validates all dimensions.
Status SaveTransNCheckpoint(const TransNModel& model, const std::string& path);

Status LoadTransNCheckpoint(TransNModel* model, const std::string& path);

/// Exports a trained model in the immutable binary serving format consumed
/// by serve/EmbeddingStore (layout in serve/serving_format.h): node-name
/// index, final embeddings, every view's embedding table with its
/// local→global id map, and all translator W/b parameters at full double
/// precision. This is the read path of `transn_serve`; unlike checkpoints it
/// is self-contained (no graph or config needed to load).
Status ExportServingModel(const TransNModel& model, const std::string& path);

}  // namespace transn

#endif  // TRANSN_CORE_MODEL_IO_H_
