#ifndef TRANSN_CORE_MODEL_IO_H_
#define TRANSN_CORE_MODEL_IO_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "serve/ann_index.h"
#include "util/status.h"

namespace transn {

/// Saves node embeddings as TSV: first line "<num_nodes>\t<dim>", then one
/// line per node: "<node_name>\t<v_0>\t...\t<v_{d-1}>" (word2vec text-format
/// style). Row n of `embeddings` corresponds to node id n of `g`.
Status SaveEmbeddings(const HeteroGraph& g, const Matrix& embeddings,
                      const std::string& path);

/// Loaded embeddings: node names aligned with rows of the matrix.
struct LoadedEmbeddings {
  std::vector<std::string> names;
  Matrix embeddings;
};

StatusOr<LoadedEmbeddings> LoadEmbeddings(const std::string& path);

class TransNModel;

/// Checkpoints a TransN model in the v2 text format (DESIGN.md §8): every
/// view-specific input/context embedding table and every translator's W/b
/// parameters, plus the full training state — iteration counter, RNG state,
/// and Adam moments/step counts — so an interrupted run resumes bit-for-bit.
/// Each matrix section carries a CRC-32 trailer and the file ends with an
/// END line holding the section count and a whole-file CRC; the file is
/// written as `<path>.tmp` and atomically renamed, so a crash mid-save never
/// clobbers the previous good checkpoint. The graph and configuration are
/// NOT stored — restoring requires constructing a TransNModel over the same
/// graph with the same config and seed.
Status SaveTransNCheckpoint(const TransNModel& model, const std::string& path);

/// Restores model weights from a v1 or v2 checkpoint. Training state (ITER /
/// RNG / Adam) present in a v2 file is validated but NOT applied — this is
/// the `--load-checkpoint` path, which re-trains from the stored weights.
/// All shapes are validated against the model *before* anything is assigned:
/// on any error (truncation, CRC mismatch, unknown/missing matrix, shape
/// mismatch) the model is untouched.
Status LoadTransNCheckpoint(TransNModel* model, const std::string& path);

/// LoadTransNCheckpoint plus full training-state restore (`--resume`):
/// iteration counter, RNG state, and Adam moments/step counts, so Fit()
/// continues exactly where the checkpoint was taken. Requires a v2
/// checkpoint (v1 files carry no training state). Same all-or-nothing
/// guarantee: a bad file leaves the model untouched.
Status ResumeTransNCheckpoint(TransNModel* model, const std::string& path);

/// Options for ExportServingModel. The defaults write a v2 file with no ANN
/// section — byte-identical to what earlier writers produced.
struct ServingExportOptions {
  /// Build an HNSW-style ANN index (serve/ann_index.h) over the final
  /// embeddings and embed it as the v3 ANN section.
  bool ann_index = false;
  /// Similarity metric the index answers; must match the serving --metric.
  KnnMetric ann_metric = KnnMetric::kCosine;
  AnnBuildParams ann_params;
  /// Worker threads for the graph build (0 = all cores, 1 = inline). The
  /// exported bytes are identical for every value — parallel construction
  /// is batch-synchronous and deterministic (serve/ann_index.h).
  size_t ann_build_threads = 1;
};

/// Exports a trained model in the immutable binary serving format consumed
/// by serve/EmbeddingStore (layout in serve/serving_format.h): node-name
/// index, final embeddings, every view's embedding table with its
/// local→global id map, and all translator W/b parameters at full double
/// precision — plus, when options.ann_index is set, a pre-built ANN index
/// over the final embeddings (format v3). This is the read path of
/// `transn_serve`; unlike checkpoints it is self-contained (no graph or
/// config needed to load).
Status ExportServingModel(const TransNModel& model, const std::string& path,
                          const ServingExportOptions& options);
Status ExportServingModel(const TransNModel& model, const std::string& path);

}  // namespace transn

#endif  // TRANSN_CORE_MODEL_IO_H_
