#include "core/single_view.h"

#include "walk/corpus.h"

namespace transn {

SingleViewTrainer::SingleViewTrainer(const View* view,
                                     const TransNConfig& config, Rng& rng,
                                     const Matrix* shared_init)
    : view_(view), config_(config) {
  CHECK(view_ != nullptr);
  const size_t n = view_->graph.num_nodes();
  CHECK_GT(n, 0u) << "cannot train an empty view";
  input_ = std::make_unique<EmbeddingTable>(n, config_.dim, rng);
  if (shared_init != nullptr) {
    CHECK_EQ(shared_init->cols(), config_.dim);
    for (ViewGraph::LocalId local = 0; local < n; ++local) {
      const double* src = shared_init->Row(view_->graph.ToGlobal(local));
      std::copy(src, src + config_.dim, input_->Row(local));
    }
  }
  context_ = std::make_unique<EmbeddingTable>(n, config_.dim);

  // Weighted degree is proportional to the stationary visit frequency of
  // the weight-biased walk, so it stands in for corpus counts (for the
  // negative-sampling noise distribution / the Huffman tree) without
  // materializing a corpus first.
  std::vector<double> counts(n);
  for (ViewGraph::LocalId i = 0; i < n; ++i) {
    counts[i] = view_->graph.weighted_degree(i) + 1e-9;
  }
  if (config_.use_hierarchical_softmax && n >= 2) {
    hsoftmax_ = std::make_unique<HierarchicalSoftmaxTrainer>(
        input_.get(), counts, config_.sgns.learning_rate);
  } else {
    sampler_ = std::make_unique<NegativeSampler>(counts);
  }
  walker_ = std::make_unique<RandomWalker>(&view_->graph, view_->is_heter,
                                           config_.EffectiveWalkConfig());
}

double SingleViewTrainer::RunIteration(Rng& rng) {
  std::unique_ptr<SgnsTrainer> sgns;
  if (hsoftmax_ == nullptr) {
    sgns = std::make_unique<SgnsTrainer>(input_.get(), context_.get(),
                                         sampler_.get(), config_.sgns);
  }
  double total_loss = 0.0;
  size_t pairs = 0;
  const size_t n = view_->graph.num_nodes();
  const bool degree_starts = walker_->config().degree_biased_starts;

  // Stream walks one at a time (the corpus is never materialized).
  auto train_walk = [&](const std::vector<ViewGraph::LocalId>& walk) {
    ForEachContextPairDef6(walk, view_->is_heter, [&](ContextPair p) {
      total_loss += hsoftmax_ != nullptr
                        ? hsoftmax_->TrainPair(p.center, p.context)
                        : sgns->TrainPair(p.center, p.context, rng);
      ++pairs;
    });
  };

  if (degree_starts) {
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      const size_t count = walker_->WalksPerNode(node);
      for (size_t w = 0; w < count; ++w) train_walk(walker_->Walk(node, rng));
    }
  } else {
    size_t total = 0;
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      total += walker_->WalksPerNode(node);
    }
    for (size_t w = 0; w < total; ++w) {
      train_walk(walker_->Walk(
          static_cast<ViewGraph::LocalId>(rng.NextUint64(n)), rng));
    }
  }
  return pairs > 0 ? total_loss / static_cast<double>(pairs) : 0.0;
}

}  // namespace transn
