#include "core/single_view.h"

#include "obs/metric_names.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "walk/corpus.h"

namespace transn {

SingleViewTrainer::SingleViewTrainer(const View* view,
                                     const TransNConfig& config, Rng& rng,
                                     const Matrix* shared_init)
    : view_(view), config_(config) {
  CHECK(view_ != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  pairs_counter_ = registry.GetCounter(
      obs::kTrainPairsTotal, "pairs", "SGNS/HS context pairs trained");
  grad_updates_counter_ =
      registry.GetCounter(obs::kTrainGradientUpdatesTotal, "updates",
                          "embedding gradient updates applied");
  view_seconds_hist_ = registry.GetHistogram(
      obs::kTrainViewSeconds, "seconds", "wall time of one single-view pass");
  view_pairs_counter_ = nullptr;
  labeled_view_seconds_hist_ = nullptr;
  if (!view_->name.empty()) {
    view_pairs_counter_ = registry.GetCounter(
        obs::LabeledName(obs::kTrainPairsTotal, "view", view_->name), "pairs",
        "SGNS/HS context pairs trained in this view");
    labeled_view_seconds_hist_ = registry.GetHistogram(
        obs::LabeledName(obs::kTrainViewSeconds, "view", view_->name),
        "seconds", "wall time of one single-view pass over this view");
  }
  const size_t n = view_->graph.num_nodes();
  CHECK_GT(n, 0u) << "cannot train an empty view";
  input_ = std::make_unique<EmbeddingTable>(n, config_.dim, rng);
  if (shared_init != nullptr) {
    CHECK_EQ(shared_init->cols(), config_.dim);
    for (ViewGraph::LocalId local = 0; local < n; ++local) {
      const double* src = shared_init->Row(view_->graph.ToGlobal(local));
      std::copy(src, src + config_.dim, input_->Row(local));
    }
  }
  context_ = std::make_unique<EmbeddingTable>(n, config_.dim);

  // Weighted degree is proportional to the stationary visit frequency of
  // the weight-biased walk, so it stands in for corpus counts (for the
  // negative-sampling noise distribution / the Huffman tree) without
  // materializing a corpus first.
  std::vector<double> counts(n);
  for (ViewGraph::LocalId i = 0; i < n; ++i) {
    counts[i] = view_->graph.weighted_degree(i) + 1e-9;
  }
  if (config_.use_hierarchical_softmax && n >= 2) {
    hsoftmax_ = std::make_unique<HierarchicalSoftmaxTrainer>(
        input_.get(), counts, config_.sgns.learning_rate);
  } else {
    sampler_ = std::make_unique<NegativeSampler>(counts);
  }
  walker_ = std::make_unique<RandomWalker>(&view_->graph, view_->is_heter,
                                           config_.EffectiveWalkConfig());
}

double SingleViewTrainer::RunIteration(Rng& rng, ThreadPool* pool) {
  const obs::TraceSpan view_span(
      view_->name.empty() ? std::string("view")
                          : "view:" + view_->name);
  WallTimer timer;
  std::unique_ptr<SgnsTrainer> sgns;
  if (hsoftmax_ == nullptr) {
    sgns = std::make_unique<SgnsTrainer>(input_.get(), context_.get(),
                                         sampler_.get(), config_.sgns);
  }
  const size_t n = view_->graph.num_nodes();
  const bool degree_starts = walker_->config().degree_biased_starts;

  size_t uniform_total = 0;
  if (!degree_starts) {
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      uniform_total += walker_->WalksPerNode(node);
    }
  }

  struct ShardTotals {
    double loss = 0.0;
    size_t pairs = 0;
    size_t walks = 0;
  };

  // One worker's share of the corpus, streamed walk by walk (never
  // materialized). With degree-biased starts the nodes are strided so that
  // high-degree (and therefore high-walk-count) nodes spread evenly across
  // shards; otherwise the uniform-start walk budget is split. Shard 0 of 1
  // with the caller's rng is exactly the sequential algorithm.
  auto run_shard = [&](size_t shard, size_t num_shards, Rng* shard_rng,
                       ShardTotals* out) {
    std::vector<ViewGraph::LocalId> walk;
    auto train_walk = [&] {
      ForEachContextPairDef6(walk, view_->is_heter, [&](ContextPair p) {
        out->loss += hsoftmax_ != nullptr
                         ? hsoftmax_->TrainPair(p.center, p.context)
                         : sgns->TrainPair(p.center, p.context, *shard_rng);
        ++out->pairs;
      });
      ++out->walks;
    };
    if (degree_starts) {
      for (size_t node = shard; node < n; node += num_shards) {
        const ViewGraph::LocalId local = static_cast<ViewGraph::LocalId>(node);
        const size_t count = walker_->WalksPerNode(local);
        for (size_t w = 0; w < count; ++w) {
          walker_->WalkInto(local, *shard_rng, &walk);
          train_walk();
        }
      }
    } else {
      const size_t quota = uniform_total / num_shards +
                           (shard < uniform_total % num_shards ? 1 : 0);
      for (size_t w = 0; w < quota; ++w) {
        walker_->WalkInto(
            static_cast<ViewGraph::LocalId>(shard_rng->NextUint64(n)),
            *shard_rng, &walk);
        train_walk();
      }
    }
  };

  ShardTotals totals;
  const size_t num_shards = pool != nullptr ? pool->num_threads() : 1;
  if (num_shards <= 1) {
    // Sequential path: identical walk order and RNG stream as the original
    // single-threaded implementation (bit-reproducible from the seed).
    run_shard(0, 1, &rng, &totals);
  } else {
    // Hogwild: per-shard RNGs split deterministically off the main stream;
    // workers race benignly on the shared tables (see util/hogwild.h).
    std::vector<Rng> shard_rngs;
    shard_rngs.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) shard_rngs.push_back(rng.Split());
    std::vector<ShardTotals> shard_totals(num_shards);
    const std::string span_parent = view_span.path();
    for (size_t s = 0; s < num_shards; ++s) {
      pool->Schedule([&, span_parent, s] {
        const obs::TraceSpan shard_span("shard", span_parent, nullptr);
        run_shard(s, num_shards, &shard_rngs[s], &shard_totals[s]);
      });
    }
    pool->Wait();
    for (const ShardTotals& t : shard_totals) {
      totals.loss += t.loss;
      totals.pairs += t.pairs;
      totals.walks += t.walks;
    }
  }

  stats_.mean_loss =
      totals.pairs > 0 ? totals.loss / static_cast<double>(totals.pairs) : 0.0;
  stats_.pairs = totals.pairs;
  stats_.walks = totals.walks;
  stats_.seconds = timer.ElapsedSeconds();

  // Pass totals feed the registry once per pass (never per pair): the hot
  // loop stays free of metric writes, which is what keeps metrics-enabled
  // training within noise of the uninstrumented baseline.
  pairs_counter_->Increment(totals.pairs);
  grad_updates_counter_->Increment(totals.pairs);
  view_seconds_hist_->Record(stats_.seconds);
  if (view_pairs_counter_ != nullptr) {
    view_pairs_counter_->Increment(totals.pairs);
  }
  if (labeled_view_seconds_hist_ != nullptr) {
    labeled_view_seconds_hist_->Record(stats_.seconds);
  }
  return stats_.mean_loss;
}

}  // namespace transn
