#include "core/single_view.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "walk/corpus.h"

namespace transn {

SingleViewTrainer::SingleViewTrainer(const View* view,
                                     const TransNConfig& config, Rng& rng,
                                     const Matrix* shared_init)
    : view_(view), config_(config) {
  CHECK(view_ != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  pairs_counter_ = registry.GetCounter(
      obs::kTrainPairsTotal, "pairs", "SGNS/HS context pairs trained");
  grad_updates_counter_ =
      registry.GetCounter(obs::kTrainGradientUpdatesTotal, "updates",
                          "embedding gradient updates applied");
  episodes_counter_ =
      registry.GetCounter(obs::kTrainEpisodesTotal, "episodes",
                          "episodic block-engine episodes completed");
  view_seconds_hist_ = registry.GetHistogram(
      obs::kTrainViewSeconds, "seconds", "wall time of one single-view pass");
  view_pairs_counter_ = nullptr;
  labeled_view_seconds_hist_ = nullptr;
  if (!view_->name.empty()) {
    view_pairs_counter_ = registry.GetCounter(
        obs::LabeledName(obs::kTrainPairsTotal, "view", view_->name), "pairs",
        "SGNS/HS context pairs trained in this view");
    labeled_view_seconds_hist_ = registry.GetHistogram(
        obs::LabeledName(obs::kTrainViewSeconds, "view", view_->name),
        "seconds", "wall time of one single-view pass over this view");
  }
  const size_t n = view_->graph.num_nodes();
  CHECK_GT(n, 0u) << "cannot train an empty view";
  input_ = std::make_unique<EmbeddingTable>(n, config_.dim, rng);
  if (shared_init != nullptr) {
    CHECK_EQ(shared_init->cols(), config_.dim);
    for (ViewGraph::LocalId local = 0; local < n; ++local) {
      const double* src = shared_init->Row(view_->graph.ToGlobal(local));
      std::copy(src, src + config_.dim, input_->Row(local));
    }
  }
  context_ = std::make_unique<EmbeddingTable>(n, config_.dim);

  // Weighted degree is proportional to the stationary visit frequency of
  // the weight-biased walk, so it stands in for corpus counts (for the
  // negative-sampling noise distribution / the Huffman tree) without
  // materializing a corpus first. Kept as a member: the episodic engine
  // re-partitions the same counts into per-block samplers.
  noise_counts_.resize(n);
  for (ViewGraph::LocalId i = 0; i < n; ++i) {
    noise_counts_[i] = view_->graph.weighted_degree(i) + 1e-9;
  }
  if (config_.use_hierarchical_softmax && n >= 2) {
    hsoftmax_ = std::make_unique<HierarchicalSoftmaxTrainer>(
        input_.get(), noise_counts_, config_.sgns.learning_rate);
  } else {
    sampler_ = std::make_unique<NegativeSampler>(noise_counts_);
  }
  walker_ = std::make_unique<RandomWalker>(&view_->graph, view_->is_heter,
                                           config_.EffectiveWalkConfig());
}

void SingleViewTrainer::EnsureBlockSamplers(size_t num_blocks) {
  if (block_samplers_.size() == num_blocks) return;
  block_samplers_.clear();
  block_samplers_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    block_samplers_.emplace_back(noise_counts_, static_cast<uint32_t>(b),
                                 static_cast<uint32_t>(num_blocks));
  }
}

size_t SingleViewTrainer::RunEpisodes(Rng& rng, ThreadPool* pool,
                                      SgnsTrainer* sgns,
                                      const std::string& parent_span,
                                      double* loss, size_t* pairs,
                                      size_t* walks) {
  const size_t n = view_->graph.num_nodes();
  const size_t num_shards = pool->num_threads();
  const size_t num_blocks =
      num_shards * std::max<size_t>(1, config_.episode_blocks_per_thread);
  const size_t num_buckets = num_blocks * num_blocks;
  EnsureBlockSamplers(num_blocks);

  // Walks each shard contributes per episode. Bounds the materialized pair
  // buffers of one episode to a few MB while amortizing the per-episode
  // barriers over enough training work.
  constexpr size_t kWalksPerShardPerEpisode = 256;

  const bool degree_starts = walker_->config().degree_biased_starts;
  size_t uniform_total = 0;
  if (!degree_starts) {
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      uniform_total += walker_->WalksPerNode(node);
    }
  }

  // Resumable per-shard walk cursors. The node stride / quota split and the
  // per-shard RNG streams match the pre-episodic Hogwild schedule exactly,
  // so walk and pair totals stay equal to the sequential pass at any thread
  // count (parallel_determinism_test asserts this).
  struct ShardCursor {
    size_t node = 0;          // next start node (degree-biased starts)
    size_t walk_in_node = 0;  // walks already started from `node`
    size_t quota = 0;         // remaining walks (uniform starts)
    bool done = false;
    Rng rng;
    ViewGraph::LocalId start = 0;          // set by next_start
    std::vector<ViewGraph::LocalId> walk;  // scratch
    std::vector<double> probs;             // scratch
    size_t pairs = 0, walks = 0;
  };
  std::vector<ShardCursor> cursors(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    cursors[s].node = s;
    cursors[s].rng = rng.Split();
    if (!degree_starts) {
      cursors[s].quota = uniform_total / num_shards +
                         (s < uniform_total % num_shards ? 1 : 0);
    }
  }

  // Per-bucket training streams, split off the main RNG in fixed bucket
  // order before any worker runs: bucket (cb, xb) consumes the same stream
  // regardless of which worker trains it in which episode.
  std::vector<Rng> bucket_rngs;
  bucket_rngs.reserve(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) bucket_rngs.push_back(rng.Split());

  // buckets[s][cb * num_blocks + xb] holds shard s's pairs for bucket
  // (cb, xb). Kept per-shard so bucket training concatenates shards in
  // shard order — deterministic no matter how the OS schedules the phase-1
  // workers. Loss accumulates per bucket and is folded in fixed bucket
  // order at the end, for the same reason.
  std::vector<std::vector<std::vector<ContextPair>>> buckets(
      num_shards, std::vector<std::vector<ContextPair>>(num_buckets));
  std::vector<double> bucket_loss(num_buckets, 0.0);

  // Advances `c` to its next walk start; false once the shard's share of
  // the corpus is exhausted.
  auto next_start = [&](ShardCursor& c) -> bool {
    if (degree_starts) {
      while (c.node < n &&
             c.walk_in_node >=
                 walker_->WalksPerNode(static_cast<ViewGraph::LocalId>(c.node))) {
        c.node += num_shards;
        c.walk_in_node = 0;
      }
      if (c.node >= n) return false;
      c.start = static_cast<ViewGraph::LocalId>(c.node);
      ++c.walk_in_node;
      return true;
    }
    if (c.quota == 0) return false;
    --c.quota;
    c.start = static_cast<ViewGraph::LocalId>(c.rng.NextUint64(n));
    return true;
  };

  size_t episodes = 0;
  for (;;) {
    bool pending = false;
    for (const ShardCursor& c : cursors) pending = pending || !c.done;
    if (!pending) break;

    // Phase 1: every live shard walks its next wave and buckets the pairs
    // by (center block, context block), block(id) = id mod num_blocks.
    for (size_t s = 0; s < num_shards; ++s) {
      if (cursors[s].done) continue;
      pool->Schedule([&, s] {
        const obs::TraceSpan shard_span("walk_shard", parent_span, nullptr);
        ShardCursor& c = cursors[s];
        std::vector<std::vector<ContextPair>>& shard_buckets = buckets[s];
        for (size_t w = 0; w < kWalksPerShardPerEpisode; ++w) {
          if (!next_start(c)) {
            c.done = true;
            break;
          }
          walker_->WalkInto(c.start, c.rng, &c.walk, &c.probs);
          ForEachContextPairDef6(c.walk, view_->is_heter, [&](ContextPair p) {
            shard_buckets[(p.center % num_blocks) * num_blocks +
                          (p.context % num_blocks)]
                .push_back(p);
            ++c.pairs;
          });
          ++c.walks;
        }
      });
    }
    pool->Wait();

    // Phase 2: num_blocks block-diagonal rounds. Round d trains the buckets
    // {(i, (i + d) mod num_blocks)}, whose center blocks and context blocks
    // are each pairwise disjoint; with negatives drawn from the worker's own
    // context block, concurrent workers touch disjoint embedding rows — no
    // races, and bit-determinism independent of OS scheduling.
    for (size_t d = 0; d < num_blocks; ++d) {
      for (size_t cb = 0; cb < num_blocks; ++cb) {
        const size_t xb = (cb + d) % num_blocks;
        const size_t b = cb * num_blocks + xb;
        bool empty = true;
        for (size_t s = 0; s < num_shards && empty; ++s) {
          empty = buckets[s][b].empty();
        }
        if (empty) continue;
        pool->Schedule([&, xb, b] {
          const obs::TraceSpan episode_span("episode", parent_span, nullptr);
          Rng& bucket_rng = bucket_rngs[b];
          const BlockNegativeSampler& sampler = block_samplers_[xb];
          double bucket_sum = 0.0;
          for (size_t s = 0; s < num_shards; ++s) {
            for (const ContextPair& p : buckets[s][b]) {
              bucket_sum +=
                  sgns->TrainPairWith(p.center, p.context, bucket_rng, sampler);
            }
            buckets[s][b].clear();
          }
          bucket_loss[b] += bucket_sum;
        });
      }
      pool->Wait();
    }
    ++episodes;
  }

  for (const ShardCursor& c : cursors) {
    *pairs += c.pairs;
    *walks += c.walks;
  }
  for (double l : bucket_loss) *loss += l;
  episodes_counter_->Increment(episodes);
  return episodes;
}

double SingleViewTrainer::RunIteration(Rng& rng, ThreadPool* pool) {
  const obs::TraceSpan view_span(
      view_->name.empty() ? std::string("view")
                          : "view:" + view_->name);
  WallTimer timer;
  std::unique_ptr<SgnsTrainer> sgns;
  if (hsoftmax_ == nullptr) {
    sgns = std::make_unique<SgnsTrainer>(input_.get(), context_.get(),
                                         sampler_.get(), config_.sgns);
  }
  const size_t n = view_->graph.num_nodes();
  const bool degree_starts = walker_->config().degree_biased_starts;

  size_t uniform_total = 0;
  if (!degree_starts) {
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      uniform_total += walker_->WalksPerNode(node);
    }
  }

  struct ShardTotals {
    double loss = 0.0;
    size_t pairs = 0;
    size_t walks = 0;
  };

  // One worker's share of the corpus, streamed walk by walk (never
  // materialized). With degree-biased starts the nodes are strided so that
  // high-degree (and therefore high-walk-count) nodes spread evenly across
  // shards; otherwise the uniform-start walk budget is split. Shard 0 of 1
  // with the caller's rng is exactly the sequential algorithm.
  auto run_shard = [&](size_t shard, size_t num_shards, Rng* shard_rng,
                       ShardTotals* out) {
    std::vector<ViewGraph::LocalId> walk;
    auto train_walk = [&] {
      ForEachContextPairDef6(walk, view_->is_heter, [&](ContextPair p) {
        out->loss += hsoftmax_ != nullptr
                         ? hsoftmax_->TrainPair(p.center, p.context)
                         : sgns->TrainPair(p.center, p.context, *shard_rng);
        ++out->pairs;
      });
      ++out->walks;
    };
    if (degree_starts) {
      for (size_t node = shard; node < n; node += num_shards) {
        const ViewGraph::LocalId local = static_cast<ViewGraph::LocalId>(node);
        const size_t count = walker_->WalksPerNode(local);
        for (size_t w = 0; w < count; ++w) {
          walker_->WalkInto(local, *shard_rng, &walk);
          train_walk();
        }
      }
    } else {
      const size_t quota = uniform_total / num_shards +
                           (shard < uniform_total % num_shards ? 1 : 0);
      for (size_t w = 0; w < quota; ++w) {
        walker_->WalkInto(
            static_cast<ViewGraph::LocalId>(shard_rng->NextUint64(n)),
            *shard_rng, &walk);
        train_walk();
      }
    }
  };

  ShardTotals totals;
  size_t episodes = 0;
  const size_t num_shards = pool != nullptr ? pool->num_threads() : 1;
  if (num_shards <= 1) {
    // Sequential path: identical walk order and RNG stream as the original
    // single-threaded implementation (bit-reproducible from the seed).
    run_shard(0, 1, &rng, &totals);
  } else if (hsoftmax_ != nullptr) {
    // Hierarchical softmax cannot be block-partitioned (every pair updates
    // shared Huffman inner nodes), so its parallel path stays racing
    // Hogwild: per-shard RNGs split deterministically off the main stream,
    // workers race benignly on the shared tables (see util/hogwild.h).
    // Statistically equivalent but not bit-deterministic at > 1 threads.
    std::vector<Rng> shard_rngs;
    shard_rngs.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) shard_rngs.push_back(rng.Split());
    std::vector<ShardTotals> shard_totals(num_shards);
    const std::string span_parent = view_span.path();
    for (size_t s = 0; s < num_shards; ++s) {
      pool->Schedule([&, span_parent, s] {
        const obs::TraceSpan shard_span("shard", span_parent, nullptr);
        run_shard(s, num_shards, &shard_rngs[s], &shard_totals[s]);
      });
    }
    pool->Wait();
    for (const ShardTotals& t : shard_totals) {
      totals.loss += t.loss;
      totals.pairs += t.pairs;
      totals.walks += t.walks;
    }
  } else {
    // SGNS multi-thread path: the episodic block engine (deterministic,
    // contention-free; see the RunIteration doc comment and DESIGN.md §4).
    episodes = RunEpisodes(rng, pool, sgns.get(), view_span.path(),
                           &totals.loss, &totals.pairs, &totals.walks);
  }

  stats_.mean_loss =
      totals.pairs > 0 ? totals.loss / static_cast<double>(totals.pairs) : 0.0;
  stats_.pairs = totals.pairs;
  stats_.walks = totals.walks;
  stats_.episodes = episodes;
  stats_.seconds = timer.ElapsedSeconds();

  // Pass totals feed the registry once per pass (never per pair): the hot
  // loop stays free of metric writes, which is what keeps metrics-enabled
  // training within noise of the uninstrumented baseline.
  pairs_counter_->Increment(totals.pairs);
  grad_updates_counter_->Increment(totals.pairs);
  view_seconds_hist_->Record(stats_.seconds);
  if (view_pairs_counter_ != nullptr) {
    view_pairs_counter_->Increment(totals.pairs);
  }
  if (labeled_view_seconds_hist_ != nullptr) {
    labeled_view_seconds_hist_->Record(stats_.seconds);
  }
  return stats_.mean_loss;
}

}  // namespace transn
