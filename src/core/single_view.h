#ifndef TRANSN_CORE_SINGLE_VIEW_H_
#define TRANSN_CORE_SINGLE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "core/transn_config.h"
#include "emb/embedding_table.h"
#include "emb/hierarchical_softmax.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "graph/view.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"
#include "walk/random_walk.h"

namespace transn {

/// Volume and timing diagnostics of one RunIteration pass; consumed by the
/// training log, TransNIterationStats, and bench/parallel_scaling.
struct SingleViewIterationStats {
  double mean_loss = 0.0;
  /// SGNS / hierarchical-softmax updates applied (Definition-6 pairs).
  size_t pairs = 0;
  /// Walks streamed.
  size_t walks = 0;
  /// Episodes run by the episodic block engine (0 on the sequential and
  /// hierarchical-softmax paths).
  size_t episodes = 0;
  /// Wall-clock seconds of the pass.
  double seconds = 0.0;

  double pairs_per_second() const {
    return seconds > 0.0 ? static_cast<double>(pairs) / seconds : 0.0;
  }
  double walks_per_second() const {
    return seconds > 0.0 ? static_cast<double>(walks) / seconds : 0.0;
  }
};

/// The single-view algorithm (§III-A) for one view φ_i: owns the
/// view-specific embedding tables and trains them with SGNS over biased
/// correlated random walks, using Definition 6's context windows (±1 on
/// homo-views, ±1/±2 on heter-views).
class SingleViewTrainer {
 public:
  /// `view` must outlive the trainer. When `shared_init` is non-null (one
  /// row per *global* node id), the view-specific embeddings start from
  /// those rows instead of fresh random vectors, aligning the view spaces
  /// at initialization (TransNConfig::shared_view_init).
  SingleViewTrainer(const View* view, const TransNConfig& config, Rng& rng,
                    const Matrix* shared_init = nullptr);

  /// One pass of lines 4–7 of Algorithm 1: streams a fresh walk corpus and
  /// applies one SGNS update per context pair. Returns the mean pair loss.
  ///
  /// With a null `pool` (or a pool of one thread) the pass is sequential
  /// and bit-reproducible from `rng`, byte-identical to the historical
  /// implementation. With a larger pool the SGNS path runs the episodic
  /// block engine (DESIGN.md §4): walk generation is sharded across the
  /// workers with per-shard split RNGs, the resulting context pairs are
  /// bucketed by (center-block, context-block) with block(id) = id mod P,
  /// and each episode trains the buckets in P block-diagonal rounds in
  /// which concurrent workers own pairwise-disjoint (center, context) block
  /// pairs — negatives are drawn from the worker's own context block — so
  /// no two workers ever touch the same embedding row. The multi-threaded
  /// pass is therefore also bit-deterministic for a fixed (seed,
  /// num_threads, episode_blocks_per_thread). The hierarchical-softmax
  /// path cannot be block-partitioned (every pair walks shared Huffman
  /// inner nodes) and keeps the racing Hogwild schedule: statistically
  /// equivalent across runs but not bit-deterministic at > 1 threads.
  double RunIteration(Rng& rng, ThreadPool* pool);
  double RunIteration(Rng& rng) { return RunIteration(rng, nullptr); }

  /// Diagnostics of the most recent RunIteration call.
  const SingleViewIterationStats& last_iteration_stats() const {
    return stats_;
  }

  const View& view() const { return *view_; }
  const ViewGraph& graph() const { return view_->graph; }

  /// View-specific input embeddings (one row per local node id); these are
  /// the \vec{n}_i of the paper.
  EmbeddingTable& embeddings() { return *input_; }
  const EmbeddingTable& embeddings() const { return *input_; }

  /// Context-side table (exposed for tests).
  EmbeddingTable& context_embeddings() { return *context_; }

  /// True when Eq. 3 is optimized with hierarchical softmax rather than
  /// negative sampling.
  bool uses_hierarchical_softmax() const { return hsoftmax_ != nullptr; }

 private:
  /// The episodic multi-thread SGNS pass (see RunIteration). Appends its
  /// volume/loss totals to *loss/*pairs/*walks and returns episodes run.
  size_t RunEpisodes(Rng& rng, ThreadPool* pool, SgnsTrainer* sgns,
                     const std::string& parent_span, double* loss,
                     size_t* pairs, size_t* walks);

  /// Lazily (re)builds block_samplers_ for a P-block partition of the
  /// noise distribution.
  void EnsureBlockSamplers(size_t num_blocks);

  const View* view_;
  TransNConfig config_;
  std::unique_ptr<EmbeddingTable> input_;
  std::unique_ptr<EmbeddingTable> context_;
  std::unique_ptr<NegativeSampler> sampler_;
  std::unique_ptr<HierarchicalSoftmaxTrainer> hsoftmax_;
  std::unique_ptr<RandomWalker> walker_;
  /// Per-node noise counts (weighted degree), kept for block-sampler
  /// construction by the episodic engine.
  std::vector<double> noise_counts_;
  /// Per-block noise samplers, cached across iterations (rebuilt only when
  /// the block count changes).
  std::vector<BlockNegativeSampler> block_samplers_;
  SingleViewIterationStats stats_;
  /// Registry handles cached at construction (see obs/metric_names.h).
  /// The labeled variants are null for hand-built views with no name.
  obs::Counter* pairs_counter_;
  obs::Counter* view_pairs_counter_;
  obs::Counter* grad_updates_counter_;
  obs::Counter* episodes_counter_;
  obs::Histogram* view_seconds_hist_;
  obs::Histogram* labeled_view_seconds_hist_;
};

}  // namespace transn

#endif  // TRANSN_CORE_SINGLE_VIEW_H_
