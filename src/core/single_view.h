#ifndef TRANSN_CORE_SINGLE_VIEW_H_
#define TRANSN_CORE_SINGLE_VIEW_H_

#include <memory>

#include "core/transn_config.h"
#include "emb/embedding_table.h"
#include "emb/hierarchical_softmax.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "graph/view.h"
#include "walk/random_walk.h"

namespace transn {

/// The single-view algorithm (§III-A) for one view φ_i: owns the
/// view-specific embedding tables and trains them with SGNS over biased
/// correlated random walks, using Definition 6's context windows (±1 on
/// homo-views, ±1/±2 on heter-views).
class SingleViewTrainer {
 public:
  /// `view` must outlive the trainer. When `shared_init` is non-null (one
  /// row per *global* node id), the view-specific embeddings start from
  /// those rows instead of fresh random vectors, aligning the view spaces
  /// at initialization (TransNConfig::shared_view_init).
  SingleViewTrainer(const View* view, const TransNConfig& config, Rng& rng,
                    const Matrix* shared_init = nullptr);

  /// One pass of lines 4–7 of Algorithm 1: streams a fresh walk corpus and
  /// applies one SGNS update per context pair. Returns the mean pair loss.
  double RunIteration(Rng& rng);

  const View& view() const { return *view_; }
  const ViewGraph& graph() const { return view_->graph; }

  /// View-specific input embeddings (one row per local node id); these are
  /// the \vec{n}_i of the paper.
  EmbeddingTable& embeddings() { return *input_; }
  const EmbeddingTable& embeddings() const { return *input_; }

  /// Context-side table (exposed for tests).
  EmbeddingTable& context_embeddings() { return *context_; }

  /// True when Eq. 3 is optimized with hierarchical softmax rather than
  /// negative sampling.
  bool uses_hierarchical_softmax() const { return hsoftmax_ != nullptr; }

 private:
  const View* view_;
  TransNConfig config_;
  std::unique_ptr<EmbeddingTable> input_;
  std::unique_ptr<EmbeddingTable> context_;
  std::unique_ptr<NegativeSampler> sampler_;
  std::unique_ptr<HierarchicalSoftmaxTrainer> hsoftmax_;
  std::unique_ptr<RandomWalker> walker_;
};

}  // namespace transn

#endif  // TRANSN_CORE_SINGLE_VIEW_H_
