#include "core/translator.h"

#include <cmath>

#include "nn/init.h"

namespace transn {

Translator::Translator(size_t seq_len, size_t dim, size_t num_encoders,
                       bool simple, Rng& rng, bool final_relu)
    : seq_len_(seq_len), dim_(dim), simple_(simple), final_relu_(final_relu) {
  CHECK_GE(seq_len, 2u);
  CHECK_GE(dim, 1u);
  CHECK_GE(num_encoders, 1u);
  const size_t count = simple ? 1 : num_encoders;
  for (size_t e = 0; e < count; ++e) {
    // Initialize W near the identity so an untrained translator is close to
    // a no-op: identity + small Xavier noise keeps early translation targets
    // sane while breaking symmetry.
    Matrix w = XavierUniform(seq_len, seq_len, rng);
    w *= 0.1;
    for (size_t i = 0; i < seq_len; ++i) w(i, i) += 1.0;
    weights_.push_back(std::make_unique<Parameter>(std::move(w)));
    biases_.push_back(std::make_unique<Parameter>(Matrix(seq_len, 1, 0.0)));
  }
}

Var Translator::Apply(Tape& tape, const Var& input) const {
  CHECK_EQ(input.rows(), seq_len_);
  CHECK_EQ(input.cols(), dim_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(dim_));
  Var x = input;
  for (size_t e = 0; e < weights_.size(); ++e) {
    if (!simple_) {
      // Self-attention (Eq. 8).
      Var scores = Scale(MatMul(x, Transpose(x)), inv_sqrt_d);
      x = MatMul(RowSoftmax(scores), x);
    }
    // Feed-forward (Eq. 9); the last layer is linear unless final_relu_
    // (see the class comment).
    Var w = tape.Leaf(weights_[e].get());
    Var b = tape.Leaf(biases_[e].get());
    Var pre = AddRowBias(MatMul(w, x), b);
    const bool last = e + 1 == weights_.size();
    x = (last && !final_relu_) ? pre : Relu(pre);
  }
  return x;
}

Matrix Translator::Forward(const Matrix& input) const {
  Tape tape;
  Var in = tape.Input(input, /*requires_grad=*/false);
  // Leaf() marks parameters as requiring grad, but without Backward() no
  // gradients are accumulated, so reuse of Apply is safe here.
  return Apply(tape, in).value();
}

void Translator::RegisterParams(AdamOptimizer* optimizer) {
  CHECK(optimizer != nullptr);
  for (auto& w : weights_) optimizer->Register(w.get());
  for (auto& b : biases_) optimizer->Register(b.get());
}

size_t Translator::num_parameters() const {
  size_t total = 0;
  for (const auto& w : weights_) total += w->value.size();
  for (const auto& b : biases_) total += b->value.size();
  return total;
}

}  // namespace transn
