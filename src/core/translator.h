#ifndef TRANSN_CORE_TRANSLATOR_H_
#define TRANSN_CORE_TRANSLATOR_H_

#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace transn {

/// A translator T_{i→j} (§III-B2): a stack of H encoders, each a
/// parameter-free self-attention layer (Eq. 8) followed by a feed-forward
/// layer (Eq. 9) whose weights mix across the path dimension:
///
///   S(A) = softmax_rows(A Aᵀ / sqrt(d)) · A
///   F(A) = relu(W · A + b),   W ∈ R^{L×L}, b ∈ R^{L×1}
///
/// With `simple` (the With-Simple-Translator ablation) the stack collapses
/// to a single feed-forward layer.
///
/// By default the *last* feed-forward layer is linear (no ReLU): with the
/// literal Eq. 9 everywhere, translated embeddings are confined to the
/// non-negative orthant while skip-gram embeddings are mixed-sign, and the
/// translation/reconstruction objectives then drag every common node's
/// embedding toward that orthant, measurably hurting downstream tasks
/// (bench/design_ablations). Set `final_relu` to recover the literal form.
class Translator {
 public:
  Translator(size_t seq_len, size_t dim, size_t num_encoders, bool simple,
             Rng& rng, bool final_relu = false);

  /// Builds the forward graph for one L×d path matrix already on `tape`.
  /// Parameters are bound as tape leaves, so Tape::Backward accumulates
  /// their gradients.
  Var Apply(Tape& tape, const Var& input) const;

  /// Forward pass without a tape (inference; e.g. translating embeddings for
  /// inspection in examples).
  Matrix Forward(const Matrix& input) const;

  /// Registers all W/b parameters with `optimizer`.
  void RegisterParams(AdamOptimizer* optimizer);

  size_t seq_len() const { return seq_len_; }
  size_t dim() const { return dim_; }
  size_t num_encoders() const { return weights_.size(); }
  bool simple() const { return simple_; }
  bool final_relu() const { return final_relu_; }

  /// Total trainable scalar parameters (tests, Theorem 1 bench).
  size_t num_parameters() const;

  /// Direct parameter access (checkpointing; tests).
  Parameter& weight(size_t encoder) { return *weights_[encoder]; }
  Parameter& bias(size_t encoder) { return *biases_[encoder]; }
  const Parameter& weight(size_t encoder) const { return *weights_[encoder]; }
  const Parameter& bias(size_t encoder) const { return *biases_[encoder]; }

 private:
  size_t seq_len_;
  size_t dim_;
  bool simple_;
  bool final_relu_;
  // One W (L×L) and b (L×1) per encoder (one pair total when simple).
  std::vector<std::unique_ptr<Parameter>> weights_;
  std::vector<std::unique_ptr<Parameter>> biases_;
};

}  // namespace transn

#endif  // TRANSN_CORE_TRANSLATOR_H_
