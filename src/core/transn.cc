#include "core/transn.h"

#include <cmath>

#include "core/model_io.h"
#include "nn/init.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/timer.h"
#include "util/vec.h"

namespace transn {

TransNModel::TransNModel(const HeteroGraph* graph, TransNConfig config)
    : graph_(graph), config_(config), rng_(config.seed) {
  CHECK(graph_ != nullptr);
  CHECK_GT(graph_->num_nodes(), 0u);

  // Record which kernel ISA this training run dispatches to (see util/vec.h).
  obs::MetricsRegistry::Default()
      .GetGauge(obs::kKernelsIsa, "isa",
                "vector-kernel ISA: 0=scalar, 1=avx2, 2=neon")
      ->Set(static_cast<double>(vec::ActiveIsa()));

  // Hogwild pool (TransNConfig::num_threads): 1 keeps the exact sequential
  // path; 0 = hardware concurrency. A pool that resolves to a single worker
  // is dropped — the sequential path is then both faster and reproducible.
  if (config_.num_threads != 1) {
    auto pool = std::make_unique<ThreadPool>(config_.num_threads);
    if (pool->num_threads() > 1) pool_ = std::move(pool);
  }

  // Line 1 of Algorithm 1: generate views and view-pairs.
  views_ = BuildViews(*graph_);
  pairs_ = FindViewPairs(views_);

  // Shared per-node initialization keeps the view spaces aligned from the
  // start (TransNConfig::shared_view_init).
  Matrix shared_init;
  if (config_.shared_view_init) {
    const double bound = 0.5 / static_cast<double>(config_.dim);
    shared_init = UniformInit(graph_->num_nodes(), config_.dim, -bound, bound,
                              rng_);
  }

  single_.resize(views_.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    if (views_[i].graph.num_nodes() == 0) {
      LOG(WARNING) << "view " << i << " ('"
                   << graph_->edge_type_name(views_[i].edge_type)
                   << "') is empty; skipped";
      continue;
    }
    single_[i] = std::make_unique<SingleViewTrainer>(
        &views_[i], config_, rng_,
        config_.shared_view_init ? &shared_init : nullptr);
  }

  if (config_.enable_cross_view) {
    CHECK(config_.enable_translation_tasks ||
          config_.enable_reconstruction_tasks)
        << "enable_cross_view requires at least one of the translation / "
           "reconstruction tasks";
    for (const ViewPair& pair : pairs_) {
      if (single_[pair.view_i] == nullptr || single_[pair.view_j] == nullptr) {
        continue;
      }
      cross_.push_back(std::make_unique<CrossViewTrainer>(
          &pair, single_[pair.view_i].get(), single_[pair.view_j].get(),
          config_, rng_));
    }
  }
}

TransNIterationStats TransNModel::RunIteration() {
  const obs::TraceSpan iter_span("iteration");
  WallTimer iter_timer;
  TransNIterationStats stats;
  size_t active_views = 0;
  for (auto& trainer : single_) {
    if (trainer == nullptr) continue;
    stats.mean_single_view_loss += trainer->RunIteration(rng_, pool_.get());
    const SingleViewIterationStats& sv = trainer->last_iteration_stats();
    stats.single_view_pairs += sv.pairs;
    stats.single_view_walks += sv.walks;
    stats.single_view_seconds += sv.seconds;
    ++active_views;
  }
  if (active_views > 0) {
    stats.mean_single_view_loss /= static_cast<double>(active_views);
  }
  // Crash-safety failpoint: aborts the pass after the single-view updates
  // but before the cross-view updates — the worst spot for a naive
  // checkpointer, since the model is mid-mutation (kill-and-resume tests).
  fault::MaybeThrow(fault::kTrainAbort);
  if (!cross_.empty()) {
    for (auto& trainer : cross_) {
      stats.mean_cross_view_loss += trainer->RunIteration(rng_, pool_.get());
    }
    stats.mean_cross_view_loss /= static_cast<double>(cross_.size());
  }
  history_.push_back(stats);
  ++completed_iterations_;

  // Per-pass rollups (registered by name, dumped via --metrics-out). The
  // per-view pairs/seconds are recorded inside SingleViewTrainer.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry
      .GetCounter(obs::kTrainIterationsTotal, "iterations",
                  "Algorithm-1 passes completed")
      ->Increment();
  registry
      .GetHistogram(obs::kTrainIterationSeconds, "seconds",
                    "wall time of one Algorithm-1 pass")
      ->Record(iter_timer.ElapsedSeconds());
  registry
      .GetGauge(obs::kTrainSingleViewLoss, "loss",
                "mean single-view loss of the most recent pass")
      ->Set(stats.mean_single_view_loss);
  registry
      .GetGauge(obs::kTrainCrossViewLoss, "loss",
                "mean cross-view loss of the most recent pass")
      ->Set(stats.mean_cross_view_loss);
  registry
      .GetGauge(obs::kTrainPairsPerSecond, "pairs/s",
                "single-view throughput of the most recent pass")
      ->Set(stats.single_view_pairs_per_second());
  return stats;
}

void TransNModel::Fit() {
  const obs::TraceSpan fit_span("train");
  if (config_.checkpoint_every_iters > 0) {
    CHECK(!config_.checkpoint_path.empty())
        << "checkpoint_every_iters requires checkpoint_path";
  }
  while (completed_iterations_ < config_.iterations) {
    TransNIterationStats stats = RunIteration();
    LOG(INFO) << "TransN iteration " << completed_iterations_ << "/"
              << config_.iterations
              << " single-view loss=" << stats.mean_single_view_loss
              << " cross-view loss=" << stats.mean_cross_view_loss
              << " (" << stats.single_view_pairs << " pairs, "
              << stats.single_view_pairs_per_second() << " pairs/s)";
    if (config_.checkpoint_every_iters > 0 &&
        completed_iterations_ % config_.checkpoint_every_iters == 0 &&
        completed_iterations_ < config_.iterations) {
      // Mid-training checkpoint. A failed write must not kill the run: the
      // failure is already counted in io.write_errors_total and the previous
      // good checkpoint is still intact (atomic replace).
      Status s = SaveTransNCheckpoint(*this, config_.checkpoint_path);
      if (!s.ok()) {
        LOG(ERROR) << "checkpoint write failed (training continues): "
                   << s.ToString();
      }
    }
  }
}

Matrix TransNModel::FinalEmbeddings() const {
  Matrix out(graph_->num_nodes(), config_.dim, 0.0);
  std::vector<int> view_counts(graph_->num_nodes(), 0);
  for (size_t i = 0; i < views_.size(); ++i) {
    if (single_[i] == nullptr) continue;
    const ViewGraph& vg = views_[i].graph;
    const EmbeddingTable& table = single_[i]->embeddings();

    // Per-view scalar for kViewNormalized: reciprocal of the mean row norm.
    double view_scale = 1.0;
    if (config_.view_average == ViewAverageKind::kViewNormalized) {
      double norm_sum = 0.0;
      for (ViewGraph::LocalId local = 0; local < vg.num_nodes(); ++local) {
        const double* row = table.Row(local);
        norm_sum += std::sqrt(vec::Dot(row, row, config_.dim));
      }
      const double mean_norm = norm_sum / static_cast<double>(vg.num_nodes());
      if (mean_norm > 1e-12) view_scale = 1.0 / mean_norm;
    }

    for (ViewGraph::LocalId local = 0; local < vg.num_nodes(); ++local) {
      const NodeId global = vg.ToGlobal(local);
      const double* row = table.Row(local);
      double* dst = out.Row(global);
      double scale = view_scale;
      if (config_.view_average == ViewAverageKind::kRowNormalized) {
        const double norm = std::sqrt(vec::Dot(row, row, config_.dim));
        if (norm <= 1e-12) continue;
        scale = 1.0 / norm;
      }
      vec::Axpy(scale, row, dst, config_.dim);
      ++view_counts[global];
    }
  }
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    if (view_counts[n] > 1) {
      double* row = out.Row(n);
      const double inv = 1.0 / view_counts[n];
      for (size_t c = 0; c < config_.dim; ++c) row[c] *= inv;
    }
  }
  return out;
}

std::vector<double> TransNModel::ViewEmbedding(size_t view_index,
                                               NodeId node) const {
  CHECK_LT(view_index, views_.size());
  std::vector<double> out(config_.dim, 0.0);
  if (single_[view_index] == nullptr) return out;
  ViewGraph::LocalId local = views_[view_index].graph.ToLocal(node);
  if (local == kInvalidNode) return out;
  const double* row = single_[view_index]->embeddings().Row(local);
  out.assign(row, row + config_.dim);
  return out;
}

}  // namespace transn
