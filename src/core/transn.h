#ifndef TRANSN_CORE_TRANSN_H_
#define TRANSN_CORE_TRANSN_H_

#include <memory>
#include <vector>

#include "core/cross_view.h"
#include "core/single_view.h"
#include "core/transn_config.h"
#include "graph/hetero_graph.h"
#include "graph/view.h"
#include "graph/view_pair.h"

namespace transn {

/// Per-iteration training diagnostics.
struct TransNIterationStats {
  double mean_single_view_loss = 0.0;
  double mean_cross_view_loss = 0.0;
  /// Single-view hot-path volume/timing, summed over the active views
  /// (pairs = SGNS/HS updates, seconds = wall clock of those passes). Feeds
  /// the training log and bench/parallel_scaling.
  size_t single_view_pairs = 0;
  size_t single_view_walks = 0;
  double single_view_seconds = 0.0;

  double single_view_pairs_per_second() const {
    return single_view_seconds > 0.0
               ? static_cast<double>(single_view_pairs) / single_view_seconds
               : 0.0;
  }
};

/// The TransN framework (Algorithm 1): separates the network into views and
/// view-pairs, interleaves the single-view and cross-view algorithms for K
/// iterations, and averages each node's view-specific embeddings into its
/// final embedding.
///
/// Example:
///   TransNModel model(&graph, config);
///   model.Fit();
///   Matrix emb = model.FinalEmbeddings();   // num_nodes x dim
class TransNModel {
 public:
  /// `graph` must outlive the model. Views/view-pairs are built eagerly;
  /// ablation switches in `config` select the Table-V variants.
  TransNModel(const HeteroGraph* graph, TransNConfig config);

  /// Runs Algorithm-1 passes until config.iterations have completed in
  /// total, starting from completed_iterations() — so a model restored with
  /// ResumeTransNCheckpoint finishes exactly the remaining passes. When
  /// config.checkpoint_every_iters > 0, writes an atomic checkpoint to
  /// config.checkpoint_path after every N completed passes.
  void Fit();

  /// Runs a single pass (line 2 body); exposed for incremental training and
  /// the Theorem-1 scaling bench. Returns that pass's losses and advances
  /// completed_iterations().
  TransNIterationStats RunIteration();

  /// Final embeddings: row n is the average of node n's view-specific
  /// embeddings over all views containing n (zero row for isolated nodes).
  Matrix FinalEmbeddings() const;

  /// The view-specific embedding \vec{n}_i, or a zero vector when node n is
  /// not part of view i.
  std::vector<double> ViewEmbedding(size_t view_index, NodeId node) const;

  const HeteroGraph& graph() const { return *graph_; }
  const TransNConfig& config() const { return config_; }
  const std::vector<View>& views() const { return views_; }
  const std::vector<ViewPair>& view_pairs() const { return pairs_; }
  SingleViewTrainer& single_view_trainer(size_t i) { return *single_[i]; }
  CrossViewTrainer& cross_view_trainer(size_t p) { return *cross_[p]; }
  size_t num_cross_trainers() const { return cross_.size(); }
  /// Null for empty views (checkpointing iterates these).
  SingleViewTrainer* single_view_trainer_or_null(size_t i) {
    return single_[i].get();
  }
  const SingleViewTrainer* single_view_trainer_or_null(size_t i) const {
    return single_[i].get();
  }
  const CrossViewTrainer& cross_view_trainer(size_t p) const {
    return *cross_[p];
  }
  const std::vector<TransNIterationStats>& history() const { return history_; }

  /// Completed Algorithm-1 passes; advanced by RunIteration and restored by
  /// ResumeTransNCheckpoint (core/model_io).
  size_t completed_iterations() const { return completed_iterations_; }
  void set_completed_iterations(size_t n) { completed_iterations_ = n; }

  /// The training RNG; checkpointing snapshots/restores its full state so a
  /// resumed run draws the same sequence the uninterrupted run would have.
  Rng& mutable_rng() { return rng_; }
  const Rng& rng() const { return rng_; }

 private:
  const HeteroGraph* graph_;
  TransNConfig config_;
  Rng rng_;
  /// Hogwild worker pool; null when config.num_threads == 1 (the exact
  /// sequential, bit-reproducible path).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<View> views_;
  std::vector<ViewPair> pairs_;
  /// Parallel to views_; null for empty views.
  std::vector<std::unique_ptr<SingleViewTrainer>> single_;
  std::vector<std::unique_ptr<CrossViewTrainer>> cross_;
  std::vector<TransNIterationStats> history_;
  size_t completed_iterations_ = 0;
};

}  // namespace transn

#endif  // TRANSN_CORE_TRANSN_H_
