#ifndef TRANSN_CORE_TRANSN_CONFIG_H_
#define TRANSN_CORE_TRANSN_CONFIG_H_

#include <stdint.h>

#include <string>

#include "emb/sgns.h"
#include "walk/random_walk.h"

namespace transn {

/// How view-specific embeddings are combined into the final embedding
/// (§III-C: equal-importance average; see DESIGN.md §2.9).
enum class ViewAverageKind {
  /// Plain arithmetic mean of the raw view-specific vectors (the literal
  /// reading; views with larger norms dominate).
  kPlain,
  /// Each view-specific vector is L2-normalized before averaging (strict
  /// per-node equal importance; discards embedding magnitude, which also
  /// carries degree information useful for link scoring).
  kRowNormalized,
  /// Each view's table is scaled by the reciprocal of its mean row norm
  /// (equalizes views globally while preserving within-view magnitude
  /// structure). Default.
  kViewNormalized,
};

/// Form of the translation/reconstruction similarity objective
/// (Eq. 11–14; see DESIGN.md §2.3 for the sign discussion).
enum class CrossViewLossKind {
  /// mean_r (1 - cos(pred_r, target_r)) — bounded, stable; default.
  kCosine,
  /// -(1/|λ|) Σ (pred ⊙ target) — the literal sign-corrected equation.
  kNegativeDot,
};

/// Full configuration of the TransN framework (Algorithm 1). Defaults follow
/// §IV-A3: walk length 80, walks per node clamp(degree, 10, 32), H = 6
/// encoders, d = 128, initial learning rate 0.025. Benches scale several of
/// these down (documented in EXPERIMENTS.md).
struct TransNConfig {
  /// d: embedding dimensionality.
  size_t dim = 128;
  /// K: outer iterations of Algorithm 1.
  size_t iterations = 5;
  uint64_t seed = 42;

  /// Write an atomic checkpoint to `checkpoint_path` every this many
  /// completed iterations (0 = off). Checkpoints carry the iteration
  /// counter, RNG state, and Adam moments, so `--resume` continues the run
  /// bit-for-bit where a crash interrupted it (DESIGN.md §8).
  size_t checkpoint_every_iters = 0;
  /// Target file for periodic checkpoints (written as `<path>.tmp` then
  /// renamed). Required when checkpoint_every_iters > 0.
  std::string checkpoint_path;

  /// Worker threads for parallel training. 1 (default) keeps the exact
  /// sequential path, bit-reproducible from `seed` and identical to the
  /// historical implementation; 0 selects hardware concurrency; > 1 runs the
  /// episodic block engine: walk generation is sharded across a thread pool
  /// with per-shard split RNGs, context pairs are bucketed by
  /// (center-block, context-block), and episode rounds hand every worker a
  /// pairwise-disjoint block pair, so concurrent workers never touch the
  /// same embedding row. Multi-threaded runs are therefore also
  /// bit-deterministic for a fixed (seed, num_threads,
  /// episode_blocks_per_thread) — though each thread count draws its own
  /// RNG streams and so lands on different (statistically equivalent) bits
  /// than the sequential run (DESIGN.md "Parallel training &
  /// reproducibility").
  size_t num_threads = 1;

  /// Episode granularity of the multi-threaded engine: the embedding rows
  /// of a view are strided into num_threads * episode_blocks_per_thread
  /// blocks. 1 gives the static partition (one block per worker, fewest
  /// barriers); larger values enable the GraphVite-style episode scheduler —
  /// more, smaller blocks rotated through the workers, which evens out
  /// degree skew and keeps each episode's working set cache-resident on
  /// large graphs. Ignored when num_threads resolves to 1. Any value yields
  /// deterministic results; changing it changes which (equivalent) bits a
  /// multi-threaded run produces.
  size_t episode_blocks_per_thread = 1;

  // --- single-view algorithm (§III-A) ---
  WalkConfig walk;
  SgnsConfig sgns;  // sgns.learning_rate is γ_single
  /// Optimize Eq. 3 with word2vec's hierarchical softmax instead of
  /// negative sampling. This is the variant the paper's complexity analysis
  /// assumes (the d·log2(μ) term of Theorem 1); negative sampling is the
  /// faster standard substitute (DESIGN.md §2.2).
  bool use_hierarchical_softmax = false;

  // --- cross-view algorithm (§III-B) ---
  /// H: encoders per translator.
  size_t translator_encoders = 6;
  /// Fixed path length |λ| fed through translators. Filtered common-node
  /// sequences are cut into windows of exactly this length (DESIGN.md §2.5).
  size_t translator_seq_len = 8;
  /// Apply Eq. 9's ReLU to the *last* feed-forward layer too. Off by
  /// default: the literal form confines translated embeddings to the
  /// non-negative orthant and drags the mixed-sign skip-gram embeddings
  /// with it (Translator class comment, DESIGN.md §2.11).
  bool translator_final_relu = false;
  /// T: path pairs sampled per view-pair per iteration.
  size_t cross_paths_per_pair = 100;
  /// γ_cross: Adam learning rate for translators and common-node rows.
  double cross_learning_rate = 0.025;
  CrossViewLossKind cross_loss = CrossViewLossKind::kCosine;

  /// Initialize a node's view-specific embeddings identically across views
  /// (one shared random vector per node). The view spaces then start
  /// aligned and the cross-view objectives keep them coupled, which makes
  /// the final per-view average (and inner-product link scores across it)
  /// meaningful. With independent per-view initializations the view spaces
  /// are unrelated random rotations and averaging cancels signal
  /// (DESIGN.md §2.10).
  bool shared_view_init = true;

  // --- final embedding (§III-C end) ---
  /// How the equal-importance average of §III-C is computed (ablation in
  /// bench/design_ablations).
  ViewAverageKind view_average = ViewAverageKind::kViewNormalized;

  // --- ablation switches (Table V) ---
  /// TransN-Without-Cross-View: skip lines 8–12 of Algorithm 1.
  bool enable_cross_view = true;
  /// TransN-With-Simple-Walk: uniform unweighted walks, uniform starts.
  bool simple_walk = false;
  /// TransN-With-Simple-Translator: one feed-forward layer per translator.
  bool simple_translator = false;
  /// TransN-Without-Translation-Tasks.
  bool enable_translation_tasks = true;
  /// TransN-Without-Reconstruction-Tasks.
  bool enable_reconstruction_tasks = true;

  /// Applies the simple-walk ablation to a WalkConfig.
  WalkConfig EffectiveWalkConfig() const {
    WalkConfig w = walk;
    if (simple_walk) {
      w.weight_biased = false;
      w.correlated = false;
      w.degree_biased_starts = false;
    }
    return w;
  }
};

}  // namespace transn

#endif  // TRANSN_CORE_TRANSN_CONFIG_H_
