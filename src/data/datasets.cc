#include "data/datasets.h"

#include <cmath>

#include "data/hsbm.h"

namespace transn {
namespace {

size_t Scaled(size_t base, double scale, size_t min_value = 4) {
  return std::max(min_value,
                  static_cast<size_t>(std::llround(base * scale)));
}

}  // namespace

HeteroGraph MakeAminerLike(double scale, uint64_t seed) {
  // Full paper scale at 1.0 (AMiner is small enough to keep as-is).
  HsbmSpec spec;
  spec.node_types = {{"Author", Scaled(2161, scale)},
                     {"Paper", Scaled(2555, scale)},
                     {"Venue", Scaled(58, scale)}};
  constexpr size_t kAuthor = 0, kPaper = 1, kVenue = 2;
  // Views are deliberately *unequally* informative (§III-B's premise that
  // single views are biased): co-authorship crosses topics frequently,
  // citations are fairly topic-pure, and venues define topics.
  spec.edge_types = {
      // Co-authorship *contradicts* the topic structure (collaborations
      // form around institutions, not topics): flattened methods mix this
      // noise into paper proximity, while the view separation isolates it.
      {.name = "AA", .type_a = kAuthor, .type_b = kAuthor,
       .num_edges = Scaled(3836, scale), .intra_community_prob = 0.7,
       .community_correlation = 0.25},
      {.name = "AP", .type_a = kAuthor, .type_b = kPaper,
       .num_edges = Scaled(6072, scale), .intra_community_prob = 0.75,
       .community_correlation = 0.9},
      {.name = "PP", .type_a = kPaper, .type_b = kPaper,
       .num_edges = Scaled(5332, scale), .intra_community_prob = 0.7,
       .community_correlation = 0.8},
      {.name = "PV", .type_a = kPaper, .type_b = kVenue,
       .num_edges = Scaled(2555, scale), .intra_community_prob = 0.85,
       .community_correlation = 0.95},
  };
  spec.num_communities = 8;  // research topics
  spec.labeled_type = kPaper;
  spec.labeled_fraction = 1.0;
  spec.degree_skew = 0.8;
  spec.seed = seed;
  return GenerateHsbm(spec);
}

HeteroGraph MakeBlogLike(double scale, uint64_t seed) {
  // ~1/14 of the paper's BLOG; kept an order of magnitude denser than the
  // other networks, as in Table II.
  HsbmSpec spec;
  spec.node_types = {{"User", Scaled(4000, scale)},
                     {"Keyword", Scaled(420, scale)}};
  constexpr size_t kUser = 0, kKeyword = 1;
  // Friendship and keyword usage are strongly correlated (the basis of the
  // paper's BLOG link-prediction analysis); keyword co-occurrence is a
  // noisier view.
  spec.edge_types = {
      {.name = "UU", .type_a = kUser, .type_b = kUser,
       .num_edges = Scaled(56000, scale), .intra_community_prob = 0.55,
       .community_correlation = 0.9},
      {.name = "UK", .type_a = kUser, .type_b = kKeyword,
       .num_edges = Scaled(13000, scale), .intra_community_prob = 0.65,
       .community_correlation = 0.92},
      // Keyword co-occurrence contradicts the interest fields (keywords
      // cluster by language/style, not by interest): another Fig. 2(c)
      // "views disagree" ingredient that penalizes flattening and forced
      // consistency.
      {.name = "KK", .type_a = kKeyword, .type_b = kKeyword,
       .num_edges = Scaled(9500, scale), .intra_community_prob = 0.7,
       .community_correlation = 0.3},
  };
  spec.num_communities = 6;  // interest fields
  spec.labeled_type = kUser;
  spec.labeled_fraction = 1.0;
  spec.degree_skew = 0.8;
  spec.seed = seed;
  return GenerateHsbm(spec);
}

HeteroGraph MakeAppDailyLike(double scale, uint64_t seed) {
  // ~1/25 of App-Daily. Weighted, sparse, weakly correlated views: a user's
  // applet usage barely predicts which keywords retrieve the applet (§IV-B2).
  HsbmSpec spec;
  spec.node_types = {{"Applet", Scaled(6000, scale)},
                     {"User", Scaled(680, scale)},
                     {"Keyword", Scaled(1140, scale)}};
  constexpr size_t kApplet = 0, kUser = 1, kKeyword = 2;
  spec.edge_types = {
      // One distinct weight level per category (9 communities): affinity is
      // encoded in weight-level *consistency*, the signal the correlated
      // walk factor π2 exploits (Fig. 4).
      {.name = "AU", .type_a = kApplet, .type_b = kUser,
       .num_edges = Scaled(12000, scale), .intra_community_prob = 0.78,
       .community_correlation = 0.4, .weighted = true,
       .community_weight_levels = true,
       // Compressed palette: levels are separable under π2's
       // similarity test but no level dominates π1's weight bias.
       .weight_levels = {2, 3, 5, 7, 10, 14, 19, 26, 35}},
      {.name = "AK", .type_a = kApplet, .type_b = kKeyword,
       .num_edges = Scaled(15000, scale), .intra_community_prob = 0.78,
       .community_correlation = 0.4, .weighted = true,
       .community_weight_levels = true,
       .weight_levels = {2, 3, 5, 7, 10, 14, 19, 26, 35}},
  };
  spec.num_communities = 9;  // applet categories
  spec.labeled_type = kApplet;
  spec.labeled_fraction = 0.2;
  spec.degree_skew = 1.1;
  spec.seed = seed;
  return GenerateHsbm(spec);
}

HeteroGraph MakeAppWeeklyLike(double scale, uint64_t seed) {
  // ~1/30 of App-Weekly: same schema as App-Daily with many more users and
  // a much heavier usage view.
  HsbmSpec spec;
  spec.node_types = {{"Applet", Scaled(6200, scale)},
                     {"User", Scaled(7000, scale)},
                     {"Keyword", Scaled(1190, scale)}};
  constexpr size_t kApplet = 0, kUser = 1, kKeyword = 2;
  spec.edge_types = {
      {.name = "AU", .type_a = kApplet, .type_b = kUser,
       .num_edges = Scaled(55000, scale), .intra_community_prob = 0.75,
       .community_correlation = 0.35, .weighted = true,
       .community_weight_levels = true,
       .weight_levels = {3, 4, 6, 9, 13, 18, 25, 34, 46}},
      {.name = "AK", .type_a = kApplet, .type_b = kKeyword,
       .num_edges = Scaled(16500, scale), .intra_community_prob = 0.78,
       .community_correlation = 0.35, .weighted = true,
       .community_weight_levels = true,
       .weight_levels = {2, 3, 5, 7, 10, 14, 19, 26, 35}},
  };
  spec.num_communities = 9;
  spec.labeled_type = kApplet;
  spec.labeled_fraction = 0.2;
  spec.degree_skew = 1.1;
  spec.seed = seed;
  return GenerateHsbm(spec);
}

std::vector<std::string> DatasetNames() {
  return {"AMiner", "BLOG", "App-Daily", "App-Weekly"};
}

StatusOr<HeteroGraph> MakeDataset(const std::string& name, double scale,
                                  uint64_t seed) {
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");
  if (name == "AMiner") return MakeAminerLike(scale, seed);
  if (name == "BLOG") return MakeBlogLike(scale, seed);
  if (name == "App-Daily") return MakeAppDailyLike(scale, seed);
  if (name == "App-Weekly") return MakeAppWeeklyLike(scale, seed);
  return Status::NotFound("unknown dataset: " + name);
}

std::vector<std::string> RecommendedMetapath(const std::string& dataset_name) {
  if (dataset_name == "AMiner") {
    // APVPA (§IV-A3).
    return {"Author", "Paper", "Venue", "Paper", "Author"};
  }
  if (dataset_name == "BLOG") {
    // "UTU": user-topic(keyword)-user.
    return {"User", "Keyword", "User"};
  }
  if (dataset_name == "App-Daily" || dataset_name == "App-Weekly") {
    // "UAKAU": user-applet-keyword-applet-user.
    return {"User", "Applet", "Keyword", "Applet", "User"};
  }
  return {};
}

}  // namespace transn
