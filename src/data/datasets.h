#ifndef TRANSN_DATA_DATASETS_H_
#define TRANSN_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace transn {

/// Synthetic analogues of the paper's four evaluation networks (Table II).
/// Each mirrors its original's schema (node/edge types, which type carries
/// labels, weighted vs unit edges) and its qualitative character (density,
/// view correlation); see DESIGN.md §2.1 for the substitution rationale.
/// `scale` multiplies node and edge counts (1.0 = the laptop-scale default,
/// which for AMiner matches the paper's size and for the larger networks is
/// roughly 1/15 of it). `seed` drives all sampling.

/// Academic network: Author/Paper/Venue; AA, AP, PP, PV edges; labels on
/// papers; unit weights; strongly correlated views.
HeteroGraph MakeAminerLike(double scale, uint64_t seed);

/// Social network: User/Keyword; UU, UK, KK edges; labels on users; unit
/// weights; dense; strongly correlated views (the paper credits TransN's
/// BLOG link-prediction margin to this).
HeteroGraph MakeBlogLike(double scale, uint64_t seed);

/// Applet-store usage+query logs, one day: Applet/User/Keyword; weighted
/// AU (usage time) and AK (query downloads) edges; labels on a subset of
/// applets; sparse; weakly correlated views.
HeteroGraph MakeAppDailyLike(double scale, uint64_t seed);

/// Same schema over a week: more users and much heavier AU volume.
HeteroGraph MakeAppWeeklyLike(double scale, uint64_t seed);

/// Canonical dataset order used by every bench (matches the paper's
/// tables): {"AMiner", "BLOG", "App-Daily", "App-Weekly"}.
std::vector<std::string> DatasetNames();

/// Dispatch by name (case-sensitive, as in DatasetNames()).
StatusOr<HeteroGraph> MakeDataset(const std::string& name, double scale,
                                  uint64_t seed);

/// Recommended meta-path (node-type name sequence) per dataset for the
/// Metapath2Vec baseline, mirroring §IV-A3's choices (APVPA on AMiner, UKU
/// on BLOG, UAKAU-analogue on the App networks).
std::vector<std::string> RecommendedMetapath(const std::string& dataset_name);

}  // namespace transn

#endif  // TRANSN_DATA_DATASETS_H_
