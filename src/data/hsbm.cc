#include "data/hsbm.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace transn {
namespace {

/// Exponential weight >= 1 with the given mean above 1.
double DrawWeight(double mean, Rng& rng) {
  const double u = std::max(1e-12, 1.0 - rng.NextDouble());
  return 1.0 + std::floor(-std::max(mean - 1.0, 0.1) * std::log(u));
}

uint64_t EdgeKey(NodeId u, NodeId v) {
  NodeId lo = std::min(u, v), hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

HeteroGraph GenerateHsbm(const HsbmSpec& spec) {
  CHECK(!spec.node_types.empty());
  CHECK_GT(spec.num_communities, 0u);
  CHECK_LT(spec.labeled_type, spec.node_types.size());
  Rng rng(spec.seed);

  HeteroGraphBuilder builder;
  std::vector<NodeTypeId> type_ids;
  for (const HsbmNodeType& nt : spec.node_types) {
    CHECK_GT(nt.count, 0u);
    type_ids.push_back(builder.AddNodeType(nt.name));
  }
  std::vector<EdgeTypeId> edge_type_ids;
  for (const HsbmEdgeType& et : spec.edge_types) {
    CHECK_LT(et.type_a, spec.node_types.size());
    CHECK_LT(et.type_b, spec.node_types.size());
    edge_type_ids.push_back(builder.AddEdgeType(et.name));
  }

  // Nodes, global communities, attachment propensities.
  std::vector<std::vector<NodeId>> nodes_of_type(spec.node_types.size());
  const size_t total_nodes = [&] {
    size_t t = 0;
    for (const auto& nt : spec.node_types) t += nt.count;
    return t;
  }();
  std::vector<int> community(total_nodes);
  std::vector<double> propensity(total_nodes);
  for (size_t t = 0; t < spec.node_types.size(); ++t) {
    const std::string prefix = spec.node_types[t].name.substr(0, 1);
    for (size_t k = 0; k < spec.node_types[t].count; ++k) {
      NodeId id = builder.AddNode(type_ids[t],
                                  StrFormat("%s%zu", prefix.c_str(), k));
      nodes_of_type[t].push_back(id);
      community[id] = static_cast<int>(rng.NextUint64(spec.num_communities));
      propensity[id] = std::exp(spec.degree_skew * rng.NextGaussian());
    }
  }

  // Labels: community ids on a fraction of the labeled type.
  {
    std::vector<NodeId> candidates = nodes_of_type[spec.labeled_type];
    rng.Shuffle(candidates);
    const size_t n_label = static_cast<size_t>(
        std::round(spec.labeled_fraction * candidates.size()));
    for (size_t k = 0; k < n_label; ++k) {
      builder.SetLabel(candidates[k], community[candidates[k]]);
    }
  }

  std::vector<size_t> degree(total_nodes, 0);

  // Per edge type: effective communities, alias samplers, edge sampling.
  for (size_t e = 0; e < spec.edge_types.size(); ++e) {
    const HsbmEdgeType& et = spec.edge_types[e];
    const auto& a_nodes = nodes_of_type[et.type_a];
    const auto& b_nodes = nodes_of_type[et.type_b];

    // Effective community: a correlation-noised copy of the global one,
    // fixed per node for this edge type.
    std::vector<int> eff(total_nodes, -1);
    auto assign_eff = [&](const std::vector<NodeId>& nodes) {
      for (NodeId n : nodes) {
        if (eff[n] >= 0) continue;
        eff[n] = rng.NextBernoulli(et.community_correlation)
                     ? community[n]
                     : static_cast<int>(rng.NextUint64(spec.num_communities));
      }
    };
    assign_eff(a_nodes);
    assign_eff(b_nodes);

    // Alias samplers: u over type_a; v over type_b globally and per
    // effective community.
    std::vector<double> a_weights(a_nodes.size());
    for (size_t k = 0; k < a_nodes.size(); ++k) {
      a_weights[k] = propensity[a_nodes[k]];
    }
    AliasTable a_sampler(a_weights);

    std::vector<double> b_weights(b_nodes.size());
    for (size_t k = 0; k < b_nodes.size(); ++k) {
      b_weights[k] = propensity[b_nodes[k]];
    }
    AliasTable b_sampler(b_weights);

    std::vector<std::vector<NodeId>> b_by_comm(spec.num_communities);
    std::vector<std::vector<double>> b_comm_weights(spec.num_communities);
    for (NodeId n : b_nodes) {
      b_by_comm[eff[n]].push_back(n);
      b_comm_weights[eff[n]].push_back(propensity[n]);
    }
    std::vector<AliasTable> b_comm_sampler(spec.num_communities);
    for (size_t c = 0; c < spec.num_communities; ++c) {
      if (!b_by_comm[c].empty()) b_comm_sampler[c].Build(b_comm_weights[c]);
    }

    std::unordered_set<uint64_t> seen;
    seen.reserve(et.num_edges * 2);
    const size_t max_attempts = 20 * et.num_edges + 1000;
    size_t added = 0;
    for (size_t attempt = 0; attempt < max_attempts && added < et.num_edges;
         ++attempt) {
      NodeId u = a_nodes[a_sampler.Sample(rng)];
      NodeId v;
      bool intra = rng.NextBernoulli(et.intra_community_prob);
      if (intra && !b_by_comm[eff[u]].empty()) {
        v = b_by_comm[eff[u]][b_comm_sampler[eff[u]].Sample(rng)];
      } else {
        v = b_nodes[b_sampler.Sample(rng)];
        intra = eff[v] == eff[u];
      }
      if (u == v) continue;
      if (!seen.insert(EdgeKey(u, v)).second) continue;
      double w = 1.0;
      if (et.weighted && et.community_weight_levels) {
        // Figure-4 semantics: weight encodes a community-characteristic
        // level (±20% noise); cross-community edges land on a random level.
        CHECK(!et.weight_levels.empty());
        const size_t level_index =
            intra ? static_cast<size_t>(eff[u]) % et.weight_levels.size()
                  : rng.NextUint64(et.weight_levels.size());
        const double level = et.weight_levels[level_index];
        w = std::max(1.0, std::round(level * rng.NextDouble(0.8, 1.2)));
      } else if (et.weighted) {
        w = DrawWeight(intra ? et.weight_intra_mean : et.weight_inter_mean,
                       rng);
      }
      builder.AddEdge(u, v, edge_type_ids[e], w);
      ++degree[u];
      ++degree[v];
      ++added;
    }
  }

  // Repair pass: connect isolated nodes through the first compatible edge
  // type so every node appears in at least one view.
  for (NodeId n = 0; n < total_nodes; ++n) {
    if (degree[n] > 0) continue;
    const size_t my_type = [&] {
      size_t t = 0;
      NodeId acc = 0;
      for (; t < spec.node_types.size(); ++t) {
        acc += spec.node_types[t].count;
        if (n < acc) break;
      }
      return t;
    }();
    for (size_t e = 0; e < spec.edge_types.size(); ++e) {
      const HsbmEdgeType& et = spec.edge_types[e];
      size_t other_type;
      if (et.type_a == my_type) {
        other_type = et.type_b;
      } else if (et.type_b == my_type) {
        other_type = et.type_a;
      } else {
        continue;
      }
      const auto& partners = nodes_of_type[other_type];
      for (int tries = 0; tries < 32; ++tries) {
        NodeId v = partners[rng.NextUint64(partners.size())];
        if (v == n) continue;
        double w = et.weighted ? DrawWeight(et.weight_inter_mean, rng) : 1.0;
        builder.AddEdge(n, v, edge_type_ids[e], w);
        ++degree[n];
        ++degree[v];
        break;
      }
      if (degree[n] > 0) break;
    }
  }

  return builder.Build();
}

}  // namespace transn
