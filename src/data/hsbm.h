#ifndef TRANSN_DATA_HSBM_H_
#define TRANSN_DATA_HSBM_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"

namespace transn {

/// Specification of one node type in a heterogeneous stochastic block model.
struct HsbmNodeType {
  std::string name;
  size_t count = 0;
};

/// Specification of one edge type. Endpoint types may be equal (homo-view)
/// or differ (heter-view / bipartite).
struct HsbmEdgeType {
  std::string name;
  /// Indices into HsbmSpec::node_types.
  size_t type_a = 0;
  size_t type_b = 0;
  /// Target number of distinct edges.
  size_t num_edges = 0;
  /// Probability that an edge connects endpoints of the same (effective)
  /// community, as opposed to a uniformly random partner.
  double intra_community_prob = 0.8;
  /// How strongly this edge type's community structure agrees with the
  /// global (label-defining) communities: 1 = identical, 0 = an independent
  /// random re-assignment. This is the view-correlation knob of DESIGN.md
  /// §2.1.
  double community_correlation = 1.0;
  /// Unit weights when false.
  bool weighted = false;
  /// Mean of the (exponential, >= 1) weight distribution for
  /// within-community and cross-community edges. Informative weights have
  /// weight_intra_mean >> weight_inter_mean.
  double weight_intra_mean = 8.0;
  double weight_inter_mean = 2.0;
  /// Rating-style weights (the paper's Figure 4 semantics): instead of
  /// "heavier = within community", each community gets a characteristic
  /// weight *level* from `weight_levels`; within-community edges draw near
  /// their community's level and cross-community edges draw a random level.
  /// Affinity is then encoded by weight *similarity*, which rewards the
  /// correlated walk factor π2 (Eq. 7) rather than the plain weight bias π1
  /// (Eq. 6). Overrides the mean-based weights above when true.
  bool community_weight_levels = false;
  std::vector<double> weight_levels = {2.0, 5.0, 11.0, 23.0, 47.0};
};

/// Full model specification.
struct HsbmSpec {
  std::vector<HsbmNodeType> node_types;
  std::vector<HsbmEdgeType> edge_types;
  size_t num_communities = 4;
  /// Node type carrying classification labels (label = community id).
  size_t labeled_type = 0;
  /// Fraction of that type's nodes that receive a label.
  double labeled_fraction = 1.0;
  /// Lognormal σ of per-node attachment propensity; 0 gives near-uniform
  /// degrees, larger values a heavier-tailed degree distribution.
  double degree_skew = 0.8;
  uint64_t seed = 1;
};

/// Samples a heterogeneous network from the block model: every node gets a
/// global community; each edge type draws endpoints propensity-weighted,
/// with `intra_community_prob` of edges joining nodes that share the edge
/// type's effective community (a `community_correlation`-noised copy of the
/// global one). Guarantees no isolated nodes (a repair pass attaches any
/// leftover node through the first compatible edge type).
HeteroGraph GenerateHsbm(const HsbmSpec& spec);

}  // namespace transn

#endif  // TRANSN_DATA_HSBM_H_
