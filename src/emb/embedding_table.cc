#include "emb/embedding_table.h"

#include "util/vec.h"

namespace transn {

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim, Rng& rng)
    : values_(num_rows, dim) {
  CHECK_GT(dim, 0u);
  const double bound = 0.5 / static_cast<double>(dim);
  for (size_t i = 0; i < values_.size(); ++i) {
    values_.data()[i] = rng.NextDouble(-bound, bound);
  }
}

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim)
    : values_(num_rows, dim, 0.0) {
  CHECK_GT(dim, 0u);
}

void EmbeddingTable::SgdStep(size_t r, const double* grad, double lr) {
  vec::ScaledSub(Row(r), lr, grad, dim());
}

void EmbeddingTable::EnsureAdamState() {
  if (adam_m_.rows() != values_.rows()) {
    adam_m_.Resize(values_.rows(), values_.cols(), 0.0);
    adam_v_.Resize(values_.rows(), values_.cols(), 0.0);
  }
}

void EmbeddingTable::AdamStep(size_t r, const double* grad,
                              const AdamConfig& config) {
  CHECK_GE(adam_t_, 1) << "call BeginAdamStep() before AdamStep()";
  EnsureAdamState();
  AdamUpdateRow(config, adam_t_, grad, Row(r), adam_m_.Row(r), adam_v_.Row(r),
                dim());
}

Matrix EmbeddingTable::GatherRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), dim());
  for (size_t i = 0; i < rows.size(); ++i) {
    CHECK_LT(rows[i], num_rows());
    const double* src = Row(rows[i]);
    double* dst = out.Row(i);
    for (size_t c = 0; c < dim(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace transn
