#include "emb/embedding_table.h"

#include <stdint.h>

#include "util/vec.h"

namespace transn {

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim, Rng& rng)
    : values_(num_rows, dim) {
  CHECK_GT(dim, 0u);
  const double bound = 0.5 / static_cast<double>(dim);
  for (size_t i = 0; i < values_.size(); ++i) {
    values_.data()[i] = rng.NextDouble(-bound, bound);
  }
}

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim)
    : values_(num_rows, dim, 0.0) {
  CHECK_GT(dim, 0u);
}

void EmbeddingTable::SgdStep(size_t r, const double* grad, double lr) {
  vec::ScaledSub(Row(r), lr, grad, dim());
}

void AdamMomentStore::Resize(size_t rows, size_t dim) {
  rows_ = rows;
  dim_ = dim;
  // One [m | v] slab per row, padded to whole cache lines.
  stride_ = ((2 * dim + kLineDoubles - 1) / kLineDoubles) * kLineDoubles;
  data_.assign(rows * stride_ + kLineDoubles, 0.0);
  const auto addr = reinterpret_cast<uintptr_t>(data_.data());
  const uintptr_t line = kLineDoubles * sizeof(double);
  base_ = static_cast<size_t>((line - addr % line) % line) / sizeof(double);
}

void EmbeddingTable::EnsureAdamState() {
  if (adam_.rows() != values_.rows()) {
    adam_.Resize(values_.rows(), values_.cols());
  }
}

void EmbeddingTable::AdamStep(size_t r, const double* grad,
                              const AdamConfig& config) {
  CHECK_GE(adam_t_, 1) << "call BeginAdamStep() before AdamStep()";
  EnsureAdamState();
  AdamUpdateRow(config, adam_t_, grad, Row(r), adam_.m_row(r), adam_.v_row(r),
                dim());
}

Matrix EmbeddingTable::GatherRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), dim());
  for (size_t i = 0; i < rows.size(); ++i) {
    CHECK_LT(rows[i], num_rows());
    const double* src = Row(rows[i]);
    double* dst = out.Row(i);
    for (size_t c = 0; c < dim(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace transn
