#ifndef TRANSN_EMB_EMBEDDING_TABLE_H_
#define TRANSN_EMB_EMBEDDING_TABLE_H_

#include <vector>

#include "nn/adam.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace transn {

/// Sparse-Adam moment buffers laid out for parallel row updates: each row's
/// first and second moments live in one contiguous [m | v] slab whose stride
/// is rounded up to a whole number of 64-byte cache lines and whose base is
/// 64-byte aligned. Two workers updating moments of different rows therefore
/// never write the same cache line (with the old pair of dense matrices,
/// adjacent rows shared lines and ping-ponged between cores — one of the
/// culprits behind the flat Hogwild scaling; DESIGN.md §4).
class AdamMomentStore {
 public:
  /// Doubles per 64-byte cache line; slab strides are multiples of this.
  static constexpr size_t kLineDoubles = 8;

  AdamMomentStore() = default;

  bool allocated() const { return rows_ > 0; }
  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  /// (Re)allocates zero-filled slabs for `rows` rows of `dim` moments each.
  void Resize(size_t rows, size_t dim);

  double* m_row(size_t r) { return Slab(r); }
  double* v_row(size_t r) { return Slab(r) + dim_; }
  const double* m_row(size_t r) const { return Slab(r); }
  const double* v_row(size_t r) const { return Slab(r) + dim_; }

 private:
  double* Slab(size_t r) {
    DCHECK_LT(r, rows_);
    return data_.data() + base_ + r * stride_;
  }
  const double* Slab(size_t r) const {
    DCHECK_LT(r, rows_);
    return data_.data() + base_ + r * stride_;
  }

  size_t rows_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;  // doubles per [m | v] slab, multiple of kLineDoubles
  size_t base_ = 0;    // offset aligning slab 0 to a 64-byte boundary
  std::vector<double> data_;
};

/// A dense table of per-node embedding vectors with two update modes:
///  * SgdStep  — plain SGD (word2vec-style), used inside SGNS loops;
///  * AdamStep — sparse-row Adam (per-row moment buffers, global step
///    counter), used for rows touched by the cross-view autograd losses.
class EmbeddingTable {
 public:
  /// Initializes rows uniformly in [-0.5/dim, 0.5/dim) (word2vec init).
  EmbeddingTable(size_t num_rows, size_t dim, Rng& rng);

  /// Initializes all-zero (word2vec context vectors start at zero).
  EmbeddingTable(size_t num_rows, size_t dim);

  size_t num_rows() const { return values_.rows(); }
  size_t dim() const { return values_.cols(); }

  double* Row(size_t r) { return values_.Row(r); }
  const double* Row(size_t r) const { return values_.Row(r); }
  const Matrix& values() const { return values_; }
  Matrix& mutable_values() { return values_; }

  /// row -= lr * grad.
  void SgdStep(size_t r, const double* grad, double lr);

  /// Sparse Adam on one row. Moment buffers are allocated lazily on the
  /// first AdamStep; the bias-correction step count is shared by all rows
  /// and advanced by BeginAdamStep() (call once per optimizer step).
  void BeginAdamStep() { ++adam_t_; }
  void AdamStep(size_t r, const double* grad, const AdamConfig& config);

  /// Gathers rows into a |rows| x dim matrix (cross-view path matrices A).
  Matrix GatherRows(const std::vector<size_t>& rows) const;

  // --- checkpoint access to the sparse-Adam state (core/model_io) ---
  /// True once AdamStep has allocated the moment buffers.
  bool has_adam_state() const { return adam_.rows() == values_.rows(); }
  int64_t adam_step_count() const { return adam_t_; }
  void set_adam_step_count(int64_t t) { adam_t_ = t; }
  /// Row views of the moment slabs (valid while has_adam_state()). The
  /// mutable variants allocate on first use, for checkpoint restore.
  const double* adam_m_row(size_t r) const { return adam_.m_row(r); }
  const double* adam_v_row(size_t r) const { return adam_.v_row(r); }
  double* mutable_adam_m_row(size_t r) {
    EnsureAdamState();
    return adam_.m_row(r);
  }
  double* mutable_adam_v_row(size_t r) {
    EnsureAdamState();
    return adam_.v_row(r);
  }

 private:
  void EnsureAdamState();

  Matrix values_;
  AdamMomentStore adam_;  // allocated on first AdamStep
  int64_t adam_t_ = 0;
};

}  // namespace transn

#endif  // TRANSN_EMB_EMBEDDING_TABLE_H_
