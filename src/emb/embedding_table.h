#ifndef TRANSN_EMB_EMBEDDING_TABLE_H_
#define TRANSN_EMB_EMBEDDING_TABLE_H_

#include <vector>

#include "nn/adam.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace transn {

/// A dense table of per-node embedding vectors with two update modes:
///  * SgdStep  — plain SGD (word2vec-style), used inside SGNS loops;
///  * AdamStep — sparse-row Adam (per-row moment buffers, global step
///    counter), used for rows touched by the cross-view autograd losses.
class EmbeddingTable {
 public:
  /// Initializes rows uniformly in [-0.5/dim, 0.5/dim) (word2vec init).
  EmbeddingTable(size_t num_rows, size_t dim, Rng& rng);

  /// Initializes all-zero (word2vec context vectors start at zero).
  EmbeddingTable(size_t num_rows, size_t dim);

  size_t num_rows() const { return values_.rows(); }
  size_t dim() const { return values_.cols(); }

  double* Row(size_t r) { return values_.Row(r); }
  const double* Row(size_t r) const { return values_.Row(r); }
  const Matrix& values() const { return values_; }
  Matrix& mutable_values() { return values_; }

  /// row -= lr * grad.
  void SgdStep(size_t r, const double* grad, double lr);

  /// Sparse Adam on one row. Moment buffers are allocated lazily on the
  /// first AdamStep; the bias-correction step count is shared by all rows
  /// and advanced by BeginAdamStep() (call once per optimizer step).
  void BeginAdamStep() { ++adam_t_; }
  void AdamStep(size_t r, const double* grad, const AdamConfig& config);

  /// Gathers rows into a |rows| x dim matrix (cross-view path matrices A).
  Matrix GatherRows(const std::vector<size_t>& rows) const;

  // --- checkpoint access to the sparse-Adam state (core/model_io) ---
  /// True once AdamStep has allocated the moment buffers.
  bool has_adam_state() const { return adam_m_.rows() == values_.rows(); }
  int64_t adam_step_count() const { return adam_t_; }
  void set_adam_step_count(int64_t t) { adam_t_ = t; }
  const Matrix& adam_m() const { return adam_m_; }
  const Matrix& adam_v() const { return adam_v_; }
  /// Allocate (if needed) and expose the moment buffers for restore.
  Matrix& mutable_adam_m() {
    EnsureAdamState();
    return adam_m_;
  }
  Matrix& mutable_adam_v() {
    EnsureAdamState();
    return adam_v_;
  }

 private:
  void EnsureAdamState();

  Matrix values_;
  Matrix adam_m_, adam_v_;  // allocated on first AdamStep
  int64_t adam_t_ = 0;
};

}  // namespace transn

#endif  // TRANSN_EMB_EMBEDDING_TABLE_H_
