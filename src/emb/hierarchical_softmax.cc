#include "emb/hierarchical_softmax.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "emb/pair_scratch.h"
#include "emb/sgns.h"
#include "util/hogwild.h"
#include "util/vec.h"

namespace transn {

HuffmanTree::HuffmanTree(const std::vector<double>& counts) {
  const size_t vocab = counts.size();
  CHECK_GE(vocab, 2u);

  // Nodes 0..vocab-1 are leaves; internal nodes are appended.
  struct Node {
    double count;
    uint32_t id;
  };
  auto cmp = [](const Node& a, const Node& b) {
    return a.count > b.count || (a.count == b.count && a.id > b.id);
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  for (uint32_t i = 0; i < vocab; ++i) {
    heap.push({std::max(counts[i], 1e-12), i});
  }
  std::vector<uint32_t> parent(2 * vocab - 1, 0);
  std::vector<bool> branch(2 * vocab - 1, false);  // direction at parent
  uint32_t next_id = static_cast<uint32_t>(vocab);
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    parent[a.id] = next_id;
    branch[a.id] = false;
    parent[b.id] = next_id;
    branch[b.id] = true;
    heap.push({a.count + b.count, next_id});
    ++next_id;
  }
  const uint32_t root = next_id - 1;

  codes_.resize(vocab);
  paths_.resize(vocab);
  for (uint32_t leaf = 0; leaf < vocab; ++leaf) {
    std::vector<bool> code;
    std::vector<uint32_t> path;
    uint32_t cur = leaf;
    while (cur != root) {
      code.push_back(branch[cur]);
      // Internal node ids are offset by vocab to index node_vectors_ rows.
      path.push_back(parent[cur] - static_cast<uint32_t>(vocab));
      cur = parent[cur];
    }
    std::reverse(code.begin(), code.end());
    std::reverse(path.begin(), path.end());
    codes_[leaf] = std::move(code);
    paths_[leaf] = std::move(path);
  }
}

HierarchicalSoftmaxTrainer::HierarchicalSoftmaxTrainer(
    EmbeddingTable* input, const std::vector<double>& counts,
    double learning_rate)
    : input_(input),
      tree_(counts),
      node_vectors_(counts.size() - 1, input != nullptr ? input->dim() : 1),
      learning_rate_(learning_rate) {
  CHECK(input_ != nullptr);
  CHECK_EQ(counts.size(), input_->num_rows());
}

double HierarchicalSoftmaxTrainer::TrainPair(uint32_t center,
                                             uint32_t context) {
  const size_t d = input_->dim();
  double* v = input_->Row(center);
  const std::vector<bool>& code = tree_.Code(context);
  const std::vector<uint32_t>& path = tree_.Path(context);

  // Per-thread scratch (stack for practical dims) keeps TrainPair reentrant
  // for Hogwild workers sharing this trainer; see SgnsTrainer::TrainPair.
  constexpr size_t kMaxStackDim = SgnsTrainer::kMaxStackDim;
  double stack_buf[3 * kMaxStackDim];
  double* scratch = d <= kMaxStackDim ? stack_buf : PairScratch(3 * d);
  double* center_grad = scratch;
  double* v_snap = scratch + d;
  double* u_snap = scratch + 2 * d;
  std::fill(center_grad, center_grad + d, 0.0);

  // Snapshot of the center row: v is only written after the path loop, so
  // single-threaded results are unchanged, while concurrent workers see one
  // consistent center vector per pair.
  for (size_t i = 0; i < d; ++i) v_snap[i] = hogwild::Load(v + i);

  double loss = 0.0;
  for (size_t j = 0; j < code.size(); ++j) {
    double* u = node_vectors_.Row(path[j]);
    // Snapshot the internal-node row so the kernels read private memory.
    for (size_t i = 0; i < d; ++i) u_snap[i] = hogwild::Load(u + i);
    const double score = vec::Dot(u_snap, v_snap, d);
    // Label 1 for branch 0 (word2vec convention): p = sigma(u.v).
    const double label = code[j] ? 0.0 : 1.0;
    const double pred = vec::Sigmoid(score);
    loss += vec::SgnsPairLoss(score, pred, label > 0.5);
    const double g = pred - label;
    vec::FusedSgnsUpdate(g, learning_rate_ * g, v_snap, u_snap, center_grad,
                         d);
    for (size_t i = 0; i < d; ++i) hogwild::Store(u + i, u_snap[i]);
  }
  for (size_t i = 0; i < d; ++i) {
    hogwild::SubInPlace(v + i, learning_rate_ * center_grad[i]);
  }
  return loss;
}

}  // namespace transn
