#ifndef TRANSN_EMB_HIERARCHICAL_SOFTMAX_H_
#define TRANSN_EMB_HIERARCHICAL_SOFTMAX_H_

#include <stdint.h>

#include <vector>

#include "emb/embedding_table.h"
#include "util/logging.h"

namespace transn {

/// A Huffman tree over vocabulary frequencies, as used by word2vec's
/// hierarchical softmax. Each leaf is a vocabulary id; each internal node
/// carries a trainable vector. Frequent ids get short codes, making the
/// expected update cost O(log vocab) — the d·log2(μ) term in the paper's
/// Theorem 1.
class HuffmanTree {
 public:
  /// `counts[i]` is the corpus frequency of id i (zeros allowed; they get
  /// the longest codes). Requires at least 2 ids.
  explicit HuffmanTree(const std::vector<double>& counts);

  size_t vocab_size() const { return codes_.size(); }
  size_t num_internal_nodes() const { return vocab_size() - 1; }

  /// Branch decisions (false = left/0, true = right/1) from the root to
  /// leaf `id`.
  const std::vector<bool>& Code(uint32_t id) const {
    DCHECK_LT(id, codes_.size());
    return codes_[id];
  }
  /// Internal-node ids along the root-to-leaf path (same length as Code).
  const std::vector<uint32_t>& Path(uint32_t id) const {
    DCHECK_LT(id, paths_.size());
    return paths_[id];
  }

 private:
  std::vector<std::vector<bool>> codes_;
  std::vector<std::vector<uint32_t>> paths_;
};

/// Skip-gram with hierarchical softmax: the exact-softmax alternative to
/// negative sampling for optimizing Eq. 3. Maximizes
///   log p(context | center) = Σ_j log σ( (1-2b_j) · u_{n_j} · v_center )
/// over the context word's Huffman path.
class HierarchicalSoftmaxTrainer {
 public:
  /// `input` must outlive the trainer; internal-node vectors are owned by
  /// the trainer (initialized to zero, as in word2vec).
  HierarchicalSoftmaxTrainer(EmbeddingTable* input,
                             const std::vector<double>& counts,
                             double learning_rate);

  /// One SGD update; returns the pair's loss (before the update).
  ///
  /// Reentrant (per-call scratch, relaxed-atomic row access): concurrent
  /// Hogwild workers may share one trainer; see SgnsTrainer::TrainPair.
  double TrainPair(uint32_t center, uint32_t context);

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  const HuffmanTree& tree() const { return tree_; }

 private:
  EmbeddingTable* input_;
  HuffmanTree tree_;
  EmbeddingTable node_vectors_;  // one row per internal node
  double learning_rate_;
};

}  // namespace transn

#endif  // TRANSN_EMB_HIERARCHICAL_SOFTMAX_H_
