#include "emb/negative_sampler.h"

#include <cmath>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace transn {

NegativeSampler::NegativeSampler(const std::vector<double>& counts,
                                 double power) {
  CHECK(!counts.empty());
  std::vector<double> weights(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    CHECK(counts[i] >= 0.0);
    weights[i] = counts[i] > 0.0 ? std::pow(counts[i], power) : 0.0;
  }
  table_.Build(weights);
  obs::MetricsRegistry::Default()
      .GetCounter(obs::kWalkAliasRebuildsTotal, "rebuilds",
                  "alias-table constructions (noise/edge samplers)")
      ->Increment();
}

uint32_t NegativeSampler::Sample(Rng& rng, uint32_t exclude) const {
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint32_t s = static_cast<uint32_t>(table_.Sample(rng));
    if (s != exclude) return s;
  }
  return static_cast<uint32_t>(table_.Sample(rng));
}

BlockNegativeSampler::BlockNegativeSampler(const std::vector<double>& counts,
                                           uint32_t block, uint32_t num_blocks,
                                           double power)
    : block_(block), num_blocks_(num_blocks) {
  CHECK_GE(num_blocks, 1u);
  CHECK_LT(block, num_blocks);
  std::vector<double> weights;
  weights.reserve((counts.size() + num_blocks - 1 - block) / num_blocks);
  double total = 0.0;
  for (size_t id = block; id < counts.size(); id += num_blocks) {
    CHECK(counts[id] >= 0.0);
    const double w = counts[id] > 0.0 ? std::pow(counts[id], power) : 0.0;
    weights.push_back(w);
    total += w;
  }
  if (weights.empty() || total <= 0.0) return;  // empty block
  table_.Build(weights);
  obs::MetricsRegistry::Default()
      .GetCounter(obs::kWalkAliasRebuildsTotal, "rebuilds",
                  "alias-table constructions (noise/edge samplers)")
      ->Increment();
}

uint32_t BlockNegativeSampler::Sample(Rng& rng, uint32_t exclude) const {
  DCHECK(!empty());
  auto draw = [&] {
    return block_ + static_cast<uint32_t>(table_.Sample(rng)) * num_blocks_;
  };
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint32_t s = draw();
    if (s != exclude) return s;
  }
  return draw();
}

}  // namespace transn
