#include "emb/negative_sampler.h"

#include <cmath>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace transn {

NegativeSampler::NegativeSampler(const std::vector<double>& counts,
                                 double power) {
  CHECK(!counts.empty());
  std::vector<double> weights(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    CHECK(counts[i] >= 0.0);
    weights[i] = counts[i] > 0.0 ? std::pow(counts[i], power) : 0.0;
  }
  table_.Build(weights);
  obs::MetricsRegistry::Default()
      .GetCounter(obs::kWalkAliasRebuildsTotal, "rebuilds",
                  "alias-table constructions (noise/edge samplers)")
      ->Increment();
}

uint32_t NegativeSampler::Sample(Rng& rng, uint32_t exclude) const {
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint32_t s = static_cast<uint32_t>(table_.Sample(rng));
    if (s != exclude) return s;
  }
  return static_cast<uint32_t>(table_.Sample(rng));
}

}  // namespace transn
