#ifndef TRANSN_EMB_NEGATIVE_SAMPLER_H_
#define TRANSN_EMB_NEGATIVE_SAMPLER_H_

#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"

namespace transn {

/// Draws negative samples from the word2vec noise distribution
/// P(n) ∝ count(n)^0.75 over the walk corpus vocabulary.
class NegativeSampler {
 public:
  /// `counts[i]` is the corpus frequency of id i; ids with zero count are
  /// never sampled. `power` is the smoothing exponent (0.75 in word2vec).
  explicit NegativeSampler(const std::vector<double>& counts,
                           double power = 0.75);

  /// One negative id, rejecting `exclude` (up to a bounded number of
  /// retries, after which `exclude` may be returned for degenerate
  /// one-symbol vocabularies).
  uint32_t Sample(Rng& rng, uint32_t exclude) const;

  size_t vocab_size() const { return table_.size(); }

 private:
  AliasTable table_;
};

/// Noise distribution restricted to one node block of the episodic engine:
/// samples only ids congruent to `block` modulo `num_blocks`, with the same
/// count^power weighting as NegativeSampler. During an episode a worker owns
/// its context block exclusively, so drawing negatives from inside the block
/// keeps every row it touches private to it (the GraphVite trick that makes
/// parallel training both contention-free and bit-deterministic).
///
/// Immutable after construction: concurrent workers share the tables freely,
/// all draw state lives in the caller's per-thread Rng.
class BlockNegativeSampler {
 public:
  /// `counts` spans the FULL vocabulary (id i at counts[i]); only the block
  /// members block, block + num_blocks, ... are sampled. A block whose
  /// members all have zero count is empty() and must not be sampled.
  BlockNegativeSampler(const std::vector<double>& counts, uint32_t block,
                       uint32_t num_blocks, double power = 0.75);

  bool empty() const { return table_.empty(); }

  /// One negative node id from the block, rejecting `exclude` (bounded
  /// retries, like NegativeSampler::Sample).
  uint32_t Sample(Rng& rng, uint32_t exclude) const;

 private:
  AliasTable table_;  // over block members k; id = block_ + k * num_blocks_
  uint32_t block_ = 0;
  uint32_t num_blocks_ = 1;
};

}  // namespace transn

#endif  // TRANSN_EMB_NEGATIVE_SAMPLER_H_
