#ifndef TRANSN_EMB_NEGATIVE_SAMPLER_H_
#define TRANSN_EMB_NEGATIVE_SAMPLER_H_

#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"

namespace transn {

/// Draws negative samples from the word2vec noise distribution
/// P(n) ∝ count(n)^0.75 over the walk corpus vocabulary.
class NegativeSampler {
 public:
  /// `counts[i]` is the corpus frequency of id i; ids with zero count are
  /// never sampled. `power` is the smoothing exponent (0.75 in word2vec).
  explicit NegativeSampler(const std::vector<double>& counts,
                           double power = 0.75);

  /// One negative id, rejecting `exclude` (up to a bounded number of
  /// retries, after which `exclude` may be returned for degenerate
  /// one-symbol vocabularies).
  uint32_t Sample(Rng& rng, uint32_t exclude) const;

  size_t vocab_size() const { return table_.size(); }

 private:
  AliasTable table_;
};

}  // namespace transn

#endif  // TRANSN_EMB_NEGATIVE_SAMPLER_H_
