#ifndef TRANSN_EMB_PAIR_SCRATCH_H_
#define TRANSN_EMB_PAIR_SCRATCH_H_

#include <stddef.h>

#include <vector>

namespace transn {

/// Reusable per-thread scratch for the pair trainers' snapshot/gradient
/// buffers when the embedding dimension exceeds the stack budget. The buffer
/// grows monotonically and is reused across TrainPair calls, so the hot path
/// never allocates after the first oversized call on a thread (the old code
/// constructed std::vectors per call). thread_local keeps TrainPair
/// reentrant across concurrent Hogwild workers sharing one trainer.
inline double* PairScratch(size_t n) {
  thread_local std::vector<double> buffer;
  if (buffer.size() < n) buffer.resize(n);
  return buffer.data();
}

}  // namespace transn

#endif  // TRANSN_EMB_PAIR_SCRATCH_H_
