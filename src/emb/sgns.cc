#include "emb/sgns.h"

#include <cmath>

#include "util/logging.h"

namespace transn {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double DotRows(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

SgnsTrainer::SgnsTrainer(EmbeddingTable* input, EmbeddingTable* context,
                         const NegativeSampler* sampler, SgnsConfig config)
    : input_(input), context_(context), sampler_(sampler), config_(config) {
  CHECK(input_ != nullptr && context_ != nullptr && sampler_ != nullptr);
  CHECK_EQ(input_->dim(), context_->dim());
  CHECK_GE(config_.negatives, 1);
  center_grad_.resize(input_->dim());
}

double SgnsTrainer::TrainPair(uint32_t center, uint32_t context, Rng& rng) {
  const size_t d = input_->dim();
  const double lr = config_.learning_rate;
  double* v = input_->Row(center);
  std::fill(center_grad_.begin(), center_grad_.end(), 0.0);
  double loss = 0.0;

  auto update_with = [&](uint32_t ctx_id, double label) {
    double* u = context_->Row(ctx_id);
    const double score = DotRows(v, u, d);
    const double pred = Sigmoid(score);
    // d(-log sigma(label-signed score))/dscore = pred - label.
    const double g = pred - label;
    loss += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                        : -std::log(std::max(1.0 - pred, 1e-12));
    for (size_t i = 0; i < d; ++i) {
      center_grad_[i] += g * u[i];
      u[i] -= lr * g * v[i];
    }
  };

  update_with(context, 1.0);
  for (int k = 0; k < config_.negatives; ++k) {
    update_with(sampler_->Sample(rng, context), 0.0);
  }
  for (size_t i = 0; i < d; ++i) v[i] -= lr * center_grad_[i];
  return loss;
}

}  // namespace transn
