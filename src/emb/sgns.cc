#include "emb/sgns.h"

#include <cmath>

#include "util/hogwild.h"
#include "util/logging.h"

namespace transn {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

SgnsTrainer::SgnsTrainer(EmbeddingTable* input, EmbeddingTable* context,
                         const NegativeSampler* sampler, SgnsConfig config)
    : input_(input), context_(context), sampler_(sampler), config_(config) {
  CHECK(input_ != nullptr && context_ != nullptr && sampler_ != nullptr);
  CHECK_EQ(input_->dim(), context_->dim());
  CHECK_GE(config_.negatives, 1);
}

double SgnsTrainer::TrainPair(uint32_t center, uint32_t context, Rng& rng) {
  const size_t d = input_->dim();
  const double lr = config_.learning_rate;
  double* v = input_->Row(center);

  // Per-call scratch keeps TrainPair reentrant: concurrent Hogwild workers
  // share one trainer. A stack buffer covers every practical dim without
  // allocating on the hot path.
  double stack_grad[kMaxStackDim];
  std::vector<double> heap_grad;
  double* center_grad = stack_grad;
  if (d > kMaxStackDim) {
    heap_grad.resize(d);
    center_grad = heap_grad.data();
  }
  std::fill(center_grad, center_grad + d, 0.0);

  // The center row is read once per pair; the snapshot keeps the math of
  // one pair internally consistent even while other workers update v.
  double stack_v[kMaxStackDim];
  std::vector<double> heap_v;
  double* v_snap = stack_v;
  if (d > kMaxStackDim) {
    heap_v.resize(d);
    v_snap = heap_v.data();
  }
  for (size_t i = 0; i < d; ++i) v_snap[i] = hogwild::Load(v + i);

  double loss = 0.0;
  auto update_with = [&](uint32_t ctx_id, double label) {
    double* u = context_->Row(ctx_id);
    double score = 0.0;
    for (size_t i = 0; i < d; ++i) score += v_snap[i] * hogwild::Load(u + i);
    const double pred = Sigmoid(score);
    // d(-log sigma(label-signed score))/dscore = pred - label.
    const double g = pred - label;
    loss += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                        : -std::log(std::max(1.0 - pred, 1e-12));
    for (size_t i = 0; i < d; ++i) {
      center_grad[i] += g * hogwild::Load(u + i);
      hogwild::SubInPlace(u + i, lr * g * v_snap[i]);
    }
  };

  update_with(context, 1.0);
  for (int k = 0; k < config_.negatives; ++k) {
    update_with(sampler_->Sample(rng, context), 0.0);
  }
  for (size_t i = 0; i < d; ++i) {
    hogwild::SubInPlace(v + i, lr * center_grad[i]);
  }
  return loss;
}

}  // namespace transn
