#include "emb/sgns.h"

#include <algorithm>

#include "emb/pair_scratch.h"
#include "util/hogwild.h"
#include "util/logging.h"
#include "util/vec.h"

namespace transn {

SgnsTrainer::SgnsTrainer(EmbeddingTable* input, EmbeddingTable* context,
                         const NegativeSampler* sampler, SgnsConfig config)
    : input_(input), context_(context), sampler_(sampler), config_(config) {
  CHECK(input_ != nullptr && context_ != nullptr && sampler_ != nullptr);
  CHECK_EQ(input_->dim(), context_->dim());
  CHECK_GE(config_.negatives, 1);
}

template <typename Sampler>
double SgnsTrainer::TrainPairWith(uint32_t center, uint32_t context, Rng& rng,
                                  const Sampler& sampler) {
  const size_t d = input_->dim();
  const double lr = config_.learning_rate;
  double* v = input_->Row(center);

  // Three private d-sized buffers keep TrainPairWith reentrant (concurrent
  // workers share one trainer) and give the vector kernels race-free
  // operands: center_grad accumulates the center update, v_snap / u_snap are
  // relaxed-atomic snapshots of the shared rows. Stack for every practical
  // dim; a reusable per-thread buffer beyond that (no per-call allocation).
  double stack_buf[3 * kMaxStackDim];
  double* scratch = d <= kMaxStackDim ? stack_buf : PairScratch(3 * d);
  double* center_grad = scratch;
  double* v_snap = scratch + d;
  double* u_snap = scratch + 2 * d;
  std::fill(center_grad, center_grad + d, 0.0);

  // The center row is read once per pair; the snapshot keeps the math of
  // one pair internally consistent even while other workers update v.
  for (size_t i = 0; i < d; ++i) v_snap[i] = hogwild::Load(v + i);

  double loss = 0.0;
  auto update_with = [&](uint32_t ctx_id, double label) {
    double* u = context_->Row(ctx_id);
    // Snapshot u so the dot product and the fused update read one consistent
    // row (and so the SIMD lanes never touch shared memory).
    for (size_t i = 0; i < d; ++i) u_snap[i] = hogwild::Load(u + i);
    const double score = vec::Dot(v_snap, u_snap, d);
    const double pred = vec::Sigmoid(score);
    // d(-log sigma(label-signed score))/dscore = pred - label.
    const double g = pred - label;
    loss += vec::SgnsPairLoss(score, pred, label > 0.5);
    // center_grad += g * u;  u -= lr*g * v_snap  (one fused pass).
    vec::FusedSgnsUpdate(g, lr * g, v_snap, u_snap, center_grad, d);
    for (size_t i = 0; i < d; ++i) hogwild::Store(u + i, u_snap[i]);
  };

  update_with(context, 1.0);
  for (int k = 0; k < config_.negatives; ++k) {
    update_with(sampler.Sample(rng, context), 0.0);
  }
  for (size_t i = 0; i < d; ++i) {
    hogwild::SubInPlace(v + i, lr * center_grad[i]);
  }
  return loss;
}

template double SgnsTrainer::TrainPairWith<NegativeSampler>(
    uint32_t, uint32_t, Rng&, const NegativeSampler&);
template double SgnsTrainer::TrainPairWith<BlockNegativeSampler>(
    uint32_t, uint32_t, Rng&, const BlockNegativeSampler&);

double SgnsTrainer::TrainPair(uint32_t center, uint32_t context, Rng& rng) {
  return TrainPairWith(center, context, rng, *sampler_);
}

}  // namespace transn
