#ifndef TRANSN_EMB_SGNS_H_
#define TRANSN_EMB_SGNS_H_

#include <vector>

#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "util/rng.h"

namespace transn {

/// Skip-gram with negative sampling (Mikolov et al., 2013): the optimizer of
/// the paper's single-view loss (Eq. 3) and of every walk-based baseline.
/// For a (center, context) pair it maximizes
///   log σ(u_ctx · v_cen) + Σ_k log σ(-u_neg_k · v_cen)
/// with v rows from the input table and u rows from the context table.
struct SgnsConfig {
  int negatives = 5;
  /// SGD learning rate (word2vec-style constant rate; the caller may decay
  /// it across epochs).
  double learning_rate = 0.025;
};

class SgnsTrainer {
 public:
  /// Dimensions at or below this use stack scratch inside TrainPair; larger
  /// dims fall back to a reusable per-thread buffer (emb/pair_scratch.h).
  /// Either way the hot path never allocates.
  static constexpr size_t kMaxStackDim = 512;

  /// Both tables must share dim(); they and the sampler must outlive the
  /// trainer.
  SgnsTrainer(EmbeddingTable* input, EmbeddingTable* context,
              const NegativeSampler* sampler, SgnsConfig config);

  /// One SGD update for a (center, context) pair and its negatives drawn
  /// from the trainer's global sampler. Returns the pair's loss (before the
  /// update), for monitoring.
  ///
  /// Reentrant: holds no mutable trainer state, so concurrent workers may
  /// call it on one shared trainer (each with its own Rng). Row accesses go
  /// through relaxed atomics (util/hogwild.h), so even racing callers stay
  /// well-defined; the arithmetic runs on private row snapshots through the
  /// vectorized kernels (util/vec.h). The episodic engine
  /// (core/single_view) additionally guarantees concurrent callers touch
  /// disjoint rows, which is what makes its results bit-deterministic.
  double TrainPair(uint32_t center, uint32_t context, Rng& rng);

  /// TrainPair with a caller-supplied noise sampler: the episodic engine
  /// passes the BlockNegativeSampler of the context block it owns this
  /// episode, so negatives stay inside the worker's private row set. Same
  /// update rule and arithmetic order as TrainPair. Instantiated in sgns.cc
  /// for NegativeSampler and BlockNegativeSampler.
  template <typename Sampler>
  double TrainPairWith(uint32_t center, uint32_t context, Rng& rng,
                       const Sampler& sampler);

  const SgnsConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  EmbeddingTable* input_;
  EmbeddingTable* context_;
  const NegativeSampler* sampler_;
  SgnsConfig config_;
};

}  // namespace transn

#endif  // TRANSN_EMB_SGNS_H_
