#include "eval/link_prediction.h"

#include <algorithm>
#include <numeric>

#include "eval/metrics.h"
#include "util/rng.h"
#include "util/vec.h"

namespace transn {

LinkPredictionTask MakeLinkPredictionTask(const HeteroGraph& g,
                                          const LinkPredictionConfig& config) {
  CHECK_GT(config.removal_fraction, 0.0);
  CHECK_LT(config.removal_fraction, 1.0);
  CHECK_GT(g.num_edges(), 2u);
  Rng rng(config.seed);

  // Choose removed edges uniformly, but keep at least one edge per type so
  // no view collapses.
  std::vector<size_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const size_t target_removed = static_cast<size_t>(
      config.removal_fraction * static_cast<double>(g.num_edges()));

  std::vector<size_t> kept_per_type(g.num_edge_types(), 0);
  for (size_t e = 0; e < g.num_edges(); ++e) ++kept_per_type[g.edge_type(e)];

  std::vector<bool> removed(g.num_edges(), false);
  size_t n_removed = 0;
  for (size_t e : order) {
    if (n_removed >= target_removed) break;
    if (kept_per_type[g.edge_type(e)] <= 1) continue;
    removed[e] = true;
    --kept_per_type[g.edge_type(e)];
    ++n_removed;
  }

  // Rebuild the residual graph with identical node ids.
  HeteroGraphBuilder builder;
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    builder.AddNodeType(g.node_type_name(t));
  }
  for (EdgeTypeId t = 0; t < g.num_edge_types(); ++t) {
    builder.AddEdgeType(g.edge_type_name(t));
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    NodeId id = builder.AddNode(g.node_type(n), g.node_name(n));
    CHECK_EQ(id, n);
    if (g.label(n) != kUnlabeled) builder.SetLabel(n, g.label(n));
  }

  LinkPredictionTask task;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (removed[e]) {
      task.positives.emplace_back(g.edge_u(e), g.edge_v(e));
    } else {
      builder.AddEdge(g.edge_u(e), g.edge_v(e), g.edge_type(e),
                      g.edge_weight(e));
    }
  }
  task.residual = builder.Build();

  // Negatives: non-adjacent pairs (in the full graph), one per positive.
  std::vector<std::vector<NodeId>> by_type(g.num_node_types());
  for (NodeId n = 0; n < g.num_nodes(); ++n) by_type[g.node_type(n)].push_back(n);

  auto sample_negative = [&](NodeTypeId ta,
                             NodeTypeId tb) -> std::pair<NodeId, NodeId> {
    for (int attempt = 0; attempt < 256; ++attempt) {
      NodeId u, v;
      if (config.type_matched_negatives) {
        u = by_type[ta][rng.NextUint64(by_type[ta].size())];
        v = by_type[tb][rng.NextUint64(by_type[tb].size())];
      } else {
        u = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
        v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      }
      if (u == v || g.HasEdge(u, v)) continue;
      return {u, v};
    }
    LOG(FATAL) << "could not sample a non-adjacent pair (graph too dense?)";
    return {0, 0};
  };

  task.negatives.reserve(task.positives.size());
  for (const auto& [u, v] : task.positives) {
    task.negatives.push_back(
        sample_negative(g.node_type(u), g.node_type(v)));
  }
  return task;
}

double ScoreLinkPrediction(const Matrix& embeddings,
                           const LinkPredictionTask& task) {
  CHECK_EQ(embeddings.rows(), task.residual.num_nodes());
  std::vector<double> scores;
  std::vector<bool> labels;
  scores.reserve(task.positives.size() + task.negatives.size());
  auto add = [&](const std::vector<std::pair<NodeId, NodeId>>& pairs,
                 bool label) {
    for (const auto& [u, v] : pairs) {
      scores.push_back(
          vec::Dot(embeddings.Row(u), embeddings.Row(v), embeddings.cols()));
      labels.push_back(label);
    }
  };
  add(task.positives, true);
  add(task.negatives, false);
  return Auc(scores, labels);
}

}  // namespace transn
