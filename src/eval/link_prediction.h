#ifndef TRANSN_EVAL_LINK_PREDICTION_H_
#define TRANSN_EVAL_LINK_PREDICTION_H_

#include <utility>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// Link-prediction task per §IV-B2: remove `removal_fraction` of the edges,
/// keep their endpoint pairs as positives, sample an equal number of
/// non-adjacent pairs as negatives, and learn embeddings on the residual
/// network.
struct LinkPredictionTask {
  HeteroGraph residual;
  std::vector<std::pair<NodeId, NodeId>> positives;
  std::vector<std::pair<NodeId, NodeId>> negatives;
};

struct LinkPredictionConfig {
  double removal_fraction = 0.4;
  /// When true (default), each negative pair is sampled with the same
  /// endpoint node types as a removed edge, which avoids trivially
  /// separable negatives (e.g. venue–user pairs that can never link). The
  /// paper samples unconstrained non-adjacent pairs; set false for that.
  bool type_matched_negatives = true;
  uint64_t seed = 13;
};

/// Builds the task. Node ids in `residual` equal those in `g`. Every edge
/// type retains at least one edge so views stay non-empty.
LinkPredictionTask MakeLinkPredictionTask(const HeteroGraph& g,
                                          const LinkPredictionConfig& config);

/// Scores each candidate pair by the inner product of its endpoint
/// embeddings (rows of `embeddings` indexed by node id) and returns the AUC.
double ScoreLinkPrediction(const Matrix& embeddings,
                           const LinkPredictionTask& task);

}  // namespace transn

#endif  // TRANSN_EVAL_LINK_PREDICTION_H_
