#include "eval/logistic_regression.h"

#include <cmath>
#include <limits>

#include "nn/adam.h"
#include "util/logging.h"
#include "util/vec.h"

namespace transn {

Matrix LogisticRegression::Logits(const Matrix& x) const {
  CHECK_EQ(x.cols() + 1, weights_.rows());
  Matrix logits(x.rows(), static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* xi = x.Row(i);
    double* out = logits.Row(i);
    for (size_t d = 0; d < x.cols(); ++d) {
      const double v = xi[d];
      if (v == 0.0) continue;
      vec::Axpy(v, weights_.Row(d), out,
                static_cast<size_t>(num_classes_));
    }
    vec::Axpy(1.0, weights_.Row(x.cols()), out,
              static_cast<size_t>(num_classes_));
  }
  return logits;
}

void LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y,
                             int num_classes) {
  CHECK_EQ(x.rows(), y.size());
  CHECK_GT(num_classes, 1);
  CHECK_GT(x.rows(), 0u);
  num_classes_ = num_classes;
  const size_t n = x.rows();
  const size_t d = x.cols();
  weights_.Resize(d + 1, static_cast<size_t>(num_classes), 0.0);

  Parameter w(weights_);
  AdamOptimizer opt(AdamConfig{.learning_rate = config_.learning_rate});
  opt.Register(&w);

  double prev_loss = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config_.max_iters; ++iter) {
    weights_ = w.value;
    Matrix probs = RowSoftmax(Logits(x));

    // Cross-entropy + L2 (weights only, not bias), with analytic gradient:
    // dL/dlogits = (probs - onehot)/n.
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      CHECK_GE(y[i], 0);
      CHECK_LT(y[i], num_classes);
      loss += -std::log(std::max(probs(i, static_cast<size_t>(y[i])), 1e-12));
      probs(i, static_cast<size_t>(y[i])) -= 1.0;
    }
    loss /= static_cast<double>(n);
    probs *= 1.0 / static_cast<double>(n);

    // grad W = Xᵀ · dlogits (+ L2); grad bias = column sums of dlogits.
    Matrix grad = MatMulTN(x, probs);
    for (size_t r = 0; r < d; ++r) {
      const double* wr = w.value.Row(r);
      double* gr = grad.Row(r);
      for (int k = 0; k < num_classes; ++k) {
        loss += config_.l2 * wr[k] * wr[k] / 2.0;
        gr[k] += config_.l2 * wr[k];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const double* pi = probs.Row(i);
      for (int k = 0; k < num_classes; ++k) {
        w.grad(d, static_cast<size_t>(k)) += pi[k];
      }
    }
    for (size_t r = 0; r < d; ++r) {
      const double* gr = grad.Row(r);
      for (int k = 0; k < num_classes; ++k) {
        w.grad(r, static_cast<size_t>(k)) += gr[k];
      }
    }
    opt.Step();
    final_loss_ = loss;
    if (std::fabs(prev_loss - loss) < config_.tolerance) break;
    prev_loss = loss;
  }
  weights_ = w.value;
}

Matrix LogisticRegression::PredictProba(const Matrix& x) const {
  CHECK_GT(num_classes_, 0) << "Fit() before PredictProba()";
  return RowSoftmax(Logits(x));
}

std::vector<int> LogisticRegression::Predict(const Matrix& x) const {
  Matrix probs = PredictProba(x);
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    int best = 0;
    for (int k = 1; k < num_classes_; ++k) {
      if (probs(i, static_cast<size_t>(k)) >
          probs(i, static_cast<size_t>(best))) {
        best = k;
      }
    }
    out[i] = best;
  }
  return out;
}

}  // namespace transn
