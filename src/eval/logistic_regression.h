#ifndef TRANSN_EVAL_LOGISTIC_REGRESSION_H_
#define TRANSN_EVAL_LOGISTIC_REGRESSION_H_

#include <vector>

#include "nn/matrix.h"

namespace transn {

/// L2-regularized multinomial (softmax) logistic regression — the stand-in
/// for scikit-learn's default LogisticRegression used in §IV-B1. Trained
/// full-batch with Adam to convergence; deterministic given its inputs.
struct LogRegConfig {
  double l2 = 1e-4;
  double learning_rate = 0.1;
  size_t max_iters = 500;
  /// Stop when the loss improves by less than this between iterations.
  double tolerance = 1e-7;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogRegConfig config = {}) : config_(config) {}

  /// X: n x d features; y: n labels in [0, num_classes).
  void Fit(const Matrix& x, const std::vector<int>& y, int num_classes);

  /// Class probabilities, n x num_classes. Requires Fit.
  Matrix PredictProba(const Matrix& x) const;

  /// Argmax class per row. Requires Fit.
  std::vector<int> Predict(const Matrix& x) const;

  int num_classes() const { return num_classes_; }
  /// Final training loss (diagnostics/tests).
  double final_loss() const { return final_loss_; }

 private:
  /// Returns logits (n x K) for x under the current weights.
  Matrix Logits(const Matrix& x) const;

  LogRegConfig config_;
  int num_classes_ = 0;
  Matrix weights_;  // (d+1) x K; last row is the bias
  double final_loss_ = 0.0;
};

}  // namespace transn

#endif  // TRANSN_EVAL_LOGISTIC_REGRESSION_H_
