#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace transn {
namespace {

struct Counts {
  std::vector<double> tp, fp, fn;
};

Counts PerClassCounts(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred, int num_classes) {
  CHECK_EQ(y_true.size(), y_pred.size());
  CHECK_GT(num_classes, 0);
  Counts c;
  c.tp.assign(num_classes, 0.0);
  c.fp.assign(num_classes, 0.0);
  c.fn.assign(num_classes, 0.0);
  for (size_t i = 0; i < y_true.size(); ++i) {
    CHECK_GE(y_true[i], 0);
    CHECK_LT(y_true[i], num_classes);
    CHECK_GE(y_pred[i], 0);
    CHECK_LT(y_pred[i], num_classes);
    if (y_true[i] == y_pred[i]) {
      c.tp[y_true[i]] += 1.0;
    } else {
      c.fn[y_true[i]] += 1.0;
      c.fp[y_pred[i]] += 1.0;
    }
  }
  return c;
}

}  // namespace

double MicroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes) {
  Counts c = PerClassCounts(y_true, y_pred, num_classes);
  double tp = std::accumulate(c.tp.begin(), c.tp.end(), 0.0);
  double fp = std::accumulate(c.fp.begin(), c.fp.end(), 0.0);
  double fn = std::accumulate(c.fn.begin(), c.fn.end(), 0.0);
  double denom = 2.0 * tp + fp + fn;
  return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes) {
  Counts c = PerClassCounts(y_true, y_pred, num_classes);
  double total = 0.0;
  for (int k = 0; k < num_classes; ++k) {
    double denom = 2.0 * c.tp[k] + c.fp[k] + c.fn[k];
    total += denom > 0.0 ? 2.0 * c.tp[k] / denom : 0.0;
  }
  return total / num_classes;
}

double Auc(const std::vector<double>& scores,
           const std::vector<bool>& labels) {
  CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average rank within tie groups.
  size_t n_pos = 0, n_neg = 0;
  for (bool l : labels) (l ? n_pos : n_neg)++;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Ranks are 1-based; tie group [i, j) shares the average rank.
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]]) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos - static_cast<double>(n_pos) *
                                      (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) hits += y_true[i] == y_pred[i];
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

double SilhouetteScore(const Matrix& points, const std::vector<int>& labels) {
  const size_t n = points.rows();
  CHECK_EQ(labels.size(), n);
  if (n < 2) return 0.0;
  int num_classes = 0;
  for (int l : labels) num_classes = std::max(num_classes, l + 1);
  if (num_classes < 2) return 0.0;

  std::vector<size_t> class_size(num_classes, 0);
  for (int l : labels) ++class_size[l];

  auto dist = [&points](size_t a, size_t b) {
    double acc = 0.0;
    for (size_t c = 0; c < points.cols(); ++c) {
      const double d = points(a, c) - points(b, c);
      acc += d * d;
    }
    return std::sqrt(acc);
  };

  double total = 0.0;
  size_t counted = 0;
  std::vector<double> sum_to_class(num_classes);
  for (size_t i = 0; i < n; ++i) {
    if (class_size[labels[i]] < 2) continue;  // silhouette undefined
    std::fill(sum_to_class.begin(), sum_to_class.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) sum_to_class[labels[j]] += dist(i, j);
    }
    const double a =
        sum_to_class[labels[i]] / static_cast<double>(class_size[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int k = 0; k < num_classes; ++k) {
      if (k == labels[i] || class_size[k] == 0) continue;
      b = std::min(b, sum_to_class[k] / static_cast<double>(class_size[k]));
    }
    if (!std::isfinite(b)) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace transn
