#ifndef TRANSN_EVAL_METRICS_H_
#define TRANSN_EVAL_METRICS_H_

#include <vector>

#include "nn/matrix.h"

namespace transn {

/// Micro-averaged F1 over multi-class predictions. For single-label
/// multi-class problems this equals accuracy.
double MicroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes);

/// Macro-averaged F1: unweighted mean of per-class F1 scores (classes absent
/// from both truth and prediction contribute 0, matching scikit-learn).
double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes);

/// Area under the ROC curve via the rank statistic (Mann–Whitney U); ties
/// get half credit. `labels[i]` is true for positives.
double Auc(const std::vector<double>& scores, const std::vector<bool>& labels);

/// Fraction of exact matches.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Mean silhouette coefficient of `points` (rows) under `labels`, with
/// Euclidean distance. Quantifies the cluster separation the paper's Figure
/// 6 shows visually. Returns 0 for degenerate inputs (single cluster or
/// singleton clusters only).
double SilhouetteScore(const Matrix& points, const std::vector<int>& labels);

}  // namespace transn

#endif  // TRANSN_EVAL_METRICS_H_
