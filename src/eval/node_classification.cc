#include "eval/node_classification.h"

#include <cmath>
#include <tuple>

#include "eval/metrics.h"
#include "eval/split.h"
#include "util/rng.h"

namespace transn {

NodeClassificationResult EvaluateClassification(
    const Matrix& features, const std::vector<int>& labels, int num_classes,
    const NodeClassificationConfig& config) {
  CHECK_EQ(features.rows(), labels.size());
  CHECK_GT(config.repeats, 0u);
  Rng rng(config.seed);

  std::vector<double> micro_scores, macro_scores;
  for (size_t rep = 0; rep < config.repeats; ++rep) {
    TrainTestSplit split = StratifiedSplit(labels, config.train_fraction, rng);
    if (split.test.empty()) continue;

    Matrix x_train(split.train.size(), features.cols());
    std::vector<int> y_train(split.train.size());
    for (size_t i = 0; i < split.train.size(); ++i) {
      const double* src = features.Row(split.train[i]);
      std::copy(src, src + features.cols(), x_train.Row(i));
      y_train[i] = labels[split.train[i]];
    }
    Matrix x_test(split.test.size(), features.cols());
    std::vector<int> y_test(split.test.size());
    for (size_t i = 0; i < split.test.size(); ++i) {
      const double* src = features.Row(split.test[i]);
      std::copy(src, src + features.cols(), x_test.Row(i));
      y_test[i] = labels[split.test[i]];
    }

    LogisticRegression clf(config.logreg);
    clf.Fit(x_train, y_train, num_classes);
    std::vector<int> y_pred = clf.Predict(x_test);
    micro_scores.push_back(MicroF1(y_test, y_pred, num_classes));
    macro_scores.push_back(MacroF1(y_test, y_pred, num_classes));
  }

  auto mean_std = [](const std::vector<double>& v) {
    if (v.empty()) return std::pair<double, double>{0.0, 0.0};
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size());
    return std::pair<double, double>{mean, std::sqrt(var)};
  };

  NodeClassificationResult result;
  std::tie(result.macro_f1, result.macro_f1_stddev) = mean_std(macro_scores);
  std::tie(result.micro_f1, result.micro_f1_stddev) = mean_std(micro_scores);
  return result;
}

NodeClassificationResult EvaluateNodeClassification(
    const HeteroGraph& g, const Matrix& embeddings,
    const NodeClassificationConfig& config) {
  CHECK_EQ(embeddings.rows(), g.num_nodes());
  std::vector<NodeId> labeled = g.LabeledNodes();
  CHECK(!labeled.empty()) << "graph has no labeled nodes";

  Matrix features(labeled.size(), embeddings.cols());
  std::vector<int> labels(labeled.size());
  for (size_t i = 0; i < labeled.size(); ++i) {
    const double* src = embeddings.Row(labeled[i]);
    std::copy(src, src + embeddings.cols(), features.Row(i));
    labels[i] = g.label(labeled[i]);
  }
  return EvaluateClassification(features, labels, g.num_labels(), config);
}

}  // namespace transn
