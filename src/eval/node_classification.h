#ifndef TRANSN_EVAL_NODE_CLASSIFICATION_H_
#define TRANSN_EVAL_NODE_CLASSIFICATION_H_

#include <vector>

#include "eval/logistic_regression.h"
#include "graph/hetero_graph.h"
#include "nn/matrix.h"

namespace transn {

/// Node-classification protocol of §IV-B1: repeated stratified 90/10 splits
/// of the labeled nodes, a logistic-regression classifier on the (fixed)
/// embeddings, micro/macro-F1 averaged over the repeats.
struct NodeClassificationConfig {
  double train_fraction = 0.9;
  size_t repeats = 10;
  uint64_t seed = 7;
  LogRegConfig logreg;
};

struct NodeClassificationResult {
  double macro_f1 = 0.0;
  double micro_f1 = 0.0;
  double macro_f1_stddev = 0.0;
  double micro_f1_stddev = 0.0;
};

/// `embeddings` row n is the embedding of graph node id n; labeled nodes and
/// labels are taken from `g`.
NodeClassificationResult EvaluateNodeClassification(
    const HeteroGraph& g, const Matrix& embeddings,
    const NodeClassificationConfig& config = {});

/// Lower-level variant on explicit features/labels (used by tests).
NodeClassificationResult EvaluateClassification(
    const Matrix& features, const std::vector<int>& labels, int num_classes,
    const NodeClassificationConfig& config = {});

}  // namespace transn

#endif  // TRANSN_EVAL_NODE_CLASSIFICATION_H_
