#include "eval/split.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace transn {

TrainTestSplit StratifiedSplit(const std::vector<int>& labels,
                               double train_fraction, Rng& rng) {
  CHECK_GT(train_fraction, 0.0);
  CHECK_LT(train_fraction, 1.0);
  int num_classes = 0;
  for (int l : labels) {
    CHECK_GE(l, 0);
    num_classes = std::max(num_classes, l + 1);
  }
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  TrainTestSplit split;
  for (auto& members : by_class) {
    if (members.empty()) continue;
    rng.Shuffle(members);
    size_t n_train = static_cast<size_t>(
        std::llround(train_fraction * static_cast<double>(members.size())));
    if (members.size() >= 2) {
      n_train = std::clamp<size_t>(n_train, 1, members.size() - 1);
    } else {
      n_train = 1;  // singleton classes go to train
    }
    for (size_t k = 0; k < members.size(); ++k) {
      (k < n_train ? split.train : split.test).push_back(members[k]);
    }
  }
  rng.Shuffle(split.train);
  rng.Shuffle(split.test);
  return split;
}

}  // namespace transn
