#ifndef TRANSN_EVAL_SPLIT_H_
#define TRANSN_EVAL_SPLIT_H_

#include <vector>

#include "util/rng.h"

namespace transn {

/// Index split into train/test.
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Splits indices [0, labels.size()) with per-class proportions preserved
/// (each class contributes ~train_fraction of its members to train, at least
/// one to each side when it has >= 2 members).
TrainTestSplit StratifiedSplit(const std::vector<int>& labels,
                               double train_fraction, Rng& rng);

}  // namespace transn

#endif  // TRANSN_EVAL_SPLIT_H_
