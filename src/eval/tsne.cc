#include "eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "util/logging.h"
#include "util/rng.h"

namespace transn {
namespace {

/// Pairwise squared Euclidean distances between rows.
Matrix PairwiseSquaredDistances(const Matrix& x) {
  const size_t n = x.rows();
  Matrix d2(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const double* xi = x.Row(i);
      const double* xj = x.Row(j);
      for (size_t c = 0; c < x.cols(); ++c) {
        const double d = xi[c] - xj[c];
        acc += d * d;
      }
      d2(i, j) = acc;
      d2(j, i) = acc;
    }
  }
  return d2;
}

/// Binary-searches the Gaussian bandwidth of row i to hit the target
/// perplexity, writing conditional probabilities p_{j|i} into row i of p.
void RowConditionalP(const Matrix& d2, size_t i, double perplexity,
                     Matrix& p) {
  const size_t n = d2.rows();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double w = std::exp(-beta * d2(i, j));
      p(i, j) = w;
      sum += w;
      weighted += w * d2(i, j);
    }
    sum = std::max(sum, 1e-300);
    const double entropy = std::log(sum) + beta * weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = std::isfinite(beta_hi) ? 0.5 * (beta + beta_hi) : beta * 2.0;
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    if (j != i) sum += p(i, j);
  }
  sum = std::max(sum, 1e-300);
  for (size_t j = 0; j < n; ++j) p(i, j) = j == i ? 0.0 : p(i, j) / sum;
}

}  // namespace

Matrix Tsne(const Matrix& x, const TsneConfig& config) {
  const size_t n = x.rows();
  CHECK_GE(n, 4u);
  CHECK_GT(config.perplexity, 1.0);
  CHECK(3.0 * config.perplexity < static_cast<double>(n))
      << "perplexity too large for " << n << " points";

  // High-dimensional affinities: symmetrized conditional Gaussians.
  Matrix d2 = PairwiseSquaredDistances(x);
  Matrix p_cond(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    RowConditionalP(d2, i, config.perplexity, p_cond);
  }
  Matrix p(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p(i, j) = std::max((p_cond(i, j) + p_cond(j, i)) / (2.0 * n), 1e-12);
    }
  }

  Rng rng(config.seed);
  Matrix y = GaussianInit(n, config.out_dims, 1e-2, rng);
  Matrix velocity(n, config.out_dims, 0.0);
  Matrix grad(n, config.out_dims, 0.0);

  const size_t exaggeration_end = config.iterations / 4;
  for (size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? config.early_exaggeration : 1.0;
    const double momentum =
        iter < exaggeration_end ? config.momentum : config.final_momentum;

    // Low-dimensional affinities q_ij ∝ (1 + |y_i - y_j|²)^-1.
    Matrix yd2 = PairwiseSquaredDistances(y);
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i != j) q_sum += 1.0 / (1.0 + yd2(i, j));
      }
    }
    q_sum = std::max(q_sum, 1e-300);

    grad.Fill(0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double inv = 1.0 / (1.0 + yd2(i, j));
        const double q = std::max(inv / q_sum, 1e-12);
        const double coeff = 4.0 * (exaggeration * p(i, j) - q) * inv;
        for (size_t c = 0; c < config.out_dims; ++c) {
          grad(i, c) += coeff * (y(i, c) - y(j, c));
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < config.out_dims; ++c) {
        velocity(i, c) =
            momentum * velocity(i, c) - config.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    // Re-center to keep the embedding bounded.
    for (size_t c = 0; c < config.out_dims; ++c) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }
  return y;
}

}  // namespace transn
