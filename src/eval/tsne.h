#ifndef TRANSN_EVAL_TSNE_H_
#define TRANSN_EVAL_TSNE_H_

#include "nn/matrix.h"

namespace transn {

/// Exact t-SNE (van der Maaten & Hinton, 2008), sufficient for the paper's
/// Figure 6 (90 points). O(n² d) per iteration.
struct TsneConfig {
  size_t out_dims = 2;
  double perplexity = 15.0;
  size_t iterations = 600;
  double learning_rate = 100.0;
  /// Early exaggeration factor applied for the first quarter of iterations.
  double early_exaggeration = 4.0;
  double momentum = 0.5;
  double final_momentum = 0.8;
  uint64_t seed = 3;
};

/// Projects the rows of `x` into config.out_dims dimensions.
/// Requires 3*perplexity < x.rows().
Matrix Tsne(const Matrix& x, const TsneConfig& config = {});

}  // namespace transn

#endif  // TRANSN_EVAL_TSNE_H_
