#include "graph/graph_io.h"

#include <fstream>
#include <unordered_map>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/safe_io.h"
#include "util/string_util.h"

namespace transn {

Status SaveGraph(const HeteroGraph& g, const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(
      obs::MetricsRegistry::Default().GetHistogram(
          obs::kIoGraphSaveSeconds, "seconds", "SaveGraph wall time"));
  // Format the whole file first, then atomically replace the target: a
  // crash or full disk mid-save must never leave a torn graph file. The
  // ostringstream keeps the v1 byte format (default float precision for
  // edge weights) unchanged.
  std::ostringstream out;
  out << "# transn graph v1\n";
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    out << "T\t" << g.node_type_name(t) << "\n";
  }
  for (EdgeTypeId t = 0; t < g.num_edge_types(); ++t) {
    out << "R\t" << g.edge_type_name(t) << "\n";
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out << "N\t" << g.node_name(n) << "\t"
        << g.node_type_name(g.node_type(n));
    if (g.label(n) != kUnlabeled) out << "\t" << g.label(n);
    out << "\n";
  }
  for (size_t e = 0; e < g.num_edges(); ++e) {
    out << "E\t" << g.node_name(g.edge_u(e)) << "\t"
        << g.node_name(g.edge_v(e)) << "\t"
        << g.edge_type_name(g.edge_type(e)) << "\t" << g.edge_weight(e)
        << "\n";
  }
  AtomicFileWriter writer(path);
  writer.Write(out.str());
  return writer.Commit();
}

StatusOr<HeteroGraph> LoadGraph(const std::string& path) {
  const obs::ScopedHistogramTimer io_timer(
      obs::MetricsRegistry::Default().GetHistogram(
          obs::kIoGraphLoadSeconds, "seconds", "LoadGraph wall time"));
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  HeteroGraphBuilder builder;
  std::unordered_map<std::string, NodeTypeId> node_types;
  std::unordered_map<std::string, EdgeTypeId> edge_types;
  std::unordered_map<std::string, NodeId> nodes;

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    const std::string& tag = fields[0];
    auto malformed = [&](const char* what) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path.c_str(), line_no, what));
    };
    if (tag == "T") {
      if (fields.size() != 2) return malformed("T line needs 1 field");
      if (node_types.count(fields[1])) return malformed("duplicate node type");
      node_types[fields[1]] = builder.AddNodeType(fields[1]);
    } else if (tag == "R") {
      if (fields.size() != 2) return malformed("R line needs 1 field");
      if (edge_types.count(fields[1])) return malformed("duplicate edge type");
      edge_types[fields[1]] = builder.AddEdgeType(fields[1]);
    } else if (tag == "N") {
      if (fields.size() != 3 && fields.size() != 4) {
        return malformed("N line needs 2 or 3 fields");
      }
      auto t = node_types.find(fields[2]);
      if (t == node_types.end()) return malformed("unknown node type");
      if (nodes.count(fields[1])) return malformed("duplicate node name");
      NodeId id = builder.AddNode(t->second, fields[1]);
      nodes[fields[1]] = id;
      if (fields.size() == 4) {
        int64_t label = 0;
        if (!ParseInt64(fields[3], &label) || label < 0) {
          return malformed("bad label");
        }
        builder.SetLabel(id, static_cast<int>(label));
      }
    } else if (tag == "E") {
      if (fields.size() != 5) return malformed("E line needs 4 fields");
      auto u = nodes.find(fields[1]);
      auto v = nodes.find(fields[2]);
      if (u == nodes.end() || v == nodes.end()) {
        return malformed("edge references unknown node");
      }
      auto t = edge_types.find(fields[3]);
      if (t == edge_types.end()) return malformed("unknown edge type");
      double w = 0.0;
      if (!ParseDouble(fields[4], &w) || w <= 0.0) {
        return malformed("bad edge weight");
      }
      builder.AddEdge(u->second, v->second, t->second, w);
    } else {
      return malformed("unknown line tag");
    }
  }
  return builder.Build();
}

}  // namespace transn
