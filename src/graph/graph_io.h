#ifndef TRANSN_GRAPH_GRAPH_IO_H_
#define TRANSN_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace transn {

/// Text serialization of a HeteroGraph. The format is line-oriented TSV:
///
///   T\t<node_type_name>                 (node types, in id order)
///   R\t<edge_type_name>                 (edge types, in id order)
///   N\t<node_name>\t<node_type_name>[\t<label>]
///   E\t<u_name>\t<v_name>\t<edge_type_name>\t<weight>
///
/// Node names must be unique; unnamed nodes are saved under their default
/// "n<id>" names. Lines starting with '#' are comments.
Status SaveGraph(const HeteroGraph& g, const std::string& path);

StatusOr<HeteroGraph> LoadGraph(const std::string& path);

}  // namespace transn

#endif  // TRANSN_GRAPH_GRAPH_IO_H_
