#include "graph/graph_stats.h"

#include "util/string_util.h"

namespace transn {

GraphStats ComputeStats(const HeteroGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.average_degree = g.AverageDegree();
  if (g.num_nodes() > 1) {
    s.density = 2.0 * static_cast<double>(g.num_edges()) /
                (static_cast<double>(g.num_nodes()) *
                 static_cast<double>(g.num_nodes() - 1));
  }

  std::vector<size_t> node_counts(g.num_node_types(), 0);
  std::vector<size_t> labeled_per_type(g.num_node_types(), 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ++node_counts[g.node_type(n)];
    if (g.label(n) != kUnlabeled) {
      ++s.num_labeled;
      ++labeled_per_type[g.node_type(n)];
    }
  }
  int labeled_types = 0;
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    s.nodes_per_type.emplace_back(g.node_type_name(t), node_counts[t]);
    if (labeled_per_type[t] > 0) {
      ++labeled_types;
      s.labeled_type = g.node_type_name(t);
    }
  }
  if (labeled_types != 1) s.labeled_type.clear();

  std::vector<size_t> edge_counts(g.num_edge_types(), 0);
  for (size_t e = 0; e < g.num_edges(); ++e) ++edge_counts[g.edge_type(e)];
  for (EdgeTypeId t = 0; t < g.num_edge_types(); ++t) {
    s.edges_per_type.emplace_back(g.edge_type_name(t), edge_counts[t]);
  }
  return s;
}

std::string FormatTypeCounts(
    const std::vector<std::pair<std::string, size_t>>& counts) {
  std::vector<std::string> parts;
  parts.reserve(counts.size());
  for (const auto& [name, count] : counts) {
    parts.push_back(StrFormat("%s(%zu)", name.c_str(), count));
  }
  return Join(parts, ", ");
}

}  // namespace transn
