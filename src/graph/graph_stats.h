#ifndef TRANSN_GRAPH_GRAPH_STATS_H_
#define TRANSN_GRAPH_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"

namespace transn {

/// Summary statistics of a heterogeneous network in the shape of the
/// paper's Table II.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  /// (type name, count) in node-type id order.
  std::vector<std::pair<std::string, size_t>> nodes_per_type;
  /// (type name, count) in edge-type id order.
  std::vector<std::pair<std::string, size_t>> edges_per_type;
  size_t num_labeled = 0;
  /// Name of the node type carrying labels ("" when unlabeled or mixed).
  std::string labeled_type;
  double average_degree = 0.0;
  /// 2|E| / (|V| (|V|-1)): simple density proxy used in §IV-B analysis.
  double density = 0.0;
};

GraphStats ComputeStats(const HeteroGraph& g);

/// "Author(2161), Paper(2555), Venue(58)"-style cell text for Table II.
std::string FormatTypeCounts(
    const std::vector<std::pair<std::string, size_t>>& counts);

}  // namespace transn

#endif  // TRANSN_GRAPH_GRAPH_STATS_H_
