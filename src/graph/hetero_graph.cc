#include "graph/hetero_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace transn {

NodeTypeId HeteroGraphBuilder::AddNodeType(std::string name) {
  for (const std::string& existing : node_type_names_) {
    CHECK_NE(existing, name) << "duplicate node type";
  }
  node_type_names_.push_back(std::move(name));
  return static_cast<NodeTypeId>(node_type_names_.size() - 1);
}

EdgeTypeId HeteroGraphBuilder::AddEdgeType(std::string name) {
  for (const std::string& existing : edge_type_names_) {
    CHECK_NE(existing, name) << "duplicate edge type";
  }
  edge_type_names_.push_back(std::move(name));
  return static_cast<EdgeTypeId>(edge_type_names_.size() - 1);
}

NodeId HeteroGraphBuilder::AddNode(NodeTypeId type) {
  return AddNode(type, std::string());
}

NodeId HeteroGraphBuilder::AddNode(NodeTypeId type, std::string name) {
  CHECK_LT(type, node_type_names_.size()) << "unknown node type";
  node_types_.push_back(type);
  node_names_.push_back(std::move(name));
  labels_.push_back(kUnlabeled);
  return static_cast<NodeId>(node_types_.size() - 1);
}

size_t HeteroGraphBuilder::AddEdge(NodeId u, NodeId v, EdgeTypeId type,
                                   double weight) {
  CHECK_LT(u, node_types_.size());
  CHECK_LT(v, node_types_.size());
  CHECK_NE(u, v) << "self-loops are not supported";
  CHECK_LT(type, edge_type_names_.size()) << "unknown edge type";
  CHECK_GT(weight, 0.0) << "edge weights must be positive";
  edges_.push_back({u, v, type, weight});
  return edges_.size() - 1;
}

void HeteroGraphBuilder::SetLabel(NodeId node, int label) {
  CHECK_LT(node, labels_.size());
  CHECK_GE(label, 0);
  labels_[node] = label;
}

HeteroGraph HeteroGraphBuilder::Build() {
  HeteroGraph g;
  g.node_type_names_ = std::move(node_type_names_);
  g.edge_type_names_ = std::move(edge_type_names_);
  g.node_types_ = std::move(node_types_);
  g.node_names_ = std::move(node_names_);
  g.labels_ = std::move(labels_);
  for (int label : g.labels_) {
    g.num_labels_ = std::max(g.num_labels_, label + 1);
  }

  const size_t n = g.node_types_.size();
  g.offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adj_.resize(2 * edges_.size());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  g.edge_u_.reserve(edges_.size());
  g.edge_v_.reserve(edges_.size());
  g.edge_types_.reserve(edges_.size());
  g.edge_weights_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    g.adj_[cursor[e.u]++] = {e.v, e.type, e.weight};
    g.adj_[cursor[e.v]++] = {e.u, e.type, e.weight};
    g.edge_u_.push_back(e.u);
    g.edge_v_.push_back(e.v);
    g.edge_types_.push_back(e.type);
    g.edge_weights_.push_back(e.weight);
  }
  // Reset builder.
  *this = HeteroGraphBuilder();
  return g;
}

std::string HeteroGraph::node_name(NodeId n) const {
  CHECK_LT(n, node_names_.size());
  if (!node_names_[n].empty()) return node_names_[n];
  return StrFormat("n%u", n);
}

std::vector<NodeId> HeteroGraph::LabeledNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < labels_.size(); ++n) {
    if (labels_[n] != kUnlabeled) out.push_back(n);
  }
  return out;
}

bool HeteroGraph::HasEdge(NodeId u, NodeId v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  for (const Adjacency* a = NeighborsBegin(u); a != NeighborsEnd(u); ++a) {
    if (a->neighbor == v) return true;
  }
  return false;
}

double HeteroGraph::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes());
}

}  // namespace transn
