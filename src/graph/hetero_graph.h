#ifndef TRANSN_GRAPH_HETERO_GRAPH_H_
#define TRANSN_GRAPH_HETERO_GRAPH_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "util/logging.h"

namespace transn {

/// Global node identifier within a HeteroGraph.
using NodeId = uint32_t;
/// Node type identifier (e.g. author/paper/venue).
using NodeTypeId = uint32_t;
/// Edge type identifier (e.g. authorship/citation); one view per edge type.
using EdgeTypeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr int kUnlabeled = -1;

/// One directed half of an undirected edge, as stored in the CSR adjacency.
struct Adjacency {
  NodeId neighbor;
  EdgeTypeId edge_type;
  double weight;
};

class HeteroGraph;

/// Incremental construction of a HeteroGraph (Definition 1): typed nodes,
/// typed weighted undirected edges, optional integer labels on nodes.
class HeteroGraphBuilder {
 public:
  /// Registers a node type; returns its id. Names must be unique.
  NodeTypeId AddNodeType(std::string name);
  /// Registers an edge type; returns its id. Names must be unique.
  EdgeTypeId AddEdgeType(std::string name);

  /// Adds a node of the given type; returns its id.
  NodeId AddNode(NodeTypeId type);
  /// Adds a named node (names are optional and used only for I/O and
  /// debugging).
  NodeId AddNode(NodeTypeId type, std::string name);

  /// Adds an undirected edge. Self-loops are rejected. `weight` must be
  /// positive. Returns the edge index.
  size_t AddEdge(NodeId u, NodeId v, EdgeTypeId type, double weight = 1.0);

  /// Attaches a classification label (>= 0) to a node.
  void SetLabel(NodeId node, int label);

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into an immutable HeteroGraph. The builder is left empty.
  HeteroGraph Build();

 private:
  friend class HeteroGraph;
  struct Edge {
    NodeId u, v;
    EdgeTypeId type;
    double weight;
  };
  std::vector<std::string> node_type_names_;
  std::vector<std::string> edge_type_names_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> node_names_;  // empty strings when unnamed
  std::vector<int> labels_;
  std::vector<Edge> edges_;
};

/// Immutable heterogeneous network G = {V, E, C_V, C_E} (Definition 1) with
/// CSR adjacency. Undirected: each edge appears in both endpoints' rows.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  size_t num_nodes() const { return node_types_.size(); }
  /// Number of undirected edges.
  size_t num_edges() const { return edge_u_.size(); }
  size_t num_node_types() const { return node_type_names_.size(); }
  size_t num_edge_types() const { return edge_type_names_.size(); }

  NodeTypeId node_type(NodeId n) const {
    DCHECK_LT(n, node_types_.size());
    return node_types_[n];
  }
  const std::string& node_type_name(NodeTypeId t) const {
    CHECK_LT(t, node_type_names_.size());
    return node_type_names_[t];
  }
  const std::string& edge_type_name(EdgeTypeId t) const {
    CHECK_LT(t, edge_type_names_.size());
    return edge_type_names_[t];
  }
  /// Node name if one was provided at construction, otherwise "n<id>".
  std::string node_name(NodeId n) const;

  /// Label of a node, or kUnlabeled.
  int label(NodeId n) const {
    DCHECK_LT(n, labels_.size());
    return labels_[n];
  }
  /// All nodes with a label >= 0.
  std::vector<NodeId> LabeledNodes() const;
  /// Number of distinct labels (max label + 1; 0 when unlabeled).
  int num_labels() const { return num_labels_; }

  /// Neighbors of `n` across all edge types.
  const Adjacency* NeighborsBegin(NodeId n) const {
    DCHECK_LT(n, node_types_.size());
    return adj_.data() + offsets_[n];
  }
  const Adjacency* NeighborsEnd(NodeId n) const {
    DCHECK_LT(n, node_types_.size());
    return adj_.data() + offsets_[n + 1];
  }
  size_t degree(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }

  /// Edge list access (undirected, one entry per edge).
  NodeId edge_u(size_t e) const { return edge_u_[e]; }
  NodeId edge_v(size_t e) const { return edge_v_[e]; }
  EdgeTypeId edge_type(size_t e) const { return edge_types_[e]; }
  double edge_weight(size_t e) const { return edge_weights_[e]; }

  /// True when u and v are adjacent (any edge type). O(min deg) scan.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Average degree (2|E| / |V|); δ in the paper's Theorem 1.
  double AverageDegree() const;

 private:
  friend class HeteroGraphBuilder;

  std::vector<std::string> node_type_names_;
  std::vector<std::string> edge_type_names_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> node_names_;
  std::vector<int> labels_;
  int num_labels_ = 0;

  // CSR adjacency over all edge types.
  std::vector<size_t> offsets_;  // num_nodes + 1
  std::vector<Adjacency> adj_;   // 2 * num_edges

  // Flat undirected edge list.
  std::vector<NodeId> edge_u_, edge_v_;
  std::vector<EdgeTypeId> edge_types_;
  std::vector<double> edge_weights_;
};

}  // namespace transn

#endif  // TRANSN_GRAPH_HETERO_GRAPH_H_
