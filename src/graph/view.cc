#include "graph/view.h"

#include <algorithm>
#include <tuple>

namespace transn {

ViewGraph ViewGraph::FromEdges(
    const std::vector<std::tuple<NodeId, NodeId, double>>& edges) {
  ViewGraph vg;
  auto intern = [&vg](NodeId global) -> LocalId {
    auto [it, inserted] = vg.global_to_local_.try_emplace(
        global, static_cast<LocalId>(vg.local_to_global_.size()));
    if (inserted) vg.local_to_global_.push_back(global);
    return it->second;
  };

  std::vector<std::tuple<LocalId, LocalId, double>> local_edges;
  local_edges.reserve(edges.size());
  for (const auto& [u, v, w] : edges) {
    CHECK_GT(w, 0.0);
    local_edges.emplace_back(intern(u), intern(v), w);
  }
  vg.num_edges_ = local_edges.size();

  const size_t n = vg.local_to_global_.size();
  vg.offsets_.assign(n + 1, 0);
  for (const auto& [u, v, w] : local_edges) {
    ++vg.offsets_[u + 1];
    ++vg.offsets_[v + 1];
  }
  for (size_t i = 0; i < n; ++i) vg.offsets_[i + 1] += vg.offsets_[i];
  vg.neighbor_ids_.resize(2 * local_edges.size());
  vg.neighbor_weights_.resize(2 * local_edges.size());
  std::vector<size_t> cursor(vg.offsets_.begin(), vg.offsets_.end() - 1);
  for (const auto& [u, v, w] : local_edges) {
    vg.neighbor_ids_[cursor[u]] = v;
    vg.neighbor_weights_[cursor[u]++] = w;
    vg.neighbor_ids_[cursor[v]] = u;
    vg.neighbor_weights_[cursor[v]++] = w;
  }
  vg.weighted_degree_.assign(n, 0.0);
  for (LocalId u = 0; u < n; ++u) {
    const double* w = vg.NeighborWeights(u);
    for (size_t k = 0; k < vg.degree(u); ++k) vg.weighted_degree_[u] += w[k];
  }
  return vg;
}

bool ViewGraph::AreAdjacent(LocalId u, LocalId v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const LocalId* nbrs = NeighborIds(u);
  for (size_t k = 0; k < degree(u); ++k) {
    if (nbrs[k] == v) return true;
  }
  return false;
}

double ViewGraph::WeightSpread(LocalId n) const {
  const size_t deg = degree(n);
  if (deg == 0) return 0.0;
  const double* w = NeighborWeights(n);
  double lo = w[0], hi = w[0];
  for (size_t k = 1; k < deg; ++k) {
    lo = std::min(lo, w[k]);
    hi = std::max(hi, w[k]);
  }
  return hi - lo;
}

ViewGraph FlattenToViewGraph(const HeteroGraph& g) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  edges.reserve(g.num_edges());
  for (size_t e = 0; e < g.num_edges(); ++e) {
    edges.emplace_back(g.edge_u(e), g.edge_v(e), g.edge_weight(e));
  }
  return ViewGraph::FromEdges(edges);
}

std::vector<View> BuildViews(const HeteroGraph& g) {
  // Bucket the global edge list by edge type.
  std::vector<std::vector<std::tuple<NodeId, NodeId, double>>> buckets(
      g.num_edge_types());
  for (size_t e = 0; e < g.num_edges(); ++e) {
    buckets[g.edge_type(e)].emplace_back(g.edge_u(e), g.edge_v(e),
                                         g.edge_weight(e));
  }

  std::vector<View> views(g.num_edge_types());
  for (EdgeTypeId t = 0; t < g.num_edge_types(); ++t) {
    View& view = views[t];
    view.edge_type = t;
    view.name = g.edge_type_name(t);
    view.graph = ViewGraph::FromEdges(buckets[t]);
    if (view.graph.num_nodes() == 0) continue;

    // Classify per Definition 4: a view has one node type (homo) or exactly
    // two node types with all edges crossing between them (heter).
    view.type_a = g.node_type(view.graph.ToGlobal(0));
    view.type_b = view.type_a;
    for (NodeId global : view.graph.nodes()) {
      NodeTypeId nt = g.node_type(global);
      if (nt == view.type_a || nt == view.type_b) continue;
      CHECK_EQ(view.type_a, view.type_b)
          << "edge type '" << g.edge_type_name(t)
          << "' spans more than two node types, violating Definition 4";
      view.type_b = nt;
    }
    view.is_heter = view.type_a != view.type_b;
    if (view.is_heter) {
      // In a heter-view every edge must join the two types (bipartite).
      for (const auto& [u, v, w] : buckets[t]) {
        CHECK_NE(g.node_type(u), g.node_type(v))
            << "heter-view edge joins two nodes of the same type";
      }
    }
  }
  return views;
}

}  // namespace transn
