#ifndef TRANSN_GRAPH_VIEW_H_
#define TRANSN_GRAPH_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/hetero_graph.h"

namespace transn {

/// A weighted undirected graph over a *subset* of a HeteroGraph's nodes,
/// re-indexed with dense local ids. Both views (Definition 2) and paired
/// subviews (Definition 5) are ViewGraphs; random walks run on this type.
class ViewGraph {
 public:
  /// Local node index within a ViewGraph.
  using LocalId = uint32_t;

  ViewGraph() = default;

  /// Builds from undirected (global_u, global_v, weight) edges. The node set
  /// is exactly the set of endpoints, locally indexed in order of first
  /// appearance. Parallel edges are kept as-is.
  static ViewGraph FromEdges(
      const std::vector<std::tuple<NodeId, NodeId, double>>& edges);

  size_t num_nodes() const { return local_to_global_.size(); }
  size_t num_edges() const { return num_edges_; }

  NodeId ToGlobal(LocalId local) const {
    DCHECK_LT(local, local_to_global_.size());
    return local_to_global_[local];
  }
  /// kInvalidNode when the global node is not in this view.
  LocalId ToLocal(NodeId global) const {
    auto it = global_to_local_.find(global);
    return it == global_to_local_.end() ? kInvalidNode : it->second;
  }
  bool Contains(NodeId global) const {
    return global_to_local_.count(global) > 0;
  }
  const std::vector<NodeId>& nodes() const { return local_to_global_; }

  size_t degree(LocalId n) const {
    DCHECK_LT(n + 1, offsets_.size() + 0);
    return offsets_[n + 1] - offsets_[n];
  }
  double weighted_degree(LocalId n) const { return weighted_degree_[n]; }

  /// Neighbor arrays of `n`: parallel arrays of local ids and weights.
  const LocalId* NeighborIds(LocalId n) const {
    return neighbor_ids_.data() + offsets_[n];
  }
  const double* NeighborWeights(LocalId n) const {
    return neighbor_weights_.data() + offsets_[n];
  }

  /// Max minus min weight over edges incident to `n` (Δ in Eq. 5). 0 for
  /// isolated nodes or uniform weights.
  double WeightSpread(LocalId n) const;

  /// True when u and v share an edge. O(min degree) scan; used by the
  /// node2vec walker's return/in-out classification.
  bool AreAdjacent(LocalId u, LocalId v) const;

 private:
  std::vector<NodeId> local_to_global_;
  std::unordered_map<NodeId, LocalId> global_to_local_;
  std::vector<size_t> offsets_;
  std::vector<LocalId> neighbor_ids_;
  std::vector<double> neighbor_weights_;
  std::vector<double> weighted_degree_;
  size_t num_edges_ = 0;
};

/// One view φ_i of a heterogeneous network (Definition 2): all edges of a
/// single type plus their endpoints. Per Definition 4, a view is either a
/// homo-view (one node type) or a heter-view (exactly two node types).
struct View {
  EdgeTypeId edge_type = 0;
  /// Edge-type name (set by BuildViews; empty for hand-built views). Used
  /// as the {view=...} label on per-view metrics and span names.
  std::string name;
  /// The one or two node types appearing in this view. type_a == type_b for
  /// homo-views.
  NodeTypeId type_a = 0;
  NodeTypeId type_b = 0;
  bool is_heter = false;
  ViewGraph graph;
};

/// Separates `g` into one view per edge type (Fig. 2(c) strategy). Views for
/// edge types with no edges are returned with empty graphs. Verifies the
/// homo/heter dichotomy of Definition 4 (CHECK-fails on a view whose edges
/// span more than two node types).
std::vector<View> BuildViews(const HeteroGraph& g);

/// Collapses the whole heterogeneous network into a single untyped
/// ViewGraph (all edges, weights kept). This is what the homogeneous
/// baselines LINE and Node2Vec see (§IV-A2: types removed).
ViewGraph FlattenToViewGraph(const HeteroGraph& g);

}  // namespace transn

#endif  // TRANSN_GRAPH_VIEW_H_
