#include "graph/view_pair.h"

#include <algorithm>
#include <unordered_set>

namespace transn {

std::vector<ViewPair> FindViewPairs(const std::vector<View>& views) {
  std::vector<ViewPair> pairs;
  for (size_t i = 0; i < views.size(); ++i) {
    for (size_t j = i + 1; j < views.size(); ++j) {
      const ViewGraph& a = views[i].graph;
      const ViewGraph& b = views[j].graph;
      // Scan the smaller node set against the larger's hash map.
      const ViewGraph& small = a.num_nodes() <= b.num_nodes() ? a : b;
      const ViewGraph& large = a.num_nodes() <= b.num_nodes() ? b : a;
      std::vector<NodeId> common;
      for (NodeId global : small.nodes()) {
        if (large.Contains(global)) common.push_back(global);
      }
      if (common.empty()) continue;
      std::sort(common.begin(), common.end());
      pairs.push_back({i, j, std::move(common)});
    }
  }
  return pairs;
}

PairedSubview BuildPairedSubview(const View& view,
                                 const std::vector<NodeId>& common_nodes) {
  const ViewGraph& g = view.graph;
  std::unordered_set<NodeId> keep(common_nodes.begin(), common_nodes.end());

  // Add neighbors (in this view) of every common node: A_ij.
  std::unordered_set<NodeId> common_set = keep;
  for (NodeId global : common_nodes) {
    ViewGraph::LocalId local = g.ToLocal(global);
    if (local == kInvalidNode) continue;  // common node absent from this view
    const ViewGraph::LocalId* nbrs = g.NeighborIds(local);
    for (size_t k = 0; k < g.degree(local); ++k) {
      keep.insert(g.ToGlobal(nbrs[k]));
    }
  }

  // Collect the induced edges (each undirected edge once: u < v in local id).
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (ViewGraph::LocalId u = 0; u < g.num_nodes(); ++u) {
    NodeId gu = g.ToGlobal(u);
    if (keep.count(gu) == 0) continue;
    const ViewGraph::LocalId* nbrs = g.NeighborIds(u);
    const double* weights = g.NeighborWeights(u);
    for (size_t k = 0; k < g.degree(u); ++k) {
      ViewGraph::LocalId v = nbrs[k];
      if (v <= u) continue;
      NodeId gv = g.ToGlobal(v);
      if (keep.count(gv) == 0) continue;
      edges.emplace_back(gu, gv, weights[k]);
    }
  }

  PairedSubview sub;
  sub.graph = ViewGraph::FromEdges(edges);
  sub.is_common.assign(sub.graph.num_nodes(), false);
  for (ViewGraph::LocalId local = 0; local < sub.graph.num_nodes(); ++local) {
    sub.is_common[local] = common_set.count(sub.graph.ToGlobal(local)) > 0;
  }
  return sub;
}

}  // namespace transn
