#ifndef TRANSN_GRAPH_VIEW_PAIR_H_
#define TRANSN_GRAPH_VIEW_PAIR_H_

#include <vector>

#include "graph/view.h"

namespace transn {

/// A view-pair η_{i,j} (Definition 3): two views sharing at least one node.
struct ViewPair {
  size_t view_i = 0;
  size_t view_j = 0;
  /// Global ids of nodes present in both views, sorted ascending.
  std::vector<NodeId> common_nodes;
};

/// Enumerates all view-pairs of `views` (i < j with a non-empty node
/// intersection).
std::vector<ViewPair> FindViewPairs(const std::vector<View>& views);

/// A paired subview φ'_i (Definition 5): the subgraph of a view induced by
/// the common nodes of a view-pair together with their neighbors in that
/// view. (The definition's "M ∩ A" is read as the union M ∪ A per the
/// surrounding prose; see DESIGN.md §2.4.)
struct PairedSubview {
  ViewGraph graph;
  /// is_common[local] == true iff the node is shared by both views of the
  /// pair; the cross-view algorithm keeps only these nodes on its paths.
  std::vector<bool> is_common;

  size_t num_common() const {
    size_t n = 0;
    for (bool b : is_common) n += b;
    return n;
  }
};

/// Builds φ'_view for one side of a view-pair from that side's view and the
/// pair's common node set (must be sorted).
PairedSubview BuildPairedSubview(const View& view,
                                 const std::vector<NodeId>& common_nodes);

}  // namespace transn

#endif  // TRANSN_GRAPH_VIEW_PAIR_H_
