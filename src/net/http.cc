#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace transn {
namespace net {

namespace {

/// Strips one trailing '\r' (CRLF tolerance when splitting on '\n').
std::string_view ChopCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQueryString(std::string_view qs,
                      std::map<std::string, std::string>* params) {
  size_t pos = 0;
  while (pos <= qs.size()) {
    const size_t amp = std::min(qs.find('&', pos), qs.size());
    const std::string_view pair = qs.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*params)[PercentDecode(pair)] = "";
      } else {
        (*params)[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
}

}  // namespace

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += '%';
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

const char* HttpStatusReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(int code, std::string_view content_type,
                                  std::string_view body, bool keep_alive,
                                  std::string_view extra_headers) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", code,
                              HttpStatusReason(code));
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

ParseState HttpParser::Fail(int code, std::string message) {
  state_ = ParseState::kError;
  error_code_ = code;
  error_ = std::move(message);
  return state_;
}

ParseState HttpParser::Feed(const char* data, size_t n) {
  if (state_ == ParseState::kError) return state_;
  buffer_.append(data, n);
  if (state_ == ParseState::kDone) return state_;  // caller must TakeRequest
  return Parse();
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest();
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  scan_from_ = 0;
  header_end_ = 0;
  content_length_ = 0;
  state_ = ParseState::kNeedMore;
  if (!buffer_.empty()) Parse();  // pipelined request already buffered
  return out;
}

ParseState HttpParser::Parse() {
  // Once the header block has been parsed (header_end_ > 0) only the body
  // can still be pending — skip straight to the completeness check so later
  // feeds never rescan (or re-parse) the headers.
  if (header_end_ > 0) return FinishBody();

  // Locate the end of the header block, resuming the scan where the previous
  // incomplete Feed() left off (never rescan the whole buffer).
  const size_t start = scan_from_ > 3 ? scan_from_ - 3 : 0;
  size_t header_end = std::string::npos;  // offset just past the terminator
  const size_t crlf = buffer_.find("\r\n\r\n", start);
  if (crlf != std::string::npos) header_end = crlf + 4;
  const size_t lf = buffer_.find("\n\n", start);
  if (lf != std::string::npos && lf + 2 < header_end) header_end = lf + 2;
  if (header_end == std::string::npos) {
    if (buffer_.size() > max_bytes_) {
      return Fail(413, "request header exceeds limit");
    }
    scan_from_ = buffer_.size();
    return state_ = ParseState::kNeedMore;
  }

  // --- request line -------------------------------------------------------
  const std::string_view head(buffer_.data(), header_end);
  size_t line_end = head.find('\n');
  const std::string_view request_line = ChopCr(head.substr(0, line_end));
  const std::vector<std::string> parts =
      SplitWhitespace(request_line);
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/1.")) {
    return Fail(400, "malformed request line");
  }
  request_.method = parts[0];
  request_.target = parts[1];
  const size_t q = request_.target.find('?');
  request_.path = request_.target.substr(0, q);
  request_.params.clear();
  if (q != std::string::npos) {
    ParseQueryString(std::string_view(request_.target).substr(q + 1),
                     &request_.params);
  }
  request_.keep_alive = parts[2] != "HTTP/1.0";

  // --- header fields ------------------------------------------------------
  request_.headers.clear();
  size_t pos = line_end + 1;
  while (pos < header_end) {
    const size_t eol = head.find('\n', pos);
    const std::string_view line = ChopCr(head.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Fail(400, "malformed header field");
    }
    std::string key(line.substr(0, colon));
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    request_.headers[std::move(key)] = std::string(Trim(line.substr(colon + 1)));
  }
  if (request_.headers.count("transfer-encoding") != 0) {
    return Fail(501, "Transfer-Encoding is not supported");
  }
  if (auto it = request_.headers.find("connection");
      it != request_.headers.end()) {
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "close") request_.keep_alive = false;
    if (v == "keep-alive") request_.keep_alive = true;
  }

  // --- body ---------------------------------------------------------------
  size_t content_length = 0;
  if (auto it = request_.headers.find("content-length");
      it != request_.headers.end()) {
    int64_t n = 0;
    if (!ParseInt64(it->second, &n) || n < 0) {
      return Fail(400, "malformed Content-Length");
    }
    content_length = static_cast<size_t>(n);
  }
  if (header_end + content_length > max_bytes_) {
    return Fail(413, "request body exceeds limit");
  }
  header_end_ = header_end;
  content_length_ = content_length;
  return FinishBody();
}

ParseState HttpParser::FinishBody() {
  if (buffer_.size() < header_end_ + content_length_) {
    return state_ = ParseState::kNeedMore;
  }
  request_.body = buffer_.substr(header_end_, content_length_);
  consumed_ = header_end_ + content_length_;
  return state_ = ParseState::kDone;
}

}  // namespace net
}  // namespace transn
