#ifndef TRANSN_NET_HTTP_H_
#define TRANSN_NET_HTTP_H_

#include <stddef.h>

#include <map>
#include <string>
#include <string_view>

namespace transn {
namespace net {

/// One parsed HTTP/1.1 request. Header names are lowercased; query-string
/// parameters are percent-decoded ('+' decodes to a space).
struct HttpRequest {
  std::string method;  // "GET", "POST", ... (uppercase as sent)
  std::string target;  // raw request-target, e.g. "/v1/knn?node=A%2F1"
  std::string path;    // target up to the first '?'
  std::map<std::string, std::string> params;
  std::map<std::string, std::string> headers;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" clears it.
  bool keep_alive = true;

  /// Value of a query parameter, or "" when absent.
  std::string Param(const std::string& key) const {
    auto it = params.find(key);
    return it == params.end() ? std::string() : it->second;
  }
};

enum class ParseState {
  /// The buffered bytes do not yet hold a complete request.
  kNeedMore,
  /// A complete request is available via request() / TakeRequest().
  kDone,
  /// The stream is unrecoverably malformed; see error_code()/error().
  kError,
};

/// Incremental HTTP/1.1 request parser for one connection. Feed() appends
/// raw socket bytes and reparses; on kDone, TakeRequest() pops the request
/// and resumes parsing any pipelined bytes already buffered. Supports
/// Content-Length bodies; Transfer-Encoding is rejected with 501 and a
/// request exceeding `max_request_bytes` with 413. Both CRLF and bare-LF
/// line endings are accepted.
class HttpParser {
 public:
  explicit HttpParser(size_t max_request_bytes = 1 << 20)
      : max_bytes_(max_request_bytes) {}

  /// Appends bytes and advances the parse. Cheap when the request is still
  /// incomplete (a header-end scan resumes where the last one stopped).
  ParseState Feed(const char* data, size_t n);

  ParseState state() const { return state_; }
  /// Valid only in kDone.
  const HttpRequest& request() const { return request_; }

  /// Pops the completed request, consumes its bytes, and reparses whatever
  /// is left in the buffer (pipelined request or nothing). Only in kDone.
  HttpRequest TakeRequest();

  /// True when the buffer already holds (part of) a next request.
  bool HasBufferedBytes() const { return !buffer_.empty(); }

  /// HTTP status code describing the parse failure (400, 413, or 501).
  int error_code() const { return error_code_; }
  const std::string& error() const { return error_; }

 private:
  ParseState Parse();
  ParseState FinishBody();
  ParseState Fail(int code, std::string message);

  size_t max_bytes_;
  std::string buffer_;
  size_t scan_from_ = 0;   // resume point for the header-end scan
  size_t header_end_ = 0;  // >0 once the header block is parsed
  size_t content_length_ = 0;  // valid once header_end_ > 0
  ParseState state_ = ParseState::kNeedMore;
  HttpRequest request_;
  size_t consumed_ = 0;  // bytes of buffer_ covered by request_
  int error_code_ = 0;
  std::string error_;
};

/// Decodes %XX escapes and '+' (as space). Malformed escapes pass through
/// verbatim rather than failing — query values are user data, not protocol.
std::string PercentDecode(std::string_view s);

/// "OK" for 200, "Too Many Requests" for 429, ... ("Unknown" otherwise).
const char* HttpStatusReason(int code);

/// Serializes a full response with Content-Length and Connection headers.
/// `extra_headers` is zero or more complete "Name: value\r\n" lines.
std::string SerializeHttpResponse(int code, std::string_view content_type,
                                  std::string_view body, bool keep_alive,
                                  std::string_view extra_headers = "");

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_HTTP_H_
