#include "net/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace transn {
namespace net {

namespace {

std::string_view ChopCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

int RetryBackoffMs(const HttpRetryOptions& opts, int failures, Rng& rng) {
  double backoff = opts.base_backoff_ms;
  for (int i = 1; i < failures && backoff < opts.max_backoff_ms; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, static_cast<double>(opts.max_backoff_ms));
  return static_cast<int>(backoff * rng.NextDouble(0.5, 1.0));
}

HttpClient::HttpClient(std::string host, uint16_t port, int timeout_ms,
                       HttpRetryOptions retry)
    : host_(std::move(host)),
      port_(port),
      timeout_ms_(timeout_ms),
      retry_(retry),
      jitter_rng_(retry.jitter_seed) {}

HttpClient::~HttpClient() { Disconnect(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_ms_(other.timeout_ms_),
      retry_(other.retry_),
      jitter_rng_(other.jitter_rng_),
      fd_(other.fd_),
      rxbuf_(std::move(other.rxbuf_)),
      last_read_peer_closed_(other.last_read_peer_closed_) {
  other.fd_ = -1;
}

void HttpClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  rxbuf_.clear();
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IoError(StrFormat("socket: %s", strerror(errno)));
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Disconnect();
    return Status::IoError(StrFormat("connect %s:%u: %s", host_.c_str(),
                                     port_, strerror(err)));
  }
  rxbuf_.clear();
  return Status::Ok();
}

StatusOr<HttpResponse> HttpClient::Get(std::string_view path,
                                       std::string_view extra_headers) {
  return RoundTrip("GET", path, "", "", extra_headers);
}

StatusOr<HttpResponse> HttpClient::Post(std::string_view path,
                                        std::string_view body,
                                        std::string_view content_type) {
  return RoundTrip("POST", path, body, content_type, "");
}

Status HttpClient::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(StrFormat("send: %s", strerror(errno)));
  }
  return Status::Ok();
}

StatusOr<HttpResponse> HttpClient::RoundTrip(std::string_view method,
                                             std::string_view path,
                                             std::string_view body,
                                             std::string_view content_type,
                                             std::string_view extra_headers) {
  std::string req;
  req += method;
  req += ' ';
  req += path;
  req += " HTTP/1.1\r\nHost: ";
  req += host_;
  req += "\r\n";
  req += extra_headers;
  if (!content_type.empty()) {
    req += "Content-Type: ";
    req += content_type;
    req += "\r\n";
  }
  req += StrFormat("Content-Length: %zu\r\n\r\n", body.size());
  req += body;

  const int max_attempts = std::max(1, retry_.max_attempts);
  Status last = Status::Ok();
  for (int attempt = 1;; ++attempt) {
    bool retryable = false;
    const bool reused = fd_ >= 0;  // keep-alive connection from a prior call
    Status s = EnsureConnected();
    if (!s.ok()) {
      last = s;
      retryable = true;  // nothing was sent
    } else {
      s = WriteAll(req);
      if (!s.ok()) {
        // A failed send means the server cannot have seen a complete
        // request (RST before the body landed) — safe to retry.
        last = s;
        Disconnect();
        retryable = true;
      } else {
        StatusOr<HttpResponse> response = ReadResponse();
        if (response.ok()) return response;
        last = response.status();
        // Retry a read failure only in the stale-keep-alive case: a reused
        // connection closed cleanly before a single response byte arrived —
        // the server reaped it idle and never processed the request. Any
        // other read failure (timeout, torn response) may mean the request
        // executed, so it surfaces instead of silently re-running.
        retryable = reused && last_read_peer_closed_;
        Disconnect();
      }
    }
    if (!retryable || attempt >= max_attempts) {
      if (attempt > 1 || !retryable) {
        return Status::IoError(StrFormat(
            "%s %s to %s:%u failed after %d attempt(s): %s",
            std::string(method).c_str(), std::string(path).c_str(),
            host_.c_str(), port_, attempt, last.message().c_str()));
      }
      return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        RetryBackoffMs(retry_, attempt, jitter_rng_)));
  }
}

StatusOr<HttpResponse> HttpClient::ReadResponse() {
  // Accumulate until the header terminator, then until Content-Length bytes
  // of body are in. Responses without Content-Length are not supported (the
  // server always sends one).
  last_read_peer_closed_ = false;
  auto fill = [&]() -> Status {
    char buf[16384];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rxbuf_.append(buf, static_cast<size_t>(n));
      return Status::Ok();
    }
    if (n == 0) {
      last_read_peer_closed_ = rxbuf_.empty();
      return Status::IoError("connection closed by server");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("response read timed out");
    }
    return Status::IoError(StrFormat("recv: %s", strerror(errno)));
  };

  size_t header_end = std::string::npos;
  while (true) {
    const size_t crlf = rxbuf_.find("\r\n\r\n");
    if (crlf != std::string::npos) {
      header_end = crlf + 4;
      break;
    }
    if (rxbuf_.size() > (16u << 20)) {
      return Status::IoError("response header exceeds 16 MiB");
    }
    RETURN_IF_ERROR(fill());
  }

  HttpResponse out;
  const std::string_view head(rxbuf_.data(), header_end);
  size_t line_end = head.find('\n');
  const std::vector<std::string> parts =
      SplitWhitespace(ChopCr(head.substr(0, line_end)));
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/1.")) {
    return Status::IoError("malformed response status line");
  }
  int64_t code = 0;
  if (!ParseInt64(parts[1], &code)) {
    return Status::IoError("malformed response status code");
  }
  out.code = static_cast<int>(code);

  size_t pos = line_end + 1;
  while (pos < header_end) {
    const size_t eol = head.find('\n', pos);
    const std::string_view line = ChopCr(head.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    out.headers[Lower(line.substr(0, colon))] =
        std::string(Trim(line.substr(colon + 1)));
  }

  int64_t content_length = 0;
  if (auto it = out.headers.find("content-length"); it != out.headers.end()) {
    if (!ParseInt64(it->second, &content_length) || content_length < 0) {
      return Status::IoError("malformed response Content-Length");
    }
  }
  const size_t total = header_end + static_cast<size_t>(content_length);
  while (rxbuf_.size() < total) RETURN_IF_ERROR(fill());
  out.body = rxbuf_.substr(header_end, static_cast<size_t>(content_length));
  rxbuf_.erase(0, total);
  if (Lower(out.Header("connection")) == "close") Disconnect();
  return out;
}

}  // namespace net
}  // namespace transn
