#ifndef TRANSN_NET_HTTP_CLIENT_H_
#define TRANSN_NET_HTTP_CLIENT_H_

#include <stdint.h>

#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace transn {
namespace net {

/// One parsed HTTP/1.1 response (header names lowercased).
struct HttpResponse {
  int code = 0;
  std::map<std::string, std::string> headers;
  std::string body;

  std::string Header(const std::string& key) const {
    auto it = headers.find(key);
    return it == headers.end() ? std::string() : it->second;
  }
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection, for
/// tests and the load generator — not a general-purpose client. Reconnects
/// transparently when the server closed the connection. Not thread-safe;
/// use one instance per thread.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, int timeout_ms = 10'000);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;

  StatusOr<HttpResponse> Get(std::string_view path);
  StatusOr<HttpResponse> Post(std::string_view path, std::string_view body,
                              std::string_view content_type = "text/plain");

  /// Drops the connection; the next request reconnects.
  void Disconnect();

 private:
  Status EnsureConnected();
  StatusOr<HttpResponse> RoundTrip(std::string_view method,
                                   std::string_view path,
                                   std::string_view body,
                                   std::string_view content_type);
  Status WriteAll(std::string_view bytes);
  StatusOr<HttpResponse> ReadResponse();

  std::string host_;
  uint16_t port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string rxbuf_;  // bytes past the previous response (keep-alive)
};

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_HTTP_CLIENT_H_
