#ifndef TRANSN_NET_HTTP_CLIENT_H_
#define TRANSN_NET_HTTP_CLIENT_H_

#include <stdint.h>

#include <map>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/status.h"

namespace transn {
namespace net {

/// One parsed HTTP/1.1 response (header names lowercased).
struct HttpResponse {
  int code = 0;
  std::map<std::string, std::string> headers;
  std::string body;

  std::string Header(const std::string& key) const {
    auto it = headers.find(key);
    return it == headers.end() ? std::string() : it->second;
  }
};

/// Transport-retry policy for HttpClient. A request is retried only when it
/// provably never executed on the server: connect failure, write failure, or
/// a reused keep-alive connection closed cleanly before yielding a single
/// response byte (the server reaped it idle). Read timeouts and mid-response
/// failures are surfaced immediately — the request may have run.
struct HttpRetryOptions {
  /// Total attempts per request (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry; doubles per subsequent retry.
  int base_backoff_ms = 10;
  /// Backoff ceiling (pre-jitter).
  int max_backoff_ms = 1'000;
  /// Seeds the per-client jitter stream, so a given client instance replays
  /// the same backoff schedule deterministically.
  uint64_t jitter_seed = 1;
};

/// Backoff before retry number `failures` (1-based count of failed attempts
/// so far): min(max, base·2^(failures-1)) scaled by a jitter factor drawn
/// uniformly from [0.5, 1.0) — full-jitter-lite, enough to decorrelate a
/// thundering herd while staying deterministic per seed.
int RetryBackoffMs(const HttpRetryOptions& opts, int failures, Rng& rng);

/// Minimal blocking HTTP/1.1 client over one keep-alive connection, for
/// tests and the load generator — not a general-purpose client. Transport
/// failures are retried per HttpRetryOptions (bounded budget, deterministic
/// exponential backoff with seeded jitter); an exhausted budget surfaces as
/// one descriptive Status naming the request and the last error. Not
/// thread-safe; use one instance per thread.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, int timeout_ms = 10'000,
             HttpRetryOptions retry = {});
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;

  /// `extra_headers` is raw header lines, each terminated by "\r\n" (e.g.
  /// "X-Transn-Deadline-Ms: 50\r\n"), spliced verbatim into the request.
  StatusOr<HttpResponse> Get(std::string_view path,
                             std::string_view extra_headers = {});
  StatusOr<HttpResponse> Post(std::string_view path, std::string_view body,
                              std::string_view content_type = "text/plain");

  /// Drops the connection; the next request reconnects.
  void Disconnect();

  const HttpRetryOptions& retry_options() const { return retry_; }

 private:
  Status EnsureConnected();
  StatusOr<HttpResponse> RoundTrip(std::string_view method,
                                   std::string_view path,
                                   std::string_view body,
                                   std::string_view content_type,
                                   std::string_view extra_headers);
  Status WriteAll(std::string_view bytes);
  StatusOr<HttpResponse> ReadResponse();

  std::string host_;
  uint16_t port_;
  int timeout_ms_;
  HttpRetryOptions retry_;
  Rng jitter_rng_;
  int fd_ = -1;
  std::string rxbuf_;  // bytes past the previous response (keep-alive)
  /// Set by ReadResponse when the failure was a clean peer close (recv == 0)
  /// with zero response bytes buffered — the stale-keep-alive signature.
  bool last_read_peer_closed_ = false;
};

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_HTTP_CLIENT_H_
