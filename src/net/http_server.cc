#include "net/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "obs/json_escape.h"
#include "obs/metric_names.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace transn {
namespace net {

namespace {

/// "2xx".."5xx" bucket index for the labeled response counter.
size_t CodeClass(int code) {
  const int c = code / 100;
  return c >= 2 && c <= 5 ? static_cast<size_t>(c - 2) : 3;
}
constexpr const char* kCodeClassLabels[4] = {"2xx", "3xx", "4xx", "5xx"};

}  // namespace

struct HttpServer::Connection {
  enum class State {
    kReading,     // accumulating a request
    kProcessing,  // request dispatched, response pending (reads paused)
    kFlushing,    // writing the response
  };

  int fd = -1;
  uint64_t id = 0;
  HttpParser parser;
  State state = State::kReading;
  std::string outbox;
  size_t out_offset = 0;
  bool close_after_flush = false;
  bool closed = false;
  double last_activity = 0.0;  // reactor-clock seconds
  uint32_t epoll_events = EPOLLIN;

  explicit Connection(size_t max_request_bytes)
      : parser(max_request_bytes) {}
};

// ---------------------------------------------------------------------------
// ResponseHandle

void ResponseHandle::Send(int code, std::string_view content_type,
                          std::string_view body,
                          std::string_view extra_headers) {
  if (server_ == nullptr) return;
  HttpServer* server = server_;
  server_ = nullptr;  // at-most-once
  server->CountResponse(code);
  server->PostCompletion(
      reactor_,
      {conn_id_,
       SerializeHttpResponse(code, content_type, body, keep_alive_,
                             extra_headers),
       keep_alive_});
}

// ---------------------------------------------------------------------------
// Lifecycle

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  conns_opened_ = registry.GetCounter(obs::kNetConnectionsOpenedTotal,
                                      "connections", "TCP connections accepted");
  conns_closed_ = registry.GetCounter(obs::kNetConnectionsClosedTotal,
                                      "connections", "TCP connections closed");
  conns_active_ = registry.GetGauge(obs::kNetActiveConnections, "connections",
                                    "currently open TCP connections");
  requests_ = registry.GetCounter(obs::kNetRequestsTotal, "requests",
                                  "HTTP requests fully parsed and dispatched");
  parse_errors_ = registry.GetCounter(obs::kNetHttpParseErrorsTotal, "requests",
                                      "malformed HTTP requests (400/413/501)");
  timeouts_ = registry.GetCounter(
      obs::kNetTimeoutsTotal, "connections",
      "connections closed on a read/write/idle deadline");
  overflow_closes_ = registry.GetCounter(
      obs::kNetOverflowClosesTotal, "connections",
      "accepted connections closed because max_connections was reached");
  faults_injected_ = registry.GetCounter(
      obs::kNetFaultsInjectedTotal, "faults",
      "injected net.* failpoint firings observed by the reactors");
  for (size_t i = 0; i < 4; ++i) {
    responses_by_class_[i] = registry.GetCounter(
        obs::LabeledName(obs::kNetResponsesTotal, "code", kCodeClassLabels[i]),
        "responses", "HTTP responses sent, by status class");
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::CountResponse(int code) {
  responses_by_class_[CodeClass(code)]->Increment();
}

Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("HttpServer already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IoError(StrFormat("bind %s:%u: %s", options_.host.c_str(),
                                     options_.port, strerror(errno)));
  }
  if (listen(listen_fd_, 512) != 0) {
    return Status::IoError(StrFormat("listen: %s", strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  size_t n = options_.reactor_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  for (size_t i = 0; i < n; ++i) {
    auto r = std::make_unique<Reactor>();
    r->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    r->event_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->epoll_fd < 0 || r->event_fd < 0) {
      return Status::IoError("epoll_create1/eventfd failed");
    }
    epoll_event ev{};
    // The listening socket is shared by every reactor; EPOLLEXCLUSIVE makes
    // the kernel wake exactly one of them per pending accept.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = nullptr;
    if (epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Status::IoError(StrFormat("epoll_ctl listen: %s",
                                       strerror(errno)));
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.ptr = r.get();
    epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->event_fd, &wake);
    reactors_.push_back(std::move(r));
  }
  for (size_t i = 0; i < reactors_.size(); ++i) {
    reactors_[i]->thread = std::thread([this, i] { ReactorLoop(i); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!started_.load() || stop_.exchange(true)) return;
  for (auto& r : reactors_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(r->event_fd, &one, sizeof(one));
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
    if (r->epoll_fd >= 0) close(r->epoll_fd);
    if (r->event_fd >= 0) close(r->event_fd);
    r->epoll_fd = r->event_fd = -1;
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// Reactor

void HttpServer::PostCompletion(uint32_t reactor, Completion completion) {
  Reactor& r = *reactors_[reactor];
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.completions.push_back(std::move(completion));
  }
  if (!stop_.load(std::memory_order_acquire)) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(r.event_fd, &one, sizeof(one));
  }
}

HttpServer::Connection* HttpServer::FindConnection(Reactor& r,
                                                   uint64_t conn_id) {
  auto it = r.conns.find(conn_id);
  return it == r.conns.end() ? nullptr : it->second.get();
}

void HttpServer::UpdateEpoll(Reactor& r, Connection& c, uint32_t events) {
  if (c.epoll_events == events || c.closed) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = &c;
  epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  c.epoll_events = events;
}

void HttpServer::CloseConnection(Reactor& r, Connection& c) {
  if (c.closed) return;
  epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  close(c.fd);
  c.closed = true;
  r.dead.push_back(c.id);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  conns_closed_->Increment();
  conns_active_->Set(
      static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
}

void HttpServer::AcceptReady(Reactor& r) {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (fault::MaybeFail(fault::kNetAccept)) {
      // Injected accept failure: the peer vanished between accept and
      // registration. The client sees a reset before any bytes flow.
      close(fd);
      faults_injected_->Increment();
      continue;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Over the connection cap: shed load at accept time. The bounded
      // request queue (serve_app) is the polite 429 path; this is the
      // backstop against fd exhaustion.
      close(fd);
      overflow_closes_->Increment();
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_request_bytes);
    conn->fd = fd;
    conn->id = r.next_conn_id++;
    conn->last_activity = r.now_seconds;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    conns_opened_->Increment();
    conns_active_->Set(static_cast<double>(
        active_connections_.load(std::memory_order_relaxed)));
    r.conns.emplace(conn->id, std::move(conn));
  }
}

void HttpServer::AdvanceConnection(Reactor& r, Connection& c) {
  if (c.closed || c.state != Connection::State::kReading) return;
  switch (c.parser.state()) {
    case ParseState::kNeedMore:
      UpdateEpoll(r, c, EPOLLIN);
      return;
    case ParseState::kError: {
      parse_errors_->Increment();
      CountResponse(c.parser.error_code());
      c.outbox = SerializeHttpResponse(
          c.parser.error_code(), "application/json",
          "{\"error\":\"" + obs::JsonEscape(c.parser.error()) + "\"}",
          /*keep_alive=*/false);
      c.out_offset = 0;
      c.close_after_flush = true;  // the byte stream is unrecoverable
      c.state = Connection::State::kFlushing;
      FlushWrites(r, c);
      return;
    }
    case ParseState::kDone: {
      if (fault::MaybeFail(fault::kNetSlow)) {
        // Injected reactor stall (GC pause / noisy neighbor): every
        // connection on this reactor waits out the sleep. Nothing is
        // dropped — latency is the only casualty.
        faults_injected_->Increment();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      requests_->Increment();
      HttpRequest req = c.parser.TakeRequest();
      // One request in flight per connection: pause reading until the
      // response has been flushed (HTTP/1.1 ordering + TCP backpressure).
      c.state = Connection::State::kProcessing;
      UpdateEpoll(r, c, 0);
      ResponseHandle handle;
      handle.server_ = this;
      handle.reactor_ = static_cast<uint32_t>(r.index);
      handle.conn_id_ = c.id;
      handle.keep_alive_ = req.keep_alive;
      handler_(std::move(req), handle);
      return;
    }
  }
}

void HttpServer::HandleReadable(Reactor& r, Connection& c) {
  if (c.closed || c.state != Connection::State::kReading) return;
  if (fault::MaybeFail(fault::kNetRead)) {
    // Injected ECONNRESET mid-request: tear the connection down exactly as
    // a failed recv() would.
    faults_injected_->Increment();
    CloseConnection(r, c);
    return;
  }
  char buf[16384];
  while (true) {
    const ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.last_activity = r.now_seconds;
      c.parser.Feed(buf, static_cast<size_t>(n));
      if (c.parser.state() != ParseState::kNeedMore) break;
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(r, c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(r, c);
    return;
  }
  AdvanceConnection(r, c);
}

void HttpServer::FlushWrites(Reactor& r, Connection& c) {
  if (c.closed || c.state != Connection::State::kFlushing) return;
  if (fault::MaybeFail(fault::kNetWrite)) {
    // Injected EPIPE: the response is dropped and the connection torn down
    // exactly as a failed send() would leave it.
    faults_injected_->Increment();
    CloseConnection(r, c);
    return;
  }
  while (c.out_offset < c.outbox.size()) {
    const ssize_t n = send(c.fd, c.outbox.data() + c.out_offset,
                           c.outbox.size() - c.out_offset, MSG_NOSIGNAL);
    if (n >= 0) {
      c.out_offset += static_cast<size_t>(n);
      c.last_activity = r.now_seconds;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      UpdateEpoll(r, c, EPOLLOUT);
      return;
    }
    if (errno == EINTR) continue;
    CloseConnection(r, c);
    return;
  }
  c.outbox.clear();
  c.out_offset = 0;
  if (c.close_after_flush) {
    CloseConnection(r, c);
    return;
  }
  c.state = Connection::State::kReading;
  c.last_activity = r.now_seconds;
  // Pipelined bytes may already hold the next complete request.
  AdvanceConnection(r, c);
}

void HttpServer::DrainCompletions(Reactor& r) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    batch.swap(r.completions);
  }
  for (Completion& comp : batch) {
    Connection* c = FindConnection(r, comp.conn_id);
    if (c == nullptr || c->closed) continue;  // client went away; discard
    c->outbox = std::move(comp.bytes);
    c->out_offset = 0;
    c->close_after_flush = !comp.keep_alive;
    c->state = Connection::State::kFlushing;
    FlushWrites(r, *c);
  }
}

void HttpServer::SweepTimeouts(Reactor& r) {
  const double now = r.now_seconds;
  if (now - r.last_sweep_seconds < 0.1) return;
  r.last_sweep_seconds = now;
  for (auto& [id, conn] : r.conns) {
    Connection& c = *conn;
    if (c.closed) continue;
    const double idle_ms = (now - c.last_activity) * 1e3;
    bool expired = false;
    switch (c.state) {
      case Connection::State::kReading:
        expired = c.parser.HasBufferedBytes()
                      ? idle_ms > options_.read_timeout_ms
                      : idle_ms > options_.idle_timeout_ms;
        break;
      case Connection::State::kFlushing:
        expired = idle_ms > options_.write_timeout_ms;
        break;
      case Connection::State::kProcessing:
        // The application owns latency here (bounded queue + batcher).
        break;
    }
    if (expired) {
      timeouts_->Increment();
      CloseConnection(r, c);
    }
  }
}

void HttpServer::ReactorLoop(size_t index) {
  Reactor& r = *reactors_[index];
  r.index = index;
  WallTimer clock;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(r.epoll_fd, events, kMaxEvents, 100);
    r.now_seconds = clock.ElapsedSeconds();
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == nullptr) {
        AcceptReady(r);
      } else if (ptr == &r) {
        uint64_t drain = 0;
        while (read(r.event_fd, &drain, sizeof(drain)) > 0) {
        }
        DrainCompletions(r);
      } else {
        Connection& c = *static_cast<Connection*>(ptr);
        if (c.closed) continue;
        const uint32_t ev = events[i].events;
        if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
          CloseConnection(r, c);
          continue;
        }
        if ((ev & EPOLLIN) != 0) HandleReadable(r, c);
        if (!c.closed && (ev & EPOLLOUT) != 0) FlushWrites(r, c);
      }
    }
    SweepTimeouts(r);
    // Deferred destruction: Connection objects stay alive (flagged closed)
    // until the epoll_wait batch that may still reference them has been
    // fully processed.
    for (uint64_t id : r.dead) r.conns.erase(id);
    r.dead.clear();
  }
  for (auto& [id, conn] : r.conns) {
    if (!conn->closed) {
      close(conn->fd);
      conns_closed_->Increment();
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  r.conns.clear();
  conns_active_->Set(
      static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
}

}  // namespace net
}  // namespace transn
