#ifndef TRANSN_NET_HTTP_SERVER_H_
#define TRANSN_NET_HTTP_SERVER_H_

#include <stdint.h>

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace transn {
namespace net {

class HttpServer;

/// One-shot completion token for a parsed request. The server hands one to
/// the request handler; whoever ends up owning it calls Send() exactly once
/// — from any thread. Send() serializes the response and posts it to the
/// reactor owning the connection (the reactor writes it out and resumes
/// reading). If the client disconnected in the meantime, the response is
/// silently discarded. Default-constructed handles are inert.
class ResponseHandle {
 public:
  ResponseHandle() = default;

  /// Thread-safe; at most once per handle. `extra_headers` is zero or more
  /// full "Name: value\r\n" lines (e.g. "Retry-After: 1\r\n").
  void Send(int code, std::string_view content_type, std::string_view body,
            std::string_view extra_headers = "");

  bool valid() const { return server_ != nullptr; }

 private:
  friend class HttpServer;
  HttpServer* server_ = nullptr;
  uint32_t reactor_ = 0;
  uint64_t conn_id_ = 0;
  bool keep_alive_ = true;
};

struct HttpServerOptions {
  /// IPv4 listen address; "0.0.0.0" for all interfaces.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Reactor (epoll loop) threads; 0 = one per hardware thread
  /// (thread-per-core). Each accepted connection is owned by exactly one
  /// reactor for its whole life.
  size_t reactor_threads = 1;
  /// Accepted connections above this are closed immediately.
  size_t max_connections = 1024;
  /// Hard cap on one request (header + body); larger requests get 413.
  size_t max_request_bytes = 1 << 20;
  /// Connection closed when a partial request stalls this long.
  int read_timeout_ms = 10'000;
  /// Connection closed when a response cannot be flushed for this long.
  int write_timeout_ms = 10'000;
  /// Keep-alive connections idle (no request in progress) this long close.
  int idle_timeout_ms = 30'000;
};

/// Minimal epoll-based HTTP/1.1 server: a small pool of reactor threads,
/// each running its own epoll loop over the connections it accepted (the
/// listening socket is registered EPOLLEXCLUSIVE in every reactor, so the
/// kernel load-balances accepts). Responses may complete asynchronously on
/// other threads via ResponseHandle; requests on one connection are
/// processed strictly one at a time (reading pauses until the response is
/// flushed), which keeps HTTP/1.1 response ordering trivially correct and
/// gives natural TCP backpressure under pipelining.
///
/// The handler runs on a reactor thread: it must not block. Fast endpoints
/// respond inline via handle.Send(); slow ones enqueue the work elsewhere
/// (see net/serve_app.h) and return.
class HttpServer {
 public:
  using Handler = std::function<void(HttpRequest&&, ResponseHandle)>;

  HttpServer(HttpServerOptions options, Handler handler);
  /// Calls Stop().
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the reactor threads.
  Status Start();

  /// Closes the listener and every connection, joins the reactors.
  /// Idempotent. ResponseHandle::Send after Stop is a safe no-op, but the
  /// server object must outlive every outstanding handle.
  void Stop();

  /// Bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return bound_port_; }
  size_t reactor_threads() const { return reactors_.size(); }
  const HttpServerOptions& options() const { return options_; }

 private:
  struct Connection;
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
    bool keep_alive = true;
  };
  struct Reactor {
    size_t index = 0;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    /// Everything below `thread` is touched only by the reactor thread,
    /// except the guarded completion inbox at the bottom.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    /// Connections closed during the current epoll batch; destroyed only
    /// after the batch (later events may still point at them).
    std::vector<uint64_t> dead;
    uint64_t next_conn_id = 1;
    double now_seconds = 0.0;
    double last_sweep_seconds = 0.0;
    /// Cross-thread response inbox (guarded).
    std::mutex mu;
    std::vector<Completion> completions;
  };

  void ReactorLoop(size_t index);
  void AcceptReady(Reactor& r);
  void DrainCompletions(Reactor& r);
  void HandleReadable(Reactor& r, Connection& c);
  void FlushWrites(Reactor& r, Connection& c);
  /// Parses as many buffered bytes as allowed and dispatches at most one
  /// request (one-in-flight discipline).
  void AdvanceConnection(Reactor& r, Connection& c);
  void CloseConnection(Reactor& r, Connection& c);
  void SweepTimeouts(Reactor& r);
  void UpdateEpoll(Reactor& r, Connection& c, uint32_t events);
  Connection* FindConnection(Reactor& r, uint64_t conn_id);
  void PostCompletion(uint32_t reactor, Completion completion);
  void CountResponse(int code);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> active_connections_{0};
  std::vector<std::unique_ptr<Reactor>> reactors_;

  // Cached obs registry handles (see obs/metric_names.h).
  obs::Counter* conns_opened_;
  obs::Counter* conns_closed_;
  obs::Gauge* conns_active_;
  obs::Counter* requests_;
  obs::Counter* parse_errors_;
  obs::Counter* timeouts_;
  obs::Counter* overflow_closes_;
  obs::Counter* faults_injected_;
  obs::Counter* responses_by_class_[4];

  friend class ResponseHandle;
};

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_HTTP_SERVER_H_
