#include "net/serve_app.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json_escape.h"
#include "obs/metric_names.h"
#include "serve/translation_service.h"
#include "util/string_util.h"

namespace transn {
namespace net {

namespace {

constexpr const char* kJson = "application/json";

std::string ErrorBody(const std::string& message) {
  return "{\"error\":\"" + obs::JsonEscape(message) + "\"}";
}

std::string ChainJson(const std::vector<uint32_t>& chain) {
  std::string out = "[";
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += ',';
    out += StrFormat("%u", chain[i]);
  }
  out += ']';
  return out;
}

}  // namespace

int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kFailedPrecondition: return 503;
    default: return 500;
  }
}

int ComputeRetryAfterSeconds(size_t queue_depth, double drain_rate_per_sec) {
  if (queue_depth == 0 || drain_rate_per_sec <= 0.0) return 1;
  const double secs =
      std::ceil(static_cast<double>(queue_depth) / drain_rate_per_sec);
  if (secs <= 1.0) return 1;
  if (secs >= 30.0) return 30;
  return static_cast<int>(secs);
}

void DegradationController::Observe(size_t queue_depth, size_t max_queue,
                                    uint64_t shed_since_last,
                                    double recall_probe) {
  if (!options_.enabled) return;
  if (recall_probe < options_.recall_floor) {
    // The ANN graph cannot be trusted; serve ground truth until a reload
    // brings a probe above the floor.
    tier_.store(2, std::memory_order_relaxed);
    calm_ = 0;
    return;
  }
  int tier = tier_.load(std::memory_order_relaxed);
  if (tier == 2) {
    // Probe recovered; fall back to tier 1 and let hysteresis finish the
    // descent once the queue is calm too.
    tier = 1;
    tier_.store(1, std::memory_order_relaxed);
    calm_ = 0;
  }
  const bool pressured =
      max_queue > 0 && static_cast<double>(queue_depth) >=
                           options_.pressure_ratio *
                               static_cast<double>(max_queue);
  if (pressured || shed_since_last > 0) {
    calm_ = 0;
    if (tier == 0) tier_.store(1, std::memory_order_relaxed);
    return;
  }
  if (tier == 1 && ++calm_ >= options_.calm_steps) {
    tier_.store(0, std::memory_order_relaxed);
    calm_ = 0;
  }
}

ServeApp::ServeApp(ServeAppOptions options)
    : options_(std::move(options)),
      manager_(options_.query, options_.warmup_queries),
      degradation_(
          DegradationController::Options{options_.enable_degradation,
                                         /*pressure_ratio=*/0.5,
                                         /*recall_floor=*/0.5,
                                         /*calm_steps=*/16}) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  request_seconds_ = registry.GetHistogram(
      obs::kNetRequestSeconds, "seconds",
      "HTTP query latency: admission to response queued");
  rejected_ = registry.GetCounter(obs::kNetRejectedTotal, "requests",
                                  "requests rejected with 429 (queue full)");
  batches_ = registry.GetCounter(obs::kNetBatchesTotal, "batches",
                                 "coalesced QueryServer batches executed");
  queue_depth_ = registry.GetGauge(obs::kNetQueueDepth, "requests",
                                   "bounded request queue depth");
  serve_queue_depth_ =
      registry.GetGauge(obs::kServeQueueDepth, "requests",
                        "admission-queue depth sampled at enqueue");
  serve_queue_high_water_ = registry.GetGauge(
      obs::kServeQueueDepthHighWater, "requests",
      "highest admission-queue depth observed since start");
  deadline_expired_ = registry.GetCounter(
      obs::kServeDeadlineExpiredTotal, "requests",
      "requests shed with 503 deadline-exceeded before query work");
  degraded_mode_ = registry.GetGauge(
      obs::kServeDegradedMode, "tier",
      "active degradation tier (0=full, 1=reduced ef, 2=exact fallback)");
  staleness_ = registry.GetGauge(
      obs::kServeStalenessSeconds, "seconds",
      "seconds since the serving model generation was swapped in");
}

ServeApp::~ServeApp() { Stop(); }

Status ServeApp::Start() {
  RETURN_IF_ERROR(manager_.Reload(options_.model_path));
  stop_.store(false);
  executor_ = std::thread([this] { ExecutorLoop(); });
  reload_worker_ = std::thread([this] { ReloadLoop(); });
  return Status::Ok();
}

void ServeApp::Stop() {
  if (stop_.exchange(true)) {
    // Still join if Start was interleaved oddly; threads exit on stop_.
  }
  queue_cv_.notify_all();
  reload_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
  if (reload_worker_.joinable()) reload_worker_.join();
}

void ServeApp::HandleRequest(HttpRequest&& request, ResponseHandle handle) {
  const std::string& path = request.path;

  if (path == "/healthz" || path == "/metrics" || path == "/v1/knn" ||
      path == "/v1/translate") {
    if (request.method != "GET") {
      handle.Send(405, kJson, ErrorBody("method not allowed; use GET"));
      return;
    }
  }

  if (path == "/healthz") {
    AnswerHealthz(handle);
    return;
  }
  if (path == "/metrics") {
    AnswerMetrics(handle);
    return;
  }
  if (path == "/v1/knn" || path == "/v1/translate") {
    QueuedQuery q;
    q.node = request.Param("node");
    if (q.node.empty()) {
      handle.Send(400, kJson, ErrorBody("missing required ?node= parameter"));
      return;
    }
    if (path == "/v1/translate") {
      q.kind = QueryKind::kTranslate;
      q.view = request.Param("view");
      if (q.view.empty()) {
        handle.Send(400, kJson,
                    ErrorBody("missing required ?view= parameter"));
        return;
      }
    }
    // Per-request deadline: the header wins over the server default; "0"
    // means already expired (a client-side cancel of queued work).
    int64_t deadline_ms = options_.default_deadline_ms;
    bool from_header = false;
    if (auto it = request.headers.find(kDeadlineHeaderName);
        it != request.headers.end()) {
      if (!ParseInt64(Trim(it->second), &deadline_ms) || deadline_ms < 0) {
        handle.Send(400, kJson,
                    ErrorBody("invalid X-Transn-Deadline-Ms header: '" +
                              it->second + "' (want a non-negative integer)"));
        return;
      }
      from_header = true;
    }
    if (from_header || deadline_ms > 0) {
      q.has_deadline = true;
      q.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
    }
    q.handle = handle;
    EnqueueQuery(std::move(q), &handle);
    return;
  }
  if (path == "/admin/reload") {
    if (request.method != "POST") {
      handle.Send(405, kJson, ErrorBody("method not allowed; use POST"));
      return;
    }
    ReloadRequest req;
    req.path = request.Param("path");
    if (req.path.empty()) req.path = options_.model_path;
    req.handle = handle;
    {
      std::lock_guard<std::mutex> lock(reload_mu_);
      reload_queue_.push_back(std::move(req));
    }
    reload_cv_.notify_one();
    return;
  }
  handle.Send(404, kJson, ErrorBody("no such endpoint: " + path));
}

void ServeApp::EnqueueQuery(QueuedQuery&& q, ResponseHandle* rejected_handle) {
  // An already-expired deadline never touches the queue or the batch
  // executor: shed synchronously with the same 503 the executor would send.
  if (q.has_deadline && std::chrono::steady_clock::now() >= q.deadline) {
    deadline_expired_->Increment();
    shed_events_.fetch_add(1, std::memory_order_relaxed);
    rejected_handle->Send(
        503, kJson, ErrorBody("deadline-exceeded: request expired"));
    return;
  }
  size_t depth = 0;
  size_t high_water = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.max_queue || stop_.load()) {
      const size_t rejected_depth = queue_.size();
      rejected_->Increment();
      shed_events_.fetch_add(1, std::memory_order_relaxed);
      rejected_handle->Send(
          429, kJson, ErrorBody("request queue full, retry later"),
          StrFormat("Retry-After: %d\r\n",
                    ComputeRetryAfterSeconds(
                        rejected_depth,
                        drain_rate_.load(std::memory_order_relaxed))));
      return;
    }
    queue_.push_back(std::move(q));
    depth = queue_.size();
    if (depth > queue_high_water_) queue_high_water_ = depth;
    high_water = queue_high_water_;
  }
  queue_depth_->Set(static_cast<double>(depth));
  serve_queue_depth_->Set(static_cast<double>(depth));
  serve_queue_high_water_->Set(static_cast<double>(high_water));
  queue_cv_.notify_one();
}

void ServeApp::ExecutorLoop() {
  while (true) {
    std::vector<QueuedQuery> batch;
    size_t depth_after = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_.load()) return;  // drained; queued work never dropped
        continue;
      }
      const size_t n = std::min(queue_.size(), options_.max_batch);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth_after = queue_.size();
      queue_depth_->Set(static_cast<double>(depth_after));
    }
    serve_queue_depth_->Set(static_cast<double>(depth_after));
    WallTimer batch_timer;

    // Readers pin the generation current at batch start; a reload swapping
    // mid-batch affects only later batches.
    std::shared_ptr<const ServingModel> model = manager_.Current();
    if (model == nullptr) {
      for (QueuedQuery& q : batch) {
        q.handle.Send(503, kJson, ErrorBody("no model loaded"));
        request_seconds_->Record(q.timer.ElapsedSeconds());
      }
      continue;
    }

    // One degradation observation per batch: the queue state left behind,
    // the sheds since the last batch, and the pinned generation's probe.
    degradation_.Observe(depth_after, options_.max_queue,
                         shed_events_.exchange(0, std::memory_order_relaxed),
                         model->server->ann_recall_probe());
    const int tier = degradation_.tier();
    degraded_mode_->Set(static_cast<double>(tier));

    // Requests whose deadline passed while queued are shed before any query
    // work (their spent handles drop them from the loops below).
    const auto now = std::chrono::steady_clock::now();
    BatchControl control;
    for (QueuedQuery& q : batch) {
      if (!q.has_deadline) continue;
      if (now >= q.deadline) {
        deadline_expired_->Increment();
        shed_events_.fetch_add(1, std::memory_order_relaxed);
        q.handle.Send(503, kJson,
                      ErrorBody("deadline-exceeded: request expired in queue"));
        request_seconds_->Record(q.timer.ElapsedSeconds());
        continue;
      }
      // The batch runs under the earliest surviving deadline.
      if (!control.has_deadline || q.deadline < control.deadline) {
        control.has_deadline = true;
        control.deadline = q.deadline;
      }
    }
    if (tier >= 2) {
      control.force_exact = true;
    } else if (tier == 1) {
      const QueryServerOptions& qopts = model->server->options();
      control.ef_override = std::max(qopts.k, qopts.ef_search / 4);
    }

    // Coalesce the k-NN queries into one QueryServer batch.
    std::vector<size_t> knn_members;
    std::vector<std::string> knn_names;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind == QueryKind::kKnn && batch[i].handle.valid()) {
        knn_members.push_back(i);
        knn_names.push_back(batch[i].node);
      }
    }
    std::vector<QueryResponse> knn_responses;
    if (!knn_names.empty()) {
      knn_responses = model->server->HandleBatch(knn_names, control);
      batches_->Increment();
    }
    for (size_t j = 0; j < knn_members.size(); ++j) {
      QueuedQuery& q = batch[knn_members[j]];
      const QueryResponse& r = knn_responses[j];
      if (!r.status.ok()) {
        q.handle.Send(HttpCodeForStatus(r.status),
                      kJson, ErrorBody(r.status.message()));
      } else {
        std::string body = "{\"node\":\"" + obs::JsonEscape(q.node) + "\"";
        body += StrFormat(",\"generation\":%llu",
                          static_cast<unsigned long long>(model->generation));
        body += r.translated ? ",\"translated\":true" : ",\"translated\":false";
        body += ",\"chain\":" + ChainJson(r.chain);
        body += ",\"neighbors\":[";
        for (size_t n = 0; n < r.neighbors.size(); ++n) {
          if (n != 0) body += ',';
          body += "{\"node\":\"";
          body += obs::JsonEscape(model->store.node_name(r.neighbors[n].node));
          body += StrFormat("\",\"score\":%.6f}", r.neighbors[n].score);
        }
        body += "]}";
        q.handle.Send(200, kJson, body);
      }
      request_seconds_->Record(q.timer.ElapsedSeconds());
    }

    // Translation queries resolve individually (no index scan to amortize).
    TranslationService translation(&model->store);
    for (QueuedQuery& q : batch) {
      if (q.kind != QueryKind::kTranslate || !q.handle.valid()) continue;
      if (q.has_deadline && std::chrono::steady_clock::now() >= q.deadline) {
        deadline_expired_->Increment();
        shed_events_.fetch_add(1, std::memory_order_relaxed);
        q.handle.Send(503, kJson,
                      ErrorBody("deadline-exceeded: request expired"));
        request_seconds_->Record(q.timer.ElapsedSeconds());
        continue;
      }
      const NodeId node = model->store.FindNode(q.node);
      const int view = model->store.FindViewByName(q.view);
      if (node == kInvalidNode) {
        q.handle.Send(404, kJson, ErrorBody("unknown node: " + q.node));
      } else if (view < 0) {
        q.handle.Send(404, kJson, ErrorBody("unknown view: " + q.view));
      } else {
        StatusOr<ResolvedEmbedding> resolved =
            translation.Resolve(node, static_cast<uint32_t>(view));
        if (!resolved.ok()) {
          q.handle.Send(HttpCodeForStatus(resolved.status()), kJson,
                        ErrorBody(resolved.status().message()));
        } else {
          std::string body = "{\"node\":\"" + obs::JsonEscape(q.node) +
                             "\",\"view\":\"" + obs::JsonEscape(q.view) + "\"";
          body += resolved->translated ? ",\"translated\":true"
                                       : ",\"translated\":false";
          body += ",\"chain\":" + ChainJson(resolved->chain);
          body += ",\"embedding\":[";
          for (size_t d = 0; d < resolved->embedding.size(); ++d) {
            if (d != 0) body += ',';
            body += StrFormat("%.9g", resolved->embedding[d]);
          }
          body += "]}";
          q.handle.Send(200, kJson, body);
        }
      }
      request_seconds_->Record(q.timer.ElapsedSeconds());
    }

    // Fold this batch's throughput into the drain-rate EWMA feeding the
    // adaptive Retry-After (alpha 0.2: a few batches of history).
    const double elapsed = batch_timer.ElapsedSeconds();
    if (elapsed > 0.0) {
      const double rate = static_cast<double>(batch.size()) / elapsed;
      const double prev = drain_rate_.load(std::memory_order_relaxed);
      drain_rate_.store(prev <= 0.0 ? rate : 0.2 * rate + 0.8 * prev,
                        std::memory_order_relaxed);
    }
  }
}

void ServeApp::RunReload(const ReloadRequest& req) {
  const Status status = manager_.Reload(req.path);
  ResponseHandle handle = req.handle;  // inert for SIGHUP-triggered reloads
  if (!handle.valid()) return;
  if (!status.ok()) {
    handle.Send(HttpCodeForStatus(status), kJson,
                ErrorBody(status.message()));
    return;
  }
  std::shared_ptr<const ServingModel> model = manager_.Current();
  handle.Send(
      200, kJson,
      StrFormat("{\"status\":\"reloaded\",\"generation\":%llu,"
                "\"model_load_seconds\":%.6f,\"index_build_seconds\":%.6f}",
                static_cast<unsigned long long>(model->generation),
                model->load_seconds, model->index_build_seconds));
}

void ServeApp::ReloadLoop() {
  while (true) {
    ReloadRequest req;
    bool have_request = false;
    {
      std::unique_lock<std::mutex> lock(reload_mu_);
      // Timed wait so SIGHUP (flag set from the signal handler, which cannot
      // safely notify a condition variable) is noticed promptly.
      reload_cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return stop_.load() || !reload_queue_.empty();
      });
      if (!reload_queue_.empty()) {
        req = std::move(reload_queue_.front());
        reload_queue_.pop_front();
        have_request = true;
      } else if (stop_.load()) {
        return;
      }
    }
    if (have_request) {
      RunReload(req);
    } else if (sighup_pending_.exchange(false, std::memory_order_acq_rel)) {
      ReloadRequest sighup;
      sighup.path = options_.model_path;
      RunReload(sighup);
    }
  }
}

void ServeApp::AnswerHealthz(ResponseHandle& handle) {
  std::shared_ptr<const ServingModel> model = manager_.Current();
  if (model == nullptr) {
    handle.Send(503, kJson, "{\"status\":\"loading\"}");
    return;
  }
  // A server that still answers from an old generation is degraded, not
  // down: /healthz stays 200 (no flapping out of the load balancer) and the
  // status string plus staleness carry the alert signal instead.
  const uint64_t reload_failures = manager_.consecutive_reload_failures();
  const int tier = degradation_.tier();
  const double staleness = manager_.staleness_seconds();
  staleness_->Set(staleness);
  const bool degraded = reload_failures > 0 || tier > 0;
  const QueryServerOptions& qopts = model->server->options();
  handle.Send(
      200, kJson,
      StrFormat("{\"status\":\"%s\",\"generation\":%llu,"
                "\"model_path\":\"%s\",\"nodes\":%zu,\"views\":%zu,"
                "\"index\":\"%s\",\"ann_recall_probe\":%.4f,"
                "\"model_load_seconds\":%.6f,\"index_build_seconds\":%.6f,"
                "\"degraded_mode\":%d,\"staleness_seconds\":%.3f,"
                "\"reload_failures\":%llu}",
                degraded ? "degraded" : "ok",
                static_cast<unsigned long long>(model->generation),
                obs::JsonEscape(model->path).c_str(), model->store.num_nodes(),
                model->store.views().size(),
                ServeIndexKindName(qopts.index_kind),
                model->server->ann_recall_probe(), model->load_seconds,
                model->index_build_seconds, tier, staleness,
                static_cast<unsigned long long>(reload_failures)));
}

void ServeApp::AnswerMetrics(ResponseHandle& handle) {
  staleness_->Set(manager_.staleness_seconds());
  std::ostringstream os;
  obs::MetricsRegistry::Default().WritePrometheus(os);
  handle.Send(200, "text/plain; version=0.0.4", os.str());
}

}  // namespace net
}  // namespace transn
