#include "net/serve_app.h"

#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json_escape.h"
#include "obs/metric_names.h"
#include "serve/translation_service.h"
#include "util/string_util.h"

namespace transn {
namespace net {

namespace {

constexpr const char* kJson = "application/json";

std::string ErrorBody(const std::string& message) {
  return "{\"error\":\"" + obs::JsonEscape(message) + "\"}";
}

std::string ChainJson(const std::vector<uint32_t>& chain) {
  std::string out = "[";
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += ',';
    out += StrFormat("%u", chain[i]);
  }
  out += ']';
  return out;
}

}  // namespace

int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kFailedPrecondition: return 503;
    default: return 500;
  }
}

ServeApp::ServeApp(ServeAppOptions options)
    : options_(std::move(options)),
      manager_(options_.query, options_.warmup_queries) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  request_seconds_ = registry.GetHistogram(
      obs::kNetRequestSeconds, "seconds",
      "HTTP query latency: admission to response queued");
  rejected_ = registry.GetCounter(obs::kNetRejectedTotal, "requests",
                                  "requests rejected with 429 (queue full)");
  batches_ = registry.GetCounter(obs::kNetBatchesTotal, "batches",
                                 "coalesced QueryServer batches executed");
  queue_depth_ = registry.GetGauge(obs::kNetQueueDepth, "requests",
                                   "bounded request queue depth");
}

ServeApp::~ServeApp() { Stop(); }

Status ServeApp::Start() {
  RETURN_IF_ERROR(manager_.Reload(options_.model_path));
  stop_.store(false);
  executor_ = std::thread([this] { ExecutorLoop(); });
  reload_worker_ = std::thread([this] { ReloadLoop(); });
  return Status::Ok();
}

void ServeApp::Stop() {
  if (stop_.exchange(true)) {
    // Still join if Start was interleaved oddly; threads exit on stop_.
  }
  queue_cv_.notify_all();
  reload_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
  if (reload_worker_.joinable()) reload_worker_.join();
}

void ServeApp::HandleRequest(HttpRequest&& request, ResponseHandle handle) {
  const std::string& path = request.path;

  if (path == "/healthz" || path == "/metrics" || path == "/v1/knn" ||
      path == "/v1/translate") {
    if (request.method != "GET") {
      handle.Send(405, kJson, ErrorBody("method not allowed; use GET"));
      return;
    }
  }

  if (path == "/healthz") {
    AnswerHealthz(handle);
    return;
  }
  if (path == "/metrics") {
    AnswerMetrics(handle);
    return;
  }
  if (path == "/v1/knn" || path == "/v1/translate") {
    QueuedQuery q;
    q.node = request.Param("node");
    if (q.node.empty()) {
      handle.Send(400, kJson, ErrorBody("missing required ?node= parameter"));
      return;
    }
    if (path == "/v1/translate") {
      q.kind = QueryKind::kTranslate;
      q.view = request.Param("view");
      if (q.view.empty()) {
        handle.Send(400, kJson,
                    ErrorBody("missing required ?view= parameter"));
        return;
      }
    }
    q.handle = handle;
    EnqueueQuery(std::move(q), &handle);
    return;
  }
  if (path == "/admin/reload") {
    if (request.method != "POST") {
      handle.Send(405, kJson, ErrorBody("method not allowed; use POST"));
      return;
    }
    ReloadRequest req;
    req.path = request.Param("path");
    if (req.path.empty()) req.path = options_.model_path;
    req.handle = handle;
    {
      std::lock_guard<std::mutex> lock(reload_mu_);
      reload_queue_.push_back(std::move(req));
    }
    reload_cv_.notify_one();
    return;
  }
  handle.Send(404, kJson, ErrorBody("no such endpoint: " + path));
}

void ServeApp::EnqueueQuery(QueuedQuery&& q, ResponseHandle* rejected_handle) {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.max_queue || stop_.load()) {
      rejected_->Increment();
      rejected_handle->Send(429, kJson,
                            ErrorBody("request queue full, retry later"),
                            "Retry-After: 1\r\n");
      return;
    }
    queue_.push_back(std::move(q));
    depth = queue_.size();
  }
  queue_depth_->Set(static_cast<double>(depth));
  queue_cv_.notify_one();
}

void ServeApp::ExecutorLoop() {
  while (true) {
    std::vector<QueuedQuery> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_.load()) return;  // drained; queued work never dropped
        continue;
      }
      const size_t n = std::min(queue_.size(), options_.max_batch);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }

    // Readers pin the generation current at batch start; a reload swapping
    // mid-batch affects only later batches.
    std::shared_ptr<const ServingModel> model = manager_.Current();
    if (model == nullptr) {
      for (QueuedQuery& q : batch) {
        q.handle.Send(503, kJson, ErrorBody("no model loaded"));
        request_seconds_->Record(q.timer.ElapsedSeconds());
      }
      continue;
    }

    // Coalesce the k-NN queries into one QueryServer batch.
    std::vector<size_t> knn_members;
    std::vector<std::string> knn_names;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind == QueryKind::kKnn) {
        knn_members.push_back(i);
        knn_names.push_back(batch[i].node);
      }
    }
    std::vector<QueryResponse> knn_responses;
    if (!knn_names.empty()) {
      knn_responses = model->server->HandleBatch(knn_names);
      batches_->Increment();
    }
    for (size_t j = 0; j < knn_members.size(); ++j) {
      QueuedQuery& q = batch[knn_members[j]];
      const QueryResponse& r = knn_responses[j];
      if (!r.status.ok()) {
        q.handle.Send(HttpCodeForStatus(r.status),
                      kJson, ErrorBody(r.status.message()));
      } else {
        std::string body = "{\"node\":\"" + obs::JsonEscape(q.node) + "\"";
        body += StrFormat(",\"generation\":%llu",
                          static_cast<unsigned long long>(model->generation));
        body += r.translated ? ",\"translated\":true" : ",\"translated\":false";
        body += ",\"chain\":" + ChainJson(r.chain);
        body += ",\"neighbors\":[";
        for (size_t n = 0; n < r.neighbors.size(); ++n) {
          if (n != 0) body += ',';
          body += "{\"node\":\"";
          body += obs::JsonEscape(model->store.node_name(r.neighbors[n].node));
          body += StrFormat("\",\"score\":%.6f}", r.neighbors[n].score);
        }
        body += "]}";
        q.handle.Send(200, kJson, body);
      }
      request_seconds_->Record(q.timer.ElapsedSeconds());
    }

    // Translation queries resolve individually (no index scan to amortize).
    TranslationService translation(&model->store);
    for (QueuedQuery& q : batch) {
      if (q.kind != QueryKind::kTranslate) continue;
      const NodeId node = model->store.FindNode(q.node);
      const int view = model->store.FindViewByName(q.view);
      if (node == kInvalidNode) {
        q.handle.Send(404, kJson, ErrorBody("unknown node: " + q.node));
      } else if (view < 0) {
        q.handle.Send(404, kJson, ErrorBody("unknown view: " + q.view));
      } else {
        StatusOr<ResolvedEmbedding> resolved =
            translation.Resolve(node, static_cast<uint32_t>(view));
        if (!resolved.ok()) {
          q.handle.Send(HttpCodeForStatus(resolved.status()), kJson,
                        ErrorBody(resolved.status().message()));
        } else {
          std::string body = "{\"node\":\"" + obs::JsonEscape(q.node) +
                             "\",\"view\":\"" + obs::JsonEscape(q.view) + "\"";
          body += resolved->translated ? ",\"translated\":true"
                                       : ",\"translated\":false";
          body += ",\"chain\":" + ChainJson(resolved->chain);
          body += ",\"embedding\":[";
          for (size_t d = 0; d < resolved->embedding.size(); ++d) {
            if (d != 0) body += ',';
            body += StrFormat("%.9g", resolved->embedding[d]);
          }
          body += "]}";
          q.handle.Send(200, kJson, body);
        }
      }
      request_seconds_->Record(q.timer.ElapsedSeconds());
    }
  }
}

void ServeApp::RunReload(const ReloadRequest& req) {
  const Status status = manager_.Reload(req.path);
  ResponseHandle handle = req.handle;  // inert for SIGHUP-triggered reloads
  if (!handle.valid()) return;
  if (!status.ok()) {
    handle.Send(HttpCodeForStatus(status), kJson,
                ErrorBody(status.message()));
    return;
  }
  std::shared_ptr<const ServingModel> model = manager_.Current();
  handle.Send(
      200, kJson,
      StrFormat("{\"status\":\"reloaded\",\"generation\":%llu,"
                "\"model_load_seconds\":%.6f,\"index_build_seconds\":%.6f}",
                static_cast<unsigned long long>(model->generation),
                model->load_seconds, model->index_build_seconds));
}

void ServeApp::ReloadLoop() {
  while (true) {
    ReloadRequest req;
    bool have_request = false;
    {
      std::unique_lock<std::mutex> lock(reload_mu_);
      // Timed wait so SIGHUP (flag set from the signal handler, which cannot
      // safely notify a condition variable) is noticed promptly.
      reload_cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return stop_.load() || !reload_queue_.empty();
      });
      if (!reload_queue_.empty()) {
        req = std::move(reload_queue_.front());
        reload_queue_.pop_front();
        have_request = true;
      } else if (stop_.load()) {
        return;
      }
    }
    if (have_request) {
      RunReload(req);
    } else if (sighup_pending_.exchange(false, std::memory_order_acq_rel)) {
      ReloadRequest sighup;
      sighup.path = options_.model_path;
      RunReload(sighup);
    }
  }
}

void ServeApp::AnswerHealthz(ResponseHandle& handle) {
  std::shared_ptr<const ServingModel> model = manager_.Current();
  if (model == nullptr) {
    handle.Send(503, kJson, "{\"status\":\"loading\"}");
    return;
  }
  const QueryServerOptions& qopts = model->server->options();
  handle.Send(
      200, kJson,
      StrFormat("{\"status\":\"ok\",\"generation\":%llu,"
                "\"model_path\":\"%s\",\"nodes\":%zu,\"views\":%zu,"
                "\"index\":\"%s\",\"ann_recall_probe\":%.4f,"
                "\"model_load_seconds\":%.6f,\"index_build_seconds\":%.6f}",
                static_cast<unsigned long long>(model->generation),
                obs::JsonEscape(model->path).c_str(), model->store.num_nodes(),
                model->store.views().size(),
                ServeIndexKindName(qopts.index_kind),
                model->server->ann_recall_probe(), model->load_seconds,
                model->index_build_seconds));
}

void ServeApp::AnswerMetrics(ResponseHandle& handle) {
  std::ostringstream os;
  obs::MetricsRegistry::Default().WritePrometheus(os);
  handle.Send(200, "text/plain; version=0.0.4", os.str());
}

}  // namespace net
}  // namespace transn
