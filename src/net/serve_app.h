#ifndef TRANSN_NET_SERVE_APP_H_
#define TRANSN_NET_SERVE_APP_H_

#include <stddef.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/http.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "serve/model_manager.h"
#include "serve/query_server.h"
#include "util/status.h"
#include "util/timer.h"

namespace transn {
namespace net {

struct ServeAppOptions {
  /// Serving-model file loaded at Start() and on every reload; a reload may
  /// name a different file with ?path= as a one-shot override.
  std::string model_path;
  /// Admission control: queued query requests above this are rejected with
  /// 429 + Retry-After instead of growing latency without bound.
  size_t max_queue = 1024;
  /// Largest number of queued requests coalesced into one QueryServer batch.
  size_t max_batch = 64;
  /// Unrecorded warmup queries run against each new generation pre-swap.
  size_t warmup_queries = 0;
  QueryServerOptions query;
};

/// The HTTP application over ModelManager/QueryServer: routing, request
/// coalescing, admission control, and hot reload.
///
/// Endpoints:
///   GET  /v1/knn?node=NAME        k-NN neighbors (cold-start translation
///                                 is applied automatically when needed)
///   GET  /v1/translate?node=NAME&view=VIEW
///                                 resolved embedding in VIEW's space
///   GET  /healthz                 JSON liveness + current model generation
///   GET  /metrics                 Prometheus text exposition
///   POST /admin/reload[?path=P]   atomic hot reload (responds when done)
///
/// /healthz and /metrics answer inline on the reactor thread. Query traffic
/// is pushed through a bounded queue drained by ONE batching-executor
/// thread, which coalesces whatever is queued (up to max_batch) into a
/// single QueryServer::HandleBatch call — this both amortizes dispatch and
/// serializes all recorded traffic, satisfying QueryServer's
/// single-recorder thread-safety contract. Reloads run on a dedicated
/// worker so queries keep flowing mid-swap.
class ServeApp {
 public:
  explicit ServeApp(ServeAppOptions options);
  ~ServeApp();
  ServeApp(const ServeApp&) = delete;
  ServeApp& operator=(const ServeApp&) = delete;

  /// Loads the initial model and starts the executor + reload threads.
  Status Start();

  /// Drains the queue (queued requests still get responses; Sends are
  /// no-ops if the HTTP server already stopped) and joins the threads.
  void Stop();

  /// HttpServer handler; non-blocking (reactor-thread safe).
  void HandleRequest(HttpRequest&& request, ResponseHandle handle);

  /// Async-signal-safe reload trigger (SIGHUP handler calls this).
  void TriggerReloadFromSignal() {
    sighup_pending_.store(true, std::memory_order_release);
  }

  ModelManager& manager() { return manager_; }
  const ServeAppOptions& options() const { return options_; }

 private:
  enum class QueryKind { kKnn, kTranslate };
  struct QueuedQuery {
    QueryKind kind = QueryKind::kKnn;
    std::string node;
    std::string view;  // kTranslate only
    ResponseHandle handle;
    WallTimer timer;  // started at admission; net.request_seconds
  };
  struct ReloadRequest {
    std::string path;
    ResponseHandle handle;  // inert for SIGHUP-triggered reloads
  };

  void EnqueueQuery(QueuedQuery&& q, ResponseHandle* rejected_handle);
  void ExecutorLoop();
  void ReloadLoop();
  void RunReload(const ReloadRequest& req);
  void AnswerHealthz(ResponseHandle& handle);
  void AnswerMetrics(ResponseHandle& handle);

  ServeAppOptions options_;
  ModelManager manager_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> sighup_pending_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedQuery> queue_;
  std::thread executor_;

  std::mutex reload_mu_;
  std::condition_variable reload_cv_;
  std::deque<ReloadRequest> reload_queue_;
  std::thread reload_worker_;

  obs::Histogram* request_seconds_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Gauge* queue_depth_;
};

/// kNotFound -> 404, kInvalidArgument -> 400, kFailedPrecondition -> 503,
/// everything else -> 500.
int HttpCodeForStatus(const Status& status);

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_SERVE_APP_H_
