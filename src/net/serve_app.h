#ifndef TRANSN_NET_SERVE_APP_H_
#define TRANSN_NET_SERVE_APP_H_

#include <stddef.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/http.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "serve/model_manager.h"
#include "serve/query_server.h"
#include "util/status.h"
#include "util/timer.h"

namespace transn {
namespace net {

struct ServeAppOptions {
  /// Serving-model file loaded at Start() and on every reload; a reload may
  /// name a different file with ?path= as a one-shot override.
  std::string model_path;
  /// Admission control: queued query requests above this are rejected with
  /// 429 + Retry-After instead of growing latency without bound.
  size_t max_queue = 1024;
  /// Largest number of queued requests coalesced into one QueryServer batch.
  size_t max_batch = 64;
  /// Unrecorded warmup queries run against each new generation pre-swap.
  size_t warmup_queries = 0;
  /// Deadline applied to query requests that carry no X-Transn-Deadline-Ms
  /// header, in milliseconds from admission; 0 = no default deadline. An
  /// expired request is shed with 503 "deadline-exceeded" instead of
  /// occupying the batch executor.
  int default_deadline_ms = 0;
  /// Master switch for the graded-degradation controller. False pins tier 0:
  /// query responses are byte-identical to a build without the controller.
  bool enable_degradation = true;
  QueryServerOptions query;
};

/// Per-request deadline header (milliseconds from admission; request header
/// names are lowercased by the parser). "0" means already expired — the
/// request is shed at admission, which is how a client cancels queued work.
inline constexpr char kDeadlineHeaderName[] = "x-transn-deadline-ms";

/// Adaptive Retry-After for 429 responses: the seconds the current queue
/// needs to drain at the observed rate, ceil'd and clamped to [1, 30].
/// An empty queue or an unknown rate (cold start) yields 1.
int ComputeRetryAfterSeconds(size_t queue_depth, double drain_rate_per_sec);

/// Graded-degradation driver for the serve path. One writer (the batching
/// executor) feeds it queue-pressure observations; any thread may read the
/// active tier. Tiers:
///   0  full quality — configured index, configured ef beam
///   1  reduced beam — HNSW ef shrunk to a quarter (floor k); entered when
///      the admission queue runs hot or requests were shed since the last
///      batch, left after `calm_steps` consecutive calm observations
///   2  exact-scan fallback — the ANN index is untrustworthy (recall probe
///      under the floor, e.g. a reload built a graph that does not fit the
///      served matrix); left as soon as the probe recovers
/// Tier changes require observations, which happen per executed batch — an
/// idle degraded server stays degraded until traffic (or a reload) arrives.
class DegradationController {
 public:
  struct Options {
    bool enabled = true;
    /// Queue-depth fraction of max_queue at which tier 1 engages.
    double pressure_ratio = 0.5;
    /// ann.recall_probe floor under which tier 2 engages.
    double recall_floor = 0.5;
    /// Consecutive calm observations required to step tier 1 back down.
    int calm_steps = 16;
  };

  explicit DegradationController(Options options) : options_(options) {}

  /// One observation from the single executor thread. `shed_since_last` is
  /// the number of 429/deadline sheds since the previous call.
  void Observe(size_t queue_depth, size_t max_queue, uint64_t shed_since_last,
               double recall_probe);

  /// Active tier; readable from any thread.
  int tier() const { return tier_.load(std::memory_order_relaxed); }

 private:
  Options options_;
  std::atomic<int> tier_{0};
  int calm_ = 0;  // touched only by the Observe caller
};

/// The HTTP application over ModelManager/QueryServer: routing, request
/// coalescing, admission control, and hot reload.
///
/// Endpoints:
///   GET  /v1/knn?node=NAME        k-NN neighbors (cold-start translation
///                                 is applied automatically when needed)
///   GET  /v1/translate?node=NAME&view=VIEW
///                                 resolved embedding in VIEW's space
///   GET  /healthz                 JSON liveness + current model generation
///   GET  /metrics                 Prometheus text exposition
///   POST /admin/reload[?path=P]   atomic hot reload (responds when done)
///
/// /healthz and /metrics answer inline on the reactor thread. Query traffic
/// is pushed through a bounded queue drained by ONE batching-executor
/// thread, which coalesces whatever is queued (up to max_batch) into a
/// single QueryServer::HandleBatch call — this both amortizes dispatch and
/// serializes all recorded traffic, satisfying QueryServer's
/// single-recorder thread-safety contract. Reloads run on a dedicated
/// worker so queries keep flowing mid-swap.
class ServeApp {
 public:
  explicit ServeApp(ServeAppOptions options);
  ~ServeApp();
  ServeApp(const ServeApp&) = delete;
  ServeApp& operator=(const ServeApp&) = delete;

  /// Loads the initial model and starts the executor + reload threads.
  Status Start();

  /// Drains the queue (queued requests still get responses; Sends are
  /// no-ops if the HTTP server already stopped) and joins the threads.
  void Stop();

  /// HttpServer handler; non-blocking (reactor-thread safe).
  void HandleRequest(HttpRequest&& request, ResponseHandle handle);

  /// Async-signal-safe reload trigger (SIGHUP handler calls this).
  void TriggerReloadFromSignal() {
    sighup_pending_.store(true, std::memory_order_release);
  }

  ModelManager& manager() { return manager_; }
  const ServeAppOptions& options() const { return options_; }

 private:
  enum class QueryKind { kKnn, kTranslate };
  struct QueuedQuery {
    QueryKind kind = QueryKind::kKnn;
    std::string node;
    std::string view;  // kTranslate only
    ResponseHandle handle;
    WallTimer timer;  // started at admission; net.request_seconds
    /// Deadline from the X-Transn-Deadline-Ms header or default_deadline_ms;
    /// checked at admission, at batch dequeue, and inside HandleBatch.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  struct ReloadRequest {
    std::string path;
    ResponseHandle handle;  // inert for SIGHUP-triggered reloads
  };

  void EnqueueQuery(QueuedQuery&& q, ResponseHandle* rejected_handle);
  void ExecutorLoop();
  void ReloadLoop();
  void RunReload(const ReloadRequest& req);
  void AnswerHealthz(ResponseHandle& handle);
  void AnswerMetrics(ResponseHandle& handle);

  ServeAppOptions options_;
  ModelManager manager_;
  DegradationController degradation_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> sighup_pending_{false};

  /// 429/deadline sheds since the executor last observed them (drives the
  /// degradation controller's pressure signal).
  std::atomic<uint64_t> shed_events_{0};
  /// EWMA of queries drained per second by the batching executor; feeds the
  /// adaptive Retry-After. 0 until the first batch completes.
  std::atomic<double> drain_rate_{0.0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedQuery> queue_;
  size_t queue_high_water_ = 0;  // guarded by queue_mu_
  std::thread executor_;

  std::mutex reload_mu_;
  std::condition_variable reload_cv_;
  std::deque<ReloadRequest> reload_queue_;
  std::thread reload_worker_;

  obs::Histogram* request_seconds_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Gauge* queue_depth_;
  obs::Gauge* serve_queue_depth_;
  obs::Gauge* serve_queue_high_water_;
  obs::Counter* deadline_expired_;
  obs::Gauge* degraded_mode_;
  obs::Gauge* staleness_;
};

/// kNotFound -> 404, kInvalidArgument -> 400, kFailedPrecondition -> 503,
/// everything else -> 500.
int HttpCodeForStatus(const Status& status);

}  // namespace net
}  // namespace transn

#endif  // TRANSN_NET_SERVE_APP_H_
