#include "nn/adam.h"

#include <cmath>

#include "util/logging.h"

namespace transn {

void AdamOptimizer::Register(Parameter* param) {
  CHECK(param != nullptr);
  param->adam_m.Resize(param->value.rows(), param->value.cols(), 0.0);
  param->adam_v.Resize(param->value.rows(), param->value.cols(), 0.0);
  params_.push_back(param);
}

void AdamOptimizer::Step() {
  ++t_;
  for (Parameter* p : params_) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      AdamUpdateRow(config_, t_, p->grad.Row(r), p->value.Row(r),
                    p->adam_m.Row(r), p->adam_v.Row(r), p->value.cols());
    }
    p->grad.Fill(0.0);
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Fill(0.0);
}

void AdamUpdateRow(const AdamConfig& config, int64_t t, const double* grad,
                   double* row, double* m, double* v, size_t d) {
  DCHECK(t >= 1);
  const double b1 = config.beta1;
  const double b2 = config.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t));
  for (size_t i = 0; i < d; ++i) {
    m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
    v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
    const double m_hat = m[i] / bias1;
    const double v_hat = v[i] / bias2;
    row[i] -= config.learning_rate * m_hat / (std::sqrt(v_hat) + config.epsilon);
  }
}

}  // namespace transn
