#ifndef TRANSN_NN_ADAM_H_
#define TRANSN_NN_ADAM_H_

#include <vector>

#include "nn/autograd.h"

namespace transn {

/// Hyper-parameters for Adam (Kingma & Ba, 2014). The paper trains TransN
/// with Adam at initial learning rate 0.025 (§IV-A3).
struct AdamConfig {
  double learning_rate = 0.025;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Dense Adam over a set of registered Parameters. Each Step() applies the
/// accumulated gradients and zeroes them.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamConfig config = {}) : config_(config) {}

  /// Registers a parameter. The parameter must outlive the optimizer.
  void Register(Parameter* param);

  /// Applies one Adam update to every registered parameter from its
  /// accumulated .grad, then zeroes the gradients.
  void Step();

  /// Zeroes gradients without updating (e.g. after a diverged batch).
  void ZeroGrad();

  int64_t step_count() const { return t_; }
  /// Restores the bias-correction step count from a checkpoint; must be
  /// paired with restoring every registered parameter's adam_m/adam_v.
  void set_step_count(int64_t t) { t_ = t; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  AdamConfig config_;
  std::vector<Parameter*> params_;
  int64_t t_ = 0;
};

/// One Adam update of `row` (length d) given gradient `grad`, per-row moment
/// buffers m/v, and the global step count t (>= 1). Shared by the sparse
/// per-row Adam in EmbeddingTable and tested against AdamOptimizer.
void AdamUpdateRow(const AdamConfig& config, int64_t t, const double* grad,
                   double* row, double* m, double* v, size_t d);

}  // namespace transn

#endif  // TRANSN_NN_ADAM_H_
