#include "nn/autograd.h"

namespace transn {

const Matrix& Var::value() const {
  CHECK(tape_ != nullptr) << "Var::value on default-constructed Var";
  return tape_->ValueOf(*this);
}

const Matrix& Var::grad() const {
  CHECK(tape_ != nullptr) << "Var::grad on default-constructed Var";
  return tape_->GradOf(*this);
}

Tape::Node& Tape::node(const Var& v) {
  CHECK_EQ(v.tape_, this);
  CHECK_LT(v.id_, nodes_.size());
  return *nodes_[v.id_];
}

const Tape::Node& Tape::node(const Var& v) const {
  CHECK_EQ(v.tape_, this);
  CHECK_LT(v.id_, nodes_.size());
  return *nodes_[v.id_];
}

Var Tape::Input(Matrix value, bool requires_grad) {
  auto n = std::make_unique<Node>();
  n->requires_grad = requires_grad;
  if (requires_grad) n->grad.Resize(value.rows(), value.cols(), 0.0);
  n->value = std::move(value);
  nodes_.push_back(std::move(n));
  return Var(this, nodes_.size() - 1);
}

Var Tape::Leaf(Parameter* param) {
  CHECK(param != nullptr);
  auto n = std::make_unique<Node>();
  n->value = param->value;
  n->requires_grad = true;
  n->grad.Resize(param->value.rows(), param->value.cols(), 0.0);
  n->param = param;
  nodes_.push_back(std::move(n));
  return Var(this, nodes_.size() - 1);
}

Var Tape::Emit(Matrix value, const std::vector<Var>& parents,
               BackwardFn backward) {
  auto n = std::make_unique<Node>();
  for (const Var& p : parents) {
    if (RequiresGrad(p)) {
      n->requires_grad = true;
      break;
    }
  }
  if (n->requires_grad) {
    n->backward = std::move(backward);
    n->grad.Resize(value.rows(), value.cols(), 0.0);
  }
  n->value = std::move(value);
  nodes_.push_back(std::move(n));
  return Var(this, nodes_.size() - 1);
}

const Matrix& Tape::ValueOf(const Var& v) const { return node(v).value; }

const Matrix& Tape::GradOf(const Var& v) const {
  const Node& n = node(v);
  CHECK(n.requires_grad) << "GradOf on a node that does not require grad";
  return n.grad;
}

bool Tape::RequiresGrad(const Var& v) const { return node(v).requires_grad; }

void Tape::AccumulateGrad(const Var& v, const Matrix& delta) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  CHECK(delta.rows() == n.value.rows() && delta.cols() == n.value.cols())
      << "gradient shape mismatch: value " << n.value.rows() << "x"
      << n.value.cols() << " vs grad " << delta.rows() << "x" << delta.cols();
  n.grad += delta;
}

void Tape::Backward(const Var& loss) {
  CHECK(!backward_done_) << "Backward may be called once per Tape";
  backward_done_ = true;
  Node& loss_node = node(loss);
  CHECK(loss_node.value.rows() == 1 && loss_node.value.cols() == 1)
      << "Backward target must be a 1x1 scalar";
  CHECK(loss_node.requires_grad)
      << "Backward target does not depend on any grad-requiring leaf";
  loss_node.grad(0, 0) = 1.0;

  CHECK_EQ(loss.tape_, this);
  for (size_t i = loss.id_ + 1; i-- > 0;) {
    Node& n = *nodes_[i];
    if (!n.requires_grad) continue;
    if (n.backward) n.backward(*this, n.grad);
    if (n.param != nullptr) n.param->grad += n.grad;
  }
}

}  // namespace transn
