#ifndef TRANSN_NN_AUTOGRAD_H_
#define TRANSN_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace transn {

class Tape;

/// Trainable dense parameter: value + accumulated gradient + Adam state.
/// Owned by a model (e.g. a Translator); bound onto a fresh Tape each step
/// via Tape::Leaf().
struct Parameter {
  Matrix value;
  Matrix grad;

  // Adam moment estimates, managed by AdamOptimizer.
  Matrix adam_m;
  Matrix adam_v;

  explicit Parameter(Matrix v) : value(std::move(v)) { ZeroGrad(); }

  void ZeroGrad() { grad.Resize(value.rows(), value.cols(), 0.0); }
};

/// Lightweight handle to a node on a Tape. Copyable; valid until the Tape is
/// destroyed or cleared.
class Var {
 public:
  Var() = default;

  const Matrix& value() const;
  /// Gradient of the most recent Tape::Backward() target w.r.t. this node.
  /// Zero matrix if the node did not participate.
  const Matrix& grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }
  bool valid() const { return tape_ != nullptr; }
  Tape* tape() const { return tape_; }

 private:
  friend class Tape;
  Var(Tape* tape, size_t id) : tape_(tape), id_(id) {}

  Tape* tape_ = nullptr;
  size_t id_ = 0;
};

/// Reverse-mode automatic differentiation over Matrix-valued nodes.
///
/// Usage per training step:
///   Tape tape;
///   Var w = tape.Leaf(&weight_param);
///   Var x = tape.Input(batch, /*requires_grad=*/true);
///   Var loss = Mean(Relu(MatMul(w, x)));       // ops from nn/ops.h
///   tape.Backward(loss);                        // fills x.grad(), weight_param.grad
///
/// The tape records one node per op invocation; Backward walks the tape in
/// reverse creation order (a valid topological order by construction).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// A leaf holding a constant or trainable input matrix. When
  /// requires_grad, its gradient is available via Var::grad() after
  /// Backward().
  Var Input(Matrix value, bool requires_grad = false);

  /// A leaf bound to a persistent Parameter; Backward() accumulates into
  /// param->grad (the parameter's current value is copied onto the tape).
  Var Leaf(Parameter* param);

  /// Runs backpropagation from `loss`, which must be 1x1. May be called at
  /// most once per tape.
  void Backward(const Var& loss);

  /// Number of recorded nodes (tests/diagnostics).
  size_t num_nodes() const { return nodes_.size(); }

  // --- Implementation interface used by ops (nn/ops.h). ---

  /// Backward function: given the node's output gradient, accumulate into
  /// parent gradients via AccumulateGrad.
  using BackwardFn = std::function<void(Tape&, const Matrix& out_grad)>;

  /// Records an op node. `parents` are consumed for requires-grad
  /// propagation only; the BackwardFn captures whatever it needs.
  Var Emit(Matrix value, const std::vector<Var>& parents, BackwardFn backward);

  const Matrix& ValueOf(const Var& v) const;
  const Matrix& GradOf(const Var& v) const;
  bool RequiresGrad(const Var& v) const;

  /// Adds `delta` into the gradient buffer of `v` (allocating on first use).
  /// No-op when `v` does not require grad.
  void AccumulateGrad(const Var& v, const Matrix& delta);

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // empty until touched
    bool requires_grad = false;
    BackwardFn backward;     // null for leaves
    Parameter* param = nullptr;
  };

  Node& node(const Var& v);
  const Node& node(const Var& v) const;

  std::vector<std::unique_ptr<Node>> nodes_;
  bool backward_done_ = false;
};

}  // namespace transn

#endif  // TRANSN_NN_AUTOGRAD_H_
