#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace transn {

Matrix NumericGradient(const std::function<double(const Matrix&)>& fn,
                       const Matrix& x, double eps) {
  Matrix grad(x.rows(), x.cols());
  Matrix probe = x;
  for (size_t i = 0; i < x.size(); ++i) {
    const double orig = probe.data()[i];
    probe.data()[i] = orig + eps;
    const double up = fn(probe);
    probe.data()[i] = orig - eps;
    const double down = fn(probe);
    probe.data()[i] = orig;
    grad.data()[i] = (up - down) / (2.0 * eps);
  }
  return grad;
}

double MaxRelativeError(const Matrix& a, const Matrix& b, double floor) {
  CHECK(a.SameShape(b));
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double av = a.data()[i];
    const double bv = b.data()[i];
    const double denom = std::max({std::fabs(av), std::fabs(bv), floor});
    worst = std::max(worst, std::fabs(av - bv) / denom);
  }
  return worst;
}

}  // namespace transn
