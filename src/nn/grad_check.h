#ifndef TRANSN_NN_GRAD_CHECK_H_
#define TRANSN_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/matrix.h"

namespace transn {

/// Central-difference numerical gradient of a scalar-valued function at `x`.
/// Used by the autograd test-suite to validate every op's backward pass.
Matrix NumericGradient(const std::function<double(const Matrix&)>& fn,
                       const Matrix& x, double eps = 1e-6);

/// max_ij |a_ij - b_ij| / max(|a_ij|, |b_ij|, floor); the standard
/// relative-error criterion for gradient checking.
double MaxRelativeError(const Matrix& a, const Matrix& b,
                        double floor = 1e-4);

}  // namespace transn

#endif  // TRANSN_NN_GRAD_CHECK_H_
