#include "nn/init.h"

#include <cmath>

namespace transn {

Matrix XavierUniform(size_t rows, size_t cols, Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  return UniformInit(rows, cols, -bound, bound, rng);
}

Matrix UniformInit(size_t rows, size_t cols, double lo, double hi, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextDouble(lo, hi);
  return m;
}

Matrix GaussianInit(size_t rows, size_t cols, double stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = stddev * rng.NextGaussian();
  return m;
}

}  // namespace transn
