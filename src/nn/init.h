#ifndef TRANSN_NN_INIT_H_
#define TRANSN_NN_INIT_H_

#include "nn/matrix.h"
#include "util/rng.h"

namespace transn {

/// Xavier/Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +sqrt(...)).
Matrix XavierUniform(size_t rows, size_t cols, Rng& rng);

/// Uniform in [lo, hi); word2vec-style embedding init uses
/// [-0.5/d, 0.5/d).
Matrix UniformInit(size_t rows, size_t cols, double lo, double hi, Rng& rng);

/// I.i.d. N(0, stddev^2).
Matrix GaussianInit(size_t rows, size_t cols, double stddev, Rng& rng);

}  // namespace transn

#endif  // TRANSN_NN_INIT_H_
