#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "util/vec.h"

namespace transn {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    CHECK_EQ(rows[r].size(), m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CHECK(SameShape(other));
  vec::Axpy(1.0, other.data_.data(), data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CHECK(SameShape(other));
  vec::ScaledSub(data_.data(), 1.0, other.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(vec::Dot(data_.data(), data_.data(), data_.size()));
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::DebugString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]";
    if (r + 1 < rows_) os << "\n";
  }
  os << "]";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols(), 0.0);
  // i-k-j loop order: streams through b and out rows.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.Row(i);
    const double* a_row = a.Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      vec::Axpy(aik, b.Row(k), out_row, b.cols());
    }
  }
  return out;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      out(i, j) = vec::Dot(a_row, b.Row(j), a.cols());
    }
  }
  return out;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols(), 0.0);
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.Row(k);
    const double* b_row = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      vec::Axpy(aki, b_row, out.Row(i), b.cols());
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.Row(r);
    double* o = out.Row(r);
    double mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    for (size_t c = 0; c < a.cols(); ++c) o[c] /= denom;
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

double SumAll(const Matrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return acc;
}

SparseMat::SparseMat(
    size_t rows, size_t cols,
    const std::vector<std::tuple<size_t, size_t, double>>& triplets)
    : rows_(rows), cols_(cols) {
  // Sum duplicates via an ordered map keyed by (row, col).
  std::map<std::pair<size_t, size_t>, double> entries;
  for (const auto& [r, c, v] : triplets) {
    CHECK_LT(r, rows_);
    CHECK_LT(c, cols_);
    entries[{r, c}] += v;
  }
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const auto& [rc, v] : entries) {
    ++row_ptr_[rc.first + 1];
    col_idx_.push_back(rc.second);
    values_.push_back(v);
  }
  for (size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Matrix SparseMat::Multiply(const Matrix& x) const {
  CHECK_EQ(cols_, x.rows());
  Matrix out(rows_, x.cols(), 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double* out_row = out.Row(r);
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      vec::Axpy(values_[k], x.Row(col_idx_[k]), out_row, x.cols());
    }
  }
  return out;
}

SparseMat SparseMat::Transposed() const {
  std::vector<std::tuple<size_t, size_t, double>> triplets;
  triplets.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.emplace_back(col_idx_[k], r, values_[k]);
    }
  }
  return SparseMat(cols_, rows_, triplets);
}

void SparseMat::ScaleValues(double s) {
  for (double& v : values_) v *= s;
}

}  // namespace transn
