#ifndef TRANSN_NN_MATRIX_H_
#define TRANSN_NN_MATRIX_H_

#include <stddef.h>

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace transn {

/// Dense row-major matrix of doubles. This is the single numeric container
/// used by the hand-rolled autograd, the embedding tables, the classifiers,
/// and t-SNE. Double precision keeps the numerical gradient checks tight.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; every row must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    DCHECK_LT(r, rows_);
    DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    DCHECK_LT(r, rows_);
    DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  double* Row(size_t r) {
    DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v) { data_.assign(data_.size(), v); }
  void Resize(size_t rows, size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// In-place elementwise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Frobenius norm and max |entry|; used by tests and convergence checks.
  double FrobeniusNorm() const;
  double MaxAbs() const;

  std::string DebugString(int precision = 3) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a · b.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// out = a · bᵀ (avoids materializing the transpose).
Matrix MatMulNT(const Matrix& a, const Matrix& b);
/// out = aᵀ · b.
Matrix MatMulTN(const Matrix& a, const Matrix& b);
Matrix Transpose(const Matrix& a);
/// Row-wise softmax (numerically stabilized).
Matrix RowSoftmax(const Matrix& a);
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double s);
double SumAll(const Matrix& a);
// Raw dot products live in the shared kernel layer: use vec::Dot (util/vec.h).

/// Immutable CSR sparse matrix for graph adjacency (R-GCN propagation).
class SparseMat {
 public:
  SparseMat() = default;

  /// Builds from COO triplets; duplicate (r,c) entries are summed.
  SparseMat(size_t rows, size_t cols,
            const std::vector<std::tuple<size_t, size_t, double>>& triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  /// Dense product: out = S · x, where x is cols() × d.
  Matrix Multiply(const Matrix& x) const;

  /// The transposed matrix (materialized; adjacency is built once).
  SparseMat Transposed() const;

  /// Scales every stored value in-place (for normalized adjacency).
  void ScaleValues(double s);

  /// Row access for tests/inspection.
  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_;   // size rows_+1
  std::vector<size_t> col_idx_;   // size nnz
  std::vector<double> values_;    // size nnz
};

}  // namespace transn

#endif  // TRANSN_NN_MATRIX_H_
