#include "nn/ops.h"

#include "util/vec.h"

#include <cmath>

namespace transn {
namespace {

Tape* TapeOf(const Var& a, const Var& b) {
  CHECK(a.valid() && b.valid());
  CHECK_EQ(a.tape(), b.tape()) << "ops require Vars from the same Tape";
  return a.tape();
}

constexpr double kNormEps = 1e-12;

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Tape* tape = TapeOf(a, b);
  Matrix out = MatMul(a.value(), b.value());
  return tape->Emit(std::move(out), {a, b},
                    [a, b](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, MatMulNT(g, b.value()));
                      t.AccumulateGrad(b, MatMulTN(a.value(), g));
                    });
}

Var Transpose(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  return tape->Emit(Transpose(a.value()), {a},
                    [a](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, Transpose(g));
                    });
}

Var RowSoftmax(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  Matrix y = RowSoftmax(a.value());
  return tape->Emit(y, {a}, [a, y](Tape& t, const Matrix& g) {
    // dx_r = y_r ⊙ (g_r - (g_r · y_r) 1)
    Matrix dx(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      const double* yr = y.Row(r);
      const double* gr = g.Row(r);
      double dot = vec::Dot(gr, yr, y.cols());
      double* dr = dx.Row(r);
      for (size_t c = 0; c < y.cols(); ++c) dr[c] = yr[c] * (gr[c] - dot);
    }
    t.AccumulateGrad(a, dx);
  });
}

Var Relu(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    y.data()[i] = x.data()[i] > 0.0 ? x.data()[i] : 0.0;
  }
  return tape->Emit(std::move(y), {a}, [a](Tape& t, const Matrix& g) {
    const Matrix& x = a.value();
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i) {
      dx.data()[i] = x.data()[i] > 0.0 ? g.data()[i] : 0.0;
    }
    t.AccumulateGrad(a, dx);
  });
}

Var Sigmoid(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    y.data()[i] = 1.0 / (1.0 + std::exp(-x.data()[i]));
  }
  return tape->Emit(y, {a}, [a, y](Tape& t, const Matrix& g) {
    Matrix dx(y.rows(), y.cols());
    for (size_t i = 0; i < y.size(); ++i) {
      dx.data()[i] = g.data()[i] * y.data()[i] * (1.0 - y.data()[i]);
    }
    t.AccumulateGrad(a, dx);
  });
}

Var Add(const Var& a, const Var& b) {
  Tape* tape = TapeOf(a, b);
  return tape->Emit(Add(a.value(), b.value()), {a, b},
                    [a, b](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, g);
                      t.AccumulateGrad(b, g);
                    });
}

Var Sub(const Var& a, const Var& b) {
  Tape* tape = TapeOf(a, b);
  return tape->Emit(Sub(a.value(), b.value()), {a, b},
                    [a, b](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, g);
                      t.AccumulateGrad(b, Scale(g, -1.0));
                    });
}

Var Hadamard(const Var& a, const Var& b) {
  Tape* tape = TapeOf(a, b);
  return tape->Emit(Hadamard(a.value(), b.value()), {a, b},
                    [a, b](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, Hadamard(g, b.value()));
                      t.AccumulateGrad(b, Hadamard(g, a.value()));
                    });
}

Var Scale(const Var& a, double s) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  return tape->Emit(Scale(a.value(), s), {a},
                    [a, s](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, Scale(g, s));
                    });
}

Var AddRowBias(const Var& a, const Var& bias) {
  Tape* tape = TapeOf(a, bias);
  const Matrix& x = a.value();
  const Matrix& b = bias.value();
  CHECK_EQ(b.rows(), x.rows());
  CHECK_EQ(b.cols(), 1u);
  Matrix y = x;
  for (size_t r = 0; r < x.rows(); ++r) {
    double* yr = y.Row(r);
    for (size_t c = 0; c < x.cols(); ++c) yr[c] += b(r, 0);
  }
  return tape->Emit(std::move(y), {a, bias},
                    [a, bias](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(a, g);
                      Matrix db(g.rows(), 1);
                      for (size_t r = 0; r < g.rows(); ++r) {
                        double acc = 0.0;
                        const double* gr = g.Row(r);
                        for (size_t c = 0; c < g.cols(); ++c) acc += gr[c];
                        db(r, 0) = acc;
                      }
                      t.AccumulateGrad(bias, db);
                    });
}

Var Sum(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  Matrix out(1, 1, SumAll(a.value()));
  return tape->Emit(std::move(out), {a}, [a](Tape& t, const Matrix& g) {
    t.AccumulateGrad(a, Matrix(a.value().rows(), a.value().cols(), g(0, 0)));
  });
}

Var Mean(const Var& a) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  const double n = static_cast<double>(a.value().size());
  CHECK_GT(n, 0.0);
  Matrix out(1, 1, SumAll(a.value()) / n);
  return tape->Emit(std::move(out), {a}, [a, n](Tape& t, const Matrix& g) {
    t.AccumulateGrad(a,
                     Matrix(a.value().rows(), a.value().cols(), g(0, 0) / n));
  });
}

Var GatherRows(const Var& a, std::vector<size_t> indices) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  const Matrix& x = a.value();
  Matrix out(indices.size(), x.cols());
  for (size_t r = 0; r < indices.size(); ++r) {
    CHECK_LT(indices[r], x.rows());
    const double* src = x.Row(indices[r]);
    double* dst = out.Row(r);
    for (size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  return tape->Emit(std::move(out), {a},
                    [a, indices = std::move(indices)](Tape& t,
                                                      const Matrix& g) {
                      Matrix dx(a.value().rows(), a.value().cols(), 0.0);
                      for (size_t r = 0; r < indices.size(); ++r) {
                        double* dst = dx.Row(indices[r]);
                        const double* src = g.Row(r);
                        for (size_t c = 0; c < g.cols(); ++c) dst[c] += src[c];
                      }
                      t.AccumulateGrad(a, dx);
                    });
}

Var SpMM(const SparseMat* s, const SparseMat* s_transposed, const Var& x) {
  CHECK(s != nullptr && s_transposed != nullptr);
  CHECK_EQ(s->rows(), s_transposed->cols());
  CHECK_EQ(s->cols(), s_transposed->rows());
  Tape* tape = x.tape();
  CHECK(tape != nullptr);
  return tape->Emit(s->Multiply(x.value()), {x},
                    [s_transposed, x](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(x, s_transposed->Multiply(g));
                    });
}

Var RowwiseDot(const Var& a, const Var& b) {
  Tape* tape = TapeOf(a, b);
  const Matrix& x = a.value();
  const Matrix& y = b.value();
  CHECK(x.SameShape(y));
  Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = vec::Dot(x.Row(r), y.Row(r), x.cols());
  }
  return tape->Emit(std::move(out), {a, b},
                    [a, b](Tape& t, const Matrix& g) {
                      const Matrix& x = a.value();
                      const Matrix& y = b.value();
                      Matrix da(x.rows(), x.cols());
                      Matrix db(x.rows(), x.cols());
                      for (size_t r = 0; r < x.rows(); ++r) {
                        const double gr = g(r, 0);
                        for (size_t c = 0; c < x.cols(); ++c) {
                          da(r, c) = gr * y(r, c);
                          db(r, c) = gr * x(r, c);
                        }
                      }
                      t.AccumulateGrad(a, da);
                      t.AccumulateGrad(b, db);
                    });
}

Var RowCosineLoss(const Var& pred, const Var& target) {
  Tape* tape = TapeOf(pred, target);
  const Matrix& p = pred.value();
  const Matrix& q = target.value();
  CHECK(p.SameShape(q));
  const size_t n = p.rows();
  CHECK_GT(n, 0u);
  double loss = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double* pr = p.Row(r);
    const double* qr = q.Row(r);
    double pq = vec::Dot(pr, qr, p.cols());
    double pp = std::sqrt(vec::Dot(pr, pr, p.cols())) + kNormEps;
    double qq = std::sqrt(vec::Dot(qr, qr, p.cols())) + kNormEps;
    loss += 1.0 - pq / (pp * qq);
  }
  Matrix out(1, 1, loss / static_cast<double>(n));
  return tape->Emit(
      std::move(out), {pred, target},
      [pred, target, n](Tape& t, const Matrix& g) {
        const Matrix& p = pred.value();
        const Matrix& q = target.value();
        const double scale = g(0, 0) / static_cast<double>(n);
        Matrix dp(p.rows(), p.cols());
        Matrix dq(p.rows(), p.cols());
        for (size_t r = 0; r < p.rows(); ++r) {
          const double* pr = p.Row(r);
          const double* qr = q.Row(r);
          const size_t d = p.cols();
          double pq = vec::Dot(pr, qr, d);
          double pn = std::sqrt(vec::Dot(pr, pr, d)) + kNormEps;
          double qn = std::sqrt(vec::Dot(qr, qr, d)) + kNormEps;
          // d(1 - cos)/dp = -(q/(|p||q|) - (p·q) p / (|p|^3 |q|))
          for (size_t c = 0; c < d; ++c) {
            dp(r, c) =
                -scale * (qr[c] / (pn * qn) - pq * pr[c] / (pn * pn * pn * qn));
            dq(r, c) =
                -scale * (pr[c] / (pn * qn) - pq * qr[c] / (qn * qn * qn * pn));
          }
        }
        t.AccumulateGrad(pred, dp);
        t.AccumulateGrad(target, dq);
      });
}

Var NegativeDotLoss(const Var& pred, const Var& target) {
  Tape* tape = TapeOf(pred, target);
  const Matrix& p = pred.value();
  const Matrix& q = target.value();
  CHECK(p.SameShape(q));
  const double n = static_cast<double>(p.rows());
  CHECK_GT(n, 0.0);
  Matrix out(1, 1, -SumAll(Hadamard(p, q)) / n);
  return tape->Emit(std::move(out), {pred, target},
                    [pred, target, n](Tape& t, const Matrix& g) {
                      const double s = -g(0, 0) / n;
                      t.AccumulateGrad(pred, Scale(target.value(), s));
                      t.AccumulateGrad(target, Scale(pred.value(), s));
                    });
}

Var LogSigmoidLoss(const Var& scores, std::vector<double> signs) {
  Tape* tape = scores.tape();
  CHECK(tape != nullptr);
  const Matrix& s = scores.value();
  CHECK_EQ(s.cols(), 1u);
  CHECK_EQ(s.rows(), signs.size());
  const double n = static_cast<double>(s.rows());
  CHECK_GT(n, 0.0);
  double loss = 0.0;
  for (size_t r = 0; r < s.rows(); ++r) {
    const double z = signs[r] * s(r, 0);
    // -log sigma(z) = log(1 + e^{-z}), computed stably.
    loss += z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z));
  }
  Matrix out(1, 1, loss / n);
  return tape->Emit(
      std::move(out), {scores},
      [scores, signs = std::move(signs), n](Tape& t, const Matrix& g) {
        const Matrix& s = scores.value();
        Matrix ds(s.rows(), 1);
        for (size_t r = 0; r < s.rows(); ++r) {
          const double z = signs[r] * s(r, 0);
          const double sig_neg = 1.0 / (1.0 + std::exp(z));  // sigma(-z)
          ds(r, 0) = g(0, 0) * (-signs[r] * sig_neg) / n;
        }
        t.AccumulateGrad(scores, ds);
      });
}

Var L2Penalty(const Var& a, double lambda) {
  Tape* tape = a.tape();
  CHECK(tape != nullptr);
  const Matrix& x = a.value();
  Matrix out(1, 1, lambda * vec::Dot(x.data(), x.data(), x.size()));
  return tape->Emit(std::move(out), {a},
                    [a, lambda](Tape& t, const Matrix& g) {
                      t.AccumulateGrad(
                          a, Scale(a.value(), 2.0 * lambda * g(0, 0)));
                    });
}

}  // namespace transn
