#ifndef TRANSN_NN_OPS_H_
#define TRANSN_NN_OPS_H_

#include <vector>

#include "nn/autograd.h"
#include "nn/matrix.h"

namespace transn {

// Differentiable ops over Tape variables. Each records its backward pass on
// the owning tape. Mixed-tape arguments are a CHECK failure.

/// out = a · b.
Var MatMul(const Var& a, const Var& b);
/// out = aᵀ.
Var Transpose(const Var& a);
/// Row-wise softmax.
Var RowSoftmax(const Var& a);
/// Elementwise max(0, x).
Var Relu(const Var& a);
/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);
/// Elementwise sum / difference / product.
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Hadamard(const Var& a, const Var& b);
/// out = s * a for a compile-time-constant scalar s.
Var Scale(const Var& a, double s);
/// Adds a rows()x1 bias column to every column of `a` (row r gets bias[r]).
Var AddRowBias(const Var& a, const Var& bias);
/// 1x1 sum of all entries.
Var Sum(const Var& a);
/// 1x1 mean of all entries.
Var Mean(const Var& a);
/// Selects rows of `a` (duplicates allowed); backward scatter-adds.
Var GatherRows(const Var& a, std::vector<size_t> indices);
/// out = S · x for a constant sparse S. `s_transposed` must be S's
/// transpose (precomputed by the caller; both must outlive the tape).
Var SpMM(const SparseMat* s, const SparseMat* s_transposed, const Var& x);
/// Per-row inner products: out is rows()x1 with out[r] = a_r · b_r.
Var RowwiseDot(const Var& a, const Var& b);

// Loss heads (all return 1x1 scalars).

/// mean_r (1 - cos(pred_r, target_r)); the stable form of the paper's
/// translation/reconstruction similarity objective (see DESIGN.md §2.3).
Var RowCosineLoss(const Var& pred, const Var& target);
/// -(1/rows) * sum(pred ⊙ target); the literal (sign-corrected) Eq. 11-14.
Var NegativeDotLoss(const Var& pred, const Var& target);
/// (1/n) Σ_i -log σ(sign_i * score_i); scores is n×1, sign_i ∈ {+1,-1}.
Var LogSigmoidLoss(const Var& scores, std::vector<double> signs);
/// lambda * sum(a ⊙ a): L2 penalty.
Var L2Penalty(const Var& a, double lambda);

}  // namespace transn

#endif  // TRANSN_NN_OPS_H_
