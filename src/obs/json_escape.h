#ifndef TRANSN_OBS_JSON_ESCAPE_H_
#define TRANSN_OBS_JSON_ESCAPE_H_

#include <string>
#include <string_view>

#include "util/string_util.h"

namespace transn {
namespace obs {

/// Minimal JSON string escaping (quotes, backslash, control chars). Metric
/// and span names are library-controlled, but view labels come from user
/// edge-type names, so the exporters escape everything they quote.
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace transn

#endif  // TRANSN_OBS_JSON_ESCAPE_H_
