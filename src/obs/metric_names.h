#ifndef TRANSN_OBS_METRIC_NAMES_H_
#define TRANSN_OBS_METRIC_NAMES_H_

// Canonical metric names for every subsystem. All instrumentation sites must
// register metrics through these constants — never inline string literals —
// so the name catalog in docs/OPERATIONS.md stays complete.
// scripts/check_metrics_docs.sh (run by the docs-consistency CI job) greps
// the quoted names below and fails if any is missing from the catalog table.
//
// Naming convention: "<subsystem>.<what>[_total|_seconds]".
//   *_total    monotonic counters
//   *_seconds  latency/duration histograms (recorded in seconds)
// Per-view variants carry a "{view=<edge-type>}" label suffix built with
// obs::LabeledName(); only the base name appears in this file.

namespace transn {
namespace obs {

// --- src/walk/: walk generation -------------------------------------------
/// Random walks streamed (every WalkInto/Walk call).
inline constexpr char kWalkWalksTotal[] = "walk.walks_total";
/// Nodes emitted across all walks (walk lengths summed).
inline constexpr char kWalkStepsTotal[] = "walk.steps_total";
/// Alias-table (noise distribution / edge sampler) rebuilds.
inline constexpr char kWalkAliasRebuildsTotal[] = "walk.alias_rebuilds_total";

// --- src/util/vec.h: kernel layer ------------------------------------------
/// ISA the vector kernels dispatch to (transn::vec::Isa as an integer:
/// 0 = scalar, 1 = AVX2+FMA, 2 = NEON). Forced to 0 by TRANSN_NO_SIMD=1 /
/// --no-simd. Set once by the long-lived entry points (TransNModel,
/// QueryServer) so dashboards can tell which code path produced a run.
inline constexpr char kKernelsIsa[] = "kernels.isa";

// --- src/core/ + src/emb/: training ---------------------------------------
/// Full Algorithm-1 passes completed.
inline constexpr char kTrainIterationsTotal[] = "train.iterations_total";
/// Wall time of one full Algorithm-1 pass.
inline constexpr char kTrainIterationSeconds[] = "train.iteration_seconds";
/// SGNS / hierarchical-softmax context pairs trained.
inline constexpr char kTrainPairsTotal[] = "train.pairs_total";
/// Embedding gradient updates applied (SGD pairs + sparse-Adam rows).
inline constexpr char kTrainGradientUpdatesTotal[] =
    "train.gradient_updates_total";
/// Episodes completed by the multi-threaded episodic block engine (one
/// episode = one walk-generation wave plus its block-diagonal update rounds).
inline constexpr char kTrainEpisodesTotal[] = "train.episodes_total";
/// Single-view pairs/sec of the most recent pass (all views summed).
inline constexpr char kTrainPairsPerSecond[] = "train.pairs_per_second";
/// Wall time of one single-view pass (per view when labeled).
inline constexpr char kTrainViewSeconds[] = "train.view_seconds";
/// Mean single-view loss of the most recent pass.
inline constexpr char kTrainSingleViewLoss[] = "train.single_view_loss";
/// Mean cross-view loss of the most recent pass.
inline constexpr char kTrainCrossViewLoss[] = "train.cross_view_loss";
/// Cross-view common-node windows optimized.
inline constexpr char kTrainCrossWindowsTotal[] = "train.cross_windows_total";
/// Dense Adam steps applied to translator parameters.
inline constexpr char kTrainTranslatorStepsTotal[] =
    "train.translator_steps_total";
/// Sparse-Adam row updates applied to embedding tables by cross-view losses.
inline constexpr char kTrainAdamRowUpdatesTotal[] =
    "train.adam_row_updates_total";
/// Latency of one cross-view optimizer step (translator Adam + row Adam).
inline constexpr char kTrainAdamStepSeconds[] = "train.adam_step_seconds";

// --- I/O: graph / embedding / model files ---------------------------------
inline constexpr char kIoGraphLoadSeconds[] = "io.graph_load_seconds";
inline constexpr char kIoGraphSaveSeconds[] = "io.graph_save_seconds";
inline constexpr char kIoEmbeddingsSaveSeconds[] = "io.embeddings_save_seconds";
inline constexpr char kIoEmbeddingsLoadSeconds[] = "io.embeddings_load_seconds";
inline constexpr char kIoCheckpointSaveSeconds[] = "io.checkpoint_save_seconds";
inline constexpr char kIoCheckpointLoadSeconds[] = "io.checkpoint_load_seconds";
inline constexpr char kIoServingExportSeconds[] = "io.serving_export_seconds";
/// Failed file writes observed by CheckedWriter/AtomicFileWriter — real
/// errors and injected faults alike (bridged from util/safe_io's counter by
/// obs/metrics.cc; util/ cannot depend on obs/).
inline constexpr char kIoWriteErrorsTotal[] = "io.write_errors_total";

// --- checkpointing / crash recovery ---------------------------------------
/// Iteration recorded in the most recent successfully committed checkpoint.
inline constexpr char kCheckpointLastGoodIteration[] =
    "checkpoint.last_good_iteration";
/// Checkpoints committed (periodic and final saves alike).
inline constexpr char kCheckpointSavesTotal[] = "checkpoint.saves_total";
/// Training runs resumed from a checkpoint (ResumeTransNCheckpoint calls).
inline constexpr char kCheckpointResumesTotal[] = "checkpoint.resumes_total";

// --- src/serve/: query path -----------------------------------------------
/// Binary serving-model load + verify time.
inline constexpr char kServeModelLoadSeconds[] = "serve.model_load_seconds";
/// k-NN index construction time (exact or quantized).
inline constexpr char kServeIndexBuildSeconds[] = "serve.index_build_seconds";
/// Recorded (non-warmup) queries handled.
inline constexpr char kServeRequestsTotal[] = "serve.requests_total";
/// Recorded queries that returned a non-OK status.
inline constexpr char kServeRequestErrorsTotal[] = "serve.request_errors_total";
/// Queries answered through the cold-start translator chain.
inline constexpr char kServeColdStartTotal[] =
    "serve.coldstart_translations_total";
/// End-to-end per-request latency (same data as QueryServer::latency()).
inline constexpr char kServeRequestLatencySeconds[] =
    "serve.request_latency_seconds";

// --- src/serve/ann_index.h: HNSW-style ANN index ---------------------------
/// Wall time to produce the active index: the layered-graph Build() when
/// the server constructs one, or the section parse + int8 code rebuild when
/// a pre-built v3 index is loaded (AnnIndex::build_seconds()).
inline constexpr char kAnnBuildSeconds[] = "ann.build_seconds";
/// Worker threads the active index was built/loaded with (1 = inline).
inline constexpr char kAnnBuildThreads[] = "ann.build_threads";
/// Directed edges per node over all layers of the active index.
inline constexpr char kAnnGraphAvgDegree[] = "ann.graph_avg_degree";
/// Highest occupied layer of the active index.
inline constexpr char kAnnGraphMaxLevel[] = "ann.graph_max_level";
/// Beam width (ef) the server searches with.
inline constexpr char kAnnEfSearch[] = "ann.ef_search";
/// Graph nodes expanded per query (greedy descent + layer-0 beam).
inline constexpr char kAnnHopsPerQuery[] = "ann.hops_per_query";
/// recall@k of the ANN index against the exact scan, measured at startup on
/// a deterministic probe set (0..1; 16 probes).
inline constexpr char kAnnRecallProbe[] = "ann.recall_probe";

// --- src/serve/model_manager.h: hot reload --------------------------------
/// Successful atomic model swaps (initial load counts as generation 1).
inline constexpr char kServeReloadsTotal[] = "serve.reloads_total";
/// Reload attempts that failed validation/load; the old model kept serving.
inline constexpr char kServeReloadFailuresTotal[] =
    "serve.reload_failures_total";
/// End-to-end reload wall time (model load + index build + swap).
inline constexpr char kServeReloadSeconds[] = "serve.reload_seconds";
/// Generation number of the model currently serving (1 = initial load).
inline constexpr char kServeModelGeneration[] = "serve.model_generation";

// --- src/net/: HTTP front end ---------------------------------------------
/// TCP connections accepted by the reactors.
inline constexpr char kNetConnectionsOpenedTotal[] =
    "net.connections_opened_total";
/// TCP connections closed (any reason).
inline constexpr char kNetConnectionsClosedTotal[] =
    "net.connections_closed_total";
/// Currently open TCP connections.
inline constexpr char kNetActiveConnections[] = "net.active_connections";
/// HTTP requests fully parsed and dispatched to the application.
inline constexpr char kNetRequestsTotal[] = "net.requests_total";
/// HTTP responses sent, labeled {code=2xx|3xx|4xx|5xx}.
inline constexpr char kNetResponsesTotal[] = "net.responses_total";
/// Malformed requests rejected by the parser (400/413/501).
inline constexpr char kNetHttpParseErrorsTotal[] =
    "net.http_parse_errors_total";
/// Connections closed on a read/write/idle deadline.
inline constexpr char kNetTimeoutsTotal[] = "net.timeouts_total";
/// Accepted connections shed because max_connections was reached.
inline constexpr char kNetOverflowClosesTotal[] = "net.overflow_closes_total";
/// End-to-end HTTP request latency (parse done -> response queued), covering
/// queue wait + batch execution.
inline constexpr char kNetRequestSeconds[] = "net.request_seconds";
/// Requests rejected with 429 by admission control (bounded queue full).
inline constexpr char kNetRejectedTotal[] = "net.rejected_total";
/// Coalesced QueryServer batches executed by the batching executor.
inline constexpr char kNetBatchesTotal[] = "net.batches_total";
/// Instantaneous depth of the bounded request queue.
inline constexpr char kNetQueueDepth[] = "net.queue_depth";
/// Injected net.* failpoint firings observed by the reactors (accept drops,
/// forced read/write resets, injected latency). Always 0 in production —
/// nonzero only while TRANSN_FAULTS arms a net.* point.
inline constexpr char kNetFaultsInjectedTotal[] = "net.faults_injected_total";

// --- src/net/serve_app.h: admission control + resilience -------------------
/// Admission-queue depth sampled at every enqueue (same data as
/// net.queue_depth but owned by the app layer, updated pre-admission).
inline constexpr char kServeQueueDepth[] = "serve.queue_depth";
/// Highest admission-queue depth observed since process start.
inline constexpr char kServeQueueDepthHighWater[] =
    "serve.queue_depth_high_water";
/// Requests shed with 503 deadline-exceeded (at admission or at batch
/// dequeue) before doing any query work.
inline constexpr char kServeDeadlineExpiredTotal[] =
    "serve.deadline_expired_total";
/// Active degradation tier (0 = full quality, 1 = reduced ef beam,
/// 2 = exact-scan fallback). See docs/SERVING.md "Degraded modes".
inline constexpr char kServeDegradedMode[] = "serve.degraded_mode";
/// Seconds since the serving model generation was swapped in. Grows without
/// bound while reloads fail; alert when it exceeds your refresh SLO.
inline constexpr char kServeStalenessSeconds[] = "serve.staleness_seconds";

}  // namespace obs
}  // namespace transn

#endif  // TRANSN_OBS_METRIC_NAMES_H_
