#include "obs/metrics.h"

#include <fstream>
#include <sstream>

#include "obs/json_escape.h"
#include "obs/metric_names.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/safe_io.h"
#include "util/string_util.h"

namespace transn {
namespace obs {

namespace {

/// Bridges util/safe_io's write-error counter into the registry as
/// io.write_errors_total. The hook lives here (not in util/) because
/// transn_obs links transn_util, never the reverse. Installed once at static
/// initialization, before main() can run any writer.
[[maybe_unused]] const bool g_write_error_bridge_installed = [] {
  SetWriteErrorHook([] {
    MetricsRegistry::Default()
        .GetCounter(kIoWriteErrorsTotal, "errors",
                    "failed file writes (CheckedWriter/AtomicFileWriter)")
        ->Increment();
  });
  return true;
}();

/// Splits "base{key=value}" into its parts; labels empty when absent.
struct ParsedName {
  std::string_view base;
  std::string_view label_key;
  std::string_view label_value;
};

ParsedName ParseName(std::string_view name) {
  ParsedName parsed{name, {}, {}};
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') return parsed;
  parsed.base = name.substr(0, brace);
  std::string_view labels = name.substr(brace + 1, name.size() - brace - 2);
  const size_t eq = labels.find('=');
  if (eq == std::string_view::npos) return parsed;
  parsed.label_key = labels.substr(0, eq);
  parsed.label_value = labels.substr(eq + 1);
  return parsed;
}

/// "train.pairs_total" -> "transn_train_pairs_total".
std::string PrometheusName(std::string_view base) {
  std::string out = "transn_";
  for (char c : base) out += c == '.' ? '_' : c;
  return out;
}

std::string PrometheusLabels(const ParsedName& parsed,
                             std::string_view extra_key = "",
                             std::string_view extra_value = "") {
  std::string labels;
  auto append = [&labels](std::string_view k, std::string_view v) {
    if (k.empty()) return;
    if (!labels.empty()) labels += ',';
    labels += std::string(k) + "=\"" + std::string(v) + "\"";
  };
  append(parsed.label_key, parsed.label_value);
  append(extra_key, extra_value);
  return labels.empty() ? "" : "{" + labels + "}";
}

}  // namespace

size_t ThisThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram() = default;

void Histogram::Record(double seconds) {
  Shard& s = shards_[ThisThreadShard()];
  std::lock_guard<std::mutex> lock(s.mu);
  s.hist.Record(seconds);
}

LatencyHistogram Histogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    merged.Merge(s.hist);
  }
  return merged;
}

std::string LabeledName(std::string_view base, std::string_view key,
                        std::string_view value) {
  std::string out(base);
  out += '{';
  out += key;
  out += '=';
  out += value;
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricType type,
                                                      std::string_view unit,
                                                      std::string_view help) {
  CHECK(!name.empty()) << "metric name must be non-empty";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.info = {std::string(name), type, std::string(unit),
                  std::string(help)};
    switch (type) {
      case MetricType::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  CHECK(it->second.info.type == type)
      << "metric '" << std::string(name) << "' already registered as "
      << MetricTypeName(it->second.info.type) << ", requested "
      << MetricTypeName(type);
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help) {
  return FindOrCreate(name, MetricType::kCounter, unit, help)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view unit,
                                 std::string_view help) {
  return FindOrCreate(name, MetricType::kGauge, unit, help)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view unit,
                                         std::string_view help) {
  return FindOrCreate(name, MetricType::kHistogram, unit, help)
      ->histogram.get();
}

std::vector<MetricInfo> MetricsRegistry::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << JsonEscape(entry.info.name) << "\",\"type\":\""
       << MetricTypeName(entry.info.type) << '"';
    if (!entry.info.unit.empty()) {
      os << ",\"unit\":\"" << JsonEscape(entry.info.unit) << '"';
    }
    if (!entry.info.help.empty()) {
      os << ",\"help\":\"" << JsonEscape(entry.info.help) << '"';
    }
    switch (entry.info.type) {
      case MetricType::kCounter:
        os << ",\"value\":" << entry.counter->Value();
        break;
      case MetricType::kGauge:
        os << ",\"value\":" << StrFormat("%.17g", entry.gauge->Value());
        break;
      case MetricType::kHistogram: {
        const LatencyHistogram h = entry.histogram->Snapshot();
        os << StrFormat(
            ",\"count\":%llu,\"mean\":%.9g,\"min\":%.9g,\"p50\":%.9g,"
            "\"p95\":%.9g,\"p99\":%.9g,\"max\":%.9g",
            static_cast<unsigned long long>(h.count()), h.mean(), h.min(),
            h.Percentile(50), h.Percentile(95), h.Percentile(99), h.max());
        break;
      }
    }
    os << '}';
  }
  os << "]}";
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group series of one base name under a single TYPE/HELP header.
  std::string last_base;
  for (const auto& [name, entry] : entries_) {
    const ParsedName parsed = ParseName(entry.info.name);
    const std::string prom = PrometheusName(parsed.base);
    if (parsed.base != last_base) {
      last_base = std::string(parsed.base);
      if (!entry.info.help.empty()) {
        os << "# HELP " << prom << ' ' << entry.info.help << '\n';
      }
      os << "# TYPE " << prom << ' '
         << (entry.info.type == MetricType::kHistogram
                 ? "summary"
                 : MetricTypeName(entry.info.type))
         << '\n';
    }
    switch (entry.info.type) {
      case MetricType::kCounter:
        os << prom << PrometheusLabels(parsed) << ' '
           << entry.counter->Value() << '\n';
        break;
      case MetricType::kGauge:
        os << prom << PrometheusLabels(parsed) << ' '
           << StrFormat("%.17g", entry.gauge->Value()) << '\n';
        break;
      case MetricType::kHistogram: {
        const LatencyHistogram h = entry.histogram->Snapshot();
        const struct {
          const char* q;
          double v;
        } quantiles[] = {{"0.5", h.Percentile(50)},
                         {"0.95", h.Percentile(95)},
                         {"0.99", h.Percentile(99)}};
        for (const auto& q : quantiles) {
          os << prom << PrometheusLabels(parsed, "quantile", q.q) << ' '
             << StrFormat("%.9g", q.v) << '\n';
        }
        os << prom << "_sum" << PrometheusLabels(parsed) << ' '
           << StrFormat("%.9g", h.mean() * static_cast<double>(h.count()))
           << '\n';
        os << prom << "_count" << PrometheusLabels(parsed) << ' ' << h.count()
           << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void WriteObservabilityJson(const MetricsRegistry& registry,
                            const TraceCollector& traces, std::ostream& os) {
  os << "{\"schema\":\"transn-obs-v1\",";
  // Splice the registry's {"metrics": [...]} object in as two keys.
  std::ostringstream metrics;
  registry.WriteJson(metrics);
  const std::string m = metrics.str();
  // Strip the outer braces: {"metrics":[...]} -> "metrics":[...].
  os << m.substr(1, m.size() - 2) << ",\"spans\":";
  traces.WriteJson(os);
  os << '}';
}

Status DumpDefaultObservability(const std::string& path) {
  // Atomic replace: a crash (or injected fault) mid-dump must never leave a
  // torn JSON file where a previous good dump existed.
  std::ostringstream out;
  WriteObservabilityJson(MetricsRegistry::Default(), TraceCollector::Default(),
                         out);
  out << '\n';
  AtomicFileWriter writer(path);
  writer.Write(out.str());
  return writer.Commit();
}

}  // namespace obs
}  // namespace transn
