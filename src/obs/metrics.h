#ifndef TRANSN_OBS_METRICS_H_
#define TRANSN_OBS_METRICS_H_

#include <stddef.h>
#include <stdint.h>

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"
#include "util/timer.h"

namespace transn {
namespace obs {

class TraceCollector;

/// Write-side sharding factor shared by Counter and Histogram: each thread
/// is pinned (round-robin at first use) to one of kMetricShards lanes, so
/// concurrent writers land on different cache lines / different shard
/// mutexes and a scrape never blocks the hot path for long.
inline constexpr size_t kMetricShards = 16;

/// The calling thread's shard lane (stable for the thread's lifetime).
size_t ThisThreadShard();

enum class MetricType { kCounter, kGauge, kHistogram };

/// "counter" | "gauge" | "histogram".
const char* MetricTypeName(MetricType type);

/// Monotonic counter. Increment() is a relaxed fetch_add on the calling
/// thread's shard — no locks, no cross-thread cache-line sharing — so
/// concurrent increments always sum exactly. Value() sums the shards; a
/// snapshot taken during concurrent writes is a valid (possibly slightly
/// stale) intermediate total.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value (losses, rates).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency histogram (util/LatencyHistogram per shard). Each
/// Record() takes the calling thread's shard mutex — uncontended in steady
/// state since a thread always hits the same shard — and Snapshot() merges
/// the shards under their mutexes, so scrape-during-write is race-free.
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double seconds);
  /// Merged copy of all shards.
  LatencyHistogram Snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    LatencyHistogram hist;
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Registration metadata, echoed into the JSON / Prometheus exports.
struct MetricInfo {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;
  std::string help;
};

/// "base{key=value}" — the per-view variant naming convention. Only the base
/// name must appear in the docs/OPERATIONS.md catalog; exporters split the
/// suffix back into a Prometheus label.
std::string LabeledName(std::string_view base, std::string_view key,
                        std::string_view value);

/// Process-wide registry of named metrics. Registration (Get*) takes a mutex
/// and returns a stable handle pointer — call it once at construction time
/// and cache the handle; the handles themselves are lock-free (Counter,
/// Gauge) or per-thread-shard locked (Histogram) on the hot path.
///
/// Instrumentation sites use MetricsRegistry::Default(); tests construct
/// their own instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Default();

  /// Finds or registers a metric. Re-registering an existing name returns
  /// the same handle (first registration's unit/help win); registering the
  /// same name as a different type CHECK-fails.
  Counter* GetCounter(std::string_view name, std::string_view unit = "",
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view unit = "",
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view unit = "",
                          std::string_view help = "");

  /// Metadata of every registered metric, name-sorted.
  std::vector<MetricInfo> Metrics() const;

  /// {"metrics": [...]} — one object per metric; histograms expand to
  /// count/mean/min/p50/p95/p99/max (seconds).
  void WriteJson(std::ostream& os) const;

  /// Prometheus text exposition: names mangled to transn_<base with dots as
  /// underscores>, "{key=value}" suffixes as label sets, histograms as
  /// summary-style quantile series plus _sum/_count.
  void WritePrometheus(std::ostream& os) const;

  /// Drops every registered metric. Outstanding handles dangle — only for
  /// tests that own the registry instance.
  void Reset();

 private:
  struct Entry {
    MetricInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* FindOrCreate(std::string_view name, MetricType type,
                      std::string_view unit, std::string_view help);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Full observability dump — {"schema": "transn-obs-v1", "metrics": [...],
/// "spans": [...]} — the payload behind the tools' --metrics-out flag and
/// the bench sidecar files.
void WriteObservabilityJson(const MetricsRegistry& registry,
                            const TraceCollector& traces, std::ostream& os);

/// WriteObservabilityJson for the default registry/collector, to `path`.
Status DumpDefaultObservability(const std::string& path);

/// RAII timer recording its scope's wall time into a Histogram (I/O paths
/// with early returns). `hist` must outlive the timer; null disables it.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* hist) : hist_(hist) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() {
    if (hist_ != nullptr) hist_->Record(timer_.ElapsedSeconds());
  }

 private:
  Histogram* hist_;
  WallTimer timer_;
};

}  // namespace obs
}  // namespace transn

#endif  // TRANSN_OBS_METRICS_H_
