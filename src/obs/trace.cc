#include "obs/trace.h"

#include <algorithm>

#include "obs/json_escape.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace transn {
namespace obs {

namespace {

/// Per-thread stack of open span paths. Heap-allocated and never destroyed
/// so spans living in thread_local destructors never observe a destroyed
/// stack. Every stack is parked in a process-lifetime registry: short-lived
/// worker threads (the episodic engine spawns pools per Fit) would otherwise
/// leave their stacks unreachable after thread exit, which LeakSanitizer
/// reports as a leak.
std::vector<std::string>& SpanStack() {
  static std::mutex registry_mu;
  static auto* registry = new std::vector<std::vector<std::string>*>();
  thread_local std::vector<std::string>* stack = [] {
    auto* s = new std::vector<std::string>();
    std::lock_guard<std::mutex> lock(registry_mu);
    registry->push_back(s);
    return s;
  }();
  return *stack;
}

}  // namespace

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(std::string_view path, double seconds) {
  if (path.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Materialize ancestors so the export tree is connected even while the
  // parent span is still open (its own timing folds in when it closes).
  for (size_t slash = path.find('/'); slash != std::string_view::npos;
       slash = path.find('/', slash + 1)) {
    nodes_.try_emplace(std::string(path.substr(0, slash)));
  }
  auto [it, inserted] = nodes_.try_emplace(std::string(path));
  SpanStats& s = it->second;
  if (s.count == 0) {
    s.min_seconds = s.max_seconds = seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, seconds);
    s.max_seconds = std::max(s.max_seconds, seconds);
  }
  ++s.count;
  s.total_seconds += seconds;
}

std::vector<std::string> TraceCollector::Paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [path, stats] : nodes_) out.push_back(path);
  return out;
}

SpanStats TraceCollector::GetStats(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  return it == nodes_.end() ? SpanStats{} : it->second;
}

void TraceCollector::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Link the flat path map into an explicit tree: every node's parent (the
  // prefix before its last '/') exists because Record() materializes
  // ancestors. Sibling order is the map's path order.
  struct TreeNode {
    const std::string* path;
    const SpanStats* stats;
    std::vector<size_t> children;
  };
  std::vector<TreeNode> tree;
  tree.reserve(nodes_.size());
  std::map<std::string_view, size_t> index;
  std::vector<size_t> roots;
  for (const auto& [path, stats] : nodes_) {
    tree.push_back({&path, &stats, {}});
    index.emplace(path, tree.size() - 1);
  }
  for (size_t i = 0; i < tree.size(); ++i) {
    const std::string& path = *tree[i].path;
    const size_t last_slash = path.rfind('/');
    if (last_slash == std::string::npos) {
      roots.push_back(i);
      continue;
    }
    auto parent = index.find(std::string_view(path).substr(0, last_slash));
    CHECK(parent != index.end()) << "span '" << path << "' has no parent";
    tree[parent->second].children.push_back(i);
  }

  auto write_node = [&](auto&& self, size_t i) -> void {
    const TreeNode& node = tree[i];
    const std::string& path = *node.path;
    const size_t last_slash = path.rfind('/');
    const std::string_view name =
        last_slash == std::string::npos
            ? std::string_view(path)
            : std::string_view(path).substr(last_slash + 1);
    const SpanStats& stats = *node.stats;
    os << "{\"name\":\"" << JsonEscape(name) << "\",\"path\":\""
       << JsonEscape(path) << '"'
       << StrFormat(",\"count\":%llu,\"total_seconds\":%.9g,"
                    "\"mean_seconds\":%.9g,\"min_seconds\":%.9g,"
                    "\"max_seconds\":%.9g",
                    static_cast<unsigned long long>(stats.count),
                    stats.total_seconds,
                    stats.count > 0
                        ? stats.total_seconds /
                              static_cast<double>(stats.count)
                        : 0.0,
                    stats.min_seconds, stats.max_seconds)
       << ",\"children\":[";
    for (size_t c = 0; c < node.children.size(); ++c) {
      if (c > 0) os << ',';
      self(self, node.children[c]);
    }
    os << "]}";
  };
  os << '[';
  for (size_t r = 0; r < roots.size(); ++r) {
    if (r > 0) os << ',';
    write_node(write_node, roots[r]);
  }
  os << ']';
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
}

TraceSpan::TraceSpan(std::string_view name, TraceCollector* collector)
    : collector_(collector != nullptr ? collector
                                      : &TraceCollector::Default()) {
  std::vector<std::string>& stack = SpanStack();
  Open(name, stack.empty() ? std::string_view() : stack.back());
}

TraceSpan::TraceSpan(std::string_view name, std::string_view parent_path,
                     TraceCollector* collector)
    : collector_(collector != nullptr ? collector
                                      : &TraceCollector::Default()) {
  Open(name, parent_path);
}

void TraceSpan::Open(std::string_view name, std::string_view parent_path) {
  CHECK(!name.empty()) << "span name must be non-empty";
  if (!parent_path.empty()) {
    path_ = std::string(parent_path) + '/';
  }
  // '/' is the path separator; names must not fork the tree accidentally.
  for (char c : name) path_ += c == '/' ? '_' : c;
  SpanStack().push_back(path_);
  timer_.Restart();
}

std::string TraceSpan::CurrentPath() {
  const std::vector<std::string>& stack = SpanStack();
  return stack.empty() ? std::string() : stack.back();
}

TraceSpan::~TraceSpan() {
  const double seconds = timer_.ElapsedSeconds();
  std::vector<std::string>& stack = SpanStack();
  CHECK(!stack.empty() && stack.back() == path_)
      << "TraceSpan destroyed out of LIFO order: " << path_;
  stack.pop_back();
  collector_->Record(path_, seconds);
}

}  // namespace obs
}  // namespace transn
