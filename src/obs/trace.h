#ifndef TRANSN_OBS_TRACE_H_
#define TRANSN_OBS_TRACE_H_

#include <stdint.h>

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace transn {
namespace obs {

/// Aggregated timing of one span path (e.g. "train/iteration/view:UU").
struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Sink for completed TraceSpans: a path-keyed aggregate tree ("a/b/c" is a
/// child of "a/b"). Record() takes a mutex, so it belongs at coarse span
/// granularity (epoch / view / shard), not per-pair. Ancestor paths are
/// materialized on first child record so the export tree is always
/// connected, even while a parent span is still open.
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector used by all built-in instrumentation.
  static TraceCollector& Default();

  /// Folds one completed span into the aggregate at `path`.
  void Record(std::string_view path, double seconds);

  /// All recorded paths in sorted (depth-first tree) order.
  std::vector<std::string> Paths() const;

  /// Aggregate for `path`; zero-count stats for unknown paths.
  SpanStats GetStats(std::string_view path) const;

  /// Nested span forest: [{"name", "path", "count", "total_seconds",
  /// "mean_seconds", "min_seconds", "max_seconds", "children": [...]}].
  void WriteJson(std::ostream& os) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SpanStats, std::less<>> nodes_;
};

/// RAII scoped timer that nests: spans opened on the same thread stack up
/// ("train" → "train/iteration" → "train/iteration/view:UU"), and a worker
/// thread joins a parent on another thread by passing the parent's path
/// explicitly (capture TraceSpan::CurrentPath() before scheduling).
///
///   TraceSpan iter("iteration");                  // child of enclosing span
///   const std::string parent = TraceSpan::CurrentPath();
///   pool->Schedule([parent] { TraceSpan shard("shard", parent); ... });
///
/// The destructor records the elapsed wall time into the collector. Spans
/// must be destroyed in LIFO order per thread (automatic with scoping).
class TraceSpan {
 public:
  /// Opens a span named `name` under the calling thread's innermost open
  /// span (or as a root). '/' in names is replaced by '_' — it is the path
  /// separator. Null collector selects TraceCollector::Default().
  explicit TraceSpan(std::string_view name, TraceCollector* collector = nullptr);

  /// Opens a span under an explicit parent path (empty = root), regardless
  /// of what is open on the calling thread. This is the cross-thread hook:
  /// shard spans on pool workers nest under the scheduling thread's span.
  TraceSpan(std::string_view name, std::string_view parent_path,
            TraceCollector* collector);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Full path of this span, e.g. "train/iteration/view:UU".
  const std::string& path() const { return path_; }

  /// Path of the calling thread's innermost open span; "" when none.
  static std::string CurrentPath();

 private:
  void Open(std::string_view name, std::string_view parent_path);

  TraceCollector* collector_;
  std::string path_;
  WallTimer timer_;
};

}  // namespace obs
}  // namespace transn

#endif  // TRANSN_OBS_TRACE_H_
