#include "serve/ann_index.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <queue>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/vec.h"

namespace transn {
namespace {

// Hard caps on the serialized graph shape: they bound allocations while
// parsing an untrusted (CRC-valid but hostile) file, and LevelFor() never
// exceeds the level cap in practice (P[level > 48] < M^-48).
constexpr uint32_t kAnnSectionVersion = 1;
constexpr uint32_t kMaxAnnLevel = 48;
constexpr uint32_t kMaxAnnDegree = 1024;

// Upper bound on a build generation (see Build). Part of the canonical
// algorithm — never serialized, but changing it changes the graph bytes.
// 512 keeps the exact intra-generation patch at ~M/2 extra distance
// evaluations per row (a few percent of the beam cost) while leaving
// hundreds of independent rows per barrier for the pool to chew on.
constexpr uint32_t kMaxGenerationRows = 512;

// The shared deterministic total order: score descending, row ascending.
// Identical to KnnIndex's contract, so exact and ANN results compare 1:1.
inline bool Better(const KnnResult& a, const KnnResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.row < b.row;
}

// Max-heap comparator: top() is the Better result.
struct WorseFirst {
  bool operator()(const KnnResult& a, const KnnResult& b) const {
    return Better(b, a);
  }
};
// Min-heap comparator: top() is the worst kept result.
struct BetterFirst {
  bool operator()(const KnnResult& a, const KnnResult& b) const {
    return Better(a, b);
  }
};

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Per-thread visited marks with an epoch counter: clearing between beam
// searches is a single increment, not a memset over num_rows bits. Each
// thread owns its copy, so const Search() stays thread-safe.
struct VisitScratch {
  std::vector<uint32_t> mark;
  uint32_t epoch = 0;
};
thread_local VisitScratch t_visit;

uint32_t BeginVisitEpoch(size_t num_rows) {
  VisitScratch& vs = t_visit;
  if (vs.mark.size() < num_rows) {
    vs.mark.assign(num_rows, 0);
    vs.epoch = 0;
  }
  if (++vs.epoch == 0) {  // wrapped: all stale marks look current, reset
    std::fill(vs.mark.begin(), vs.mark.end(), 0);
    vs.epoch = 1;
  }
  return vs.epoch;
}

// Quantizes one prepared (already normalized for cosine) vector to int8
// codes with a symmetric per-vector scale. Pure scalar math — identical on
// every ISA.
template <typename Src>
double QuantizeVector(const Src* src, size_t n, int8_t* codes) {
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(static_cast<double>(src[i])));
  }
  if (max_abs == 0.0) {
    std::fill(codes, codes + n, 0);
    return 1.0;
  }
  const double quant = 127.0 / max_abs;
  for (size_t i = 0; i < n; ++i) {
    long v = std::lround(static_cast<double>(src[i]) * quant);
    v = std::min(127l, std::max(-127l, v));
    codes[i] = static_cast<int8_t>(v);
  }
  return max_abs / 127.0;
}

// Runs fn(i) for i in [0, n): on the pool when it has real parallelism,
// inline otherwise. Every call site writes disjoint per-i slots, so the
// result is identical either way; a pool task failure (including the
// fault::kPoolTask failpoint) propagates out of ParallelFor's Wait().
void RunPhase(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1) {
    ParallelFor(*pool, n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

uint32_t AnnIndex::LevelFor(uint32_t row) const {
  const uint64_t h =
      SplitMix64(params_.seed ^ (0x9E3779B97F4A7C15ull *
                                 (static_cast<uint64_t>(row) + 1)));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  u = std::max(u, 1e-18);
  const double ml =
      1.0 / std::log(static_cast<double>(std::max<uint32_t>(
                params_.max_degree, 2)));
  const double level = -std::log(u) * ml;
  return std::min<uint32_t>(static_cast<uint32_t>(level), kMaxAnnLevel);
}

void AnnIndex::QuantizeBase(const Matrix& base, ThreadPool* pool) {
  num_rows_ = base.rows();
  dim_ = base.cols();
  CHECK_LE(dim_, static_cast<size_t>(1) << 17)
      << "AnnIndex: dim too large for exact int8 accumulation";
  codes_.resize(num_rows_ * dim_);
  scales_.resize(num_rows_);
  rerank_.resize(num_rows_ * dim_);
  // Rows are independent and write disjoint slices, so the loop shards
  // freely; per-row math is pure scalar, so the codes are identical at any
  // thread count (and to the builder's — Parse depends on that).
  RunPhase(pool, num_rows_, [&](size_t r) {
    thread_local std::vector<double> prepared;
    prepared.resize(dim_);
    const double* src = base.Row(r);
    double inv_norm = 1.0;
    if (metric_ == KnnMetric::kCosine) {
      // ref::Dot (sequential accumulation) keeps the norm — and hence the
      // codes — bit-identical on every ISA.
      const double sq = vec::ref::Dot(src, src, dim_);
      inv_norm = sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0;
    }
    for (size_t i = 0; i < dim_; ++i) {
      prepared[i] = metric_ == KnnMetric::kCosine ? src[i] * inv_norm : src[i];
      rerank_[r * dim_ + i] = static_cast<float>(prepared[i]);
    }
    scales_[r] = static_cast<float>(
        QuantizeVector(prepared.data(), dim_, codes_.data() + r * dim_));
  });
}

double AnnIndex::CodeScore(uint32_t a, uint32_t b) const {
  const int32_t dot =
      vec::DotI8(codes_.data() + static_cast<size_t>(a) * dim_,
                 codes_.data() + static_cast<size_t>(b) * dim_, dim_);
  return static_cast<double>(dot) * static_cast<double>(scales_[a]) *
         static_cast<double>(scales_[b]);
}

double AnnIndex::QueryScore(const int8_t* qcodes, double qscale,
                            uint32_t row) const {
  const int32_t dot = vec::DotI8(
      qcodes, codes_.data() + static_cast<size_t>(row) * dim_, dim_);
  return static_cast<double>(dot) * qscale *
         static_cast<double>(scales_[row]);
}

AnnIndex::LinkSpan AnnIndex::NeighborsAt(uint32_t node,
                                         uint32_t level) const {
  if (level == 0) {
    if (!build_level0_.empty()) {
      const std::vector<uint32_t>& v = build_level0_[node];
      return {v.data(), v.size()};
    }
    const uint32_t begin = level0_offsets_[node];
    return {level0_links_.data() + begin, level0_offsets_[node + 1] - begin};
  }
  const int32_t slot = upper_index_[node];
  if (slot < 0) return {};
  const UpperNode& un = upper_nodes_[slot];
  if (level > un.level) return {};
  const std::vector<uint32_t>& v = un.links[level - 1];
  return {v.data(), v.size()};
}

std::vector<uint32_t>* AnnIndex::MutableLinksAt(uint32_t node,
                                                uint32_t level) {
  if (level == 0) return &build_level0_[node];
  const int32_t slot = upper_index_[node];
  CHECK_GE(slot, 0);
  return &upper_nodes_[slot].links[level - 1];
}

uint32_t AnnIndex::GreedyStep(const int8_t* qcodes, double qscale,
                              uint32_t entry, uint32_t level,
                              AnnSearchStats* stats) const {
  uint32_t cur = entry;
  double cur_score = QueryScore(qcodes, qscale, cur);
  ++stats->dist_evals;
  bool improved = true;
  while (improved) {
    improved = false;
    const LinkSpan links = NeighborsAt(cur, level);
    if (links.count == 0) break;
    ++stats->hops;
    for (size_t i = 0; i < links.count; ++i) {
      const uint32_t nb = links.data[i];
      const double s = QueryScore(qcodes, qscale, nb);
      ++stats->dist_evals;
      // Tie-break toward the lower row id: at equal score the id strictly
      // decreases, so the walk still terminates — and deterministically.
      if (s > cur_score || (s == cur_score && nb < cur)) {
        cur_score = s;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<KnnResult> AnnIndex::SearchLayer(const int8_t* qcodes,
                                             double qscale, uint32_t entry,
                                             uint32_t level, size_t ef,
                                             AnnSearchStats* stats) const {
  const uint32_t epoch = BeginVisitEpoch(num_rows_);
  std::vector<uint32_t>& mark = t_visit.mark;

  std::priority_queue<KnnResult, std::vector<KnnResult>, WorseFirst>
      candidates;  // top() = best unexpanded
  std::priority_queue<KnnResult, std::vector<KnnResult>, BetterFirst>
      results;  // top() = worst kept
  const KnnResult first{entry, QueryScore(qcodes, qscale, entry)};
  ++stats->dist_evals;
  mark[entry] = epoch;
  candidates.push(first);
  results.push(first);

  while (!candidates.empty()) {
    const KnnResult cand = candidates.top();
    // The best unexpanded candidate is already worse than the worst kept
    // result and the beam is full: nothing reachable can improve it.
    if (results.size() >= ef && Better(results.top(), cand)) break;
    candidates.pop();
    ++stats->hops;
    const LinkSpan links = NeighborsAt(cand.row, level);
    for (size_t i = 0; i < links.count; ++i) {
      const uint32_t nb = links.data[i];
      if (mark[nb] == epoch) continue;
      mark[nb] = epoch;
      const KnnResult scored{nb, QueryScore(qcodes, qscale, nb)};
      ++stats->dist_evals;
      if (results.size() < ef || Better(scored, results.top())) {
        candidates.push(scored);
        results.push(scored);
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<KnnResult> out(results.size());
  for (size_t i = results.size(); i-- > 0;) {
    out[i] = results.top();  // min-heap pops worst-first → fill backwards
    results.pop();
  }
  return out;
}

std::vector<uint32_t> AnnIndex::SelectNeighbors(
    uint32_t target, const std::vector<KnnResult>& cands,
    size_t max_links) const {
  std::vector<uint32_t> selected;
  std::vector<uint32_t> pruned;
  selected.reserve(std::min(max_links, cands.size()));
  for (const KnnResult& cand : cands) {
    if (selected.size() >= max_links) break;
    if (cand.row == target) continue;
    bool keep = true;
    for (const uint32_t s : selected) {
      // Candidate is closer to an already-kept neighbor than to the target:
      // the kept neighbor already covers this direction, prune the edge.
      if (CodeScore(cand.row, s) > cand.score) {
        keep = false;
        break;
      }
    }
    if (keep) {
      selected.push_back(cand.row);
    } else {
      pruned.push_back(cand.row);
    }
  }
  // Backfill from the pruned edges (best-first) so sparse neighborhoods
  // still reach max_links connectivity — the keepPrunedConnections variant.
  for (const uint32_t p : pruned) {
    if (selected.size() >= max_links) break;
    selected.push_back(p);
  }
  return selected;
}

AnnIndex::InsertPlan AnnIndex::PlanInsert(
    uint32_t row, uint32_t gen_begin,
    const std::vector<uint32_t>& levels) const {
  const uint32_t level = levels[row];
  // The top layer this row will occupy links at when its commit runs: the
  // frozen graph's max level, raised by any promotion an earlier row of
  // this generation commits first. A pure function of the level hashes, so
  // it is computable here without seeing those commits.
  uint32_t commit_max = max_level_;
  for (uint32_t q = gen_begin; q < row; ++q) {
    commit_max = std::max(commit_max, levels[q]);
  }
  const uint32_t top = std::min(level, commit_max);

  InsertPlan plan;
  plan.links.resize(top + 1);
  const int8_t* qcodes = codes_.data() + static_cast<size_t>(row) * dim_;
  const double qscale = static_cast<double>(scales_[row]);
  AnnSearchStats stats;

  // Greedy descent through the frozen layers above this row's level. The
  // frozen graph is immutable for the whole planning phase, so concurrent
  // plans read it freely.
  uint32_t ep = entry_point_;
  for (uint32_t lc = max_level_; lc > level; --lc) {
    ep = GreedyStep(qcodes, qscale, ep, lc, &stats);
  }

  // Same-generation predecessors cannot be reached through the frozen
  // graph; patch them in with exact scores instead (at most
  // kMaxGenerationRows − 1 extra distance evaluations per row).
  std::vector<KnnResult> intra;
  intra.reserve(row - gen_begin);
  for (uint32_t q = gen_begin; q < row; ++q) {
    intra.push_back({q, CodeScore(row, q)});
  }

  const uint32_t beam_top = std::min(level, max_level_);
  for (uint32_t lc = top + 1; lc-- > 0;) {
    std::vector<KnnResult> cands;
    if (lc <= beam_top) {
      cands = SearchLayer(qcodes, qscale, ep, lc, params_.ef_construction,
                          &stats);
      if (!cands.empty()) ep = cands.front().row;
    }
    // Layers in (beam_top, top] exist only because a same-generation row is
    // promoting past the frozen max level: the frozen graph has nothing
    // there, so the intra-generation candidates are the whole layer.
    for (const KnnResult& q : intra) {
      if (levels[q.row] >= lc) cands.push_back(q);
    }
    std::sort(cands.begin(), cands.end(), Better);
    if (cands.size() > params_.ef_construction) {
      cands.resize(params_.ef_construction);
    }
    plan.links[lc] = SelectNeighbors(row, cands, params_.max_degree);
  }
  return plan;
}

void AnnIndex::CommitInsert(uint32_t row, uint32_t level, InsertPlan plan,
                            std::vector<OverfullList>* overfull) {
  for (uint32_t lc = 0; lc < plan.links.size(); ++lc) {
    std::vector<uint32_t>& own = *MutableLinksAt(row, lc);
    own = std::move(plan.links[lc]);
    for (const uint32_t nb : own) {
      std::vector<uint32_t>* nb_links = MutableLinksAt(nb, lc);
      nb_links->push_back(row);
      // Record the first crossing only: the list stays dirty until the
      // generation's re-prune phase, so one entry suffices — and entries
      // are unique, which lets the re-prunes run concurrently.
      if (nb_links->size() == MaxLinks(lc) + 1) {
        overfull->push_back({nb, lc});
      }
    }
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = row;
  }
}

void AnnIndex::PruneOverfullList(uint32_t node, uint32_t level) {
  std::vector<uint32_t>* links = MutableLinksAt(node, level);
  std::vector<KnnResult> cands;
  cands.reserve(links->size());
  for (const uint32_t l : *links) {
    cands.push_back({l, CodeScore(node, l)});
  }
  std::sort(cands.begin(), cands.end(), Better);
  *links = SelectNeighbors(node, cands, MaxLinks(level));
}

void AnnIndex::FlattenLevel0() {
  level0_offsets_.assign(num_rows_ + 1, 0);
  size_t total = 0;
  for (size_t r = 0; r < num_rows_; ++r) total += build_level0_[r].size();
  level0_links_.clear();
  level0_links_.reserve(total);
  for (size_t r = 0; r < num_rows_; ++r) {
    level0_offsets_[r] = static_cast<uint32_t>(level0_links_.size());
    level0_links_.insert(level0_links_.end(), build_level0_[r].begin(),
                         build_level0_[r].end());
  }
  level0_offsets_[num_rows_] = static_cast<uint32_t>(level0_links_.size());
  build_level0_.clear();
  build_level0_.shrink_to_fit();
}

// Batch-synchronous construction (DESIGN.md §5.6). Rows are inserted in
// generations [gen_begin, gen_end): a parallel phase computes every row's
// InsertPlan against the prefix graph frozen at gen_begin, a serial phase
// commits the plans in ascending row order, and a second parallel phase
// re-prunes the neighbor lists the commits pushed over their cap. Both
// parallel phases are pure per-slot functions of state no concurrent task
// writes, and the serial phase fixes the one order that matters — so the
// graph, and hence the serialized bytes, are identical for every thread
// count. Generations double from 1 (the early graph is all that exists to
// search) and cap at kMaxGenerationRows.
StatusOr<AnnIndex> AnnIndex::Build(const Matrix& base, KnnMetric metric,
                                   const AnnBuildParams& params,
                                   ThreadPool* pool) {
  CHECK_GE(params.max_degree, 2u);
  CHECK_LE(params.max_degree, kMaxAnnDegree);
  CHECK_GE(params.ef_construction, 1u);
  WallTimer timer;
  AnnIndex index;
  index.metric_ = metric;
  index.params_ = params;
  try {
    index.QuantizeBase(base, pool);
    const uint32_t n = static_cast<uint32_t>(index.num_rows_);

    std::vector<uint32_t> levels(n);
    RunPhase(pool, n, [&](size_t r) {
      levels[r] = index.LevelFor(static_cast<uint32_t>(r));
    });
    // Upper-layer slots are assigned up front in row order (the levels are
    // known before any insertion), preserving AppendTo's canonical
    // ascending-row upper-node layout. Unreached rows just hold empty lists
    // until their generation commits.
    index.upper_index_.assign(n, -1);
    for (uint32_t r = 0; r < n; ++r) {
      if (levels[r] == 0) continue;
      index.upper_index_[r] = static_cast<int32_t>(index.upper_nodes_.size());
      UpperNode un;
      un.level = levels[r];
      un.links.resize(levels[r]);
      index.upper_nodes_.push_back(std::move(un));
    }
    index.build_level0_.assign(n, {});
    if (n > 0) {
      index.entry_point_ = 0;
      index.max_level_ = levels[0];
    }

    std::vector<InsertPlan> plans;
    std::vector<OverfullList> overfull;
    uint32_t gen_begin = 1;
    while (gen_begin < n) {
      const uint32_t gen_end =
          std::min(n, gen_begin + std::min(gen_begin, kMaxGenerationRows));
      plans.assign(gen_end - gen_begin, {});
      RunPhase(pool, gen_end - gen_begin, [&](size_t i) {
        const uint32_t row = gen_begin + static_cast<uint32_t>(i);
        plans[i] = index.PlanInsert(row, gen_begin, levels);
      });
      overfull.clear();
      for (uint32_t row = gen_begin; row < gen_end; ++row) {
        index.CommitInsert(row, levels[row], std::move(plans[row - gen_begin]),
                           &overfull);
      }
      RunPhase(pool, overfull.size(), [&](size_t i) {
        index.PruneOverfullList(overfull[i].node, overfull[i].level);
      });
      gen_begin = gen_end;
    }
    index.FlattenLevel0();
  } catch (const std::exception& e) {
    // A pool worker task failed (fault::kPoolTask, allocation failure, …):
    // the partially built graph dies with `index` here — callers only ever
    // see a complete index or this Status.
    return Status::Internal(std::string("ann index build failed: ") +
                            e.what());
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::vector<KnnResult> AnnIndex::Search(const double* query, size_t k,
                                        size_t ef,
                                        AnnSearchStats* stats) const {
  AnnSearchStats local;
  if (stats == nullptr) stats = &local;
  *stats = {};
  if (num_rows_ == 0 || k == 0) return {};

  // Prepare the query exactly like a stored row: normalize (cosine), cast a
  // fp32 re-rank copy, quantize to int8 for traversal.
  std::vector<double> prepared(dim_);
  double inv_norm = 1.0;
  if (metric_ == KnnMetric::kCosine) {
    const double sq = vec::ref::Dot(query, query, dim_);
    inv_norm = sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0;
  }
  for (size_t i = 0; i < dim_; ++i) {
    prepared[i] =
        metric_ == KnnMetric::kCosine ? query[i] * inv_norm : query[i];
  }
  std::vector<float> query_f32(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    query_f32[i] = static_cast<float>(prepared[i]);
  }
  std::vector<int8_t> qcodes(dim_);
  const double qscale = QuantizeVector(prepared.data(), dim_, qcodes.data());

  uint32_t ep = entry_point_;
  for (uint32_t lc = max_level_; lc >= 1; --lc) {
    ep = GreedyStep(qcodes.data(), qscale, ep, lc, stats);
  }
  std::vector<KnnResult> cands =
      SearchLayer(qcodes.data(), qscale, ep, 0, std::max(ef, k), stats);

  // fp32 re-rank of the surviving beam: sequential double accumulation
  // (vec::DotF32), so the final ordering is ISA-independent.
  for (KnnResult& c : cands) {
    c.score = vec::DotF32(query_f32.data(),
                          rerank_.data() + static_cast<size_t>(c.row) * dim_,
                          dim_);
  }
  std::sort(cands.begin(), cands.end(), Better);
  if (cands.size() > k) cands.resize(k);
  return cands;
}

size_t AnnIndex::num_edges() const {
  size_t total = level0_links_.size();
  for (const std::vector<uint32_t>& v : build_level0_) total += v.size();
  for (const UpperNode& un : upper_nodes_) {
    for (const std::vector<uint32_t>& links : un.links) {
      total += links.size();
    }
  }
  return total;
}

double AnnIndex::avg_degree() const {
  return num_rows_ == 0
             ? 0.0
             : static_cast<double>(num_edges()) /
                   static_cast<double>(num_rows_);
}

void AnnIndex::AppendTo(std::string* out) const {
  CHECK(build_level0_.empty()) << "AppendTo before FlattenLevel0";
  AppendU32(out, kAnnSectionVersion);
  AppendU32(out, static_cast<uint32_t>(metric_));
  AppendU32(out, params_.max_degree);
  AppendU32(out, params_.ef_construction);
  AppendU64(out, params_.seed);
  AppendU32(out, static_cast<uint32_t>(num_rows_));
  AppendU32(out, static_cast<uint32_t>(dim_));
  AppendU32(out, max_level_);
  AppendU32(out, entry_point_);
  for (size_t r = 0; r < num_rows_; ++r) {
    const uint32_t begin = level0_offsets_[r];
    const uint32_t end = level0_offsets_[r + 1];
    AppendU32(out, end - begin);
    for (uint32_t i = begin; i < end; ++i) {
      AppendU32(out, level0_links_[i]);
    }
  }
  AppendU32(out, static_cast<uint32_t>(upper_nodes_.size()));
  // upper_index_ slots were assigned in row order, so this emits upper
  // nodes in ascending row order — canonical bytes.
  for (size_t r = 0; r < num_rows_; ++r) {
    const int32_t slot = upper_index_[r];
    if (slot < 0) continue;
    const UpperNode& un = upper_nodes_[slot];
    AppendU32(out, static_cast<uint32_t>(r));
    AppendU32(out, un.level);
    for (uint32_t l = 1; l <= un.level; ++l) {
      const std::vector<uint32_t>& links = un.links[l - 1];
      AppendU32(out, static_cast<uint32_t>(links.size()));
      for (const uint32_t nb : links) AppendU32(out, nb);
    }
  }
}

StatusOr<AnnIndex> AnnIndex::Parse(ByteReader* reader, const Matrix& base,
                                   ThreadPool* pool) {
  WallTimer timer;
  auto malformed = [&](const char* what) {
    return Status::InvalidArgument(
        std::string("serving model: malformed ANN section (") + what +
        ") at offset " + std::to_string(reader->offset()));
  };

  AnnIndex index;
  uint32_t section_version = 0, metric = 0, max_degree = 0, ef_c = 0;
  uint64_t seed = 0;
  uint32_t num_rows = 0, dim = 0, max_level = 0, entry_point = 0;
  if (!reader->ReadU32(&section_version) || !reader->ReadU32(&metric) ||
      !reader->ReadU32(&max_degree) || !reader->ReadU32(&ef_c) ||
      !reader->ReadU64(&seed) || !reader->ReadU32(&num_rows) ||
      !reader->ReadU32(&dim) || !reader->ReadU32(&max_level) ||
      !reader->ReadU32(&entry_point)) {
    return malformed("truncated header");
  }
  if (section_version != kAnnSectionVersion) {
    return malformed("unsupported ANN section version");
  }
  if (metric > static_cast<uint32_t>(KnnMetric::kDot)) {
    return malformed("bad metric");
  }
  if (max_degree < 2 || max_degree > kMaxAnnDegree) {
    return malformed("bad max_degree");
  }
  if (ef_c == 0) return malformed("bad ef_construction");
  if (num_rows != base.rows() || dim != base.cols()) {
    return malformed("shape does not match embedding matrix");
  }
  if (max_level > kMaxAnnLevel) return malformed("bad max_level");
  if (num_rows > 0 && entry_point >= num_rows) {
    return malformed("entry point out of range");
  }

  index.metric_ = static_cast<KnnMetric>(metric);
  index.params_.max_degree = max_degree;
  index.params_.ef_construction = ef_c;
  index.params_.seed = seed;
  index.max_level_ = max_level;
  index.entry_point_ = entry_point;
  index.num_rows_ = num_rows;
  index.dim_ = dim;

  index.level0_offsets_.assign(num_rows + 1, 0);
  index.level0_links_.clear();
  const size_t max_links0 = 2 * static_cast<size_t>(max_degree);
  for (uint32_t r = 0; r < num_rows; ++r) {
    index.level0_offsets_[r] =
        static_cast<uint32_t>(index.level0_links_.size());
    uint32_t count = 0;
    if (!reader->ReadU32(&count)) return malformed("truncated level-0 row");
    if (count > max_links0) return malformed("level-0 degree over cap");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t nb = 0;
      if (!reader->ReadU32(&nb)) return malformed("truncated level-0 links");
      if (nb >= num_rows) return malformed("level-0 link out of range");
      index.level0_links_.push_back(nb);
    }
  }
  index.level0_offsets_[num_rows] =
      static_cast<uint32_t>(index.level0_links_.size());

  uint32_t num_upper = 0;
  if (!reader->ReadU32(&num_upper)) return malformed("truncated upper count");
  if (num_upper > num_rows) return malformed("upper count over cap");
  index.upper_index_.assign(num_rows, -1);
  index.upper_nodes_.reserve(num_upper);
  int64_t prev_row = -1;
  for (uint32_t u = 0; u < num_upper; ++u) {
    uint32_t row = 0, level = 0;
    if (!reader->ReadU32(&row) || !reader->ReadU32(&level)) {
      return malformed("truncated upper node");
    }
    if (row >= num_rows) return malformed("upper row out of range");
    if (static_cast<int64_t>(row) <= prev_row) {
      return malformed("upper rows not ascending");
    }
    prev_row = row;
    if (level < 1 || level > max_level) return malformed("bad upper level");
    UpperNode un;
    un.level = level;
    un.links.resize(level);
    for (uint32_t l = 1; l <= level; ++l) {
      uint32_t count = 0;
      if (!reader->ReadU32(&count)) return malformed("truncated upper row");
      if (count > max_degree) return malformed("upper degree over cap");
      un.links[l - 1].reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t nb = 0;
        if (!reader->ReadU32(&nb)) return malformed("truncated upper links");
        if (nb >= num_rows) return malformed("upper link out of range");
        un.links[l - 1].push_back(nb);
      }
    }
    index.upper_index_[row] = static_cast<int32_t>(index.upper_nodes_.size());
    index.upper_nodes_.push_back(std::move(un));
  }

  // Codes, scales, and the fp32 re-rank table are not stored: rebuild them
  // from the base matrix (deterministic scalar math, so they match the
  // builder's bytes exactly). This n×d loop dominates v3 load time at
  // catalog scale, hence the pool.
  try {
    index.QuantizeBase(base, pool);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ann index code rebuild failed: ") +
                            e.what());
  }
  // Unlike Build, the graph came off disk — build_seconds_ reports what the
  // *load* cost (parse + code rebuild), the number reload dashboards need.
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

}  // namespace transn
