#ifndef TRANSN_SERVE_ANN_INDEX_H_
#define TRANSN_SERVE_ANN_INDEX_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "nn/matrix.h"
#include "serve/knn_index.h"
#include "serve/serving_format.h"
#include "util/status.h"

namespace transn {

class ThreadPool;

/// Build-time knobs of the layered-graph (HNSW-style) index. All three are
/// part of the index identity: the serialized section stores them, and two
/// builds with equal (base, metric, params) produce byte-identical graphs.
struct AnnBuildParams {
  /// Max out-degree M on the upper layers; layer 0 allows 2M. Also sets the
  /// level multiplier mL = 1/ln(M).
  uint32_t max_degree = 16;
  /// Beam width used while inserting (the ef_construction of the paper).
  uint32_t ef_construction = 100;
  /// Seeds the per-node level assignment (a pure hash of (seed, row), so a
  /// node's level never depends on insertion history).
  uint64_t seed = 42;
};

/// Per-query traversal counters, for the ann.* metrics.
struct AnnSearchStats {
  /// Nodes expanded (popped from the beam) across all layers.
  size_t hops = 0;
  /// int8 distance evaluations (≈ edges inspected).
  size_t dist_evals = 0;
};

/// Deterministic HNSW-style approximate k-NN index over the rows of a fixed
/// embedding matrix — the sublinear alternative to KnnIndex's exact O(N)
/// scan for large catalogs.
///
/// Structure: every row lives on layer 0; a row is promoted to higher layers
/// with geometric probability (level = floor(-ln(u) * mL), u hashed from
/// (seed, row)). A query greedily descends from the top-layer entry point,
/// then runs a best-first beam of width ef on layer 0; the surviving
/// candidates are re-ranked in fp32 and the top k returned.
///
/// Determinism contract (per (base, metric, params), across machines AND
/// across build thread counts):
///  * levels are a pure hash — independent of insertion history;
///  * construction is batch-synchronous (see DESIGN.md §5.6): rows are
///    planned in generations against a frozen prefix graph, and all graph
///    mutations are applied in ascending row order, so the adjacency is a
///    pure function of (base, metric, params) regardless of how many
///    threads computed the plans;
///  * traversal distances are int8 dot products accumulated exactly in
///    int32 (vec::DotI8 is bit-identical on every ISA) scaled by scalar
///    doubles, and all orderings break ties by (score desc, row asc);
///  * re-ranking uses vec::DotF32, sequential double accumulation on every
///    ISA.
/// Hence Build() is byte-reproducible and Search() returns identical result
/// lists on every machine — verified by tests/ann_index_test.cc.
///
/// Scores: kCosine rows are L2-normalized before quantization, so the
/// re-ranked score is the cosine similarity (in float32 row precision);
/// kDot scores are raw inner products. Both match KnnIndex's ordering up to
/// fp32 rounding of the stored rows.
class AnnIndex {
 public:
  /// An empty index (zero rows); the entry points are Build() and Parse().
  AnnIndex() = default;

  /// Builds the layered graph over base (n × d). `pool` parallelizes the
  /// per-generation planning and re-pruning phases; the serialized bytes are
  /// identical for every thread count (null or a 1-thread pool runs inline).
  /// ~O(n · M · ef_construction) int8 distance evaluations. Returns a
  /// non-OK Status when a pool worker task fails mid-build (e.g. the
  /// fault::kPoolTask failpoint); no partial graph escapes.
  static StatusOr<AnnIndex> Build(const Matrix& base, KnnMetric metric,
                                  const AnnBuildParams& params,
                                  ThreadPool* pool = nullptr);

  /// Top-k beam search. `query` has dim() entries; the beam width is
  /// max(ef, k). Returns up to min(k, n) results sorted by
  /// (score desc, row asc). Thread-safe (const; thread-local scratch only).
  std::vector<KnnResult> Search(const double* query, size_t k, size_t ef,
                                AnnSearchStats* stats = nullptr) const;

  /// Serializes the index as a serving-format section payload (see
  /// serving_format.h: the v3 ANN section). Byte-stable across machines.
  void AppendTo(std::string* out) const;

  /// Parses a section payload. `base` must be the matrix the index was built
  /// over (row count and dim are validated); the fp32 re-rank table is
  /// rebuilt from it rather than stored — `pool` parallelizes that n×d
  /// rebuild (the hot-reload cost at 1M rows). Returns kInvalidArgument on
  /// any malformed payload.
  static StatusOr<AnnIndex> Parse(ByteReader* reader, const Matrix& base,
                                  ThreadPool* pool = nullptr);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }
  KnnMetric metric() const { return metric_; }
  const AnnBuildParams& params() const { return params_; }
  /// Highest occupied layer (0 for a flat graph).
  uint32_t max_level() const { return max_level_; }
  /// Directed edge count over all layers.
  size_t num_edges() const;
  /// num_edges() / num_rows() (0 when empty).
  double avg_degree() const;
  /// Wall seconds spent constructing this instance: the graph build for
  /// Build(), the section parse + code rebuild for Parse().
  double build_seconds() const { return build_seconds_; }

 private:
  // Adjacency of one upper-layer node: links[l-1] holds its layer-l
  // neighbors, l in [1, level].
  struct UpperNode {
    uint32_t level = 0;
    std::vector<std::vector<uint32_t>> links;
  };

  // Borrowed view of one node's neighbor list at one layer.
  struct LinkSpan {
    const uint32_t* data = nullptr;
    size_t count = 0;
  };

  // Private per-row output of the parallel planning phase: the row's own
  // neighbor list per layer, links[lc] for lc in [0, min(level, commit-time
  // max level)]. Pure function of the frozen prefix graph, so any thread
  // may compute it.
  struct InsertPlan {
    std::vector<std::vector<uint32_t>> links;
  };

  // One over-cap neighbor list discovered during the commit phase.
  struct OverfullList {
    uint32_t node = 0;
    uint32_t level = 0;
  };

  void QuantizeBase(const Matrix& base, ThreadPool* pool);
  /// Similarity between two stored rows (int8 dot × scales).
  double CodeScore(uint32_t a, uint32_t b) const;
  /// Similarity between a quantized query and a stored row.
  double QueryScore(const int8_t* qcodes, double qscale, uint32_t row) const;
  /// Layer-l neighbors of a node. Layer 0 reads the build adjacency while
  /// Build() is running and the CSR arrays afterwards.
  LinkSpan NeighborsAt(uint32_t node, uint32_t level) const;
  std::vector<uint32_t>* MutableLinksAt(uint32_t node, uint32_t level);
  /// Greedy single-path descent at one layer; returns the local optimum.
  uint32_t GreedyStep(const int8_t* qcodes, double qscale, uint32_t entry,
                      uint32_t level, AnnSearchStats* stats) const;
  /// Best-first beam of width ef at one layer; results best-first.
  std::vector<KnnResult> SearchLayer(const int8_t* qcodes, double qscale,
                                     uint32_t entry, uint32_t level, size_t ef,
                                     AnnSearchStats* stats) const;
  /// Malkov's neighbor-selection heuristic: keep a candidate only if it is
  /// closer to the target than to every already-kept neighbor; backfill
  /// from the pruned ones when fewer than max_links survive.
  std::vector<uint32_t> SelectNeighbors(uint32_t target,
                                        const std::vector<KnnResult>& cands,
                                        size_t max_links) const;
  /// Parallel phase: beam-searches the frozen prefix graph (rows <
  /// gen_begin), merges exact-scored same-generation predecessors, and runs
  /// the selection heuristic. Reads only frozen state — thread-safe.
  InsertPlan PlanInsert(uint32_t row, uint32_t gen_begin,
                        const std::vector<uint32_t>& levels) const;
  /// Serial phase: installs a plan in ascending row order — own links,
  /// back-edges, entry-point promotion — recording lists pushed over their
  /// cap for the deferred re-prune.
  void CommitInsert(uint32_t row, uint32_t level, InsertPlan plan,
                    std::vector<OverfullList>* overfull);
  /// Parallel phase: re-runs the selection heuristic over one over-cap
  /// list. Pure per (node, level) — entries are distinct, so any thread may
  /// prune any entry.
  void PruneOverfullList(uint32_t node, uint32_t level);
  uint32_t LevelFor(uint32_t row) const;
  /// Compacts the build adjacency into the CSR arrays.
  void FlattenLevel0();
  size_t MaxLinks(uint32_t level) const {
    return level == 0 ? 2 * static_cast<size_t>(params_.max_degree)
                      : params_.max_degree;
  }

  size_t num_rows_ = 0;
  size_t dim_ = 0;
  KnnMetric metric_ = KnnMetric::kCosine;
  AnnBuildParams params_;
  uint32_t max_level_ = 0;
  uint32_t entry_point_ = 0;
  double build_seconds_ = 0.0;

  /// int8 traversal codes (num_rows × dim) with per-row symmetric scales:
  /// value ≈ code × scale, scale = max|row|/127.
  std::vector<int8_t> codes_;
  std::vector<float> scales_;
  /// fp32 re-rank rows (num_rows × dim; L2-normalized for kCosine). Rebuilt
  /// from the base matrix on Parse(), never serialized.
  std::vector<float> rerank_;

  /// Layer-0 adjacency, CSR after Build()/Parse(): node r's neighbors are
  /// level0_links_[level0_offsets_[r], level0_offsets_[r+1]).
  std::vector<uint32_t> level0_offsets_;
  std::vector<uint32_t> level0_links_;
  /// Mutable layer-0 adjacency used only while Build() runs.
  std::vector<std::vector<uint32_t>> build_level0_;
  /// Upper-layer adjacency, dense-indexed: upper_index_[r] is r's slot in
  /// upper_nodes_, or -1 for the (vast) majority of layer-0-only nodes.
  std::vector<int32_t> upper_index_;
  std::vector<UpperNode> upper_nodes_;
};

}  // namespace transn

#endif  // TRANSN_SERVE_ANN_INDEX_H_
