#include "serve/embedding_store.h"

#include <fstream>
#include <sstream>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/serving_format.h"
#include "util/fault.h"
#include "util/safe_io.h"
#include "util/string_util.h"

namespace transn {

namespace {

// A malformed header must not drive a multi-gigabyte allocation; these caps
// are far above anything the trainer produces.
constexpr uint32_t kMaxDim = 1u << 20;
constexpr uint32_t kMaxSeqLen = 1u << 16;
constexpr uint32_t kMaxCount = 1u << 28;  // nodes / views / translators

Status Malformed(const std::string& what, const ByteReader& r) {
  return Status::InvalidArgument(
      StrFormat("serving model: %s (offset %zu)", what.c_str(), r.offset()));
}

/// Reads rows×cols doubles into `m`; fails on truncation.
bool ReadMatrix(ByteReader& r, size_t rows, size_t cols, Matrix* m) {
  m->Resize(rows, cols);
  double* data = m->data();
  for (size_t i = 0; i < rows * cols; ++i) {
    if (!r.ReadF64(&data[i])) return false;
  }
  return true;
}

}  // namespace

int EmbeddingStore::FindViewByName(const std::string& name) const {
  for (size_t i = 0; i < views_.size(); ++i) {
    if (views_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const ServingTranslator* EmbeddingStore::FindTranslator(uint32_t from,
                                                        uint32_t to) const {
  for (const ServingTranslator& t : translators_) {
    if (t.from_view == from && t.to_view == to) return &t;
  }
  return nullptr;
}

StatusOr<EmbeddingStore> EmbeddingStore::Load(const std::string& path,
                                              ThreadPool* pool) {
  const obs::ScopedHistogramTimer load_timer(
      obs::MetricsRegistry::Default().GetHistogram(
          obs::kServeModelLoadSeconds, "seconds",
          "serving-model read + checksum + parse wall time"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if ((!in.good() && !in.eof()) || fault::MaybeFail(fault::kIoRead)) {
    return Status::IoError("read failed: " + path);
  }
  const std::string data = std::move(buf).str();

  if (data.size() < sizeof(kServingMagic) + sizeof(uint64_t) ||
      memcmp(data.data(), kServingMagic, sizeof(kServingMagic)) != 0) {
    return Status::InvalidArgument("not a TransN serving model: " + path);
  }
  // Verify the trailing checksum before trusting any field.
  const size_t body_size = data.size() - sizeof(uint64_t);
  ByteReader trailer(std::string_view(data).substr(body_size));
  uint64_t stored_sum = 0;
  trailer.ReadU64(&stored_sum);
  if (ServingChecksum(data.data(), body_size) != stored_sum) {
    return Status::InvalidArgument("serving model checksum mismatch: " + path);
  }

  ByteReader r(std::string_view(data).substr(0, body_size));
  char magic[sizeof(kServingMagic)];
  r.ReadRaw(magic, sizeof(magic));

  uint32_t version = 0, dim = 0, seq_len = 0;
  uint32_t num_nodes = 0, num_views = 0, num_translators = 0;
  uint8_t flags = 0;
  if (!r.ReadU32(&version)) return Malformed("truncated header", r);
  if (version != kServingFormatVersionV1 &&
      version != kServingFormatVersion &&
      version != kServingFormatVersionV3) {
    return Status::InvalidArgument(
        StrFormat("unsupported serving format version %u", version));
  }
  // v2+ files carry a CRC-32 after every section; verify each one so a
  // corruption is pinpointed to the section it hit. v1 files rely on the
  // (already verified) whole-file FNV trailer alone.
  const bool per_section_crcs = version >= 2;
  size_t section_start = r.offset();
  auto verify_section = [&](const char* what) -> Status {
    if (!per_section_crcs) return Status::Ok();
    const size_t section_end = r.offset();
    uint32_t stored = 0;
    if (!r.ReadU32(&stored)) {
      return Malformed(StrFormat("truncated %s CRC", what), r);
    }
    const uint32_t actual =
        Crc32(data.data() + section_start, section_end - section_start);
    if (actual != stored) {
      return Status::DataLoss(StrFormat(
          "serving model %s section CRC mismatch: stored %08x, computed %08x",
          what, stored, actual));
    }
    section_start = r.offset();
    return Status::Ok();
  };

  if (!r.ReadU32(&dim) || !r.ReadU32(&seq_len) || !r.ReadU32(&num_nodes) ||
      !r.ReadU32(&num_views) || !r.ReadU32(&num_translators) ||
      !r.ReadU8(&flags)) {
    return Malformed("truncated header", r);
  }
  RETURN_IF_ERROR(verify_section(kServingSectionHeader));
  if (dim == 0 || dim > kMaxDim || seq_len > kMaxSeqLen ||
      num_nodes > kMaxCount || num_views > kMaxCount ||
      num_translators > kMaxCount) {
    return Malformed("implausible header counts", r);
  }
  if ((flags & kServingFlagAnnIndex) && version < kServingFormatVersionV3) {
    return Malformed("ANN index flag requires format version 3", r);
  }

  EmbeddingStore store;
  store.dim_ = dim;
  store.seq_len_ = seq_len;
  store.format_version_ = version;

  store.node_names_.resize(num_nodes);
  store.name_to_id_.reserve(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!r.ReadString(&store.node_names_[n])) {
      return Malformed("truncated node-name index", r);
    }
    store.name_to_id_.emplace(store.node_names_[n], n);
  }
  RETURN_IF_ERROR(verify_section(kServingSectionNodeNames));

  if (flags & kServingFlagFinalEmbeddings) {
    store.has_final_embeddings_ = true;
    if (!ReadMatrix(r, num_nodes, dim, &store.final_embeddings_)) {
      return Malformed("truncated final embeddings", r);
    }
  }
  RETURN_IF_ERROR(verify_section(kServingSectionFinalEmbeddings));

  store.views_.resize(num_views);
  for (uint32_t v = 0; v < num_views; ++v) {
    ServingView& view = store.views_[v];
    uint8_t is_heter = 0;
    uint32_t num_local = 0;
    if (!r.ReadString(&view.name) || !r.ReadU8(&is_heter) ||
        !r.ReadU32(&num_local)) {
      return Malformed("truncated view header", r);
    }
    if (num_local > num_nodes) return Malformed("view larger than graph", r);
    view.is_heter = is_heter != 0;
    view.global_ids.resize(num_local);
    view.global_to_local.reserve(num_local);
    for (uint32_t i = 0; i < num_local; ++i) {
      uint32_t global = 0;
      if (!r.ReadU32(&global)) return Malformed("truncated view id map", r);
      if (global >= num_nodes) return Malformed("view id out of range", r);
      view.global_ids[i] = global;
      view.global_to_local.emplace(global, i);
    }
    if (!ReadMatrix(r, num_local, dim, &view.embeddings)) {
      return Malformed("truncated view embeddings", r);
    }
    RETURN_IF_ERROR(verify_section(kServingSectionView));
  }

  store.translators_.resize(num_translators);
  for (uint32_t t = 0; t < num_translators; ++t) {
    ServingTranslator& tr = store.translators_[t];
    uint8_t simple = 0, final_relu = 0;
    uint32_t num_encoders = 0;
    if (!r.ReadU32(&tr.from_view) || !r.ReadU32(&tr.to_view) ||
        !r.ReadU8(&simple) || !r.ReadU8(&final_relu) ||
        !r.ReadU32(&num_encoders)) {
      return Malformed("truncated translator header", r);
    }
    if (tr.from_view >= num_views || tr.to_view >= num_views ||
        num_encoders == 0 || num_encoders > kMaxSeqLen || seq_len < 2) {
      return Malformed("bad translator header", r);
    }
    tr.simple = simple != 0;
    tr.final_relu = final_relu != 0;
    tr.weights.resize(num_encoders);
    tr.biases.resize(num_encoders);
    for (uint32_t e = 0; e < num_encoders; ++e) {
      if (!ReadMatrix(r, seq_len, seq_len, &tr.weights[e]) ||
          !ReadMatrix(r, seq_len, 1, &tr.biases[e])) {
        return Malformed("truncated translator parameters", r);
      }
    }
    RETURN_IF_ERROR(verify_section(kServingSectionTranslator));
  }

  if (flags & kServingFlagAnnIndex) {
    // The ANN section leads with its payload length so the CRC can be
    // verified over the raw bytes *before* the graph parser touches them:
    // a corrupted section is always kDataLoss, never a confusing parse
    // error (crash_safety_test relies on this).
    uint32_t payload_len = 0;
    if (!r.ReadU32(&payload_len)) {
      return Malformed("truncated ann index header", r);
    }
    const size_t payload_start = r.offset();
    if (payload_len < sizeof(uint32_t) || !r.Skip(payload_len)) {
      return Malformed("truncated ann index section", r);
    }
    RETURN_IF_ERROR(verify_section(kServingSectionAnnIndex));

    ByteReader sub(std::string_view(data).substr(payload_start, payload_len));
    uint32_t target = 0;
    sub.ReadU32(&target);  // length-checked above
    const Matrix* base = nullptr;
    if (target == kServingAnnTargetFinal) {
      if (!(flags & kServingFlagFinalEmbeddings)) {
        return Malformed("ann index over absent final embeddings", r);
      }
      base = &store.final_embeddings_;
      store.ann_target_view_ = -1;
    } else {
      if (target >= num_views) {
        return Malformed("ann index target view out of range", r);
      }
      base = &store.views_[target].embeddings;
      store.ann_target_view_ = static_cast<int>(target);
    }
    StatusOr<AnnIndex> ann = AnnIndex::Parse(&sub, *base, pool);
    if (!ann.ok()) return ann.status();
    if (!sub.AtEnd()) {
      return Malformed("trailing bytes in ann index section", r);
    }
    store.ann_index_.emplace(std::move(ann).value());
  }

  if (!r.AtEnd()) return Malformed("trailing bytes after last section", r);
  return store;
}

}  // namespace transn
