#ifndef TRANSN_SERVE_EMBEDDING_STORE_H_
#define TRANSN_SERVE_EMBEDDING_STORE_H_

#include <stdint.h>

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/matrix.h"
#include "serve/ann_index.h"
#include "util/status.h"

namespace transn {

class ThreadPool;

/// One view's slice of a serving model: the view-specific embedding table
/// (full double precision, one row per local node) plus the local↔global id
/// mapping. Immutable after load.
struct ServingView {
  /// Edge-type name of the view ("friendship", "UK", …); CLI addressing.
  std::string name;
  bool is_heter = false;
  /// Local row r holds the embedding of global node global_ids[r].
  std::vector<NodeId> global_ids;
  /// num_local × dim.
  Matrix embeddings;

  /// Local row of a global node, or -1 when the node is not in this view.
  /// O(1) hash lookup.
  int64_t LocalOf(NodeId global) const {
    auto it = global_to_local.find(global);
    return it == global_to_local.end() ? -1 : static_cast<int64_t>(it->second);
  }

  /// Built at load time from global_ids.
  std::unordered_map<NodeId, uint32_t> global_to_local;
};

/// A stored translator T_{from→to} (weights only; see core/translator.h for
/// the architecture). `weights[e]` is the L×L feed-forward matrix of encoder
/// e and `biases[e]` its L×1 bias.
struct ServingTranslator {
  uint32_t from_view = 0;
  uint32_t to_view = 0;
  bool simple = false;
  bool final_relu = false;
  std::vector<Matrix> weights;
  std::vector<Matrix> biases;
};

/// Read-only, versioned binary model store: the serving-side image of a
/// trained TransNModel (per-view embeddings, translators, final averaged
/// embeddings, node-name index). Written by ExportServingModel() in
/// core/model_io; the file layout is documented in serve/serving_format.h.
class EmbeddingStore {
 public:
  /// An empty store (no nodes, no views); the real entry point is Load().
  /// Public because StatusOr<EmbeddingStore> requires default construction.
  EmbeddingStore() = default;

  /// Loads and fully validates a serving model (magic, version, section
  /// bounds, shapes, trailing FNV-1a checksum). `pool` parallelizes the v3
  /// ANN section's int8 code rebuild (AnnIndex::Parse) — the dominant load
  /// cost at catalog scale; the loaded store is identical with or without
  /// it.
  static StatusOr<EmbeddingStore> Load(const std::string& path,
                                       ThreadPool* pool = nullptr);

  size_t dim() const { return dim_; }
  /// Translator path length L; 0 when the model has no translators.
  size_t seq_len() const { return seq_len_; }
  size_t num_nodes() const { return node_names_.size(); }

  const std::string& node_name(NodeId n) const { return node_names_[n]; }
  /// Global id of a node name, or kInvalidNode. O(1) hash lookup.
  NodeId FindNode(const std::string& name) const {
    auto it = name_to_id_.find(name);
    return it == name_to_id_.end() ? kInvalidNode : it->second;
  }

  const std::vector<ServingView>& views() const { return views_; }
  const ServingView& view(size_t i) const { return views_[i]; }
  /// Index of the view with this edge-type name, or -1.
  int FindViewByName(const std::string& name) const;

  const std::vector<ServingTranslator>& translators() const {
    return translators_;
  }
  /// The stored translator T_{from→to}, or null when that direction was not
  /// exported.
  const ServingTranslator* FindTranslator(uint32_t from, uint32_t to) const;

  /// Final (view-averaged, §III-C) embeddings: num_nodes × dim.
  const Matrix& final_embeddings() const { return final_embeddings_; }
  /// Whether the file carried the final-embeddings section (flag bit 0).
  bool has_final_embeddings() const { return has_final_embeddings_; }

  /// Format version of the loaded file (1, 2, or 3).
  uint32_t format_version() const { return format_version_; }

  /// The pre-built ANN index shipped in a v3 file, or null. Its row space is
  /// the matrix named by ann_target_view().
  const AnnIndex* ann_index() const {
    return ann_index_.has_value() ? &*ann_index_ : nullptr;
  }
  /// View the ANN index was built over; -1 means the final embeddings.
  /// Meaningless when ann_index() is null.
  int ann_target_view() const { return ann_target_view_; }

 private:
  size_t dim_ = 0;
  size_t seq_len_ = 0;
  uint32_t format_version_ = 0;
  bool has_final_embeddings_ = false;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> name_to_id_;
  Matrix final_embeddings_;
  std::vector<ServingView> views_;
  std::vector<ServingTranslator> translators_;
  std::optional<AnnIndex> ann_index_;
  int ann_target_view_ = -1;
};

}  // namespace transn

#endif  // TRANSN_SERVE_EMBEDDING_STORE_H_
