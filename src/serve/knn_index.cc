#include "serve/knn_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"
#include "util/vec.h"

namespace transn {

namespace {

/// Serial scans below this row count even when a pool is available (the
/// fan-out overhead dominates). Does not affect results, only scheduling.
constexpr size_t kMinRowsPerShard = 2048;

/// Total order all scans agree on: higher score first, ties to the smaller
/// row id. This is what makes sharded results independent of thread count.
inline bool Better(const KnnResult& a, const KnnResult& b) {
  return a.score != b.score ? a.score > b.score : a.row < b.row;
}

}  // namespace

KnnIndex::KnnIndex(const Matrix* base, KnnIndexOptions options,
                   ThreadPool* pool)
    : base_(base), options_(options) {
  CHECK(base != nullptr);
  if (options_.metric == KnnMetric::kCosine) {
    inv_norms_.resize(base_->rows());
    for (size_t r = 0; r < base_->rows(); ++r) {
      const double norm =
          std::sqrt(vec::Dot(base_->Row(r), base_->Row(r), base_->cols()));
      inv_norms_[r] = norm > 0.0 ? 1.0 / norm : 0.0;
    }
  }
  if (options_.num_centroids > 0 && base_->rows() > 0) BuildQuantizer(pool);
}

size_t KnnIndex::num_rows() const { return base_->rows(); }

double KnnIndex::RowScore(uint32_t row, const double* query,
                          double query_inv_norm) const {
  double s = vec::Dot(base_->Row(row), query, base_->cols());
  if (options_.metric == KnnMetric::kCosine) {
    s *= inv_norms_[row] * query_inv_norm;
  }
  return s;
}

void KnnIndex::ScanRange(const double* query, double query_inv_norm,
                         uint32_t begin, uint32_t end, size_t k,
                         std::vector<KnnResult>* heap) const {
  // Bounded partial heap: `heap` is a binary heap whose front is the current
  // k-th best (the *worst* kept result) under the Better total order. The
  // inner loop's common case is the two threshold compares below — heap
  // operations only fire when a row actually displaces the front.
  double threshold_score = heap->size() == k && k > 0
                               ? heap->front().score
                               : -std::numeric_limits<double>::infinity();
  uint32_t threshold_row = heap->size() == k && k > 0 ? heap->front().row : 0;
  for (uint32_t r = begin; r < end; ++r) {
    const double score = RowScore(r, query, query_inv_norm);
    if (heap->size() < k) {
      heap->push_back({r, score});
      std::push_heap(heap->begin(), heap->end(), Better);
      if (heap->size() == k) {
        threshold_score = heap->front().score;
        threshold_row = heap->front().row;
      }
      continue;
    }
    if (score < threshold_score ||
        (score == threshold_score && r > threshold_row)) {
      continue;
    }
    std::pop_heap(heap->begin(), heap->end(), Better);
    heap->back() = {r, score};
    std::push_heap(heap->begin(), heap->end(), Better);
    threshold_score = heap->front().score;
    threshold_row = heap->front().row;
  }
}

void KnnIndex::ScanRows(const double* query, double query_inv_norm,
                        const std::vector<uint32_t>& rows, size_t k,
                        std::vector<KnnResult>* heap) const {
  for (uint32_t r : rows) {
    const double score = RowScore(r, query, query_inv_norm);
    if (heap->size() < k) {
      heap->push_back({r, score});
      std::push_heap(heap->begin(), heap->end(), Better);
      continue;
    }
    const KnnResult& worst = heap->front();
    if (score < worst.score || (score == worst.score && r > worst.row)) {
      continue;
    }
    std::pop_heap(heap->begin(), heap->end(), Better);
    heap->back() = {r, score};
    std::push_heap(heap->begin(), heap->end(), Better);
  }
}

std::vector<KnnResult> KnnIndex::Search(const double* query, size_t k,
                                        ThreadPool* pool) const {
  const size_t n = base_->rows();
  k = std::min(k, n);
  if (k == 0) return {};
  double query_inv_norm = 1.0;
  if (options_.metric == KnnMetric::kCosine) {
    const double norm = std::sqrt(vec::Dot(query, query, base_->cols()));
    query_inv_norm = norm > 0.0 ? 1.0 / norm : 0.0;
  }

  const size_t max_shards =
      pool != nullptr ? std::min(pool->num_threads(), n / kMinRowsPerShard)
                      : 0;
  std::vector<KnnResult> merged;
  if (max_shards <= 1) {
    merged.reserve(k);
    ScanRange(query, query_inv_norm, 0, static_cast<uint32_t>(n), k, &merged);
  } else {
    // Each shard keeps its own top-k; the union necessarily contains the
    // global top-k under the shared total order, so the merge below is exact
    // and thread-count-independent.
    std::vector<std::vector<KnnResult>> shard_heaps(max_shards);
    ParallelFor(*pool, max_shards, [&](size_t s) {
      const uint32_t begin = static_cast<uint32_t>(n * s / max_shards);
      const uint32_t end = static_cast<uint32_t>(n * (s + 1) / max_shards);
      shard_heaps[s].reserve(k);
      ScanRange(query, query_inv_norm, begin, end, k, &shard_heaps[s]);
    });
    for (const auto& h : shard_heaps) {
      merged.insert(merged.end(), h.begin(), h.end());
    }
  }
  std::sort(merged.begin(), merged.end(), Better);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<KnnResult> KnnIndex::SearchQuantized(const double* query, size_t k,
                                                 size_t nprobe) const {
  CHECK_GT(centroids_.rows(), 0u) << "index built without quantization";
  const size_t n = base_->rows();
  k = std::min(k, n);
  if (k == 0) return {};
  double query_inv_norm = 1.0;
  if (options_.metric == KnnMetric::kCosine) {
    const double norm = std::sqrt(vec::Dot(query, query, base_->cols()));
    query_inv_norm = norm > 0.0 ? 1.0 / norm : 0.0;
  }

  // Rank cells by the query's score against their centroid.
  std::vector<KnnResult> ranked(centroids_.rows());
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double s = vec::Dot(centroids_.Row(c), query, centroids_.cols());
    if (options_.metric == KnnMetric::kCosine) {
      const double cn = std::sqrt(
          vec::Dot(centroids_.Row(c), centroids_.Row(c), centroids_.cols()));
      s = cn > 0.0 ? s / cn * query_inv_norm : 0.0;
    }
    ranked[c] = {static_cast<uint32_t>(c), s};
  }
  std::sort(ranked.begin(), ranked.end(), Better);
  if (nprobe == 0) nprobe = ranked.size();
  nprobe = std::min(nprobe, ranked.size());

  std::vector<KnnResult> heap;
  heap.reserve(k);
  for (size_t i = 0; i < nprobe; ++i) {
    ScanRows(query, query_inv_norm, cells_[ranked[i].row], k, &heap);
  }
  std::sort(heap.begin(), heap.end(), Better);
  if (heap.size() > k) heap.resize(k);
  return heap;
}

void KnnIndex::BuildQuantizer(ThreadPool* pool) {
  const size_t n = base_->rows();
  const size_t d = base_->cols();
  const size_t kc = std::min(options_.num_centroids, n);

  // Cosine clusters the direction sphere: work on L2-normalized copies so
  // Euclidean assignment approximates angular proximity (spherical k-means).
  Matrix points;
  const Matrix* pts = base_;
  if (options_.metric == KnnMetric::kCosine) {
    points = *base_;
    for (size_t r = 0; r < n; ++r) {
      double* row = points.Row(r);
      for (size_t c = 0; c < d; ++c) row[c] *= inv_norms_[r];
    }
    pts = &points;
  }

  Rng rng(options_.seed);
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  rng.Shuffle(order);
  centroids_.Resize(kc, d);
  for (size_t c = 0; c < kc; ++c) {
    const double* row = pts->Row(order[c]);
    std::copy(row, row + d, centroids_.Row(c));
  }

  std::vector<uint32_t> assign(n, 0);
  auto assign_row = [&](size_t r) {
    double best = std::numeric_limits<double>::infinity();
    uint32_t best_c = 0;
    for (size_t c = 0; c < kc; ++c) {
      const double dist =
          vec::SquaredDistance(pts->Row(r), centroids_.Row(c), d);
      if (dist < best) {  // ties keep the smaller index: deterministic
        best = dist;
        best_c = static_cast<uint32_t>(c);
      }
    }
    assign[r] = best_c;
  };

  for (size_t it = 0; it < options_.kmeans_iterations; ++it) {
    if (pool != nullptr && pool->num_threads() > 1 && n >= kMinRowsPerShard) {
      ParallelFor(*pool, n, assign_row);  // pure per-row: deterministic
    } else {
      for (size_t r = 0; r < n; ++r) assign_row(r);
    }
    centroids_.Fill(0.0);
    std::vector<size_t> counts(kc, 0);
    for (size_t r = 0; r < n; ++r) {
      double* ctr = centroids_.Row(assign[r]);
      const double* row = pts->Row(r);
      for (size_t c = 0; c < d; ++c) ctr[c] += row[c];
      ++counts[assign[r]];
    }
    for (size_t c = 0; c < kc; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cell from a random point (deterministic stream).
        const double* row = pts->Row(rng.NextUint64(n));
        std::copy(row, row + d, centroids_.Row(c));
        continue;
      }
      double* ctr = centroids_.Row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t i = 0; i < d; ++i) ctr[i] *= inv;
    }
  }

  // Final assignment defines the cells (rows within a cell stay ascending).
  if (pool != nullptr && pool->num_threads() > 1 && n >= kMinRowsPerShard) {
    ParallelFor(*pool, n, assign_row);
  } else {
    for (size_t r = 0; r < n; ++r) assign_row(r);
  }
  cells_.assign(kc, {});
  for (size_t r = 0; r < n; ++r) {
    cells_[assign[r]].push_back(static_cast<uint32_t>(r));
  }
}

}  // namespace transn
