#ifndef TRANSN_SERVE_KNN_INDEX_H_
#define TRANSN_SERVE_KNN_INDEX_H_

#include <stdint.h>

#include <vector>

#include "nn/matrix.h"
#include "util/thread_pool.h"

namespace transn {

enum class KnnMetric {
  kCosine,
  kDot,
};

/// One scored neighbor; `row` indexes the base matrix the index was built
/// over (a view's local ids or global ids for the final-embedding matrix).
struct KnnResult {
  uint32_t row = 0;
  double score = 0.0;
};

struct KnnIndexOptions {
  KnnMetric metric = KnnMetric::kCosine;
  /// Coarse-quantization cells for the pruned scan; 0 disables quantization
  /// (Search falls back to the exact scan and SearchQuantized CHECK-fails).
  size_t num_centroids = 0;
  size_t kmeans_iterations = 10;
  uint64_t seed = 42;
};

/// Top-k similarity search over the rows of a fixed embedding matrix.
///
/// Two scan modes share one deterministic contract — results are totally
/// ordered by (score desc, row asc), so the answer is identical for any
/// thread count or shard layout:
///  * exact: every row is scored with a 4-way unrolled dot product and fed
///    through a bounded partial heap whose common case is a single threshold
///    compare (no heap traffic until a row actually beats the current k-th
///    best). Sharded across a ThreadPool when one is supplied.
///  * quantized: rows are k-means-clustered at build time; a query ranks the
///    centroids and exhaustively scores only the `nprobe` best cells —
///    approximate, with recall controlled by nprobe (knn_index_test pins
///    recall ≥ 0.95 on HSBM embeddings).
class KnnIndex {
 public:
  /// `base` must outlive the index. Cosine metric precomputes reciprocal row
  /// norms (zero rows score 0). When options.num_centroids > 0 the
  /// quantizer is trained here, deterministically from options.seed; `pool`
  /// (optional) only parallelizes the assignment step and does not change
  /// the result.
  KnnIndex(const Matrix* base, KnnIndexOptions options,
           ThreadPool* pool = nullptr);

  /// Exact top-k scan. `query` has base->cols() entries. Returns
  /// min(k, rows) results sorted by (score desc, row asc).
  std::vector<KnnResult> Search(const double* query, size_t k,
                                ThreadPool* pool = nullptr) const;

  /// Pruned scan over the nprobe best quantizer cells. Requires
  /// num_centroids > 0. nprobe == 0 probes every cell (== exact result).
  std::vector<KnnResult> SearchQuantized(const double* query, size_t k,
                                         size_t nprobe) const;

  size_t num_rows() const;
  size_t num_centroids() const { return centroids_.rows(); }
  const std::vector<std::vector<uint32_t>>& cells() const { return cells_; }

 private:
  double RowScore(uint32_t row, const double* query,
                  double query_inv_norm) const;
  /// Scans rows [begin, end), pushing survivors into a caller-owned
  /// (score desc, row asc) partial heap of capacity k.
  void ScanRange(const double* query, double query_inv_norm, uint32_t begin,
                 uint32_t end, size_t k, std::vector<KnnResult>* heap) const;
  void ScanRows(const double* query, double query_inv_norm,
                const std::vector<uint32_t>& rows, size_t k,
                std::vector<KnnResult>* heap) const;
  void BuildQuantizer(ThreadPool* pool);

  const Matrix* base_;
  KnnIndexOptions options_;
  /// 1/||row||_2 for cosine (0 for zero rows); empty for dot.
  std::vector<double> inv_norms_;
  Matrix centroids_;  // num_centroids × dim
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace transn

#endif  // TRANSN_SERVE_KNN_INDEX_H_
