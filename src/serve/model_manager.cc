#include "serve/model_manager.h"

#include <exception>
#include <string>
#include <utility>

#include "obs/metric_names.h"
#include "util/timer.h"

namespace transn {

ModelManager::ModelManager(QueryServerOptions options, size_t warmup_queries)
    : options_(options), warmup_queries_(warmup_queries) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  reloads_ = registry.GetCounter(obs::kServeReloadsTotal, "reloads",
                                "successful atomic model swaps");
  reload_failures_ = registry.GetCounter(
      obs::kServeReloadFailuresTotal, "reloads",
      "reload attempts that failed; the old model kept serving");
  reload_seconds_ = registry.GetHistogram(
      obs::kServeReloadSeconds, "seconds",
      "end-to-end reload wall time (load + index build + swap)");
  generation_gauge_ = registry.GetGauge(
      obs::kServeModelGeneration, "generation",
      "generation number of the model currently serving");
}

Status ModelManager::Reload(const std::string& path) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  WallTimer total;

  // Build the whole next generation off to the side; the current model keeps
  // serving reads throughout. Any failure below returns before the swap, so
  // a partial load can never become visible.
  auto next = std::make_shared<ServingModel>();
  next->path = path;

  if (reload_pool_ == nullptr && options_.num_threads != 1) {
    reload_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }

  WallTimer load_timer;
  StatusOr<EmbeddingStore> store =
      EmbeddingStore::Load(path, reload_pool_.get());
  if (!store.ok()) {
    reload_failures_->Increment();
    consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
    return store.status();
  }
  next->store = std::move(store).value();
  next->load_seconds = load_timer.ElapsedSeconds();

  WallTimer index_timer;
  try {
    next->server = std::make_unique<QueryServer>(&next->store, options_);
    next->index_build_seconds = index_timer.ElapsedSeconds();
    if (warmup_queries_ > 0) next->server->Warmup(warmup_queries_);
  } catch (const std::exception& e) {
    // QueryServer construction failed (a pool worker task died mid-ANN
    // build, allocation failure, …): drop the half-built generation and
    // keep the old one serving, exactly like a failed Load.
    reload_failures_->Increment();
    consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("reload index build failed: ") +
                            e.what());
  }

  next->generation = next_generation_++;
  next->loaded_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> swap_lock(swap_mu_);
    current_ = std::move(next);  // old generation freed when last reader drops
  }
  consecutive_failures_.store(0, std::memory_order_relaxed);
  reloads_->Increment();
  reload_seconds_->Record(total.ElapsedSeconds());
  generation_gauge_->Set(static_cast<double>(generation()));
  return Status::Ok();
}

std::shared_ptr<const ServingModel> ModelManager::Current() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return current_;
}

uint64_t ModelManager::generation() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return current_ == nullptr ? 0 : current_->generation;
}

double ModelManager::staleness_seconds() const {
  std::shared_ptr<const ServingModel> model = Current();
  if (model == nullptr) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       model->loaded_at)
      .count();
}

}  // namespace transn
