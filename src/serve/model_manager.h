#ifndef TRANSN_SERVE_MODEL_MANAGER_H_
#define TRANSN_SERVE_MODEL_MANAGER_H_

#include <stdint.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/query_server.h"
#include "util/status.h"

namespace transn {

/// One immutable serving generation: a loaded EmbeddingStore plus the
/// QueryServer (k-NN index, translators) built over it. Created by
/// ModelManager; never mutated after construction, so any number of threads
/// may read a generation they hold a shared_ptr to.
///
/// QueryServer::Handle(name, /*record=*/false) is the only thread-safe entry
/// point for concurrent callers (the recording path and HandleBatch mutate a
/// shared histogram); the serve_app batching executor serializes all
/// recorded traffic through one thread instead.
struct ServingModel {
  uint64_t generation = 0;
  std::string path;
  /// Wall seconds spent in EmbeddingStore::Load / QueryServer construction
  /// (the two halves of a reload), for /healthz and bench reporting.
  double load_seconds = 0.0;
  double index_build_seconds = 0.0;
  /// When this generation was swapped in; serve.staleness_seconds measures
  /// from here (it keeps growing while reloads fail).
  std::chrono::steady_clock::time_point loaded_at{};
  EmbeddingStore store;
  std::unique_ptr<QueryServer> server;
};

/// RCU-style holder of the current ServingModel. Readers take a snapshot
/// (shared_ptr copy under a short mutex) and use it lock-free for as long as
/// they like; Reload() builds the next generation completely off to the side
/// and swaps the pointer only on success, so a failed load leaves the old
/// model serving and in-flight queries on the old snapshot are never
/// invalidated.
class ModelManager {
 public:
  /// `warmup_queries` unrecorded queries run against every freshly built
  /// generation before it is swapped in (cache/page warmup off-traffic).
  explicit ModelManager(QueryServerOptions options, size_t warmup_queries = 0);

  /// Loads `path` and builds a fresh index; on success the new generation
  /// becomes current. On failure — including a worker-task failure inside
  /// the parallel ANN build/load (fault::kPoolTask) — the previous
  /// generation (if any) keeps serving and the error is returned.
  /// Serialized: concurrent Reload calls queue behind `reload_mu_`.
  Status Reload(const std::string& path);

  /// The current generation, or null before the first successful Reload.
  std::shared_ptr<const ServingModel> Current() const;

  /// Generation counter of the current model (0 = none yet).
  uint64_t generation() const;

  /// Reload failures since the last successful swap (0 while healthy).
  /// /healthz reports "degraded" when this is nonzero — the model keeps
  /// serving but is going stale.
  uint64_t consecutive_reload_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

  /// Seconds the current generation has been serving (0 when none loaded).
  double staleness_seconds() const;

 private:
  QueryServerOptions options_;
  size_t warmup_queries_ = 0;
  /// Parallelizes the load half of a reload (the v3 ANN code rebuild in
  /// AnnIndex::Parse) when options_.num_threads != 1; the loaded bytes are
  /// identical with or without it. Guarded by reload_mu_.
  std::unique_ptr<ThreadPool> reload_pool_;
  /// Serializes reloads (load + index build happen outside swap_mu_).
  std::mutex reload_mu_;
  uint64_t next_generation_ = 1;
  /// Guards only the pointer swap/copy.
  mutable std::mutex swap_mu_;
  std::shared_ptr<const ServingModel> current_;
  /// Failed reloads since the last success (readable without swap_mu_).
  std::atomic<uint64_t> consecutive_failures_{0};

  obs::Counter* reloads_;
  obs::Counter* reload_failures_;
  obs::Histogram* reload_seconds_;
  obs::Gauge* generation_gauge_;
};

}  // namespace transn

#endif  // TRANSN_SERVE_MODEL_MANAGER_H_
