#include "serve/query_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metric_names.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/vec.h"

namespace transn {

const char* ServeIndexKindName(ServeIndexKind kind) {
  switch (kind) {
    case ServeIndexKind::kExact:
      return "exact";
    case ServeIndexKind::kQuantized:
      return "quantized";
    case ServeIndexKind::kHnsw:
      return "hnsw";
  }
  return "unknown";
}

bool ParseServeIndexKind(const std::string& name, ServeIndexKind* out) {
  if (name == "exact") {
    *out = ServeIndexKind::kExact;
  } else if (name == "quantized") {
    *out = ServeIndexKind::kQuantized;
  } else if (name == "hnsw") {
    *out = ServeIndexKind::kHnsw;
  } else {
    return false;
  }
  return true;
}

QueryServer::QueryServer(const EmbeddingStore* store,
                         QueryServerOptions options)
    : store_(store), options_(options), translation_(store) {
  CHECK(store != nullptr);
  CHECK_GE(options_.target_view, -1);
  CHECK_LT(options_.target_view, static_cast<int>(store->views().size()));
  CHECK_GT(options_.k, 0u);

  const size_t rows = target_matrix().rows();
  KnnIndexOptions idx;
  idx.metric = options_.metric;
  idx.seed = options_.seed;
  if (options_.index_kind == ServeIndexKind::kQuantized) {
    idx.num_centroids =
        options_.num_centroids > 0
            ? options_.num_centroids
            : std::max<size_t>(
                  1, static_cast<size_t>(std::sqrt(
                         static_cast<double>(std::max<size_t>(rows, 1)))));
    if (options_.nprobe == 0) {
      options_.nprobe = std::max<size_t>(1, idx.num_centroids / 4);
    }
  }
  // Default beam width 128: the operating point bench/ann_frontier gates,
  // where recall@10 holds >= 0.95 even at 1M rows.
  if (options_.ef_search == 0) options_.ef_search = 128;
  if (options_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    options_.num_threads = pool_->num_threads();
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  // Record which kernel ISA the scoring loops dispatch to (see util/vec.h).
  registry
      .GetGauge(obs::kKernelsIsa, "isa",
                "vector-kernel ISA: 0=scalar, 1=avx2, 2=neon")
      ->Set(static_cast<double>(vec::ActiveIsa()));
  requests_counter_ = registry.GetCounter(obs::kServeRequestsTotal, "requests",
                                          "recorded queries handled");
  errors_counter_ =
      registry.GetCounter(obs::kServeRequestErrorsTotal, "requests",
                          "recorded queries with a non-OK status");
  coldstart_counter_ =
      registry.GetCounter(obs::kServeColdStartTotal, "requests",
                          "queries resolved via cold-start translation");
  latency_hist_ = registry.GetHistogram(obs::kServeRequestLatencySeconds,
                                        "seconds",
                                        "end-to-end per-request latency");

  // The exact index is always built: it serves kExact/kQuantized traffic
  // and is the recall-probe ground truth in kHnsw mode (its construction is
  // a cheap norm precompute next to the graph build).
  WallTimer build_timer;
  index_ = std::make_unique<KnnIndex>(&target_matrix(), idx, pool_.get());
  registry
      .GetHistogram(obs::kServeIndexBuildSeconds, "seconds",
                    "k-NN index construction time")
      ->Record(build_timer.ElapsedSeconds());

  if (options_.index_kind == ServeIndexKind::kHnsw) {
    // Prefer the index shipped in the serving file (v3) when it covers the
    // same matrix with the same metric; otherwise build one here, on the
    // batch pool when one exists (identical bytes at any thread count).
    const AnnIndex* stored = store_->ann_index();
    if (stored != nullptr &&
        store_->ann_target_view() == options_.target_view &&
        stored->metric() == options_.metric &&
        stored->num_rows() == rows) {
      ann_ = stored;
    } else {
      StatusOr<AnnIndex> built = AnnIndex::Build(
          target_matrix(), options_.metric, options_.ann_params, pool_.get());
      // The constructor cannot return a Status; rethrow so ModelManager's
      // reload path converts the failure into a kept-old-model reload error
      // (and the CLI tools report it before serving anything).
      if (!built.ok()) throw std::runtime_error(built.status().ToString());
      owned_ann_ = std::make_unique<AnnIndex>(std::move(built).value());
      ann_ = owned_ann_.get();
    }
    // For a borrowed index build_seconds() is the v3 parse + code-rebuild
    // time — the cost this process actually paid to get the index.
    registry
        .GetHistogram(obs::kAnnBuildSeconds, "seconds",
                      "ANN index build (or v3 load + code rebuild) time")
        ->Record(ann_->build_seconds());
    registry
        .GetGauge(obs::kAnnBuildThreads, "threads",
                  "worker threads the ANN build/load ran with")
        ->Set(static_cast<double>(pool_ != nullptr ? pool_->num_threads()
                                                   : 1));
    registry
        .GetGauge(obs::kAnnGraphAvgDegree, "edges",
                  "directed ANN edges per node, all layers")
        ->Set(ann_->avg_degree());
    registry
        .GetGauge(obs::kAnnGraphMaxLevel, "layers",
                  "highest occupied ANN layer")
        ->Set(static_cast<double>(ann_->max_level()));
    registry
        .GetGauge(obs::kAnnEfSearch, "candidates",
                  "ANN query beam width (ef)")
        ->Set(static_cast<double>(options_.ef_search));
    ann_hops_hist_ = registry.GetHistogram(
        obs::kAnnHopsPerQuery, "hops", "ANN graph nodes expanded per query");
    ProbeAnnRecall();
  }
}

void QueryServer::ProbeAnnRecall() {
  const Matrix& base = target_matrix();
  const size_t num_probes = std::min<size_t>(16, base.rows());
  const size_t k = std::min(options_.k, base.rows());
  double hits = 0.0, want = 0.0;
  for (size_t p = 0; p < num_probes; ++p) {
    // Probe rows are spread deterministically over the matrix.
    const size_t row = base.rows() * p / std::max<size_t>(num_probes, 1);
    const double* query = base.Row(row);
    const std::vector<KnnResult> exact = index_->Search(query, k, nullptr);
    const std::vector<KnnResult> approx =
        ann_->Search(query, k, options_.ef_search, nullptr);
    for (const KnnResult& e : exact) {
      want += 1.0;
      for (const KnnResult& a : approx) {
        if (a.row == e.row) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  ann_recall_probe_ = want > 0.0 ? hits / want : 1.0;
  obs::MetricsRegistry::Default()
      .GetGauge(obs::kAnnRecallProbe, "recall",
                "ANN recall@k vs the exact scan on the startup probe set")
      ->Set(ann_recall_probe_);
}

QueryServer::~QueryServer() = default;

const Matrix& QueryServer::target_matrix() const {
  return options_.target_view >= 0
             ? store_->view(static_cast<size_t>(options_.target_view))
                   .embeddings
             : store_->final_embeddings();
}

NodeId QueryServer::RowToGlobal(uint32_t row) const {
  return options_.target_view >= 0
             ? store_->view(static_cast<size_t>(options_.target_view))
                   .global_ids[row]
             : static_cast<NodeId>(row);
}

QueryResponse QueryServer::HandleInternal(const std::string& node_name,
                                          LatencyHistogram* hist,
                                          ThreadPool* scan_pool,
                                          const BatchControl& control) {
  WallTimer timer;
  QueryResponse resp;
  // A null `hist` marks warmup traffic, which is excluded from both the
  // local histogram and the registry's serve.* series.
  auto finish = [&](QueryResponse r) {
    if (hist != nullptr) {
      const double seconds = timer.ElapsedSeconds();
      hist->Record(seconds);
      latency_hist_->Record(seconds);
      requests_counter_->Increment();
      if (!r.status.ok()) errors_counter_->Increment();
      if (r.translated) coldstart_counter_->Increment();
    }
    return r;
  };
  // Shed before any lookup work: requests behind a slow batch whose
  // deadline already passed would only add to the latency they missed.
  if (control.has_deadline &&
      std::chrono::steady_clock::now() >= control.deadline) {
    resp.status = Status::FailedPrecondition(
        "deadline-exceeded: request expired before execution");
    return finish(std::move(resp));
  }
  const NodeId node = store_->FindNode(node_name);
  if (node == kInvalidNode) {
    resp.status = Status::NotFound("unknown node '" + node_name + "'");
    return finish(std::move(resp));
  }
  resp.node = node;

  const double* query = nullptr;
  std::vector<double> resolved_storage;
  if (options_.target_view < 0) {
    query = store_->final_embeddings().Row(node);
  } else {
    auto resolved =
        translation_.Resolve(node, static_cast<uint32_t>(options_.target_view));
    if (!resolved.ok()) {
      resp.status = resolved.status();
      return finish(std::move(resp));
    }
    resp.translated = resolved->translated;
    resp.chain = resolved->chain;
    resolved_storage = std::move(resolved->embedding);
    query = resolved_storage.data();
  }

  // Over-fetch one so dropping the query node itself still yields k.
  const size_t want = options_.k + (options_.exclude_self ? 1 : 0);
  // `scan_pool` is the pool when this request has it to itself (Handle, or
  // the sequential HandleBatch path — a single oversized request then fans
  // its exact scan across the shards) and null inside HandleBatch's
  // parallel path, where the workers are already taken and nesting
  // ParallelFor inside a pool worker would deadlock. KnnIndex's merge
  // keeps the (score desc, row asc) order at any shard count.
  std::vector<KnnResult> hits;
  const ServeIndexKind kind =
      control.force_exact ? ServeIndexKind::kExact : options_.index_kind;
  switch (kind) {
    case ServeIndexKind::kQuantized:
      hits = index_->SearchQuantized(query, want, options_.nprobe);
      break;
    case ServeIndexKind::kHnsw: {
      const size_t ef = control.ef_override > 0
                            ? std::max(control.ef_override, want)
                            : options_.ef_search;
      AnnSearchStats stats;
      hits = ann_->Search(query, want, ef, &stats);
      ann_hops_hist_->Record(static_cast<double>(stats.hops));
      break;
    }
    case ServeIndexKind::kExact:
      hits = index_->Search(query, want, scan_pool);
      break;
  }

  resp.neighbors.reserve(options_.k);
  for (const KnnResult& hit : hits) {
    const NodeId global = RowToGlobal(hit.row);
    if (options_.exclude_self && global == node) continue;
    if (resp.neighbors.size() == options_.k) break;
    resp.neighbors.push_back({global, hit.score});
  }
  return finish(std::move(resp));
}

QueryResponse QueryServer::Handle(const std::string& node_name, bool record) {
  return HandleInternal(node_name, record ? &latency_ : nullptr, pool_.get());
}

std::vector<QueryResponse> QueryServer::HandleBatch(
    const std::vector<std::string>& node_names) {
  return HandleBatch(node_names, BatchControl{});
}

std::vector<QueryResponse> QueryServer::HandleBatch(
    const std::vector<std::string>& node_names, const BatchControl& control) {
  std::vector<QueryResponse> responses(node_names.size());
  if (pool_ == nullptr || pool_->num_threads() <= 1 || node_names.size() <= 1) {
    for (size_t i = 0; i < node_names.size(); ++i) {
      responses[i] =
          HandleInternal(node_names[i], &latency_, pool_.get(), control);
    }
    return responses;
  }
  // Contiguous request shards, one latency histogram per shard; each request
  // writes only its own response slot, so output order and content match the
  // sequential path exactly. The deadline (when set) is re-checked before
  // every request on both paths, so a batch that straddles its deadline
  // sheds the tail identically at any thread count modulo clock skew.
  const size_t shards = std::min(pool_->num_threads(), node_names.size());
  std::vector<LatencyHistogram> shard_hist(shards);
  ParallelFor(*pool_, shards, [&](size_t s) {
    const size_t begin = node_names.size() * s / shards;
    const size_t end = node_names.size() * (s + 1) / shards;
    for (size_t i = begin; i < end; ++i) {
      responses[i] = HandleInternal(node_names[i], &shard_hist[s],
                                    /*scan_pool=*/nullptr, control);
    }
  });
  for (const LatencyHistogram& h : shard_hist) latency_.Merge(h);
  return responses;
}

void QueryServer::Warmup(size_t n) {
  if (store_->num_nodes() == 0) return;
  for (size_t i = 0; i < n; ++i) {
    Handle(store_->node_name(static_cast<NodeId>(i % store_->num_nodes())),
           /*record=*/false);
  }
}

double QueryServer::qps() const {
  const double total = latency_.mean() * static_cast<double>(latency_.count());
  return total > 0.0 ? static_cast<double>(latency_.count()) / total : 0.0;
}

}  // namespace transn
