#include "serve/query_server.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/vec.h"

namespace transn {

QueryServer::QueryServer(const EmbeddingStore* store,
                         QueryServerOptions options)
    : store_(store), options_(options), translation_(store) {
  CHECK(store != nullptr);
  CHECK_GE(options_.target_view, -1);
  CHECK_LT(options_.target_view, static_cast<int>(store->views().size()));
  CHECK_GT(options_.k, 0u);

  const size_t rows = target_matrix().rows();
  KnnIndexOptions idx;
  idx.metric = options_.metric;
  idx.seed = options_.seed;
  if (options_.quantized) {
    idx.num_centroids =
        options_.num_centroids > 0
            ? options_.num_centroids
            : std::max<size_t>(
                  1, static_cast<size_t>(std::sqrt(
                         static_cast<double>(std::max<size_t>(rows, 1)))));
    if (options_.nprobe == 0) {
      options_.nprobe = std::max<size_t>(1, idx.num_centroids / 4);
    }
  }
  if (options_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    options_.num_threads = pool_->num_threads();
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  // Record which kernel ISA the scoring loops dispatch to (see util/vec.h).
  registry
      .GetGauge(obs::kKernelsIsa, "isa",
                "vector-kernel ISA: 0=scalar, 1=avx2, 2=neon")
      ->Set(static_cast<double>(vec::ActiveIsa()));
  requests_counter_ = registry.GetCounter(obs::kServeRequestsTotal, "requests",
                                          "recorded queries handled");
  errors_counter_ =
      registry.GetCounter(obs::kServeRequestErrorsTotal, "requests",
                          "recorded queries with a non-OK status");
  coldstart_counter_ =
      registry.GetCounter(obs::kServeColdStartTotal, "requests",
                          "queries resolved via cold-start translation");
  latency_hist_ = registry.GetHistogram(obs::kServeRequestLatencySeconds,
                                        "seconds",
                                        "end-to-end per-request latency");

  WallTimer build_timer;
  index_ = std::make_unique<KnnIndex>(&target_matrix(), idx, pool_.get());
  registry
      .GetHistogram(obs::kServeIndexBuildSeconds, "seconds",
                    "k-NN index construction time")
      ->Record(build_timer.ElapsedSeconds());
}

QueryServer::~QueryServer() = default;

const Matrix& QueryServer::target_matrix() const {
  return options_.target_view >= 0
             ? store_->view(static_cast<size_t>(options_.target_view))
                   .embeddings
             : store_->final_embeddings();
}

NodeId QueryServer::RowToGlobal(uint32_t row) const {
  return options_.target_view >= 0
             ? store_->view(static_cast<size_t>(options_.target_view))
                   .global_ids[row]
             : static_cast<NodeId>(row);
}

QueryResponse QueryServer::HandleInternal(const std::string& node_name,
                                          LatencyHistogram* hist) {
  WallTimer timer;
  QueryResponse resp;
  // A null `hist` marks warmup traffic, which is excluded from both the
  // local histogram and the registry's serve.* series.
  auto finish = [&](QueryResponse r) {
    if (hist != nullptr) {
      const double seconds = timer.ElapsedSeconds();
      hist->Record(seconds);
      latency_hist_->Record(seconds);
      requests_counter_->Increment();
      if (!r.status.ok()) errors_counter_->Increment();
      if (r.translated) coldstart_counter_->Increment();
    }
    return r;
  };
  const NodeId node = store_->FindNode(node_name);
  if (node == kInvalidNode) {
    resp.status = Status::NotFound("unknown node '" + node_name + "'");
    return finish(std::move(resp));
  }
  resp.node = node;

  const double* query = nullptr;
  std::vector<double> resolved_storage;
  if (options_.target_view < 0) {
    query = store_->final_embeddings().Row(node);
  } else {
    auto resolved =
        translation_.Resolve(node, static_cast<uint32_t>(options_.target_view));
    if (!resolved.ok()) {
      resp.status = resolved.status();
      return finish(std::move(resp));
    }
    resp.translated = resolved->translated;
    resp.chain = resolved->chain;
    resolved_storage = std::move(resolved->embedding);
    query = resolved_storage.data();
  }

  // Over-fetch one so dropping the query node itself still yields k.
  const size_t want = options_.k + (options_.exclude_self ? 1 : 0);
  // Per-request scans stay serial: HandleBatch already parallelizes across
  // requests, and nesting ParallelFor inside a pool worker would deadlock.
  std::vector<KnnResult> hits =
      options_.quantized
          ? index_->SearchQuantized(query, want, options_.nprobe)
          : index_->Search(query, want, nullptr);

  resp.neighbors.reserve(options_.k);
  for (const KnnResult& hit : hits) {
    const NodeId global = RowToGlobal(hit.row);
    if (options_.exclude_self && global == node) continue;
    if (resp.neighbors.size() == options_.k) break;
    resp.neighbors.push_back({global, hit.score});
  }
  return finish(std::move(resp));
}

QueryResponse QueryServer::Handle(const std::string& node_name, bool record) {
  return HandleInternal(node_name, record ? &latency_ : nullptr);
}

std::vector<QueryResponse> QueryServer::HandleBatch(
    const std::vector<std::string>& node_names) {
  std::vector<QueryResponse> responses(node_names.size());
  if (pool_ == nullptr || pool_->num_threads() <= 1 || node_names.size() <= 1) {
    for (size_t i = 0; i < node_names.size(); ++i) {
      responses[i] = HandleInternal(node_names[i], &latency_);
    }
    return responses;
  }
  // Contiguous request shards, one latency histogram per shard; each request
  // writes only its own response slot, so output order and content match the
  // sequential path exactly.
  const size_t shards = std::min(pool_->num_threads(), node_names.size());
  std::vector<LatencyHistogram> shard_hist(shards);
  ParallelFor(*pool_, shards, [&](size_t s) {
    const size_t begin = node_names.size() * s / shards;
    const size_t end = node_names.size() * (s + 1) / shards;
    for (size_t i = begin; i < end; ++i) {
      responses[i] = HandleInternal(node_names[i], &shard_hist[s]);
    }
  });
  for (const LatencyHistogram& h : shard_hist) latency_.Merge(h);
  return responses;
}

void QueryServer::Warmup(size_t n) {
  if (store_->num_nodes() == 0) return;
  for (size_t i = 0; i < n; ++i) {
    Handle(store_->node_name(static_cast<NodeId>(i % store_->num_nodes())),
           /*record=*/false);
  }
}

double QueryServer::qps() const {
  const double total = latency_.mean() * static_cast<double>(latency_.count());
  return total > 0.0 ? static_cast<double>(latency_.count()) / total : 0.0;
}

}  // namespace transn
