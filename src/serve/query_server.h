#ifndef TRANSN_SERVE_QUERY_SERVER_H_
#define TRANSN_SERVE_QUERY_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/knn_index.h"
#include "serve/translation_service.h"
#include "util/histogram.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace transn {

struct QueryServerOptions {
  /// View to search: an index into the store's views, or -1 for the final
  /// (view-averaged) embeddings over all nodes.
  int target_view = -1;
  KnnMetric metric = KnnMetric::kCosine;
  size_t k = 10;
  /// Request-level parallelism for HandleBatch; 1 = sequential. Results are
  /// identical for every thread count.
  size_t num_threads = 1;
  /// Use the coarse-quantized pruned scan instead of the exact one.
  bool quantized = false;
  /// 0 = sqrt(num rows), clamped to [1, rows].
  size_t num_centroids = 0;
  /// Cells probed per quantized query; 0 = num_centroids / 4 (min 1).
  size_t nprobe = 0;
  /// Drop the query node itself from its result list.
  bool exclude_self = true;
  uint64_t seed = 42;
};

struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;
};

struct QueryResponse {
  Status status;  // per-request failure (unknown name, unreachable view)
  NodeId node = kInvalidNode;
  /// True when the query embedding came from the cold-start translation
  /// path; `chain` then lists the view indices walked.
  bool translated = false;
  std::vector<uint32_t> chain;
  std::vector<ScoredNode> neighbors;
};

/// The read-path request loop: looks up (or cold-start-translates) the
/// query node's embedding, runs the k-NN scan, and records per-request
/// latency. HandleBatch shards whole requests across a thread pool — each
/// request is processed end-to-end by one worker into its own response
/// slot, and the scans themselves are deterministic, so batch output is
/// byte-identical single- vs multi-threaded.
class QueryServer {
 public:
  /// Builds the k-NN index over the configured target matrix eagerly.
  /// `store` must outlive the server.
  QueryServer(const EmbeddingStore* store, QueryServerOptions options);
  ~QueryServer();

  /// Resolves one query by node name. Records latency unless `record` is
  /// false (warmup).
  QueryResponse Handle(const std::string& node_name, bool record = true);

  /// Processes a batch with options.num_threads workers.
  std::vector<QueryResponse> HandleBatch(
      const std::vector<std::string>& node_names);

  /// Runs `n` unrecorded queries round-robin over the store's nodes to
  /// touch caches and fault pages before measurement.
  void Warmup(size_t n);

  /// Merged per-request latency across all Handle/HandleBatch calls.
  const LatencyHistogram& latency() const { return latency_; }
  /// Completed (recorded) queries per second of accumulated request time.
  double qps() const;

  const KnnIndex& index() const { return *index_; }
  const QueryServerOptions& options() const { return options_; }

 private:
  QueryResponse HandleInternal(const std::string& node_name,
                               LatencyHistogram* hist);
  /// The matrix being scanned and the mapping of its rows to global ids.
  const Matrix& target_matrix() const;
  NodeId RowToGlobal(uint32_t row) const;

  const EmbeddingStore* store_;
  QueryServerOptions options_;
  TranslationService translation_;
  std::unique_ptr<KnnIndex> index_;
  std::unique_ptr<ThreadPool> pool_;  // only when num_threads > 1
  LatencyHistogram latency_;
  /// Registry handles cached at construction (see obs/metric_names.h); the
  /// serve.* metrics mirror latency_ into the process-wide registry so
  /// --metrics-out dumps include the query path. Warmup traffic is excluded,
  /// matching latency_.
  obs::Counter* requests_counter_;
  obs::Counter* errors_counter_;
  obs::Counter* coldstart_counter_;
  obs::Histogram* latency_hist_;
};

}  // namespace transn

#endif  // TRANSN_SERVE_QUERY_SERVER_H_
