#ifndef TRANSN_SERVE_QUERY_SERVER_H_
#define TRANSN_SERVE_QUERY_SERVER_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/knn_index.h"
#include "serve/translation_service.h"
#include "util/histogram.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace transn {

/// How the server answers k-NN queries (the --index selector).
enum class ServeIndexKind {
  /// Exact O(N) sharded scan (KnnIndex::Search).
  kExact,
  /// Coarse-quantized pruned scan (KnnIndex::SearchQuantized).
  kQuantized,
  /// Layered-graph HNSW-style beam search (AnnIndex) — sublinear.
  kHnsw,
};

/// "exact" | "quantized" | "hnsw".
const char* ServeIndexKindName(ServeIndexKind kind);
/// Inverse of ServeIndexKindName; false on an unknown name.
bool ParseServeIndexKind(const std::string& name, ServeIndexKind* out);

struct QueryServerOptions {
  /// View to search: an index into the store's views, or -1 for the final
  /// (view-averaged) embeddings over all nodes.
  int target_view = -1;
  KnnMetric metric = KnnMetric::kCosine;
  size_t k = 10;
  /// Request-level parallelism for HandleBatch; 1 = sequential. Results are
  /// identical for every thread count.
  size_t num_threads = 1;
  /// Scan strategy for neighbor queries.
  ServeIndexKind index_kind = ServeIndexKind::kExact;
  /// kQuantized: 0 = sqrt(num rows), clamped to [1, rows].
  size_t num_centroids = 0;
  /// kQuantized: cells probed per query; 0 = num_centroids / 4 (min 1).
  size_t nprobe = 0;
  /// kHnsw: beam width at query time; 0 = 128 (the recall-gated default).
  /// The effective beam is max(ef_search, k).
  size_t ef_search = 0;
  /// kHnsw: build knobs when the serving file ships no usable pre-built
  /// index (mismatched target/metric or a v2 file) and one must be built at
  /// construction time.
  AnnBuildParams ann_params;
  /// Drop the query node itself from its result list.
  bool exclude_self = true;
  uint64_t seed = 42;
};

struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;
};

/// Per-batch execution controls threaded in by the serving layer (deadlines
/// and graded degradation — see net/serve_app.h). A default-constructed
/// control is the no-op: HandleBatch output is byte-identical to a call
/// without one, and no clock is read.
struct BatchControl {
  /// When set, a request whose deadline has passed by the time a worker
  /// picks it up fails with kFailedPrecondition "deadline-exceeded" instead
  /// of running its scan. Checked per request, so within one batch the
  /// requests before the deadline still complete (sequential and sharded
  /// paths check identically).
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Degraded tier 1: override the HNSW beam width (clamped up to the
  /// fetch size so k results still come back). 0 = use options.ef_search.
  size_t ef_override = 0;
  /// Degraded tier 2: bypass the ANN graph and answer every request from
  /// the exact scan (ground truth, O(N) — slower but always correct).
  bool force_exact = false;
};

struct QueryResponse {
  Status status;  // per-request failure (unknown name, unreachable view)
  NodeId node = kInvalidNode;
  /// True when the query embedding came from the cold-start translation
  /// path; `chain` then lists the view indices walked.
  bool translated = false;
  std::vector<uint32_t> chain;
  std::vector<ScoredNode> neighbors;
};

/// The read-path request loop: looks up (or cold-start-translates) the
/// query node's embedding, runs the k-NN scan, and records per-request
/// latency. HandleBatch shards whole requests across a thread pool — each
/// request is processed end-to-end by one worker into its own response
/// slot, and the scans themselves are deterministic, so batch output is
/// byte-identical single- vs multi-threaded.
class QueryServer {
 public:
  /// Builds the k-NN index over the configured target matrix eagerly (on
  /// the request pool when num_threads != 1 — the index bytes are identical
  /// at any thread count). `store` must outlive the server. Throws
  /// std::runtime_error if the ANN build fails (e.g. a pool worker-task
  /// fault); ModelManager turns that into a failed reload that keeps the
  /// previous generation serving.
  QueryServer(const EmbeddingStore* store, QueryServerOptions options);
  ~QueryServer();

  /// Resolves one query by node name. Records latency unless `record` is
  /// false (warmup).
  QueryResponse Handle(const std::string& node_name, bool record = true);

  /// Processes a batch with options.num_threads workers.
  std::vector<QueryResponse> HandleBatch(
      const std::vector<std::string>& node_names);

  /// HandleBatch under a deadline / degradation control (see BatchControl).
  /// With a default-constructed control the responses are byte-identical to
  /// the overload above.
  std::vector<QueryResponse> HandleBatch(
      const std::vector<std::string>& node_names, const BatchControl& control);

  /// Runs `n` unrecorded queries round-robin over the store's nodes to
  /// touch caches and fault pages before measurement.
  void Warmup(size_t n);

  /// Merged per-request latency across all Handle/HandleBatch calls.
  const LatencyHistogram& latency() const { return latency_; }
  /// Completed (recorded) queries per second of accumulated request time.
  double qps() const;

  const KnnIndex& index() const { return *index_; }
  /// The active ANN index in kHnsw mode (borrowed from the store or built at
  /// construction); null otherwise.
  const AnnIndex* ann_index() const { return ann_; }
  /// recall@k of the ANN index vs the exact scan on the startup probe set;
  /// 1.0 outside kHnsw mode.
  double ann_recall_probe() const { return ann_recall_probe_; }
  const QueryServerOptions& options() const { return options_; }

 private:
  /// `scan_pool` parallelizes the exact scan of this one request; callers
  /// already running on pool_ workers must pass null (see the call sites).
  QueryResponse HandleInternal(const std::string& node_name,
                               LatencyHistogram* hist, ThreadPool* scan_pool,
                               const BatchControl& control = {});
  /// The matrix being scanned and the mapping of its rows to global ids.
  const Matrix& target_matrix() const;
  NodeId RowToGlobal(uint32_t row) const;

  /// Measures ANN recall@k against the exact scan on a small deterministic
  /// probe set and publishes the ann.recall_probe gauge.
  void ProbeAnnRecall();

  const EmbeddingStore* store_;
  QueryServerOptions options_;
  TranslationService translation_;
  std::unique_ptr<KnnIndex> index_;
  /// Owned ANN index when none could be borrowed from the store.
  std::unique_ptr<AnnIndex> owned_ann_;
  /// Active ANN index in kHnsw mode (owned_ann_ or the store's); else null.
  const AnnIndex* ann_ = nullptr;
  double ann_recall_probe_ = 1.0;
  std::unique_ptr<ThreadPool> pool_;  // only when num_threads > 1
  LatencyHistogram latency_;
  /// Registry handles cached at construction (see obs/metric_names.h); the
  /// serve.* metrics mirror latency_ into the process-wide registry so
  /// --metrics-out dumps include the query path. Warmup traffic is excluded,
  /// matching latency_.
  obs::Counter* requests_counter_;
  obs::Counter* errors_counter_;
  obs::Counter* coldstart_counter_;
  obs::Histogram* latency_hist_;
  /// Graph hops per query; registered only in kHnsw mode.
  obs::Histogram* ann_hops_hist_ = nullptr;
};

}  // namespace transn

#endif  // TRANSN_SERVE_QUERY_SERVER_H_
