#ifndef TRANSN_SERVE_SERVING_FORMAT_H_
#define TRANSN_SERVE_SERVING_FORMAT_H_

#include <stdint.h>
#include <string.h>

#include <string>
#include <string_view>

namespace transn {

// The TransN serving-model binary format. Shared by the writer
// (core/model_io: ExportServingModel) and the reader (serve/embedding_store).
//
// All integers and IEEE-754 doubles are little-endian regardless of host
// byte order. Layout (versions 2 and 3; § marks a section boundary — every
// section is followed by a u32 CRC-32 of that section's bytes, so the reader
// can pinpoint which section a corruption hit; v1 files have no section
// CRCs and are still accepted):
//
//   bytes [0,8)   magic "TRNSERV1"
//   u32           format version (1, 2, or 3)
// § u32           dim            embedding dimensionality d
//   u32           seq_len        translator path length L (0 if none)
//   u32           num_nodes      global node count
//   u32           num_views
//   u32           num_translators
//   u8            flags          bit 0: final (view-averaged) embeddings
//                                bit 1: ANN index section (v3 only)
// § node names    num_nodes × { u32 len, bytes }   (global id = order)
// § final emb     num_nodes × dim f64              (iff flag bit 0)
// § views         num_views × {                    (one section per view)
//                   u32 len + edge-type name bytes
//                   u8  is_heter
//                   u32 num_local
//                   num_local × u32 global node id (local row = order)
//                   num_local × dim f64 embedding rows }
// § translators   num_translators × {          (one section per translator)
//                   u32 from_view, u32 to_view     (view indices)
//                   u8  simple, u8 final_relu
//                   u32 num_encoders               (stored W/b pairs)
//                   num_encoders × { L*L f64 W row-major, L f64 b } }
// § ann index     u32 payload_len                  (iff flag bit 1; v3 only)
//                 u32 target  view index the index was built over,
//                             0xFFFFFFFF for the final embeddings
//                 payload_len - 4 bytes of AnnIndex graph
//                             (serve/ann_index.h AppendTo: section version,
//                             metric, build params, entry point, per-layer
//                             adjacency; vectors are NOT stored — they are
//                             re-quantized from the target matrix on load)
//   u64           FNV-1a 64 checksum of every preceding byte
//
// The version field (not the magic) is what distinguishes versions; the
// whole-file FNV trailer covers the section CRCs too. Unlike the other
// sections, the ANN section leads with its payload length so the reader can
// CRC-verify the bytes *before* parsing the graph — a corrupted ANN section
// therefore always surfaces as kDataLoss, never as a parse error.
//
// Version compatibility: the reader accepts 1, 2, and 3. The writer emits
// v2 unless an ANN section is requested (so models without one stay
// byte-identical to what a v2 writer produced) and v3 with one. The full
// normative spec, including the checkpoint and text formats, lives in
// docs/FORMATS.md. The format is immutable once written: the store loads it
// read-only with full double precision (unlike the lossy TSV path, which
// exists for interchange with the evaluation scripts).

inline constexpr char kServingMagic[8] = {'T', 'R', 'N', 'S', 'E', 'R',
                                          'V', '1'};
/// Oldest readable version: whole-file checksum only.
inline constexpr uint32_t kServingFormatVersionV1 = 1;
/// Per-section CRC-32 trailers; still written when no ANN index is present.
inline constexpr uint32_t kServingFormatVersion = 2;
/// v2 plus the optional ANN index section; written only with one.
inline constexpr uint32_t kServingFormatVersionV3 = 3;
inline constexpr uint8_t kServingFlagFinalEmbeddings = 1;
/// Flag bit 1: the file carries an ANN index section (requires version 3).
inline constexpr uint8_t kServingFlagAnnIndex = 2;
/// ANN section target value meaning "built over the final embeddings".
inline constexpr uint32_t kServingAnnTargetFinal = 0xFFFFFFFFu;

// Section names, in file order. Shared by the reader's CRC/parse error
// messages, the writer, and `transn_serve info`; docs/FORMATS.md must
// document every one (scripts/check_formats_docs.sh enforces this).
inline constexpr const char kServingSectionHeader[] = "header";
inline constexpr const char kServingSectionNodeNames[] = "node-name index";
inline constexpr const char kServingSectionFinalEmbeddings[] =
    "final embeddings";
inline constexpr const char kServingSectionView[] = "view";
inline constexpr const char kServingSectionTranslator[] = "translator";
inline constexpr const char kServingSectionAnnIndex[] = "ann index";

/// FNV-1a 64-bit over a byte range; the file trailer.
inline uint64_t ServingChecksum(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- little-endian append helpers (writer side) ---

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendF64(std::string* out, double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  AppendU64(out, bits);
}

inline void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked cursor over a loaded file buffer (reader side). Every
/// Read* returns false instead of running past the end, so a truncated or
/// corrupt file surfaces as a Status, never as UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  bool ReadU8(uint8_t* out) { return ReadRaw(out, 1); }

  bool ReadU32(uint32_t* out) {
    unsigned char b[4];
    if (!ReadRaw(b, 4)) return false;
    *out = 0;
    for (int i = 0; i < 4; ++i) *out |= static_cast<uint32_t>(b[i]) << (8 * i);
    return true;
  }

  bool ReadU64(uint64_t* out) {
    unsigned char b[8];
    if (!ReadRaw(b, 8)) return false;
    *out = 0;
    for (int i = 0; i < 8; ++i) *out |= static_cast<uint64_t>(b[i]) << (8 * i);
    return true;
  }

  bool ReadF64(double* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    memcpy(out, &bits, sizeof(*out));
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t len;
    if (!ReadU32(&len) || remaining() < len) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace transn

#endif  // TRANSN_SERVE_SERVING_FORMAT_H_
