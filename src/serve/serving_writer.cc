#include "serve/serving_writer.h"

#include <limits>

#include "serve/serving_format.h"
#include "util/safe_io.h"

namespace transn {
namespace {

void AppendMatrix(std::string* buf, const Matrix& m) {
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) AppendF64(buf, data[i]);
}

void AppendSectionCrc(std::string* buf, size_t section_start) {
  AppendU32(buf,
            Crc32(buf->data() + section_start, buf->size() - section_start));
}

}  // namespace

Status WriteServingModel(const EmbeddingStore& store, const std::string& path,
                         const ServingWriteOptions& options) {
  if (options.ann != nullptr) {
    const Matrix& target =
        options.ann_target_view < 0
            ? store.final_embeddings()
            : store.view(options.ann_target_view).embeddings;
    if (options.ann->num_rows() != target.rows() ||
        options.ann->dim() != target.cols()) {
      return Status::InvalidArgument(
          "ANN index shape does not match its target matrix");
    }
  }

  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, options.ann != nullptr ? kServingFormatVersionV3
                                         : kServingFormatVersion);
  size_t section = buf.size();
  AppendU32(&buf, static_cast<uint32_t>(store.dim()));
  AppendU32(&buf, static_cast<uint32_t>(store.seq_len()));
  AppendU32(&buf, static_cast<uint32_t>(store.num_nodes()));
  AppendU32(&buf, static_cast<uint32_t>(store.views().size()));
  AppendU32(&buf, static_cast<uint32_t>(store.translators().size()));
  AppendU8(&buf, static_cast<uint8_t>(
                     (store.has_final_embeddings() ? kServingFlagFinalEmbeddings
                                                   : 0) |
                     (options.ann != nullptr ? kServingFlagAnnIndex : 0)));
  AppendSectionCrc(&buf, section);

  section = buf.size();
  for (size_t n = 0; n < store.num_nodes(); ++n) {
    AppendString(&buf, store.node_name(n));
  }
  AppendSectionCrc(&buf, section);

  section = buf.size();
  if (store.has_final_embeddings()) {
    AppendMatrix(&buf, store.final_embeddings());
  }
  AppendSectionCrc(&buf, section);

  for (const ServingView& view : store.views()) {
    section = buf.size();
    AppendString(&buf, view.name);
    AppendU8(&buf, view.is_heter ? 1 : 0);
    AppendU32(&buf, static_cast<uint32_t>(view.global_ids.size()));
    for (const NodeId global : view.global_ids) {
      AppendU32(&buf, static_cast<uint32_t>(global));
    }
    AppendMatrix(&buf, view.embeddings);
    AppendSectionCrc(&buf, section);
  }

  for (const ServingTranslator& tr : store.translators()) {
    section = buf.size();
    AppendU32(&buf, tr.from_view);
    AppendU32(&buf, tr.to_view);
    AppendU8(&buf, tr.simple ? 1 : 0);
    AppendU8(&buf, tr.final_relu ? 1 : 0);
    AppendU32(&buf, static_cast<uint32_t>(tr.weights.size()));
    for (size_t e = 0; e < tr.weights.size(); ++e) {
      AppendMatrix(&buf, tr.weights[e]);
      AppendMatrix(&buf, tr.biases[e]);
    }
    AppendSectionCrc(&buf, section);
  }

  if (options.ann != nullptr) {
    std::string payload;
    AppendU32(&payload,
              options.ann_target_view < 0
                  ? kServingAnnTargetFinal
                  : static_cast<uint32_t>(options.ann_target_view));
    options.ann->AppendTo(&payload);
    section = buf.size();
    AppendU32(&buf, static_cast<uint32_t>(payload.size()));
    buf.append(payload);
    AppendSectionCrc(&buf, section);
  }

  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));

  AtomicFileWriter writer(path);
  writer.Write(buf);
  return writer.Commit();
}

}  // namespace transn
