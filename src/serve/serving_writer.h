#ifndef TRANSN_SERVE_SERVING_WRITER_H_
#define TRANSN_SERVE_SERVING_WRITER_H_

#include <string>

#include "serve/ann_index.h"
#include "serve/embedding_store.h"
#include "util/status.h"

namespace transn {

struct ServingWriteOptions {
  /// When non-null, embedded as the v3 ANN section. Must have been built
  /// over the matrix named by ann_target_view. Borrowed for the call.
  const AnnIndex* ann = nullptr;
  /// View the ANN index covers; -1 means the final embeddings.
  int ann_target_view = -1;
};

/// Re-serializes a loaded EmbeddingStore to disk in the serving format
/// (atomic write, layout in serve/serving_format.h) — the serve-side
/// counterpart of core's ExportServingModel, used by `transn_serve index` to
/// upgrade an existing v2 model to v3 by attaching an ANN index without
/// retraining. Without an ANN index the output is v2 and byte-identical to
/// what ExportServingModel produced for the same model (roundtrip-tested);
/// with one it is v3.
Status WriteServingModel(const EmbeddingStore& store, const std::string& path,
                         const ServingWriteOptions& options);

}  // namespace transn

#endif  // TRANSN_SERVE_SERVING_WRITER_H_
