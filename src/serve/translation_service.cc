#include "serve/translation_service.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/string_util.h"

namespace transn {

TranslationService::TranslationService(const EmbeddingStore* store)
    : store_(store) {
  CHECK(store != nullptr);
}

std::vector<double> TranslationService::ApplyTranslator(
    const ServingTranslator& t, const double* embedding) const {
  const size_t L = store_->seq_len();
  const size_t d = store_->dim();
  CHECK_GE(L, 2u);
  Matrix x(L, d);
  for (size_t r = 0; r < L; ++r) {
    std::copy(embedding, embedding + d, x.Row(r));
  }
  // Mirrors core Translator::Apply (Eq. 8–9) without the autograd tape.
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  for (size_t e = 0; e < t.weights.size(); ++e) {
    if (!t.simple) {
      Matrix scores = Scale(MatMulNT(x, x), inv_sqrt_d);
      x = MatMul(RowSoftmax(scores), x);
    }
    Matrix pre = MatMul(t.weights[e], x);
    for (size_t r = 0; r < L; ++r) {
      const double b = t.biases[e](r, 0);
      double* row = pre.Row(r);
      for (size_t c = 0; c < d; ++c) row[c] += b;
    }
    const bool last = e + 1 == t.weights.size();
    if (!last || t.final_relu) {
      for (size_t i = 0; i < pre.size(); ++i) {
        pre.data()[i] = std::max(pre.data()[i], 0.0);
      }
    }
    x = std::move(pre);
  }
  std::vector<double> out(d, 0.0);
  for (size_t r = 0; r < L; ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) out[c] += row[c];
  }
  const double inv_l = 1.0 / static_cast<double>(L);
  for (double& v : out) v *= inv_l;
  return out;
}

StatusOr<ResolvedEmbedding> TranslationService::Resolve(
    NodeId node, uint32_t target_view) const {
  const std::vector<ServingView>& views = store_->views();
  if (target_view >= views.size()) {
    return Status::InvalidArgument(
        StrFormat("target view %u out of range", target_view));
  }
  if (node >= store_->num_nodes()) {
    return Status::NotFound(StrFormat("unknown node id %u", node));
  }

  ResolvedEmbedding out;
  const ServingView& tv = views[target_view];
  const int64_t direct = tv.LocalOf(node);
  if (direct >= 0) {
    const double* row = tv.embeddings.Row(static_cast<size_t>(direct));
    out.embedding.assign(row, row + store_->dim());
    out.chain = {target_view};
    return out;
  }

  // Multi-source BFS over the directed translator graph: start from every
  // view containing the node (ascending index), expand translators in store
  // order. First arrival at the target is a shortest chain, and the fixed
  // expansion order makes the choice deterministic.
  constexpr int32_t kUnvisited = -2;
  constexpr int32_t kSource = -1;
  std::vector<int32_t> parent(views.size(), kUnvisited);
  std::deque<uint32_t> frontier;
  for (uint32_t v = 0; v < views.size(); ++v) {
    if (views[v].LocalOf(node) >= 0) {
      parent[v] = kSource;
      frontier.push_back(v);
    }
  }
  if (frontier.empty()) {
    return Status::NotFound(StrFormat(
        "node '%s' has no embedding in any view",
        store_->node_name(node).c_str()));
  }
  bool reached = false;
  while (!frontier.empty() && !reached) {
    const uint32_t u = frontier.front();
    frontier.pop_front();
    for (const ServingTranslator& t : store_->translators()) {
      if (t.from_view != u || parent[t.to_view] != kUnvisited) continue;
      parent[t.to_view] = static_cast<int32_t>(u);
      if (t.to_view == target_view) {
        reached = true;
        break;
      }
      frontier.push_back(t.to_view);
    }
  }
  if (!reached) {
    return Status::FailedPrecondition(StrFormat(
        "no translator chain reaches view '%s' from any view containing "
        "'%s'",
        tv.name.c_str(), store_->node_name(node).c_str()));
  }

  out.chain.clear();
  for (int32_t v = static_cast<int32_t>(target_view); v != kSource;
       v = parent[v]) {
    out.chain.push_back(static_cast<uint32_t>(v));
  }
  std::reverse(out.chain.begin(), out.chain.end());

  const ServingView& sv = views[out.chain.front()];
  const int64_t src_local = sv.LocalOf(node);
  CHECK_GE(src_local, 0);
  const double* src_row = sv.embeddings.Row(static_cast<size_t>(src_local));
  out.embedding.assign(src_row, src_row + store_->dim());
  for (size_t hop = 0; hop + 1 < out.chain.size(); ++hop) {
    const ServingTranslator* t =
        store_->FindTranslator(out.chain[hop], out.chain[hop + 1]);
    CHECK(t != nullptr);  // BFS only walked stored translators
    out.embedding = ApplyTranslator(*t, out.embedding.data());
  }
  out.translated = true;
  return out;
}

}  // namespace transn
