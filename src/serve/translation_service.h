#ifndef TRANSN_SERVE_TRANSLATION_SERVICE_H_
#define TRANSN_SERVE_TRANSLATION_SERVICE_H_

#include <stdint.h>

#include <vector>

#include "serve/embedding_store.h"
#include "util/status.h"

namespace transn {

/// A query embedding resolved into a target view's space.
struct ResolvedEmbedding {
  std::vector<double> embedding;
  /// True when the node was absent from the target view and its embedding
  /// was produced by translation (cross-view cold-start).
  bool translated = false;
  /// View indices walked, source first, target last; {target} when direct.
  std::vector<uint32_t> chain;
};

/// Cross-view cold-start resolution (the serving-side use of Eq. 1–3): a
/// query node that is missing from the target view is answered by taking
/// its embedding from a view that *does* contain it and pushing it through
/// the stored translator chain into the target view's space.
///
/// The chain is the shortest directed translator path (BFS over the
/// view-pair translator graph) from any view containing the node to the
/// target; among equal-length paths the one with the smallest view indices
/// wins, so resolution is deterministic.
///
/// Translators are trained on L-row path-matrix windows, not single
/// vectors. At serving time a single embedding is translated by tiling it
/// into all L rows, running the translator forward pass, and averaging the
/// output rows — under tiled input the self-attention stage is exactly the
/// identity (uniform softmax over identical rows), so this reduces to the
/// feed-forward stack's mean path response (DESIGN.md §5).
class TranslationService {
 public:
  /// `store` must outlive the service.
  explicit TranslationService(const EmbeddingStore* store);

  /// Resolves `node`'s embedding in `target_view`'s space. Fails with
  /// kNotFound when the node is in no view, and with kFailedPrecondition
  /// when no translator chain reaches the target view.
  StatusOr<ResolvedEmbedding> Resolve(NodeId node, uint32_t target_view) const;

  /// One translation hop: tiles `embedding` (store dim) into the L×d path
  /// matrix, applies the translator, returns the row-averaged output.
  /// Exposed for tests (must match core Translator::Forward on the tiled
  /// input).
  std::vector<double> ApplyTranslator(const ServingTranslator& t,
                                      const double* embedding) const;

 private:
  const EmbeddingStore* store_;
};

}  // namespace transn

#endif  // TRANSN_SERVE_TRANSLATION_SERVICE_H_
