#include "util/alias_table.h"

#include "util/logging.h"

namespace transn {

void AliasTable::Build(const std::vector<double>& weights) {
  const size_t n = weights.size();
  CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    CHECK(w >= 0.0) << "alias weights must be non-negative";
    total += w;
  }
  CHECK_GT(total, 0.0) << "alias weights must not all be zero";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; average is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have probability 1 up to floating-point error.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  DCHECK(!prob_.empty());
  size_t i = rng.NextUint64(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace transn
