#ifndef TRANSN_UTIL_ALIAS_TABLE_H_
#define TRANSN_UTIL_ALIAS_TABLE_H_

#include <stdint.h>

#include <vector>

#include "util/rng.h"

namespace transn {

/// Walker's alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution. Used for negative sampling (unigram^0.75) and for
/// LINE-style weighted edge sampling.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights (need not be normalized).
  /// At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights);

  /// Samples an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace transn

#endif  // TRANSN_UTIL_ALIAS_TABLE_H_
