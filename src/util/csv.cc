#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/safe_io.h"
#include "util/string_util.h"

namespace transn {
namespace {

std::string CsvEscape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TablePrinter::ToAlignedString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::ToCsvString() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  // Atomic replace via safe_io: every byte verified, no torn CSV on crash.
  AtomicFileWriter writer(path);
  writer.Write(ToCsvString());
  return writer.Commit();
}

StatusOr<std::vector<std::vector<std::string>>> ReadDelimitedFile(
    const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Minimal quote-aware split.
    std::vector<std::string> cells;
    std::string cell;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cell += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          cell += c;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == delim) {
        cells.push_back(std::move(cell));
        cell.clear();
      } else {
        cell += c;
      }
    }
    cells.push_back(std::move(cell));
    rows.push_back(std::move(cells));
  }
  return rows;
}

}  // namespace transn
