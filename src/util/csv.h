#ifndef TRANSN_UTIL_CSV_H_
#define TRANSN_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace transn {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for console output that mirrors the paper's tables) or as
/// CSV (for plotting). Benches use both: the table to stdout, the CSV next
/// to the binary for downstream analysis.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 4);

  /// Renders an aligned, pipe-separated table.
  std::string ToAlignedString() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string ToCsvString() const;

  /// Writes CSV to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a CSV/TSV file into rows of cells (no quoting support beyond
/// TablePrinter's output needs; delimiters inside quotes are honored).
StatusOr<std::vector<std::vector<std::string>>> ReadDelimitedFile(
    const std::string& path, char delim);

}  // namespace transn

#endif  // TRANSN_UTIL_CSV_H_
