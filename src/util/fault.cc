#include "util/fault.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace transn {
namespace fault {

namespace {

/// Parses one "point=mode" entry into (point, spec).
Status ParseEntry(std::string_view entry, std::string* point,
                  FaultSpec* spec) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("fault spec entry needs 'point=mode': " +
                                   std::string(entry));
  }
  *point = std::string(Trim(entry.substr(0, eq)));
  const std::vector<std::string> parts =
      Split(Trim(entry.substr(eq + 1)), ':');
  const std::string& mode = parts[0];
  auto bad = [&entry](const char* what) {
    return Status::InvalidArgument(StrFormat(
        "bad fault mode '%s' in entry '%s'", what,
        std::string(entry).c_str()));
  };
  if (mode == "always") {
    if (parts.size() != 1) return bad("always takes no argument");
    *spec = FaultSpec::Always();
    return Status::Ok();
  }
  if (mode == "after") {
    int64_t n = 0;
    if (parts.size() != 2 || !ParseInt64(parts[1], &n) || n < 0) {
      return bad("after needs a non-negative count");
    }
    *spec = FaultSpec::AfterN(static_cast<uint64_t>(n));
    return Status::Ok();
  }
  if (mode == "once") {
    int64_t n = 0;
    if (parts.size() > 2 ||
        (parts.size() == 2 && (!ParseInt64(parts[1], &n) || n < 0))) {
      return bad("once takes an optional non-negative count");
    }
    *spec = FaultSpec::OnceAfterN(static_cast<uint64_t>(n));
    return Status::Ok();
  }
  if (mode == "prob") {
    double p = 0.0;
    int64_t seed = 0;
    if (parts.size() < 2 || parts.size() > 3 || !ParseDouble(parts[1], &p) ||
        p < 0.0 || p > 1.0 ||
        (parts.size() == 3 && !ParseInt64(parts[2], &seed))) {
      return bad("prob needs p in [0,1] and an optional seed");
    }
    *spec = FaultSpec::Probability(p, static_cast<uint64_t>(seed));
    return Status::Ok();
  }
  return bad(mode.c_str());
}

}  // namespace

FaultInjector& FaultInjector::Default() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* env = std::getenv("TRANSN_FAULTS");
        env != nullptr && env[0] != '\0') {
      Status s = fi->ArmFromSpecString(env);
      CHECK(s.ok()) << "TRANSN_FAULTS: " << s.ToString();
      LOG(WARNING) << "fault injection armed from TRANSN_FAULTS: " << env;
    }
    return fi;
  }();
  return *injector;
}

void FaultInjector::Arm(std::string_view point, FaultSpec spec) {
  CHECK(!point.empty()) << "failpoint name must be non-empty";
  std::lock_guard<std::mutex> lock(mu_);
  Point p;
  p.spec = spec;
  p.rng = Rng(spec.seed);
  auto [it, inserted] = points_.insert_or_assign(std::string(point), p);
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpecString(std::string_view spec) {
  // Normalize ';' to ',' so either separator works, then arm atomically:
  // parse everything before arming anything.
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ';') c = ',';
  }
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  for (const std::string& entry : Split(normalized, ',')) {
    if (Trim(entry).empty()) continue;
    std::string point;
    FaultSpec fs;
    RETURN_IF_ERROR(ParseEntry(Trim(entry), &point, &fs));
    parsed.emplace_back(std::move(point), fs);
  }
  for (auto& [point, fs] : parsed) Arm(point, fs);
  return Status::Ok();
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return;
  points_.erase(it);
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

bool FaultInjector::ShouldFail(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  ++p.hits;
  switch (p.spec.mode) {
    case FaultMode::kAlways:
      return true;
    case FaultMode::kAfterN:
      return p.hits > p.spec.after;
    case FaultMode::kOnceAfterN:
      if (!p.fired && p.hits > p.spec.after) {
        p.fired = true;
        return true;
      }
      return false;
    case FaultMode::kProbability:
      return p.rng.NextDouble() < p.spec.probability;
  }
  return false;
}

uint64_t FaultInjector::Hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace fault
}  // namespace transn
