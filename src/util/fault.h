#ifndef TRANSN_UTIL_FAULT_H_
#define TRANSN_UTIL_FAULT_H_

#include <stdint.h>

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/status.h"

namespace transn {
namespace fault {

// Process-wide fault injection for crash-safety testing (DESIGN.md §8).
//
// Production code plants named *failpoints* on its failure-prone edges
// (file writes, fsync, rename, thread-pool task dispatch) by calling
// fault::MaybeFail("io.write"). With no faults armed — the default — a
// failpoint is a single relaxed atomic load, so the hooks can stay compiled
// into release builds. Tests (or the TRANSN_FAULTS environment variable)
// arm individual points with a trigger mode; the planted site then observes
// an injected failure exactly as it would a real one.

// --- canonical failpoint names ---------------------------------------------
// Like obs/metric_names.h, sites must use these constants, not literals.

/// CheckedWriter buffer flush: the write fails wholesale, as if the disk
/// were full (ENOSPC).
inline constexpr char kIoWrite[] = "io.write";
/// EmbeddingStore::Load, checked after the file bytes are in memory: the
/// read fails as if the file were truncated/unreadable mid-reload. Used to
/// prove a failed hot reload leaves the old model serving (no partial swap).
inline constexpr char kIoRead[] = "io.read";
/// CheckedWriter buffer flush: only half of the buffer reaches the file
/// before the failure (a short write / torn page).
inline constexpr char kIoShortWrite[] = "io.short_write";
/// AtomicFileWriter::Commit: fsync of the temp file fails.
inline constexpr char kIoFsync[] = "io.fsync";
/// AtomicFileWriter::Commit: the temp→target rename fails, leaving the
/// torn `<path>.tmp` behind and the target untouched (torn rename).
inline constexpr char kIoRename[] = "io.rename";
/// ThreadPool worker, checked before running each task: the task throws
/// InjectedFaultError instead of executing (rethrown by Wait()).
inline constexpr char kPoolTask[] = "pool.task";
/// TransNModel::RunIteration, checked between the single-view and
/// cross-view passes: training aborts mid-iteration with
/// InjectedFaultError — the in-process stand-in for SIGKILL in the
/// kill-and-resume tests.
inline constexpr char kTrainAbort[] = "train.abort";
/// HttpServer reactor, checked after accept4() returns a connection: the
/// new socket is closed immediately, as if the peer vanished between
/// accept and registration (SYN flood survivor / conntrack reset).
inline constexpr char kNetAccept[] = "net.accept";
/// HttpServer reactor, checked before draining a readable socket: the
/// connection is torn down as if recv() returned ECONNRESET mid-request.
inline constexpr char kNetRead[] = "net.read";
/// HttpServer reactor, checked before flushing a response: the connection
/// is torn down as if send() failed (EPIPE), dropping the response.
inline constexpr char kNetWrite[] = "net.write";
/// HttpServer reactor, checked when a request completes synchronously: the
/// reactor thread sleeps ~20 ms before continuing, simulating a stalled
/// event loop (GC pause / noisy neighbor) without dropping anything.
inline constexpr char kNetSlow[] = "net.slow";

/// When an armed failpoint fires. Hit counts are per-point and start at 1.
enum class FaultMode {
  /// Every hit fails.
  kAlways,
  /// Hits 1..N succeed, every later hit fails (a disk that fills up and
  /// stays full).
  kAfterN,
  /// Hits 1..N succeed, hit N+1 fails, later hits succeed again (a single
  /// transient fault, e.g. one torn rename).
  kOnceAfterN,
  /// Each hit fails independently with probability p (seeded, so a given
  /// arm invocation replays deterministically).
  kProbability,
};

struct FaultSpec {
  FaultMode mode = FaultMode::kAlways;
  /// Successful hits before triggering (kAfterN / kOnceAfterN).
  uint64_t after = 0;
  /// Per-hit failure probability (kProbability).
  double probability = 0.0;
  /// Seed of the per-point RNG driving kProbability.
  uint64_t seed = 0;

  static FaultSpec Always() { return {}; }
  static FaultSpec AfterN(uint64_t n) {
    FaultSpec s;
    s.mode = FaultMode::kAfterN;
    s.after = n;
    return s;
  }
  static FaultSpec OnceAfterN(uint64_t n) {
    FaultSpec s;
    s.mode = FaultMode::kOnceAfterN;
    s.after = n;
    return s;
  }
  static FaultSpec Probability(double p, uint64_t seed = 0) {
    FaultSpec s;
    s.mode = FaultMode::kProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
};

/// Thrown by MaybeThrow at control-flow failpoints (pool.task, train.abort).
/// Only ever thrown when a fault is armed, so production runs never see it.
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& point)
      : std::runtime_error("injected fault at failpoint '" + point + "'"),
        point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Registry of armed failpoints. Thread-safe; instrumentation goes through
/// the process-wide Default() instance (tests arm/disarm it directly and
/// must DisarmAll() on teardown so suites stay independent).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector. The first call arms any spec found in the
  /// TRANSN_FAULTS environment variable (CHECK-fails on a malformed spec:
  /// a typo'd fault plan must not silently test nothing).
  static FaultInjector& Default();

  /// Arms (or re-arms, resetting hit counts) one failpoint.
  void Arm(std::string_view point, FaultSpec spec);

  /// Parses and arms a spec string:
  ///   spec   := entry (( ';' | ',' ) entry)*
  ///   entry  := point '=' mode
  ///   mode   := 'always' | 'after:' N | 'once' [':' N]
  ///           | 'prob:' P [':' SEED]
  /// e.g. "io.write=after:3;pool.task=once;io.fsync=prob:0.01:7".
  Status ArmFromSpecString(std::string_view spec);

  void Disarm(std::string_view point);
  void DisarmAll();

  /// True when any failpoint is armed; a relaxed atomic load, the only cost
  /// paid on un-faulted hot paths (see MaybeFail).
  bool AnyArmed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Records a hit on `point` and reports whether it must fail. Unarmed
  /// points never fail (and are not tracked).
  bool ShouldFail(std::string_view point);

  /// Hits recorded on an armed point (0 when not armed); diagnostics.
  uint64_t Hits(std::string_view point) const;

 private:
  struct Point {
    FaultSpec spec;
    uint64_t hits = 0;
    bool fired = false;  // kOnceAfterN latch
    Rng rng{0};          // kProbability stream
  };

  std::atomic<int> armed_points_{0};
  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
};

/// The planted-site hook: true when the armed fault at `point` fires now.
/// Near-zero overhead while nothing is armed.
inline bool MaybeFail(std::string_view point) {
  FaultInjector& injector = FaultInjector::Default();
  return injector.AnyArmed() && injector.ShouldFail(point);
}

/// MaybeFail, but raises InjectedFaultError instead of returning true. For
/// failpoints on control-flow edges with no Status channel (thread-pool
/// tasks, the training loop).
inline void MaybeThrow(std::string_view point) {
  if (MaybeFail(point)) throw InjectedFaultError(std::string(point));
}

}  // namespace fault
}  // namespace transn

#endif  // TRANSN_UTIL_FAULT_H_
