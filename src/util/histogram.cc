#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace transn {

namespace {

// Buckets span [kMinSeconds, kMinSeconds * kGrowth^(kNumBuckets-1)]:
// 100ns .. ~1100s at ~5% relative width.
constexpr double kMinSeconds = 1e-7;
constexpr double kGrowth = 1.05;
constexpr size_t kNumBuckets = 475;
const double kInvLogGrowth = 1.0 / std::log(kGrowth);

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  double idx = std::log(seconds / kMinSeconds) * kInvLogGrowth;
  return std::min(static_cast<size_t>(idx), kNumBuckets - 1);
}

double LatencyHistogram::BucketValue(size_t index) {
  // Geometric midpoint of bucket [g^i, g^{i+1}) * kMinSeconds.
  return kMinSeconds * std::pow(kGrowth, static_cast<double>(index) + 0.5);
}

void LatencyHistogram::Record(double seconds) {
  if (std::isnan(seconds)) return;
  seconds = std::max(seconds, 0.0);
  ++buckets_[BucketIndex(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  CHECK_EQ(buckets_.size(), other.buckets_.size());
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::min() const { return count_ ? min_ : 0.0; }
double LatencyHistogram::max() const { return count_ ? max_ : 0.0; }

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank of the requested percentile (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp to the observed range so tiny counts stay sensible.
      return std::clamp(BucketValue(i), min_, max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  return StrFormat(
      "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
      static_cast<unsigned long long>(count_), mean() * 1e3,
      Percentile(50) * 1e3, Percentile(95) * 1e3, Percentile(99) * 1e3,
      max() * 1e3);
}

}  // namespace transn
