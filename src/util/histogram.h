#ifndef TRANSN_UTIL_HISTOGRAM_H_
#define TRANSN_UTIL_HISTOGRAM_H_

#include <stddef.h>
#include <stdint.h>

#include <string>
#include <vector>

namespace transn {

/// Log-bucketed latency histogram. Samples are recorded in seconds into
/// geometrically spaced buckets (growth factor ~1.05, i.e. ~5% relative
/// resolution) covering [100ns, ~1000s]; values outside the range clamp to
/// the edge buckets. Exact min/max/sum are tracked alongside, so mean() is
/// exact while Percentile() has bucket resolution.
///
/// Not thread-safe: the serving layer keeps one histogram per worker and
/// Merge()s them after a batch.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double seconds);

  /// Folds `other`'s samples into this histogram.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;

  /// The p-th percentile (p in [0, 100]) as the geometric midpoint of the
  /// bucket containing that rank; 0 when empty. Percentile(0) returns the
  /// exact min and Percentile(100) the exact max.
  double Percentile(double p) const;

  /// "n=… mean=… p50=… p95=… p99=… max=…" with millisecond units; the
  /// serving CLI and benches print this at exit.
  std::string Summary() const;

 private:
  static size_t BucketIndex(double seconds);
  static double BucketValue(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace transn

#endif  // TRANSN_UTIL_HISTOGRAM_H_
