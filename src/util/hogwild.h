#ifndef TRANSN_UTIL_HOGWILD_H_
#define TRANSN_UTIL_HOGWILD_H_

#include <atomic>

namespace transn {
namespace hogwild {

/// Accessors for lock-free SGD on shared embedding tables: all accesses go
/// through relaxed atomics so concurrent reads and writes are well-defined
/// (no UB, clean under ThreadSanitizer); on x86-64 a relaxed 8-byte
/// load/store compiles to a plain mov, so the single-threaded path keeps its
/// exact numeric behavior.
///
/// Two parallel schedules use these accessors:
///  * the episodic block engine (core/single_view.cc) hands concurrent
///    workers disjoint embedding rows, so no update is ever actually
///    contended — the atomics are there to make the invariant checkable
///    (TSan) rather than assumed;
///  * the hierarchical-softmax path still runs true Hogwild (Recht et al.,
///    2011): workers race benignly on shared Huffman inner-node rows,
///    accepting occasional lost updates.

inline double Load(const double* p) {
  return std::atomic_ref<double>(*const_cast<double*>(p))
      .load(std::memory_order_relaxed);
}

inline void Store(double* p, double v) {
  std::atomic_ref<double>(*p).store(v, std::memory_order_relaxed);
}

/// *p -= delta as a load+store pair rather than an atomic RMW: Hogwild
/// tolerates lost updates, and avoiding lock-prefixed instructions keeps the
/// hot loop free of cache-line write stalls.
inline void SubInPlace(double* p, double delta) { Store(p, Load(p) - delta); }

}  // namespace hogwild
}  // namespace transn

#endif  // TRANSN_UTIL_HOGWILD_H_
