#ifndef TRANSN_UTIL_HOGWILD_H_
#define TRANSN_UTIL_HOGWILD_H_

#include <atomic>

namespace transn {
namespace hogwild {

/// Accessors for Hogwild-style (Recht et al., 2011) lock-free SGD on shared
/// embedding tables: concurrent workers read and write rows without
/// synchronization, accepting occasional lost updates. All accesses go
/// through relaxed atomics so the races are well-defined (no UB, clean under
/// ThreadSanitizer); on x86-64 a relaxed 8-byte load/store compiles to a
/// plain mov, so the single-threaded path keeps its exact numeric behavior.

inline double Load(const double* p) {
  return std::atomic_ref<double>(*const_cast<double*>(p))
      .load(std::memory_order_relaxed);
}

inline void Store(double* p, double v) {
  std::atomic_ref<double>(*p).store(v, std::memory_order_relaxed);
}

/// *p -= delta as a load+store pair rather than an atomic RMW: Hogwild
/// tolerates lost updates, and avoiding lock-prefixed instructions keeps the
/// hot loop free of cache-line write stalls.
inline void SubInPlace(double* p, double delta) { Store(p, Load(p) - delta); }

}  // namespace hogwild
}  // namespace transn

#endif  // TRANSN_UTIL_HOGWILD_H_
