#ifndef TRANSN_UTIL_LOGGING_H_
#define TRANSN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace transn {

/// Severity levels for the logging macros below.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually written to stderr. Defaults to kInfo.
/// Benches raise this to keep table output clean.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

/// Accumulates one log line and emits it (and aborts for kFatal) on
/// destruction. Used only via the LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Sink that swallows a streamed expression; used for disabled log levels.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace transn

#define TRANSN_LOG_INFO \
  ::transn::internal::LogMessage(::transn::LogSeverity::kInfo, __FILE__, __LINE__)
#define TRANSN_LOG_WARNING                                            \
  ::transn::internal::LogMessage(::transn::LogSeverity::kWarning, __FILE__, \
                                 __LINE__)
#define TRANSN_LOG_ERROR \
  ::transn::internal::LogMessage(::transn::LogSeverity::kError, __FILE__, __LINE__)
#define TRANSN_LOG_FATAL \
  ::transn::internal::LogMessage(::transn::LogSeverity::kFatal, __FILE__, __LINE__)

/// LOG(INFO) << "message"; — severity one of INFO, WARNING, ERROR, FATAL.
/// FATAL aborts the process after emitting the message.
#define LOG(severity) TRANSN_LOG_##severity.stream()

/// CHECK(cond) aborts with a diagnostic when `cond` is false. Additional
/// context can be streamed: CHECK(n > 0) << "n=" << n;
#define CHECK(condition)                                   \
  (condition) ? (void)0                                    \
              : ::transn::internal::LogMessageVoidify() &  \
                    TRANSN_LOG_FATAL.stream()              \
                        << "Check failed: " #condition " "

#define TRANSN_CHECK_OP(name, op, a, b)                                    \
  CHECK((a)op(b)) << "(" #a " " #op " " #b "): " << (a) << " vs " << (b) \
                  << " "

#define CHECK_EQ(a, b) TRANSN_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) TRANSN_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) TRANSN_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) TRANSN_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) TRANSN_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) TRANSN_CHECK_OP(GE, >=, a, b)

/// DCHECK: compiled out in NDEBUG builds; use on hot paths only.
#ifdef NDEBUG
#define DCHECK(condition) \
  while (false) CHECK(condition)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // TRANSN_UTIL_LOGGING_H_
