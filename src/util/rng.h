#ifndef TRANSN_UTIL_RNG_H_
#define TRANSN_UTIL_RNG_H_

#include <stdint.h>

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace transn {

/// Complete serializable Rng state: the four xoshiro256** words plus the
/// Box–Muller spare. Captured into checkpoints so a resumed training run
/// draws the exact sequence the uninterrupted run would have drawn.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state. All
/// stochastic components in this repository draw from Rng so experiments are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Creates an independent child stream; used to hand one Rng per thread or
  /// per walk without correlated sequences.
  Rng Split();

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Samples index i with probability weights[i] / sum(weights). O(n); use
  /// AliasTable for repeated draws from the same distribution.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Snapshots / restores the full generator state (checkpointing).
  RngState SaveState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_cached_gaussian = has_cached_gaussian_;
    st.cached_gaussian = cached_gaussian_;
    return st;
  }
  void RestoreState(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_gaussian_ = st.has_cached_gaussian;
    cached_gaussian_ = st.cached_gaussian;
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace transn

#endif  // TRANSN_UTIL_RNG_H_
