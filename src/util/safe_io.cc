#include "util/safe_io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>

#include "util/fault.h"
#include "util/string_util.h"

namespace transn {

namespace {

/// CheckedWriter buffers this many bytes between write(2) calls; large
/// enough to amortize syscalls on matrix dumps, small enough that injected
/// mid-file faults exercise multi-flush paths in tests.
constexpr size_t kWriteBufferBytes = 1 << 18;

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::atomic<uint64_t> g_write_errors{0};
std::function<void()>* g_write_error_hook = nullptr;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint64_t WriteErrorCount() {
  return g_write_errors.load(std::memory_order_relaxed);
}

void SetWriteErrorHook(std::function<void()> hook) {
  delete g_write_error_hook;
  g_write_error_hook =
      hook ? new std::function<void()>(std::move(hook)) : nullptr;
}

CheckedWriter::CheckedWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) Fail(ErrnoStatus("cannot open for write:", path_));
  buffer_.reserve(kWriteBufferBytes);
}

CheckedWriter::~CheckedWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void CheckedWriter::Fail(Status status) {
  if (!status_.ok()) return;  // keep the first failure
  status_ = std::move(status);
  g_write_errors.fetch_add(1, std::memory_order_relaxed);
  if (g_write_error_hook != nullptr) (*g_write_error_hook)();
}

Status CheckedWriter::FlushBuffer() {
  if (!status_.ok() || buffer_.empty()) return status_;
  size_t to_write = buffer_.size();
  bool injected_short = false;
  if (fault::MaybeFail(fault::kIoWrite)) {
    Fail(Status::IoError("write failed: " + path_ +
                         ": No space left on device (injected)"));
    return status_;
  }
  if (fault::MaybeFail(fault::kIoShortWrite)) {
    // Half the buffer reaches the file, then the device gives out — the torn
    // tail a crash-consistent reader must reject.
    to_write /= 2;
    injected_short = true;
  }
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail(ErrnoStatus("write failed:", path_));
      return status_;
    }
    written += static_cast<size_t>(n);
  }
  if (injected_short) {
    Fail(Status::IoError(StrFormat(
        "short write: %s: %zu of %zu bytes (injected)", path_.c_str(),
        to_write, buffer_.size())));
    return status_;
  }
  buffer_.clear();
  return status_;
}

CheckedWriter& CheckedWriter::Write(std::string_view bytes) {
  if (!status_.ok()) return *this;
  buffer_.append(bytes.data(), bytes.size());
  if (buffer_.size() >= kWriteBufferBytes) FlushBuffer();
  return *this;
}

Status CheckedWriter::FlushAndSync() {
  RETURN_IF_ERROR(FlushBuffer());
  if (fault::MaybeFail(fault::kIoFsync)) {
    Fail(Status::IoError("fsync failed: " + path_ + " (injected)"));
    return status_;
  }
  if (::fsync(fd_) != 0) Fail(ErrnoStatus("fsync failed:", path_));
  return status_;
}

Status CheckedWriter::Close() {
  if (fd_ < 0) return status_;
  FlushBuffer();
  if (::close(fd_) != 0) Fail(ErrnoStatus("close failed:", path_));
  fd_ = -1;
  return status_;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), writer_(tmp_path_) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!finished_) Abandon();
}

Status AtomicFileWriter::Commit() {
  finished_ = true;
  Status status = writer_.FlushAndSync();
  if (status.ok()) status = writer_.Close();
  if (!status.ok()) {
    writer_.Close();
    std::remove(tmp_path_.c_str());
    return status;
  }
  if (fault::MaybeFail(fault::kIoRename)) {
    // Torn rename: target untouched, temp file left behind — exactly the
    // on-disk state a crash between write and rename produces.
    g_write_errors.fetch_add(1, std::memory_order_relaxed);
    if (g_write_error_hook != nullptr) (*g_write_error_hook)();
    return Status::IoError("rename failed: " + tmp_path_ + " -> " + path_ +
                           " (injected)");
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Status s = ErrnoStatus("rename failed:", tmp_path_ + " -> " + path_);
    g_write_errors.fetch_add(1, std::memory_order_relaxed);
    if (g_write_error_hook != nullptr) (*g_write_error_hook)();
    std::remove(tmp_path_.c_str());
    return s;
  }
  // Best-effort directory fsync so the rename itself is durable.
  const size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

void AtomicFileWriter::Abandon() {
  finished_ = true;
  writer_.Close();
  std::remove(tmp_path_.c_str());
}

}  // namespace transn
