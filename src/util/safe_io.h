#ifndef TRANSN_UTIL_SAFE_IO_H_
#define TRANSN_UTIL_SAFE_IO_H_

#include <stddef.h>
#include <stdint.h>

#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace transn {

/// CRC-32 (ISO-HDLC, the zlib/PNG polynomial, reflected, init/xorout
/// 0xFFFFFFFF). `crc` chains calls: Crc32(b, Crc32(a)) == Crc32(a+b).
/// Protects the per-section trailers of the checkpoint v2 and serving v2
/// formats (DESIGN.md §8).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);
inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

/// Number of failed writes observed process-wide by CheckedWriter /
/// AtomicFileWriter (real errors and injected faults alike). Mirrored into
/// the obs registry as `io.write_errors_total` (see obs/metrics.cc, which
/// bridges the two so util/ stays free of an obs/ dependency).
uint64_t WriteErrorCount();

/// Installs the hook invoked once per failed write; obs/metrics.cc uses it
/// to increment `io.write_errors_total`. Pass nullptr to uninstall. Not
/// thread-safe against concurrent writers — install at startup.
void SetWriteErrorHook(std::function<void()> hook);

/// Buffered file writer whose every byte is verified: short writes, ENOSPC,
/// and close-time flush failures all surface in status(), never silently.
/// After the first failure every further Write is a no-op, so call sites can
/// write unconditionally and check once before Close().
///
/// Failpoints (util/fault.h): each buffer flush consults fault::kIoWrite
/// (fails wholesale, as ENOSPC) and fault::kIoShortWrite (half the buffer
/// lands, then fails); FlushAndSync additionally consults fault::kIoFsync.
class CheckedWriter {
 public:
  /// Opens `path` for writing (created/truncated). Check status().
  explicit CheckedWriter(std::string path);
  CheckedWriter(const CheckedWriter&) = delete;
  CheckedWriter& operator=(const CheckedWriter&) = delete;
  /// Closes the descriptor; errors at this point are lost — call Close().
  ~CheckedWriter();

  CheckedWriter& Write(std::string_view bytes);

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }

  /// Flushes the buffer and fsyncs the file (the durability barrier of
  /// AtomicFileWriter::Commit).
  Status FlushAndSync();

  /// Flushes and closes; idempotent. Returns the writer's final status.
  Status Close();

 private:
  Status FlushBuffer();
  /// Records the first failure and counts it in WriteErrorCount().
  void Fail(Status status);

  std::string path_;
  int fd_ = -1;
  std::string buffer_;
  Status status_;
};

/// Crash-safe whole-file replacement: writes to `<path>.tmp` in the target
/// directory, then Commit() flushes, fsyncs, and renames over `path`, so
/// readers only ever observe the old complete file or the new complete file.
/// A crash (or failure) before the rename leaves the target untouched and at
/// worst a torn `<path>.tmp` behind, which the next writer truncates and
/// resume logic ignores.
///
/// Failpoints: CheckedWriter's, plus fault::kIoRename (the rename fails and
/// the torn temp file is left in place).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  /// Abandons (removes the temp file) unless Commit() succeeded.
  ~AtomicFileWriter();

  AtomicFileWriter& Write(std::string_view bytes) {
    writer_.Write(bytes);
    return *this;
  }
  const Status& status() const { return writer_.status(); }

  /// Flush + fsync + close + rename onto the target (+ best-effort directory
  /// fsync). On failure the target is untouched; the temp file is removed
  /// except after a failed rename, where it survives as the torn `.tmp`.
  Status Commit();

  /// Closes and removes the temp file without touching the target.
  void Abandon();

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  CheckedWriter writer_;
  bool finished_ = false;
};

}  // namespace transn

#endif  // TRANSN_UTIL_SAFE_IO_H_
