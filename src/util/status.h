#ifndef TRANSN_UTIL_STATUS_H_
#define TRANSN_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace transn {

/// Error categories for recoverable failures (I/O, malformed input,
/// invalid configuration). Programming errors use CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  /// Stored data failed an integrity check (CRC mismatch, torn write).
  kDataLoss,
};

/// Lightweight absl::Status-alike: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>"; for logging and test diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type for fallible factories and loaders.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value/Status mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace transn

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::transn::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // TRANSN_UTIL_STATUS_H_
