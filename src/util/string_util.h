#ifndef TRANSN_UTIL_STRING_UTIL_H_
#define TRANSN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace transn {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Joins the elements with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double/int64; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace transn

#endif  // TRANSN_UTIL_STRING_UTIL_H_
