#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"

namespace transn {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  CHECK(fn != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!shutdown_) << "Schedule after shutdown";
    queue_.push(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      fault::MaybeThrow(fault::kPoolTask);
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_shards = std::min(n, pool.num_threads());
  if (num_shards <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunk = (n + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.Schedule([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace transn
