#ifndef TRANSN_UTIL_THREAD_POOL_H_
#define TRANSN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace transn {

/// Fixed-size worker pool with a shared FIFO queue. Training loops in this
/// repository are single-threaded by default (results must be reproducible
/// from one seed), but dataset generation and evaluation sweeps use the pool
/// when more than one hardware thread is available.
///
/// Task failure: a task that throws does not kill its worker — the first
/// exception is captured and rethrown by the next Wait() in the scheduling
/// thread, after the queue has drained (remaining tasks still run). The
/// fault::kPoolTask failpoint (util/fault.h) injects exactly such a failure
/// before a task executes.
class ThreadPool {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Joins workers; a captured task exception never claimed by Wait() is
  /// discarded (destructors must not throw).
  ~ThreadPool();

  /// Enqueues a task. Must not be called after the destructor has begun.
  void Schedule(std::function<void()> fn);

  /// Blocks until every scheduled task has finished, then rethrows the
  /// first exception any of them raised (if one did). The pool stays usable
  /// after a rethrow.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;    // first task exception, until Wait()
};

/// Runs fn(i) for i in [0, n), splitting the range across `pool`'s threads.
/// Blocks until complete. fn must be safe to call concurrently.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace transn

#endif  // TRANSN_UTIL_THREAD_POOL_H_
