#ifndef TRANSN_UTIL_THREAD_POOL_H_
#define TRANSN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace transn {

/// Fixed-size worker pool with a shared FIFO queue. Training loops in this
/// repository are single-threaded by default (results must be reproducible
/// from one seed), but dataset generation and evaluation sweeps use the pool
/// when more than one hardware thread is available.
class ThreadPool {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task. Must not be called after the destructor has begun.
  void Schedule(std::function<void()> fn);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n), splitting the range across `pool`'s threads.
/// Blocks until complete. fn must be safe to call concurrently.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace transn

#endif  // TRANSN_UTIL_THREAD_POOL_H_
