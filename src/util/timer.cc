#include "util/timer.h"

// WallTimer is header-only; this file exists so every util header has an
// associated translation unit that verifies it is self-contained.
