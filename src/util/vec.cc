#include "util/vec.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define TRANSN_VEC_X86 1
#include <immintrin.h>
// Per-function ISA targeting keeps the rest of the binary at the baseline
// -march while these kernels use AVX2+FMA; runtime dispatch guards them.
#define TRANSN_TARGET_AVX2 __attribute__((target("avx2,fma")))
#elif defined(__aarch64__)
#define TRANSN_VEC_NEON 1
#include <arm_neon.h>
#endif

namespace transn {
namespace vec {
namespace {

// ---------------------------------------------------------------------------
// Sigmoid / -log(sigmoid) lookup tables (word2vec-style, but interpolated).
//
// Both functions are tabulated at kLutSize+1 equally spaced nodes over
// [-kLutRange, kLutRange] and evaluated by linear interpolation. With
// kLutRange = 8 and kLutSize = 4096 the node spacing is h = 1/256; the
// interpolation error of a C^2 function is bounded by h^2 * max|f''| / 8,
// i.e. < 4.8e-7 for -log(sigmoid) (max|f''| = 1/4) and < 1.9e-7 for sigmoid
// (max|f''| ~ 0.0962) — both comfortably under the documented 1e-6 bound.
// Outside the table range the exact std::exp expressions are used (the
// guarded fallback), so the LUT never extrapolates.
// ---------------------------------------------------------------------------
constexpr double kLutRange = 8.0;
constexpr size_t kLutSize = 4096;
constexpr double kLutScale = kLutSize / (2.0 * kLutRange);

struct Luts {
  double sig[kLutSize + 1];
  double nls[kLutSize + 1];
  Luts() {
    for (size_t i = 0; i <= kLutSize; ++i) {
      const double x = -kLutRange + static_cast<double>(i) / kLutScale;
      sig[i] = ref::Sigmoid(x);
      nls[i] = ref::NegLogSigmoid(x);
    }
  }
};

const Luts& GetLuts() {
  static const Luts luts;
  return luts;
}

inline double LutInterp(const double* table, double x) {
  const double pos = (x + kLutRange) * kLutScale;
  const size_t i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  return table[i] + frac * (table[i + 1] - table[i]);
}

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------
bool EnvDisablesSimd() {
  const char* e = std::getenv("TRANSN_NO_SIMD");
  if (e == nullptr || e[0] == '\0') return false;
  return !(e[0] == '0' && e[1] == '\0');  // "0" keeps SIMD on
}

Isa DetectBestIsa() {
#if defined(TRANSN_VEC_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
  return Isa::kScalar;
#elif defined(TRANSN_VEC_NEON)
  return Isa::kNeon;  // NEON is architecturally guaranteed on aarch64
#else
  return Isa::kScalar;
#endif
}

// Function-local so the env var is read lazily (first kernel use), never
// during static initialization of other translation units.
std::atomic<bool>& EnabledSlot() {
  static std::atomic<bool> enabled{!EnvDisablesSimd()};
  return enabled;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Unaligned loads throughout: embedding rows are plain
// std::vector<double> storage with no alignment guarantee.
// ---------------------------------------------------------------------------
#if defined(TRANSN_VEC_X86)

TRANSN_TARGET_AVX2 inline double Hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

TRANSN_TARGET_AVX2 double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  // Four independent accumulators hide the FMA latency on the main body.
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double total =
      Hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += a[i] * b[i];  // remainder lanes, scalar
  return total;
}

TRANSN_TARGET_AVX2 void AxpyAvx2(double a, const double* x, double* y,
                                 size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  // 2x unroll: two independent load/fma/store chains per iteration halve
  // the loop overhead on this store-bound kernel.
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                                       _mm256_loadu_pd(y + i));
    const __m256d r1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4),
                                       _mm256_loadu_pd(y + i + 4));
    _mm256_storeu_pd(y + i, r0);
    _mm256_storeu_pd(y + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

TRANSN_TARGET_AVX2 void ScaledSubAvx2(double* y, double a, const double* x,
                                      size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fnmadd_pd(av, _mm256_loadu_pd(x + i),
                                _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] -= a * x[i];
}

TRANSN_TARGET_AVX2 double SquaredDistanceAvx2(const double* a, const double* b,
                                              size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double total = Hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

TRANSN_TARGET_AVX2 int32_t DotI8Avx2(const int8_t* a, const int8_t* b,
                                     size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  // Sign-extend 16 codes per operand to int16 and use madd_epi16: each
  // product is <= 127^2, each pairwise sum <= 2*127^2, accumulated in int32
  // lanes. Integer adds are associative, so any lane arrangement produces
  // the same total as the sequential scalar reference — exactly.
  for (; i + 16 <= n; i += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t total = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

TRANSN_TARGET_AVX2 void FusedSgnsUpdateAvx2(double g, double s,
                                            const double* v, double* u,
                                            double* grad, size_t n) {
  const __m256d gv = _mm256_set1_pd(g);
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  // 2x unroll: the grad and u chains of each half are independent, so four
  // FMAs are in flight per iteration.
  for (; i + 8 <= n; i += 8) {
    const __m256d u0 = _mm256_loadu_pd(u + i);
    const __m256d u1 = _mm256_loadu_pd(u + i + 4);
    _mm256_storeu_pd(grad + i,
                     _mm256_fmadd_pd(gv, u0, _mm256_loadu_pd(grad + i)));
    _mm256_storeu_pd(grad + i + 4,
                     _mm256_fmadd_pd(gv, u1, _mm256_loadu_pd(grad + i + 4)));
    _mm256_storeu_pd(u + i,
                     _mm256_fnmadd_pd(sv, _mm256_loadu_pd(v + i), u0));
    _mm256_storeu_pd(u + i + 4,
                     _mm256_fnmadd_pd(sv, _mm256_loadu_pd(v + i + 4), u1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d uv = _mm256_loadu_pd(u + i);
    _mm256_storeu_pd(grad + i,
                     _mm256_fmadd_pd(gv, uv, _mm256_loadu_pd(grad + i)));
    _mm256_storeu_pd(u + i,
                     _mm256_fnmadd_pd(sv, _mm256_loadu_pd(v + i), uv));
  }
  for (; i < n; ++i) {
    grad[i] += g * u[i];
    u[i] -= s * v[i];
  }
}

#endif  // TRANSN_VEC_X86

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 baseline — no runtime feature test needed).
// ---------------------------------------------------------------------------
#if defined(TRANSN_VEC_NEON)

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  double total = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void AxpyNeon(double a, const double* x, double* y, size_t n) {
  const float64x2_t av = vdupq_n_f64(a);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), av, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaledSubNeon(double* y, double a, const double* x, size_t n) {
  const float64x2_t av = vdupq_n_f64(a);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vfmsq_f64(vld1q_f64(y + i), av, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] -= a * x[i];
}

double SquaredDistanceNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    acc = vfmaq_f64(acc, d, d);
  }
  double total = vaddvq_f64(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

int32_t DotI8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  // vmull_s8 widens to int16 products (<= 127^2), vpadalq_s16 pairwise-adds
  // them into int32 lanes. Exact, so identical to the scalar reference.
  for (; i + 16 <= n; i += 16) {
    const int8x16_t av = vld1q_s8(a + i);
    const int8x16_t bv = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
  }
  int32_t total = vaddvq_s32(acc);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

void FusedSgnsUpdateNeon(double g, double s, const double* v, double* u,
                         double* grad, size_t n) {
  const float64x2_t gv = vdupq_n_f64(g);
  const float64x2_t sv = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t uv = vld1q_f64(u + i);
    vst1q_f64(grad + i, vfmaq_f64(vld1q_f64(grad + i), gv, uv));
    vst1q_f64(u + i, vfmsq_f64(uv, sv, vld1q_f64(v + i)));
  }
  for (; i < n; ++i) {
    grad[i] += g * u[i];
    u[i] -= s * v[i];
  }
}

#endif  // TRANSN_VEC_NEON

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa BestIsa() {
  static const Isa best = DetectBestIsa();
  return best;
}

bool SimdEnabled() { return EnabledSlot().load(std::memory_order_relaxed); }

void SetSimdEnabled(bool enabled) {
  EnabledSlot().store(enabled, std::memory_order_relaxed);
}

Isa ActiveIsa() { return SimdEnabled() ? BestIsa() : Isa::kScalar; }

// --- Scalar references ------------------------------------------------------
// These loops ARE the historical implementations (sgns.cc, knn Dot4's
// sequential cousin, matrix.cc Dot): sequential order, one multiply and one
// add per element, so the scalar path stays bit-identical to the seed code.
//
// Auto-vectorization is disabled: the historical trainer loops ran through
// per-element relaxed-atomic loads, which the compiler could never
// vectorize, so a truly scalar body is both the honest before/after baseline
// (BENCH_kernels.json) and the faithful model of the pre-kernel-layer hot
// paths. Elementwise vectorization wouldn't change bits, but reductions are
// already unvectorizable without -ffast-math — this keeps all five uniform.
#if defined(__GNUC__) && !defined(__clang__)
#define TRANSN_REF_NOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define TRANSN_REF_NOVEC
#endif

namespace ref {

TRANSN_REF_NOVEC
double Dot(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

TRANSN_REF_NOVEC
void Axpy(double a, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

TRANSN_REF_NOVEC
void ScaledSub(double* y, double a, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] -= a * x[i];
}

TRANSN_REF_NOVEC
double SquaredDistance(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

TRANSN_REF_NOVEC
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

TRANSN_REF_NOVEC
double DotF32(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

TRANSN_REF_NOVEC
void FusedSgnsUpdate(double g, double s, const double* v, double* u,
                     double* grad, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    grad[i] += g * u[i];
    u[i] -= s * v[i];
  }
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double NegLogSigmoid(double x) {
  // log(1 + e^{-x}) computed stably on both tails.
  return x > 0.0 ? std::log1p(std::exp(-x)) : -x + std::log1p(std::exp(x));
}

}  // namespace ref

// --- Dispatched kernels -----------------------------------------------------

double Dot(const double* a, const double* b, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return DotAvx2(a, b, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return DotNeon(a, b, n);
#endif
    default:
      return ref::Dot(a, b, n);
  }
}

void Axpy(double a, const double* x, double* y, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return AxpyAvx2(a, x, y, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return AxpyNeon(a, x, y, n);
#endif
    default:
      return ref::Axpy(a, x, y, n);
  }
}

void ScaledSub(double* y, double a, const double* x, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return ScaledSubAvx2(y, a, x, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return ScaledSubNeon(y, a, x, n);
#endif
    default:
      return ref::ScaledSub(y, a, x, n);
  }
}

double SquaredDistance(const double* a, const double* b, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return SquaredDistanceAvx2(a, b, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return SquaredDistanceNeon(a, b, n);
#endif
    default:
      return ref::SquaredDistance(a, b, n);
  }
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return DotI8Avx2(a, b, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return DotI8Neon(a, b, n);
#endif
    default:
      return ref::DotI8(a, b, n);
  }
}

double DotF32(const float* a, const float* b, size_t n) {
  // Deliberately not SIMD-dispatched: the sequential double accumulation is
  // the determinism contract (re-rank scores identical on every ISA), and
  // the candidate sets this runs over are tiny (ef <= a few hundred rows).
  return ref::DotF32(a, b, n);
}

void FusedSgnsUpdate(double g, double s, const double* v, double* u,
                     double* grad, size_t n) {
  switch (ActiveIsa()) {
#if defined(TRANSN_VEC_X86)
    case Isa::kAvx2:
      return FusedSgnsUpdateAvx2(g, s, v, u, grad, n);
#endif
#if defined(TRANSN_VEC_NEON)
    case Isa::kNeon:
      return FusedSgnsUpdateNeon(g, s, v, u, grad, n);
#endif
    default:
      return ref::FusedSgnsUpdate(g, s, v, u, grad, n);
  }
}

double Sigmoid(double x) {
  if (ActiveIsa() == Isa::kScalar) return ref::Sigmoid(x);
  if (x <= -kLutRange || x >= kLutRange) return ref::Sigmoid(x);
  return LutInterp(GetLuts().sig, x);
}

double NegLogSigmoid(double x) {
  if (ActiveIsa() == Isa::kScalar) return ref::NegLogSigmoid(x);
  if (x <= -kLutRange || x >= kLutRange) return ref::NegLogSigmoid(x);
  return LutInterp(GetLuts().nls, x);
}

double SgnsPairLoss(double score, double pred, bool positive) {
  if (ActiveIsa() == Isa::kScalar) {
    // The historical clamped expression, bit for bit.
    return positive ? -std::log(std::max(pred, 1e-12))
                    : -std::log(std::max(1.0 - pred, 1e-12));
  }
  return NegLogSigmoid(positive ? score : -score);
}

}  // namespace vec
}  // namespace transn
