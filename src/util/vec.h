#ifndef TRANSN_UTIL_VEC_H_
#define TRANSN_UTIL_VEC_H_

#include <stddef.h>
#include <stdint.h>

namespace transn {

/// Shared vectorized kernel layer for every inner-product-shaped hot loop in
/// the repository: the SGNS / hierarchical-softmax pair updates (src/emb),
/// the translator matmuls and cosine losses (src/nn, src/core), and the
/// serving k-NN scan (src/serve). All dot products, axpy updates, and fused
/// SGNS gradient steps go through this header — private per-file loop copies
/// are forbidden (scripts/check_kernel_dedup.sh greps for regressions).
///
/// Dispatch model: each kernel dispatches at runtime to the best instruction
/// set the CPU supports — AVX2+FMA on x86-64, NEON on aarch64 — with a
/// bit-careful scalar fallback (remainder lanes after the vector body are
/// handled by the same scalar expressions as the reference). Setting the
/// environment variable TRANSN_NO_SIMD to a non-empty value other than "0"
/// (or calling SetSimdEnabled(false); tools expose --no-simd) forces the
/// scalar path, which reproduces the pre-kernel-layer loops bit for bit:
/// sequential accumulation order and exact std::exp-based sigmoid, so
/// 1-thread training under TRANSN_NO_SIMD=1 is byte-identical to the
/// historical scalar implementation.
///
/// Thread safety: kernels are pure functions of their operands. Hogwild
/// callers must snapshot shared rows into private scratch via relaxed-atomic
/// loads (util/hogwild.h) before handing them to a kernel, and write results
/// back with relaxed-atomic stores — the vector bodies themselves only ever
/// touch private buffers, which keeps the parallel trainers TSan-clean.
namespace vec {

/// Instruction set a kernel call dispatches to. The numeric values are
/// stable: they are exported as the `kernels.isa` gauge.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// "scalar" | "avx2" | "neon".
const char* IsaName(Isa isa);

/// Best ISA this binary can run on this CPU (ignores the enable flag).
Isa BestIsa();

/// The ISA kernels dispatch to right now: BestIsa() when SIMD is enabled,
/// kScalar otherwise.
Isa ActiveIsa();

/// SIMD dispatch state. The initial value honors TRANSN_NO_SIMD (read once,
/// at first kernel use); SetSimdEnabled() is the programmatic escape hatch
/// used by --no-simd flags, benches (kernels on/off comparisons), and tests.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

/// sum_i a[i] * b[i].
double Dot(const double* a, const double* b, size_t n);

/// y[i] += a * x[i].
void Axpy(double a, const double* x, double* y, size_t n);

/// y[i] -= a * x[i].
void ScaledSub(double* y, double a, const double* x, size_t n);

/// sum_i (a[i] - b[i])^2.
double SquaredDistance(const double* a, const double* b, size_t n);

/// sum_i a[i] * b[i] over int8 codes, accumulated exactly in int32. Because
/// integer addition is associative, the dispatched SIMD bodies return the
/// *bit-identical* value of the scalar reference on every ISA — this is what
/// makes the HNSW graph traversal (serve/ann_index) deterministic across
/// machines. Safe for n up to 2^17 (|a_i b_i| <= 127^2).
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

/// sum_i a[i] * b[i] over float32 operands, accumulated sequentially in
/// double on every ISA (never reordered by SIMD), so re-ranking scores are
/// identical across machines. Used for the fp32 re-rank of ANN candidate
/// sets — tiny vectors-times-candidates workloads where determinism matters
/// more than peak throughput.
double DotF32(const float* a, const float* b, size_t n);

/// Fused SGNS gradient step on private buffers, one pass over the row:
///   grad[i] += g * u[i];  u[i] -= s * v[i];
/// where g = sigmoid(score) - label and s = learning_rate * g. The caller
/// snapshots u from the shared table first and stores it back afterwards.
void FusedSgnsUpdate(double g, double s, const double* v, double* u,
                     double* grad, size_t n);

/// Logistic sigmoid. SIMD enabled: word2vec-style lookup table over
/// [-8, 8] with linear interpolation (max absolute error < 1e-6, see
/// DESIGN.md §7) and a guarded exact-std::exp fallback outside the table
/// range. SIMD disabled: exact 1/(1+exp(-x)) — bit-identical to the
/// historical trainers.
double Sigmoid(double x);

/// -log(sigmoid(x)), the SGNS/HS per-pair loss term. Same LUT-vs-exact
/// dispatch (and error bound) as Sigmoid().
double NegLogSigmoid(double x);

/// The monitoring loss of one (center, context) update, given the score and
/// pred = Sigmoid(score). Scalar mode reproduces the historical clamped
/// expression -log(max(pred, 1e-12)) / -log(max(1-pred, 1e-12)) bit for
/// bit; SIMD mode uses the NegLogSigmoid LUT.
double SgnsPairLoss(double score, double pred, bool positive);

/// Exact scalar reference kernels: sequential accumulation, no FMA
/// contraction, no lookup tables. These are the TRANSN_NO_SIMD semantics and
/// the ground truth for the equivalence suite (tests/vec_kernels_test.cc).
namespace ref {
double Dot(const double* a, const double* b, size_t n);
void Axpy(double a, const double* x, double* y, size_t n);
void ScaledSub(double* y, double a, const double* x, size_t n);
double SquaredDistance(const double* a, const double* b, size_t n);
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);
double DotF32(const float* a, const float* b, size_t n);
void FusedSgnsUpdate(double g, double s, const double* v, double* u,
                     double* grad, size_t n);
double Sigmoid(double x);
double NegLogSigmoid(double x);
}  // namespace ref

}  // namespace vec
}  // namespace transn

#endif  // TRANSN_UTIL_VEC_H_
