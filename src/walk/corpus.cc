#include "walk/corpus.h"

#include "util/logging.h"

namespace transn {

void ForEachContextPairDef6(const std::vector<uint32_t>& walk, bool heter_view,
                            const std::function<void(ContextPair)>& fn) {
  const size_t window = heter_view ? 2 : 1;
  ForEachWindowPair(walk, window, fn);
}

void ForEachWindowPair(const std::vector<uint32_t>& walk, size_t window,
                       const std::function<void(ContextPair)>& fn) {
  const size_t r = walk.size();
  for (size_t k = 0; k < r; ++k) {
    for (size_t off = 1; off <= window; ++off) {
      if (k >= off) fn({walk[k], walk[k - off]});
      if (k + off < r) fn({walk[k], walk[k + off]});
    }
  }
}

std::vector<double> CountOccurrences(
    const std::vector<std::vector<uint32_t>>& corpus, size_t vocab_size) {
  std::vector<double> counts(vocab_size, 0.0);
  for (const auto& walk : corpus) {
    for (uint32_t id : walk) {
      CHECK_LT(id, vocab_size);
      counts[id] += 1.0;
    }
  }
  return counts;
}

}  // namespace transn
