#ifndef TRANSN_WALK_CORPUS_H_
#define TRANSN_WALK_CORPUS_H_

#include <stdint.h>

#include <functional>
#include <vector>

namespace transn {

/// A (center, context) training pair extracted from a walk.
struct ContextPair {
  uint32_t center;
  uint32_t context;
};

/// Emits the context pairs of one walk per the paper's Definition 6:
/// on homo-views each node's contexts are its ±1 path neighbors; on
/// heter-views additionally its ±2 path neighbors (indirect neighbors, which
/// share the same node type as the center).
void ForEachContextPairDef6(const std::vector<uint32_t>& walk, bool heter_view,
                            const std::function<void(ContextPair)>& fn);

/// Emits (center, context) pairs for every offset 1..window (both
/// directions); the classic skip-gram windowing used by the baselines.
void ForEachWindowPair(const std::vector<uint32_t>& walk, size_t window,
                       const std::function<void(ContextPair)>& fn);

/// Occurrence counts of each id over a corpus; `vocab_size` sizes the output
/// (ids >= vocab_size are a CHECK failure). Feeds the unigram^0.75 negative
/// sampling distribution.
std::vector<double> CountOccurrences(
    const std::vector<std::vector<uint32_t>>& corpus, size_t vocab_size);

}  // namespace transn

#endif  // TRANSN_WALK_CORPUS_H_
