#include "walk/metapath_walk.h"

namespace transn {

MetapathWalker::MetapathWalker(const HeteroGraph* graph, MetapathConfig config)
    : graph_(graph), config_(std::move(config)) {
  CHECK(graph_ != nullptr);
  CHECK_GE(config_.pattern.size(), 2u) << "meta-path needs >= 2 types";
  CHECK_EQ(config_.pattern.front(), config_.pattern.back())
      << "meta-path must be cyclic (first type == last type)";
  for (NodeTypeId t : config_.pattern) {
    CHECK_LT(t, graph_->num_node_types());
  }
}

std::vector<NodeId> MetapathWalker::Walk(NodeId start, Rng& rng) const {
  CHECK_EQ(graph_->node_type(start), config_.pattern.front());
  std::vector<NodeId> path;
  path.reserve(config_.walk_length);
  path.push_back(start);
  NodeId cur = start;
  // Position within the pattern; the last element duplicates the first, so
  // the effective cycle length is pattern.size() - 1.
  size_t pos = 0;
  const size_t cycle = config_.pattern.size() - 1;

  std::vector<NodeId> candidates;
  std::vector<double> weights;
  while (path.size() < config_.walk_length) {
    const NodeTypeId want = config_.pattern[(pos + 1) % cycle];
    candidates.clear();
    weights.clear();
    for (const Adjacency* a = graph_->NeighborsBegin(cur);
         a != graph_->NeighborsEnd(cur); ++a) {
      if (graph_->node_type(a->neighbor) == want) {
        candidates.push_back(a->neighbor);
        weights.push_back(a->weight);
      }
    }
    if (candidates.empty()) break;
    cur = candidates[rng.NextDiscrete(weights)];
    path.push_back(cur);
    pos = (pos + 1) % cycle;
  }
  return path;
}

std::vector<std::vector<NodeId>> MetapathWalker::SampleCorpus(Rng& rng) const {
  std::vector<std::vector<NodeId>> corpus;
  for (size_t w = 0; w < config_.walks_per_node; ++w) {
    for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
      if (graph_->node_type(n) == config_.pattern.front()) {
        corpus.push_back(Walk(n, rng));
      }
    }
  }
  return corpus;
}

}  // namespace transn
