#ifndef TRANSN_WALK_METAPATH_WALK_H_
#define TRANSN_WALK_METAPATH_WALK_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "util/rng.h"

namespace transn {

/// Meta-path-constrained walks of metapath2vec (Dong et al., 2017). A
/// meta-path is a cyclic node-type pattern such as A-P-V-P-A; walks start at
/// nodes of the first type and at each step move (weight-proportionally) to
/// a neighbor of the next required type, cycling through the pattern.
struct MetapathConfig {
  /// Node-type pattern; first and last type must match (cyclic meta-path).
  std::vector<NodeTypeId> pattern;
  size_t walk_length = 80;
  size_t walks_per_node = 10;
};

class MetapathWalker {
 public:
  /// `graph` must outlive the walker.
  MetapathWalker(const HeteroGraph* graph, MetapathConfig config);

  /// A walk over global node ids. `start` must have the pattern's first
  /// type. The walk stops early when no neighbor of the required type
  /// exists.
  std::vector<NodeId> Walk(NodeId start, Rng& rng) const;

  /// walks_per_node walks from every node of the pattern's first type.
  std::vector<std::vector<NodeId>> SampleCorpus(Rng& rng) const;

 private:
  const HeteroGraph* graph_;
  MetapathConfig config_;
};

}  // namespace transn

#endif  // TRANSN_WALK_METAPATH_WALK_H_
