#include "walk/node2vec_walk.h"

namespace transn {

Node2VecWalker::Node2VecWalker(const ViewGraph* graph, Node2VecConfig config)
    : graph_(graph), config_(config) {
  CHECK(graph_ != nullptr);
  CHECK_GT(config_.p, 0.0);
  CHECK_GT(config_.q, 0.0);
  CHECK_GE(config_.walk_length, 1u);
}

std::vector<ViewGraph::LocalId> Node2VecWalker::Walk(ViewGraph::LocalId start,
                                                     Rng& rng) const {
  std::vector<ViewGraph::LocalId> path;
  path.reserve(config_.walk_length);
  path.push_back(start);
  ViewGraph::LocalId prev = kInvalidNode;
  ViewGraph::LocalId cur = start;
  std::vector<double> probs;
  while (path.size() < config_.walk_length) {
    const size_t deg = graph_->degree(cur);
    if (deg == 0) break;
    const ViewGraph::LocalId* nbrs = graph_->NeighborIds(cur);
    const double* weights = graph_->NeighborWeights(cur);
    ViewGraph::LocalId next;
    if (prev == kInvalidNode) {
      // First step: weight-proportional.
      probs.assign(weights, weights + deg);
      next = nbrs[rng.NextDiscrete(probs)];
    } else {
      probs.resize(deg);
      for (size_t k = 0; k < deg; ++k) {
        double bias;
        if (nbrs[k] == prev) {
          bias = 1.0 / config_.p;
        } else if (graph_->AreAdjacent(nbrs[k], prev)) {
          bias = 1.0;
        } else {
          bias = 1.0 / config_.q;
        }
        probs[k] = weights[k] * bias;
      }
      next = nbrs[rng.NextDiscrete(probs)];
    }
    path.push_back(next);
    prev = cur;
    cur = next;
  }
  return path;
}

std::vector<std::vector<ViewGraph::LocalId>> Node2VecWalker::SampleCorpus(
    Rng& rng) const {
  std::vector<std::vector<ViewGraph::LocalId>> corpus;
  corpus.reserve(graph_->num_nodes() * config_.walks_per_node);
  for (size_t w = 0; w < config_.walks_per_node; ++w) {
    for (ViewGraph::LocalId n = 0; n < graph_->num_nodes(); ++n) {
      corpus.push_back(Walk(n, rng));
    }
  }
  return corpus;
}

}  // namespace transn
