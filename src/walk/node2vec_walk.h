#ifndef TRANSN_WALK_NODE2VEC_WALK_H_
#define TRANSN_WALK_NODE2VEC_WALK_H_

#include <vector>

#include "graph/view.h"
#include "util/rng.h"

namespace transn {

/// Second-order biased walks of Grover & Leskovec (2016). The unnormalized
/// probability of moving from v to x after arriving from t is
/// w(v,x) * { 1/p if x == t; 1 if x adjacent to t; 1/q otherwise }.
struct Node2VecConfig {
  double p = 1.0;
  double q = 1.0;
  size_t walk_length = 80;
  size_t walks_per_node = 10;
};

class Node2VecWalker {
 public:
  /// `graph` must outlive the walker.
  Node2VecWalker(const ViewGraph* graph, Node2VecConfig config);

  std::vector<ViewGraph::LocalId> Walk(ViewGraph::LocalId start,
                                       Rng& rng) const;

  /// walks_per_node walks from every node.
  std::vector<std::vector<ViewGraph::LocalId>> SampleCorpus(Rng& rng) const;

 private:
  const ViewGraph* graph_;
  Node2VecConfig config_;
};

}  // namespace transn

#endif  // TRANSN_WALK_NODE2VEC_WALK_H_
