#include "walk/random_walk.h"

#include <algorithm>

#include "obs/metric_names.h"

namespace transn {

RandomWalker::RandomWalker(const ViewGraph* graph, bool is_heter,
                           WalkConfig config)
    : graph_(graph),
      is_heter_(is_heter),
      config_(config),
      walks_counter_(obs::MetricsRegistry::Default().GetCounter(
          obs::kWalkWalksTotal, "walks", "random walks streamed")),
      steps_counter_(obs::MetricsRegistry::Default().GetCounter(
          obs::kWalkStepsTotal, "nodes", "nodes emitted across all walks")) {
  CHECK(graph_ != nullptr);
  CHECK_GE(config_.walk_length, 1u);
  CHECK_GE(config_.max_walks_per_node, config_.min_walks_per_node);
}

size_t RandomWalker::WalksPerNode(ViewGraph::LocalId n) const {
  return std::clamp(graph_->degree(n), config_.min_walks_per_node,
                    config_.max_walks_per_node);
}

ViewGraph::LocalId RandomWalker::Step(ViewGraph::LocalId cur,
                                      double prev_weight, Rng& rng,
                                      std::vector<double>& probs) const {
  const size_t deg = graph_->degree(cur);
  if (deg == 0) return kInvalidNode;
  const ViewGraph::LocalId* nbrs = graph_->NeighborIds(cur);
  const double* weights = graph_->NeighborWeights(cur);

  if (!config_.weight_biased) {
    // Simple walk: uniform over neighbors.
    return nbrs[rng.NextUint64(deg)];
  }

  // Δ (Eq. 5): the spread of incident edge weights at cur. π2 applies only
  // on heter-views, after the first step, and when Δ > 0 (Eq. 4).
  const double delta = graph_->WeightSpread(cur);
  const bool use_pi2 =
      is_heter_ && config_.correlated && prev_weight >= 0.0 && delta > 0.0;

  probs.resize(deg);
  double total = 0.0;
  for (size_t k = 0; k < deg; ++k) {
    double p = weights[k];  // π1 ∝ edge weight (Eq. 6)
    if (use_pi2) {
      // π2 ∝ 1 - (w_next - w_prev)/Δ (Eq. 7); non-negative whenever
      // prev_weight is itself incident to cur, clamp guards the subview
      // boundary case where it is not.
      double pi2 = 1.0 - (weights[k] - prev_weight) / delta;
      p *= std::max(0.0, pi2);
    }
    probs[k] = p;
    total += p;
  }
  if (total <= 0.0) {
    // All π2 factors vanished; fall back to the first-order bias π1.
    for (size_t k = 0; k < deg; ++k) {
      probs[k] = weights[k];
    }
  }
  return nbrs[rng.NextDiscrete(probs)];
}

std::vector<ViewGraph::LocalId> RandomWalker::Walk(ViewGraph::LocalId start,
                                                   Rng& rng) const {
  std::vector<ViewGraph::LocalId> path;
  WalkInto(start, rng, &path);
  return path;
}

void RandomWalker::WalkInto(ViewGraph::LocalId start, Rng& rng,
                            std::vector<ViewGraph::LocalId>* out,
                            std::vector<double>* probs_scratch) const {
  std::vector<ViewGraph::LocalId>& path = *out;
  path.clear();
  path.reserve(config_.walk_length);
  path.push_back(start);
  std::vector<double> local_probs;  // step-distribution scratch fallback
  std::vector<double>& probs = probs_scratch ? *probs_scratch : local_probs;
  double prev_weight = -1.0;
  ViewGraph::LocalId cur = start;
  while (path.size() < config_.walk_length) {
    ViewGraph::LocalId next = Step(cur, prev_weight, rng, probs);
    if (next == kInvalidNode) break;
    // Record the weight of the traversed edge for π2 at the next step.
    const ViewGraph::LocalId* nbrs = graph_->NeighborIds(cur);
    const double* weights = graph_->NeighborWeights(cur);
    for (size_t k = 0; k < graph_->degree(cur); ++k) {
      if (nbrs[k] == next) {
        prev_weight = weights[k];
        break;
      }
    }
    path.push_back(next);
    cur = next;
  }
  walks_counter_->Increment();
  steps_counter_->Increment(path.size());
}

std::vector<std::vector<ViewGraph::LocalId>> RandomWalker::SampleCorpus(
    Rng& rng) const {
  std::vector<std::vector<ViewGraph::LocalId>> corpus;
  const size_t n = graph_->num_nodes();
  if (n == 0) return corpus;
  if (config_.degree_biased_starts) {
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      const size_t count = WalksPerNode(node);
      for (size_t w = 0; w < count; ++w) corpus.push_back(Walk(node, rng));
    }
  } else {
    size_t total = 0;
    for (ViewGraph::LocalId node = 0; node < n; ++node) {
      total += WalksPerNode(node);
    }
    for (size_t w = 0; w < total; ++w) {
      corpus.push_back(
          Walk(static_cast<ViewGraph::LocalId>(rng.NextUint64(n)), rng));
    }
  }
  return corpus;
}

}  // namespace transn
