#ifndef TRANSN_WALK_RANDOM_WALK_H_
#define TRANSN_WALK_RANDOM_WALK_H_

#include <vector>

#include "graph/view.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace transn {

/// Configuration of TransN's biased correlated random walks (§III-A).
struct WalkConfig {
  /// ρ: nodes per walk. Paper default 80 (§IV-A3).
  size_t walk_length = 80;
  /// Paper: walks starting from node n number max(min(τ_n, 32), 10) where
  /// τ_n is n's degree.
  size_t min_walks_per_node = 10;
  size_t max_walks_per_node = 32;
  /// π1 (Eq. 6): prefer heavier edges. Disabled by the With-Simple-Walk
  /// ablation (walks then ignore weights).
  bool weight_biased = true;
  /// π2 (Eq. 7): on heter-views, prefer edges whose weight is close to the
  /// previous step's. Disabled by the With-Simple-Walk ablation.
  bool correlated = true;
  /// Degree-biased walk starts (§III overview). The With-Simple-Walk
  /// ablation selects start nodes uniformly at random instead.
  bool degree_biased_starts = true;
};

/// Samples walks from one view (or paired subview) per Equations (4)-(7).
///
/// Thread-safe: every method is const and all mutable state (the Rng, the
/// output buffer) is caller-supplied, so Hogwild workers share one walker
/// with per-thread Rngs.
class RandomWalker {
 public:
  /// `graph` must outlive the walker. `is_heter` activates the correlated
  /// second factor π2.
  RandomWalker(const ViewGraph* graph, bool is_heter, WalkConfig config);

  /// One walk of up to config.walk_length nodes starting at `start` (local
  /// ids). Stops early when it reaches an isolated node.
  std::vector<ViewGraph::LocalId> Walk(ViewGraph::LocalId start,
                                       Rng& rng) const;

  /// Walk() into a caller-owned buffer (cleared first). Training loops reuse
  /// one buffer per worker to keep walk streaming allocation-free.
  /// `probs_scratch`, when non-null, is reused for the per-step transition
  /// distribution too, making repeated walks fully allocation-free; null
  /// falls back to a walk-local vector.
  void WalkInto(ViewGraph::LocalId start, Rng& rng,
                std::vector<ViewGraph::LocalId>* out,
                std::vector<double>* probs_scratch = nullptr) const;

  /// Number of walks the corpus starts at node n: clamp(degree(n),
  /// [min,max] walks per node).
  size_t WalksPerNode(ViewGraph::LocalId n) const;

  /// Samples the full corpus for this view: for every node, WalksPerNode(n)
  /// walks (degree-biased starts), or the same total number of uniformly
  /// started walks when config.degree_biased_starts is false.
  std::vector<std::vector<ViewGraph::LocalId>> SampleCorpus(Rng& rng) const;

  const WalkConfig& config() const { return config_; }
  bool is_heter() const { return is_heter_; }

 private:
  /// Picks the next node from `cur`, given the weight of the edge taken into
  /// `cur` (or a negative value on the first step). Returns kInvalidNode for
  /// isolated nodes. `probs` is scratch reused across steps of one walk.
  ViewGraph::LocalId Step(ViewGraph::LocalId cur, double prev_weight,
                          Rng& rng, std::vector<double>& probs) const;

  const ViewGraph* graph_;
  bool is_heter_;
  WalkConfig config_;
  /// walk.walks_total / walk.steps_total handles (thread-safe; one relaxed
  /// shard increment per walk, so Hogwild workers share the walker freely).
  obs::Counter* walks_counter_;
  obs::Counter* steps_counter_;
};

}  // namespace transn

#endif  // TRANSN_WALK_RANDOM_WALK_H_
