#include "nn/adam.h"

#include <cmath>

#include <gtest/gtest.h>
#include "nn/autograd.h"
#include "nn/ops.h"

namespace transn {
namespace {

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2.
  Parameter w(Matrix(2, 3, 0.0));
  Matrix target(2, 3);
  for (size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = 0.5 * static_cast<double>(i) - 1.0;
  }
  AdamOptimizer opt(AdamConfig{.learning_rate = 0.05});
  opt.Register(&w);
  for (int step = 0; step < 800; ++step) {
    for (size_t i = 0; i < w.value.size(); ++i) {
      w.grad.data()[i] = 2.0 * (w.value.data()[i] - target.data()[i]);
    }
    opt.Step();
  }
  for (size_t i = 0; i < w.value.size(); ++i) {
    EXPECT_NEAR(w.value.data()[i], target.data()[i], 1e-3);
  }
  EXPECT_EQ(opt.step_count(), 800);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w(Matrix(1, 2, 0.0));
  AdamOptimizer opt;
  opt.Register(&w);
  w.grad(0, 0) = 1.0;
  opt.Step();
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter w(Matrix(1, 1, 0.0));
  AdamOptimizer opt(AdamConfig{.learning_rate = 0.1});
  opt.Register(&w);
  w.grad(0, 0) = 123.0;
  opt.Step();
  EXPECT_NEAR(w.value(0, 0), -0.1, 1e-6);
}

TEST(AdamTest, ZeroGradClearsWithoutUpdate) {
  Parameter w(Matrix(1, 1, 5.0));
  AdamOptimizer opt;
  opt.Register(&w);
  w.grad(0, 0) = 10.0;
  opt.ZeroGrad();
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0, 0), 5.0);
}

TEST(AdamTest, RowUpdateMatchesOptimizer) {
  // AdamUpdateRow with the same sequence of grads must equal AdamOptimizer.
  AdamConfig config{.learning_rate = 0.02};
  Parameter w(Matrix(1, 4, 1.0));
  AdamOptimizer opt(config);
  opt.Register(&w);

  std::vector<double> row(4, 1.0), m(4, 0.0), v(4, 0.0);
  Rng rng(17);
  for (int64_t t = 1; t <= 20; ++t) {
    std::vector<double> grad(4);
    for (double& g : grad) g = rng.NextGaussian();
    for (size_t i = 0; i < 4; ++i) w.grad(0, i) = grad[i];
    opt.Step();
    AdamUpdateRow(config, t, grad.data(), row.data(), m.data(), v.data(), 4);
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_NEAR(row[i], w.value(0, i), 1e-12) << "t=" << t << " i=" << i;
    }
  }
}

TEST(AdamTest, WorksThroughAutogradLoop) {
  // Fit y = w*x on a fixed batch via the tape.
  Parameter w(Matrix(1, 1, 0.0));
  AdamOptimizer opt(AdamConfig{.learning_rate = 0.1});
  opt.Register(&w);
  Matrix x(4, 1), y(4, 1);
  for (size_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i) + 1.0;
    y(i, 0) = 3.0 * x(i, 0);
  }
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    Var wx = MatMul(tape.Input(x, false), tape.Leaf(&w));
    Var err = Sub(wx, tape.Input(y, false));
    Var loss = Mean(Hadamard(err, err));
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(w.value(0, 0), 3.0, 1e-2);
}

}  // namespace
}  // namespace transn
