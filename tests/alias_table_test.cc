#include "util/alias_table.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(AliasTableTest, SingleEntryAlwaysSampled) {
  AliasTable t({5.0});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable t({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(t.Sample(rng), 1u);
}

TEST(AliasTableTest, MatchesDistribution) {
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t.Sample(rng)];
  for (size_t k = 0; k < w.size(); ++k) {
    double expected = w[k] / 10.0;
    double observed = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "index " << k;
  }
}

TEST(AliasTableTest, UnnormalizedWeightsOk) {
  AliasTable a({0.001, 0.003});
  AliasTable b({1000.0, 3000.0});
  Rng ra(7), rb(7);
  int ca = 0, cb = 0;
  for (int i = 0; i < 20000; ++i) {
    ca += a.Sample(ra) == 1;
    cb += b.Sample(rb) == 1;
  }
  // Same seed, same scaled distribution -> identical draws.
  EXPECT_EQ(ca, cb);
  EXPECT_NEAR(static_cast<double>(ca) / 20000, 0.75, 0.01);
}

class AliasTableRandomDistributions : public ::testing::TestWithParam<int> {};

TEST_P(AliasTableRandomDistributions, EmpiricalMatchesWeights) {
  Rng gen(GetParam());
  const size_t size = 2 + gen.NextUint64(40);
  std::vector<double> w(size);
  double total = 0.0;
  for (double& x : w) {
    x = gen.NextDouble() < 0.2 ? 0.0 : gen.NextDouble(0.1, 5.0);
    total += x;
  }
  if (total == 0.0) w[0] = total = 1.0;
  AliasTable t(w);
  Rng rng(GetParam() * 77 + 1);
  std::vector<int> counts(size, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[t.Sample(rng)];
  for (size_t k = 0; k < size; ++k) {
    const double expected = w[k] / total;
    const double observed = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(observed, expected, 0.015 + 0.05 * expected) << "idx " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasTableRandomDistributions,
                         ::testing::Range(1, 9));

TEST(AliasTableDeathTest, EmptyWeightsAbort) {
  EXPECT_DEATH(AliasTable t((std::vector<double>())), "Check failed");
}

TEST(AliasTableDeathTest, AllZeroWeightsAbort) {
  EXPECT_DEATH(AliasTable t({0.0, 0.0}), "Check failed");
}

TEST(AliasTableDeathTest, NegativeWeightAborts) {
  EXPECT_DEATH(AliasTable t({1.0, -0.5}), "non-negative");
}

}  // namespace
}  // namespace transn
