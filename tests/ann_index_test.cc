// Tests for the HNSW-style layered-graph ANN index (serve/ann_index.h):
// deterministic builds (including parallel builds, which must be
// byte-identical to the 1-thread build), recall against the exact scan on
// clustered data, byte-stable serialization round trips, and degenerate
// shapes.

#include "serve/ann_index.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "serve/knn_index.h"
#include "serve/serving_format.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace transn {
namespace {

/// Clustered table: `clusters` Gaussian centroids drawn from `center_seed`,
/// unit per-row noise from `noise_seed` — the geometry trained embeddings
/// have, where graph ANN must not shortcut across cluster boundaries.
/// Recall tests pass the same `center_seed` for base and queries so the
/// queries are in-distribution (as serving queries are: rows of the table).
Matrix ClusteredTable(size_t rows, size_t dim, size_t clusters,
                      uint64_t center_seed, uint64_t noise_seed) {
  Rng center_rng(center_seed);
  Matrix centers(clusters, dim);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = 4.0 * center_rng.NextGaussian();
  }
  Rng rng(noise_seed);
  Matrix m(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    const double* c = centers.Row(r % clusters);
    for (size_t d = 0; d < dim; ++d) {
      *(m.Row(r) + d) = c[d] + rng.NextGaussian();
    }
  }
  return m;
}

Matrix ClusteredTable(size_t rows, size_t dim, size_t clusters,
                      uint64_t seed) {
  return ClusteredTable(rows, dim, clusters, seed, seed + 1000);
}

double RecallAgainstExact(const AnnIndex& ann, const KnnIndex& exact,
                          const Matrix& queries, size_t k, size_t ef) {
  double hit = 0.0;
  double want = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    const std::vector<KnnResult> truth = exact.Search(queries.Row(q), k,
                                                      nullptr);
    const std::vector<KnnResult> approx = ann.Search(queries.Row(q), k, ef);
    for (const KnnResult& t : truth) {
      want += 1.0;
      for (const KnnResult& a : approx) {
        if (a.row == t.row) {
          hit += 1.0;
          break;
        }
      }
    }
  }
  return want > 0.0 ? hit / want : 1.0;
}

TEST(AnnIndexTest, BuildIsDeterministic) {
  const Matrix base = ClusteredTable(400, 16, 8, 11);
  const AnnIndex a = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  const AnnIndex b = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  std::string bytes_a, bytes_b;
  a.AppendTo(&bytes_a);
  b.AppendTo(&bytes_b);
  EXPECT_EQ(bytes_a, bytes_b) << "two builds over the same input must be "
                                 "byte-identical";
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(AnnIndexTest, ParallelBuildMatchesSerialBytes) {
  // The construction schedule is batch-synchronous: worker count changes how
  // plan work is sharded, never which links are committed. Every thread
  // count must reproduce the no-pool build bit for bit, for both metrics.
  for (const KnnMetric metric : {KnnMetric::kCosine, KnnMetric::kDot}) {
    const Matrix base = ClusteredTable(1200, 16, 8, 81);
    const AnnIndex serial = AnnIndex::Build(base, metric, {}).value();
    std::string serial_bytes;
    serial.AppendTo(&serial_bytes);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ThreadPool pool(threads);
      const AnnIndex parallel =
          AnnIndex::Build(base, metric, {}, &pool).value();
      std::string bytes;
      parallel.AppendTo(&bytes);
      EXPECT_EQ(bytes, serial_bytes)
          << "build with " << threads << " threads (metric "
          << (metric == KnnMetric::kCosine ? "cosine" : "dot")
          << ") must be byte-identical to the serial build";
      EXPECT_EQ(parallel.num_edges(), serial.num_edges());
    }
  }
}

TEST(AnnIndexTest, SearchIsDeterministic) {
  const Matrix base = ClusteredTable(400, 16, 8, 12);
  const AnnIndex ann = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  const Matrix queries = ClusteredTable(8, 16, 8, 13);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto first = ann.Search(queries.Row(q), 10, 64);
    const auto second = ann.Search(queries.Row(q), 10, 64);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].row, second[i].row);
      EXPECT_EQ(first[i].score, second[i].score);
    }
  }
}

TEST(AnnIndexTest, ResultsAreSortedAndUnique) {
  const Matrix base = ClusteredTable(300, 16, 6, 14);
  const AnnIndex ann = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  const auto hits = ann.Search(base.Row(7), 20, 64);
  ASSERT_EQ(hits.size(), 20u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_TRUE(hits[i - 1].score > hits[i].score ||
                (hits[i - 1].score == hits[i].score &&
                 hits[i - 1].row < hits[i].row))
        << "results must follow the (score desc, row asc) total order";
  }
}

TEST(AnnIndexTest, RecallOnClusteredData) {
  // 5k nodes in 12 clusters, queries from the same mixture; ef=64 (below
  // the server default) must hold the recall@10 floor the bench gate
  // enforces at scale.
  const Matrix base = ClusteredTable(5000, 24, 12, 21, 210);
  const Matrix queries = ClusteredTable(32, 24, 12, 21, 22);
  KnnIndexOptions exact_opts;
  exact_opts.metric = KnnMetric::kCosine;
  const KnnIndex exact(&base, exact_opts);
  const AnnIndex ann = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  EXPECT_GE(RecallAgainstExact(ann, exact, queries, 10, 64), 0.95);
}

TEST(AnnIndexTest, RecallWithDotMetric) {
  const Matrix base = ClusteredTable(2000, 16, 8, 31, 310);
  const Matrix queries = ClusteredTable(16, 16, 8, 31, 32);
  KnnIndexOptions exact_opts;
  exact_opts.metric = KnnMetric::kDot;
  const KnnIndex exact(&base, exact_opts);
  const AnnIndex ann = AnnIndex::Build(base, KnnMetric::kDot, {}).value();
  EXPECT_GE(RecallAgainstExact(ann, exact, queries, 10, 64), 0.9);
}

TEST(AnnIndexTest, SerializeParseRoundTrip) {
  const Matrix base = ClusteredTable(500, 16, 8, 41);
  const AnnIndex built = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  std::string bytes;
  built.AppendTo(&bytes);

  ByteReader reader(bytes);
  auto parsed = AnnIndex::Parse(&reader, base);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(parsed->num_rows(), built.num_rows());
  EXPECT_EQ(parsed->max_level(), built.max_level());
  EXPECT_EQ(parsed->num_edges(), built.num_edges());
  EXPECT_EQ(parsed->params().max_degree, built.params().max_degree);
  // The load path times the parse + code rebuild; it must not report the
  // 0.0 placeholder older versions pinned for loaded indexes.
  EXPECT_GT(parsed->build_seconds(), 0.0);

  // Identical bytes back out, and identical search results.
  std::string bytes2;
  parsed->AppendTo(&bytes2);
  EXPECT_EQ(bytes, bytes2);
  const Matrix queries = ClusteredTable(8, 16, 8, 42);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto a = built.Search(queries.Row(q), 10, 64);
    const auto b = parsed->Search(queries.Row(q), 10, 64);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }

  // Parsing with a pool (parallel int8 code rebuild) yields the same index
  // as parsing without one.
  ThreadPool pool(4);
  ByteReader mt_reader(bytes);
  auto parsed_mt = AnnIndex::Parse(&mt_reader, base, &pool);
  ASSERT_TRUE(parsed_mt.ok()) << parsed_mt.status().ToString();
  std::string bytes_mt;
  parsed_mt->AppendTo(&bytes_mt);
  EXPECT_EQ(bytes, bytes_mt);
}

TEST(AnnIndexTest, ParseRejectsTruncationAndShapeMismatch) {
  const Matrix base = ClusteredTable(200, 8, 4, 51);
  const AnnIndex built = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  std::string bytes;
  built.AppendTo(&bytes);

  for (const size_t len : {size_t{0}, size_t{4}, bytes.size() / 2,
                           bytes.size() - 1}) {
    ByteReader reader(std::string_view(bytes.data(), len));
    auto parsed = AnnIndex::Parse(&reader, base);
    EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " bytes";
  }

  const Matrix wrong_rows = ClusteredTable(100, 8, 4, 51);
  ByteReader r1(bytes);
  EXPECT_FALSE(AnnIndex::Parse(&r1, wrong_rows).ok());
  const Matrix wrong_dim = ClusteredTable(200, 16, 4, 51);
  ByteReader r2(bytes);
  EXPECT_FALSE(AnnIndex::Parse(&r2, wrong_dim).ok());
}

TEST(AnnIndexTest, DegenerateShapes) {
  // k larger than the table: every row comes back, sorted.
  const Matrix tiny = ClusteredTable(5, 8, 2, 61);
  const AnnIndex ann = AnnIndex::Build(tiny, KnnMetric::kCosine, {}).value();
  const auto all = ann.Search(tiny.Row(0), 50, 64);
  EXPECT_EQ(all.size(), 5u);

  // k = 0 is an empty result, not a crash.
  EXPECT_TRUE(ann.Search(tiny.Row(0), 0, 64).empty());

  // Single-row table.
  const Matrix one = ClusteredTable(1, 8, 1, 62);
  const AnnIndex single = AnnIndex::Build(one, KnnMetric::kCosine, {}).value();
  const auto hit = single.Search(one.Row(0), 3, 16);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].row, 0u);

  // Empty index: Search returns nothing.
  const AnnIndex empty;
  EXPECT_TRUE(empty.Search(one.Row(0), 3, 16).empty());
}

TEST(AnnIndexTest, StatsCountWork) {
  const Matrix base = ClusteredTable(1000, 16, 8, 71);
  const AnnIndex ann = AnnIndex::Build(base, KnnMetric::kCosine, {}).value();
  AnnSearchStats stats;
  ann.Search(base.Row(3), 10, 64, &stats);
  EXPECT_GT(stats.hops, 0u);
  EXPECT_GT(stats.dist_evals, stats.hops);
  // Sublinearity sanity: the beam should touch a small fraction of rows.
  EXPECT_LT(stats.dist_evals, base.rows());
}

}  // namespace
}  // namespace transn
