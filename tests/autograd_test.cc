#include "nn/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>
#include "nn/grad_check.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace transn {
namespace {

constexpr double kTol = 1e-6;

/// Gradient-checks a scalar-valued graph builder against central
/// differences, for each of its matrix inputs.
void CheckGraph(
    const std::function<Var(Tape&, const std::vector<Var>&)>& build,
    const std::vector<Matrix>& inputs, double tol = kTol) {
  // Analytic gradients.
  Tape tape;
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const Matrix& m : inputs) vars.push_back(tape.Input(m, true));
  Var loss = build(tape, vars);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  tape.Backward(loss);

  for (size_t k = 0; k < inputs.size(); ++k) {
    Matrix numeric = NumericGradient(
        [&](const Matrix& probe) {
          Tape t2;
          std::vector<Var> vs;
          for (size_t j = 0; j < inputs.size(); ++j) {
            vs.push_back(t2.Input(j == k ? probe : inputs[j], false));
          }
          return build(t2, vs).value()(0, 0);
        },
        inputs[k]);
    EXPECT_LT(MaxRelativeError(vars[k].grad(), numeric), tol)
        << "input " << k;
  }
}

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return GaussianInit(r, c, scale, rng);
}

TEST(AutogradTest, MatMulGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(MatMul(v[0], v[1]));
      },
      {RandomMatrix(3, 4, 1), RandomMatrix(4, 2, 2)});
}

TEST(AutogradTest, TransposeGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(Hadamard(Transpose(v[0]), Transpose(v[0])));
      },
      {RandomMatrix(2, 5, 3)});
}

TEST(AutogradTest, RowSoftmaxGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        Var s = RowSoftmax(v[0]);
        return Sum(Hadamard(s, s));  // nonlinear head exercises the Jacobian
      },
      {RandomMatrix(3, 4, 4)});
}

TEST(AutogradTest, ReluGradient) {
  // Keep entries away from the kink at 0.
  Matrix m = RandomMatrix(3, 3, 5);
  for (size_t i = 0; i < m.size(); ++i) {
    if (std::fabs(m.data()[i]) < 0.1) m.data()[i] = 0.3;
  }
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) { return Sum(Relu(v[0])); },
      {m});
}

TEST(AutogradTest, SigmoidGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) { return Sum(Sigmoid(v[0])); },
      {RandomMatrix(2, 3, 6)});
}

TEST(AutogradTest, AddSubScaleGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(Scale(Sub(Add(v[0], v[1]), v[1]), 2.5));
      },
      {RandomMatrix(2, 2, 7), RandomMatrix(2, 2, 8)});
}

TEST(AutogradTest, HadamardGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(Hadamard(v[0], v[1]));
      },
      {RandomMatrix(3, 2, 9), RandomMatrix(3, 2, 10)});
}

TEST(AutogradTest, AddRowBiasGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(Hadamard(AddRowBias(v[0], v[1]), v[0]));
      },
      {RandomMatrix(3, 4, 11), RandomMatrix(3, 1, 12)});
}

TEST(AutogradTest, MeanGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Mean(Hadamard(v[0], v[0]));
      },
      {RandomMatrix(4, 3, 13)});
}

TEST(AutogradTest, GatherRowsGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        // Duplicate index exercises scatter-add.
        return Sum(Hadamard(GatherRows(v[0], {0, 2, 0}),
                            GatherRows(v[0], {1, 1, 2})));
      },
      {RandomMatrix(3, 4, 14)});
}

TEST(AutogradTest, SpMMGradient) {
  SparseMat s(3, 4,
              {{0, 1, 2.0}, {1, 0, -1.0}, {1, 3, 0.5}, {2, 2, 3.0}});
  SparseMat st = s.Transposed();
  CheckGraph(
      [&](Tape& t, const std::vector<Var>& v) {
        Var y = SpMM(&s, &st, v[0]);
        return Sum(Hadamard(y, y));
      },
      {RandomMatrix(4, 2, 15)});
}

TEST(AutogradTest, RowwiseDotGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return Sum(RowwiseDot(v[0], v[1]));
      },
      {RandomMatrix(4, 3, 16), RandomMatrix(4, 3, 17)});
}

TEST(AutogradTest, RowCosineLossGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return RowCosineLoss(v[0], v[1]);
      },
      {RandomMatrix(3, 5, 18), RandomMatrix(3, 5, 19)}, 2e-5);
}

TEST(AutogradTest, NegativeDotLossGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return NegativeDotLoss(v[0], v[1]);
      },
      {RandomMatrix(3, 5, 20), RandomMatrix(3, 5, 21)});
}

TEST(AutogradTest, LogSigmoidLossGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return LogSigmoidLoss(RowwiseDot(v[0], v[1]),
                              {1.0, -1.0, 1.0, -1.0});
      },
      {RandomMatrix(4, 3, 22), RandomMatrix(4, 3, 23)});
}

TEST(AutogradTest, L2PenaltyGradient) {
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        return L2Penalty(v[0], 0.3);
      },
      {RandomMatrix(2, 4, 24)});
}

TEST(AutogradTest, DeepCompositionGradient) {
  // A translator-shaped stack: softmax-attention + relu feed-forward.
  CheckGraph(
      [](Tape& t, const std::vector<Var>& v) {
        Var x = v[0];
        Var attn = MatMul(RowSoftmax(Scale(MatMul(x, Transpose(x)), 0.5)), x);
        Var ff = Relu(AddRowBias(MatMul(v[1], attn), v[2]));
        return RowCosineLoss(ff, v[3]);
      },
      {RandomMatrix(4, 3, 25), RandomMatrix(4, 4, 26),
       RandomMatrix(4, 1, 27), RandomMatrix(4, 3, 28)},
      2e-5);
}

TEST(AutogradTest, ParameterAccumulatesGrad) {
  Parameter p(Matrix(2, 2, 1.0));
  Tape tape;
  Var w = tape.Leaf(&p);
  Var loss = Sum(Hadamard(w, w));
  tape.Backward(loss);
  // d/dw sum(w^2) = 2w = 2.
  for (size_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.grad.data()[i], 2.0);
  }
}

TEST(AutogradTest, NoGradInputStaysUntouched) {
  Tape tape;
  Var a = tape.Input(Matrix(2, 2, 1.0), true);
  Var b = tape.Input(Matrix(2, 2, 3.0), false);
  Var loss = Sum(Hadamard(a, b));
  tape.Backward(loss);
  EXPECT_FALSE(tape.RequiresGrad(b));
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a.grad().data()[i], 3.0);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = sum(a*a + a) reaches `a` along two paths.
  Tape tape;
  Matrix m = RandomMatrix(2, 2, 30);
  Var a = tape.Input(m, true);
  Var loss = Sum(Add(Hadamard(a, a), a));
  tape.Backward(loss);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(a.grad().data()[i], 2.0 * m.data()[i] + 1.0, 1e-12);
  }
}

TEST(AutogradDeathTest, BackwardTwiceAborts) {
  Tape tape;
  Var a = tape.Input(Matrix(1, 1, 2.0), true);
  Var loss = Sum(a);
  tape.Backward(loss);
  EXPECT_DEATH(tape.Backward(loss), "once per Tape");
}

TEST(AutogradDeathTest, NonScalarBackwardAborts) {
  Tape tape;
  Var a = tape.Input(Matrix(2, 2, 1.0), true);
  EXPECT_DEATH(tape.Backward(a), "1x1 scalar");
}

TEST(AutogradDeathTest, MixedTapesAbort) {
  Tape t1, t2;
  Var a = t1.Input(Matrix(1, 1, 1.0), true);
  Var b = t2.Input(Matrix(1, 1, 1.0), true);
  EXPECT_DEATH(Add(a, b), "same Tape");
}

}  // namespace
}  // namespace transn
