#include <cmath>

#include <gtest/gtest.h>
#include "baselines/baseline_util.h"
#include "baselines/hin2vec.h"
#include "baselines/line.h"
#include "baselines/metapath2vec.h"
#include "baselines/mve.h"
#include "baselines/node2vec.h"
#include "baselines/rgcn.h"
#include "baselines/simple_kg.h"
#include "eval/node_classification.h"
#include "test_graphs.h"
#include "util/vec.h"

namespace transn {
namespace {

// Shared small graph: two communities across two views.
const HeteroGraph& TestGraph() {
  static const HeteroGraph* g = new HeteroGraph(TwoCommunityNetwork(30, 42));
  return *g;
}

void ExpectFiniteEmbeddings(const Matrix& emb, size_t rows, size_t dim) {
  ASSERT_EQ(emb.rows(), rows);
  ASSERT_EQ(emb.cols(), dim);
  for (size_t i = 0; i < emb.size(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
  EXPECT_GT(emb.FrobeniusNorm(), 0.0);
}

double CommunityScore(const HeteroGraph& g, const Matrix& emb) {
  return EvaluateNodeClassification(g, emb, {.repeats = 3, .seed = 5})
      .micro_f1;
}

TEST(BaselineUtilTest, SgnsOverWalksLearnsClusters) {
  // Two disjoint cliques in walk form.
  std::vector<std::vector<uint32_t>> corpus;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint32_t> walk;
    uint32_t base = rng.NextBernoulli(0.5) ? 0 : 3;
    for (int k = 0; k < 8; ++k) {
      walk.push_back(base + static_cast<uint32_t>(rng.NextUint64(3)));
    }
    corpus.push_back(std::move(walk));
  }
  Matrix emb = SgnsOverWalks(corpus, 6,
                             {.dim = 16, .window = 2, .epochs = 3, .seed = 2});
  auto cosine = [&](size_t a, size_t b) {
    double ab = vec::Dot(emb.Row(a), emb.Row(b), 16);
    return ab / std::sqrt(vec::Dot(emb.Row(a), emb.Row(a), 16) *
                          vec::Dot(emb.Row(b), emb.Row(b), 16));
  };
  EXPECT_GT(cosine(0, 1), cosine(0, 4));
  EXPECT_GT(cosine(3, 5), cosine(1, 5));
}

TEST(BaselineUtilTest, ScatterRowsMapsAndZeroFills) {
  Matrix local = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix global = ScatterRows(local, {3, 0}, 5);
  EXPECT_DOUBLE_EQ(global(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(global(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(global(2, 0), 0.0);
}

TEST(LineBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  Matrix emb = RunLine(g, {.dim = 16, .samples = 80000, .seed = 3});
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.75);
}

TEST(Node2VecBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  Node2VecBaselineConfig cfg;
  cfg.dim = 16;
  cfg.walk = {.p = 1.0, .q = 1.0, .walk_length = 20, .walks_per_node = 6};
  cfg.window = 3;
  cfg.epochs = 3;
  cfg.seed = 4;
  Matrix emb = RunNode2Vec(g, cfg);
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.75);
}

TEST(Metapath2VecBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  Metapath2VecConfig cfg;
  cfg.dim = 16;
  cfg.metapath = {"Person", "Tag", "Person"};
  cfg.walk_length = 20;
  cfg.walks_per_node = 6;
  cfg.window = 2;
  cfg.epochs = 3;
  cfg.seed = 5;
  auto emb = RunMetapath2Vec(g, cfg);
  ASSERT_TRUE(emb.ok()) << emb.status().ToString();
  ExpectFiniteEmbeddings(*emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, *emb), 0.6);
}

TEST(Metapath2VecBaselineTest, RejectsBadMetapaths) {
  const HeteroGraph& g = TestGraph();
  Metapath2VecConfig cfg;
  cfg.metapath = {"Person", "Tag"};
  EXPECT_FALSE(RunMetapath2Vec(g, cfg).ok());
  cfg.metapath = {"Person", "Nope", "Person"};
  EXPECT_FALSE(RunMetapath2Vec(g, cfg).ok());
}

TEST(Hin2VecBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  Hin2VecConfig cfg;
  cfg.dim = 16;
  cfg.walk_length = 15;
  cfg.walks_per_node = 4;
  cfg.window = 2;
  cfg.epochs = 2;
  cfg.seed = 6;
  Matrix emb = RunHin2Vec(g, cfg);
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.7);
}

TEST(MveBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  MveConfig cfg;
  cfg.dim = 16;
  cfg.walk_length = 15;
  cfg.walks_per_node = 4;
  cfg.epochs = 3;
  cfg.seed = 7;
  Matrix emb = RunMve(g, cfg);
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.75);
}

TEST(SimplEBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  SimpleKgConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 80;  // the toy graph has few edges; SimplE needs many passes
  cfg.seed = 8;
  Matrix emb = RunSimplE(g, cfg);
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.6);
}

TEST(SimplEBaselineDeathTest, OddDimensionAborts) {
  const HeteroGraph& g = TestGraph();
  EXPECT_DEATH(RunSimplE(g, {.dim = 15}), "even");
}

TEST(RgcnBaselineTest, ProducesUsefulEmbeddings) {
  const HeteroGraph& g = TestGraph();
  RgcnConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 40;
  cfg.batch_edges = 256;
  cfg.seed = 9;
  Matrix emb = RunRgcn(g, cfg);
  ExpectFiniteEmbeddings(emb, g.num_nodes(), 16);
  EXPECT_GT(CommunityScore(g, emb), 0.6);
}

TEST(BaselinesTest, DeterministicForSeed) {
  const HeteroGraph& g = TestGraph();
  Matrix a = RunLine(g, {.dim = 8, .samples = 5000, .seed = 10});
  Matrix b = RunLine(g, {.dim = 8, .samples = 5000, .seed = 10});
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace transn
