// Kill-and-resume end-to-end: training is aborted mid-iteration through the
// train.abort failpoint (the in-process stand-in for SIGKILL), restarted
// from the last periodic checkpoint with ResumeTransNCheckpoint, and must
// finish with embeddings bit-for-bit identical to a never-interrupted
// single-threaded run.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "test_graphs.h"
#include "util/fault.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TransNConfig ResumeConfig() {
  TransNConfig cfg;
  cfg.dim = 8;
  cfg.iterations = 3;
  cfg.walk.walk_length = 8;
  cfg.walk.min_walks_per_node = 1;
  cfg.walk.max_walks_per_node = 2;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 3;
  cfg.cross_paths_per_pair = 6;
  cfg.seed = 11;
  cfg.num_threads = 1;  // bit-reproducibility requires the sequential path
  return cfg;
}

void ExpectBitIdentical(const Matrix& got, const Matrix& want) {
  ASSERT_TRUE(got.SameShape(want));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "index " << i;
  }
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Default().DisarmAll(); }
};

TEST_F(CheckpointResumeTest, KillAndResumeIsBitForBit) {
  HeteroGraph g = TwoCommunityNetwork(8, 3);

  // The reference: all three iterations in one uninterrupted process.
  TransNModel uninterrupted(&g, ResumeConfig());
  uninterrupted.Fit();
  const Matrix want = uninterrupted.FinalEmbeddings();

  // The victim: checkpoints after every iteration, killed inside
  // iteration 2 (train.abort fires on its second hit, after the
  // single-view pass but before the cross-view pass).
  std::string path = TempPath("resume.ckpt");
  TransNConfig ckpt_cfg = ResumeConfig();
  ckpt_cfg.checkpoint_every_iters = 1;
  ckpt_cfg.checkpoint_path = path;
  TransNModel victim(&g, ckpt_cfg);
  fault::FaultInjector::Default().Arm(fault::kTrainAbort,
                                      fault::FaultSpec::OnceAfterN(1));
  EXPECT_THROW(victim.Fit(), fault::InjectedFaultError);
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_EQ(victim.completed_iterations(), 1u);

  // A new process: restore everything and finish the remaining passes.
  auto* resumes = obs::MetricsRegistry::Default().GetCounter(
      obs::kCheckpointResumesTotal, "resumes",
      "training runs restored from a checkpoint");
  const uint64_t resumes_before = resumes->Value();
  TransNModel restarted(&g, ckpt_cfg);
  Status s = ResumeTransNCheckpoint(&restarted, path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restarted.completed_iterations(), 1u);
  EXPECT_EQ(resumes->Value(), resumes_before + 1);
  restarted.Fit();
  EXPECT_EQ(restarted.completed_iterations(), 3u);

  ExpectBitIdentical(restarted.FinalEmbeddings(), want);
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, PeriodicCheckpointsTrackProgress) {
  HeteroGraph g = TwoCommunityNetwork(8, 3);
  std::string path = TempPath("periodic.ckpt");
  TransNConfig cfg = ResumeConfig();
  cfg.checkpoint_every_iters = 1;
  cfg.checkpoint_path = path;

  auto* saves = obs::MetricsRegistry::Default().GetCounter(
      obs::kCheckpointSavesTotal, "checkpoints",
      "successful checkpoint writes");
  auto* last_good = obs::MetricsRegistry::Default().GetGauge(
      obs::kCheckpointLastGoodIteration, "iteration",
      "iteration of the most recent durable checkpoint");
  const uint64_t saves_before = saves->Value();

  TransNModel model(&g, cfg);
  model.Fit();
  // Iterations 1 and 2 checkpoint; the final iteration is the caller's to
  // persist (the CLI's --save-checkpoint does), so no third periodic write.
  EXPECT_EQ(saves->Value(), saves_before + 2);
  EXPECT_EQ(last_good->Value(), 2.0);

  // The file left behind is the iteration-2 checkpoint, resumable as such.
  TransNModel resumed(&g, cfg);
  ASSERT_TRUE(ResumeTransNCheckpoint(&resumed, path).ok());
  EXPECT_EQ(resumed.completed_iterations(), 2u);
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, ResumeAtFullIterationsIsANoOpFit) {
  HeteroGraph g = TwoCommunityNetwork(8, 3);
  std::string path = TempPath("finished.ckpt");
  TransNModel trained(&g, ResumeConfig());
  trained.Fit();
  ASSERT_TRUE(SaveTransNCheckpoint(trained, path).ok());

  TransNModel resumed(&g, ResumeConfig());
  ASSERT_TRUE(ResumeTransNCheckpoint(&resumed, path).ok());
  EXPECT_EQ(resumed.completed_iterations(), 3u);
  resumed.Fit();  // nothing left to do; must not retrain
  EXPECT_EQ(resumed.completed_iterations(), 3u);
  ExpectBitIdentical(resumed.FinalEmbeddings(), trained.FinalEmbeddings());
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, ResumeRestoresRngAndAdamExactly) {
  // One extra iteration after restore must equal one extra iteration on
  // the original in-memory model: RNG stream and optimizer moments both
  // survive the round trip (weights alone would drift immediately).
  HeteroGraph g = TwoCommunityNetwork(8, 3);
  std::string path = TempPath("state.ckpt");
  TransNModel original(&g, ResumeConfig());
  original.Fit();
  ASSERT_TRUE(SaveTransNCheckpoint(original, path).ok());

  TransNModel resumed(&g, ResumeConfig());
  ASSERT_TRUE(ResumeTransNCheckpoint(&resumed, path).ok());
  original.RunIteration();
  resumed.RunIteration();
  ExpectBitIdentical(resumed.FinalEmbeddings(), original.FinalEmbeddings());
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, AbortedIterationLeavesLoadableCheckpoint) {
  // The abort lands between a periodic save and the next one: the file on
  // disk is a complete, CRC-clean checkpoint from the previous iteration,
  // untouched by the half-finished pass.
  HeteroGraph g = TwoCommunityNetwork(8, 3);
  std::string path = TempPath("aborted.ckpt");
  TransNConfig cfg = ResumeConfig();
  cfg.checkpoint_every_iters = 1;
  cfg.checkpoint_path = path;
  TransNModel victim(&g, cfg);
  fault::FaultInjector::Default().Arm(fault::kTrainAbort,
                                      fault::FaultSpec::OnceAfterN(2));
  EXPECT_THROW(victim.Fit(), fault::InjectedFaultError);
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_EQ(victim.completed_iterations(), 2u);

  TransNModel resumed(&g, cfg);
  ASSERT_TRUE(ResumeTransNCheckpoint(&resumed, path).ok());
  EXPECT_EQ(resumed.completed_iterations(), 2u);
  resumed.Fit();
  for (size_t i = 0; i < resumed.FinalEmbeddings().size(); ++i) {
    ASSERT_TRUE(std::isfinite(resumed.FinalEmbeddings().data()[i]));
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, FailedPeriodicCheckpointDoesNotKillTraining) {
  // A full disk mid-training costs durability, not the run: Fit() logs the
  // failed write and keeps going.
  HeteroGraph g = TwoCommunityNetwork(8, 3);
  std::string path = TempPath("undurable.ckpt");
  TransNConfig cfg = ResumeConfig();
  cfg.checkpoint_every_iters = 1;
  cfg.checkpoint_path = path;
  TransNModel model(&g, cfg);
  fault::FaultInjector::Default().Arm(fault::kIoWrite,
                                      fault::FaultSpec::Always());
  model.Fit();
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_EQ(model.completed_iterations(), 3u);
  EXPECT_FALSE(std::ifstream(path).good());

  // And the run stays correct: same result as the reference.
  TransNModel reference(&g, ResumeConfig());
  reference.Fit();
  ExpectBitIdentical(model.FinalEmbeddings(), reference.FinalEmbeddings());
}

}  // namespace
}  // namespace transn
