#include "walk/corpus.h"

#include <set>

#include <gtest/gtest.h>

namespace transn {
namespace {

using Pair = std::pair<uint32_t, uint32_t>;

std::multiset<Pair> Collect(const std::vector<uint32_t>& walk, bool heter) {
  std::multiset<Pair> out;
  ForEachContextPairDef6(walk, heter, [&out](ContextPair p) {
    out.insert({p.center, p.context});
  });
  return out;
}

TEST(CorpusTest, HomoViewUsesAdjacentContexts) {
  // Definition 6, homo-view: contexts are ±1 neighbors.
  auto pairs = Collect({10, 20, 30}, /*heter=*/false);
  std::multiset<Pair> expected = {{10, 20}, {20, 10}, {20, 30}, {30, 20}};
  EXPECT_EQ(pairs, expected);
}

TEST(CorpusTest, HeterViewAddsSecondOrderContexts) {
  // Definition 6, heter-view: contexts are ±1 and ±2 neighbors.
  auto pairs = Collect({1, 2, 3, 4}, /*heter=*/true);
  std::multiset<Pair> expected = {
      {1, 2}, {1, 3},          // from 1
      {2, 1}, {2, 3}, {2, 4},  // from 2
      {3, 2}, {3, 4}, {3, 1},  // from 3
      {4, 3}, {4, 2},          // from 4
  };
  EXPECT_EQ(pairs, expected);
}

TEST(CorpusTest, ShortWalksProduceNoPairs) {
  EXPECT_TRUE(Collect({7}, false).empty());
  EXPECT_TRUE(Collect({}, true).empty());
}

TEST(CorpusTest, WindowPairCount) {
  // For a walk of length r and window w, pairs = 2*(r*w - w*(w+1)/2).
  std::vector<uint32_t> walk = {0, 1, 2, 3, 4, 5};
  size_t count = 0;
  ForEachWindowPair(walk, 3, [&count](ContextPair) { ++count; });
  EXPECT_EQ(count, 2u * (6 * 3 - 6));
}

TEST(CorpusTest, CountOccurrences) {
  std::vector<std::vector<uint32_t>> corpus = {{0, 1, 1}, {2}};
  auto counts = CountOccurrences(corpus, 4);
  EXPECT_EQ(counts, (std::vector<double>{1, 2, 1, 0}));
}

TEST(CorpusDeathTest, OutOfVocabAborts) {
  std::vector<std::vector<uint32_t>> corpus = {{5}};
  EXPECT_DEATH(CountOccurrences(corpus, 3), "Check failed");
}

}  // namespace
}  // namespace transn
