// Adversarial durability sweep over the two persistent model formats
// (checkpoint v2 text, serving v2 binary): every sampled truncation point
// and every corrupted CRC section must surface as a non-OK Status — never
// a crash, and never a partially-mutated in-memory model.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "serve/embedding_store.h"
#include "serve/serving_format.h"
#include "test_graphs.h"
#include "util/safe_io.h"
#include "util/string_util.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void Spit(const std::string& path, std::string_view bytes) {
  std::ofstream(path, std::ios::binary).write(bytes.data(), bytes.size());
}

/// Small but fully-featured config: views, translators, and (after Fit)
/// Adam moments all exist, so the checkpoint has every section kind.
TransNConfig TinyConfig() {
  TransNConfig cfg;
  cfg.dim = 4;
  cfg.iterations = 1;
  cfg.walk.walk_length = 8;
  cfg.walk.min_walks_per_node = 1;
  cfg.walk.max_walks_per_node = 2;
  cfg.translator_encoders = 1;
  cfg.translator_seq_len = 2;
  cfg.cross_paths_per_pair = 4;
  cfg.seed = 9;
  return cfg;
}

/// Stratified prefix lengths: every byte near the ends (where headers and
/// trailers live), a constant stride through the bulk. Never includes
/// `size` itself — the full file is the one prefix that must load.
std::vector<size_t> SampledPrefixes(size_t size) {
  std::vector<size_t> out;
  const size_t edge = 400;
  const size_t stride = size > 2 * edge ? (size - 2 * edge) / 512 + 1 : 1;
  for (size_t n = 0; n < size; n += (n < edge || n + edge >= size) ? 1 : stride) {
    out.push_back(n);
  }
  return out;
}

/// Snapshot of the mutable state a bad checkpoint must never touch.
struct ModelSnapshot {
  Matrix view0_input;
  Matrix cross0_w0;
  size_t completed_iterations;

  static ModelSnapshot Of(const TransNModel& m) {
    ModelSnapshot s;
    s.view0_input = m.single_view_trainer_or_null(0)->embeddings().values();
    s.cross0_w0 = m.cross_view_trainer(0).translator_ij().weight(0).value;
    s.completed_iterations = m.completed_iterations();
    return s;
  }

  testing::AssertionResult Unchanged(const TransNModel& m) const {
    ModelSnapshot now = Of(m);
    if (now.completed_iterations != completed_iterations) {
      return testing::AssertionFailure() << "completed_iterations mutated";
    }
    auto same = [](const Matrix& a, const Matrix& b) {
      if (!a.SameShape(b)) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] != b.data()[i]) return false;
      }
      return true;
    };
    if (!same(now.view0_input, view0_input)) {
      return testing::AssertionFailure() << "view0 embeddings mutated";
    }
    if (!same(now.cross0_w0, cross0_w0)) {
      return testing::AssertionFailure() << "translator weights mutated";
    }
    return testing::AssertionSuccess();
  }
};

class CrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = TwoCommunityNetwork(6, 4);
    model_ = std::make_unique<TransNModel>(&graph_, TinyConfig());
    model_->Fit();
  }

  HeteroGraph graph_;
  std::unique_ptr<TransNModel> model_;
};

TEST_F(CrashSafetyTest, CheckpointTruncationSweep) {
  std::string path = TempPath("sweep.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(*model_, path).ok());
  const std::string blob = Slurp(path);
  ASSERT_GT(blob.size(), 1000u);

  TransNModel victim(&graph_, TinyConfig());
  const ModelSnapshot before = ModelSnapshot::Of(victim);
  for (size_t keep : SampledPrefixes(blob.size())) {
    Spit(path, std::string_view(blob).substr(0, keep));
    Status s = LoadTransNCheckpoint(&victim, path);
    ASSERT_FALSE(s.ok()) << "prefix of " << keep << " bytes loaded";
    ASSERT_TRUE(before.Unchanged(victim)) << "after prefix " << keep;
  }
  // Sanity: the untruncated file still loads into the same victim.
  Spit(path, blob);
  ASSERT_TRUE(LoadTransNCheckpoint(&victim, path).ok());
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, CheckpointCorruptionPerCrcSection) {
  std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(*model_, path).ok());
  const std::string blob = Slurp(path);

  // One corruption inside every CRC-protected matrix section (a data byte
  // a few positions before its CRC line), plus one inside each stored CRC.
  std::vector<size_t> targets;
  for (size_t at = blob.find("\nCRC\t"); at != std::string::npos;
       at = blob.find("\nCRC\t", at + 1)) {
    targets.push_back(at - 4);  // matrix data protected by this CRC
    targets.push_back(at + 6);  // the stored CRC digits themselves
  }
  ASSERT_GE(targets.size(), 2u) << "no CRC sections found";
  const size_t end_at = blob.rfind("END\t");
  ASSERT_NE(end_at, std::string::npos);
  targets.push_back(end_at + 6);  // whole-file trailer

  TransNModel victim(&graph_, TinyConfig());
  const ModelSnapshot before = ModelSnapshot::Of(victim);
  for (size_t at : targets) {
    std::string corrupted = blob;
    // Swap the byte for a same-class character so only the checksum (not
    // an earlier shape or arity check) can catch it.
    corrupted[at] = corrupted[at] == '3' ? '7' : '3';
    if (corrupted == blob) continue;
    Spit(path, corrupted);
    Status s = LoadTransNCheckpoint(&victim, path);
    ASSERT_FALSE(s.ok()) << "corruption at byte " << at << " loaded";
    ASSERT_TRUE(before.Unchanged(victim)) << "after corruption at " << at;
  }
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, CheckpointShapeMismatchMutatesNothing) {
  // A checkpoint from an incompatible config must be rejected with the
  // victim model untouched even though many matrices validate fine.
  std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(*model_, path).ok());
  TransNConfig wide = TinyConfig();
  wide.dim = 6;
  TransNModel victim(&graph_, wide);
  const ModelSnapshot before = ModelSnapshot::Of(victim);
  Status s = LoadTransNCheckpoint(&victim, path);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(before.Unchanged(victim));
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, LegacyV1CheckpointStillLoads) {
  // Down-convert a v2 file to the legacy v1 format (no ITER/RNG/SCALAR
  // lines, no CRCs, v1 header): the weights must load as before the v2
  // format existed.
  std::string path = TempPath("legacy.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(*model_, path).ok());
  std::istringstream in(Slurp(path));
  std::string v1 = "# transn checkpoint v1\n";
  std::string line;
  bool keep = false;
  while (std::getline(in, line)) {
    if (StartsWith(line, "MATRIX\t")) keep = true;
    if (StartsWith(line, "CRC\t") || StartsWith(line, "END\t")) {
      keep = false;
      continue;
    }
    if (keep) v1 += line + "\n";
  }
  Spit(path, v1);
  TransNModel victim(&graph_, TinyConfig());
  ASSERT_TRUE(LoadTransNCheckpoint(&victim, path).ok());
  Matrix want = model_->FinalEmbeddings();
  Matrix got = victim.FinalEmbeddings();
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "index " << i;
  }
  // ...but full resume needs v2 training state.
  EXPECT_FALSE(ResumeTransNCheckpoint(&victim, path).ok());
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ServingModelTruncationSweep) {
  std::string path = TempPath("sweep.bin");
  ASSERT_TRUE(ExportServingModel(*model_, path).ok());
  const std::string blob = Slurp(path);
  ASSERT_GT(blob.size(), 500u);
  for (size_t keep : SampledPrefixes(blob.size())) {
    Spit(path, std::string_view(blob).substr(0, keep));
    ASSERT_FALSE(EmbeddingStore::Load(path).ok())
        << "prefix of " << keep << " bytes loaded";
  }
  Spit(path, blob);
  ASSERT_TRUE(EmbeddingStore::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ServingModelCorruptionIsCaught) {
  // Flip one byte at evenly spaced offsets through the body and repair the
  // FNV trailer each time, so only the reader's own checks can catch it.
  // A flip that lands in structure (a length or count) fails the parse as
  // kInvalidArgument; one that lands in payload still parses and must be
  // caught by a section CRC as kDataLoss. CRC-32 detects every single-byte
  // error, so no flip may load — and since f64 payload dominates the file,
  // the sweep must see the CRC path fire at least once.
  std::string path = TempPath("corrupt.bin");
  ASSERT_TRUE(ExportServingModel(*model_, path).ok());
  const std::string blob = Slurp(path);
  const size_t body = blob.size() - 8;       // FNV trailer
  const size_t first = 12;                   // magic + version
  ASSERT_GT(body, first + 64);
  int data_loss = 0;
  for (size_t i = 0; i < 64; ++i) {
    const size_t at = first + (body - first - 1) * i / 63;
    std::string corrupted = blob.substr(0, body);
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5a);
    std::string repaired = corrupted;
    AppendU64(&repaired, ServingChecksum(corrupted.data(), corrupted.size()));
    Spit(path, repaired);
    auto store = EmbeddingStore::Load(path);
    ASSERT_FALSE(store.ok()) << "flip at byte " << at << " loaded";
    ASSERT_TRUE(store.status().code() == StatusCode::kDataLoss ||
                store.status().code() == StatusCode::kInvalidArgument)
        << "flip at byte " << at << ": " << store.status().ToString();
    data_loss += store.status().code() == StatusCode::kDataLoss ? 1 : 0;
  }
  EXPECT_GT(data_loss, 0) << "no flip exercised the section-CRC path";
  std::remove(path.c_str());
}

// --- serving format v3 (embedded ANN section) ------------------------------

TEST_F(CrashSafetyTest, ServingModelV2StillLoadsUnderV3Reader) {
  // The no-ANN export path must keep writing byte-compatible v2 files, and
  // the v3 reader must load them (forward compatibility for every model
  // exported before the ANN section existed).
  std::string path = TempPath("v2.bin");
  ASSERT_TRUE(ExportServingModel(*model_, path).ok());
  const std::string blob = Slurp(path);
  uint32_t version = 0;
  std::memcpy(&version, blob.data() + 8, 4);  // magic is 8 bytes
  EXPECT_EQ(version, kServingFormatVersion) << "ANN-less exports must stay v2";
  auto store = EmbeddingStore::Load(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->format_version(), 2);
  EXPECT_EQ(store->ann_index(), nullptr);
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ServingModelV3AnnTruncationSweep) {
  std::string path = TempPath("sweep_v3.bin");
  ServingExportOptions opts;
  opts.ann_index = true;
  ASSERT_TRUE(ExportServingModel(*model_, path, opts).ok());
  const std::string blob = Slurp(path);
  {
    auto store = EmbeddingStore::Load(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->format_version(), 3);
    ASSERT_NE(store->ann_index(), nullptr);
    EXPECT_EQ(store->ann_target_view(), -1);
    EXPECT_EQ(store->ann_index()->num_rows(), store->num_nodes());
  }
  for (size_t keep : SampledPrefixes(blob.size())) {
    Spit(path, std::string_view(blob).substr(0, keep));
    ASSERT_FALSE(EmbeddingStore::Load(path).ok())
        << "v3 prefix of " << keep << " bytes loaded";
  }
  Spit(path, blob);
  ASSERT_TRUE(EmbeddingStore::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ServingModelV3AnnCorruptionIsDataLoss) {
  // Flips confined to the ANN section payload must surface as kDataLoss:
  // the reader CRC-verifies the length-prefixed section before parsing the
  // graph, so corruption can never masquerade as a malformed-structure
  // error or, worse, a silently wrong index.
  std::string path = TempPath("corrupt_v3.bin");
  ServingExportOptions opts;
  opts.ann_index = true;
  ASSERT_TRUE(ExportServingModel(*model_, path, opts).ok());
  const std::string blob = Slurp(path);

  // The ANN section is the last section before the 8-byte FNV trailer:
  // [len u32][payload][crc u32]. The v2 sections of a v3 file have exactly
  // a v2 file's length (only the version and flags values differ), so a v2
  // export of the same model locates the ANN section's start.
  const size_t body = blob.size() - 8;
  std::string v2_path = TempPath("corrupt_v3_base.bin");
  ASSERT_TRUE(ExportServingModel(*model_, v2_path).ok());
  const size_t ann_start = Slurp(v2_path).size() - 8;
  std::remove(v2_path.c_str());
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, blob.data() + ann_start, 4);
  ASSERT_EQ(ann_start + 4 + payload_len + 4, body)
      << "ANN section layout drifted; update this test";

  for (size_t i = 0; i < 32; ++i) {
    const size_t at = ann_start + 4 + (payload_len - 1) * i / 31;
    std::string corrupted = blob.substr(0, body);
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5a);
    std::string repaired = corrupted;
    AppendU64(&repaired, ServingChecksum(corrupted.data(), corrupted.size()));
    Spit(path, repaired);
    auto store = EmbeddingStore::Load(path);
    ASSERT_FALSE(store.ok()) << "ANN flip at byte " << at << " loaded";
    EXPECT_EQ(store.status().code(), StatusCode::kDataLoss)
        << "ANN flip at byte " << at << ": " << store.status().ToString();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace transn
