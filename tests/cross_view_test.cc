#include "core/cross_view.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>
#include "test_graphs.h"
#include "util/vec.h"

namespace transn {
namespace {

TransNConfig SmallConfig() {
  TransNConfig cfg;
  cfg.dim = 12;
  cfg.walk.walk_length = 12;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 4;
  cfg.sgns.negatives = 3;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 20;
  return cfg;
}

struct Fixture {
  HeteroGraph graph;
  std::vector<View> views;
  std::vector<ViewPair> pairs;
  std::unique_ptr<SingleViewTrainer> side_i, side_j;
  std::unique_ptr<CrossViewTrainer> cross;
  Rng rng{11};

  explicit Fixture(TransNConfig cfg = SmallConfig())
      : graph(TwoCommunityNetwork(25, 9)) {
    views = BuildViews(graph);
    pairs = FindViewPairs(views);
    CHECK_EQ(pairs.size(), 1u);  // friendship & tagging share Person nodes
    side_i = std::make_unique<SingleViewTrainer>(&views[pairs[0].view_i], cfg,
                                                 rng);
    side_j = std::make_unique<SingleViewTrainer>(&views[pairs[0].view_j], cfg,
                                                 rng);
    // Warm the view-specific embeddings so cross-view targets carry signal.
    side_i->RunIteration(rng);
    side_j->RunIteration(rng);
    cross = std::make_unique<CrossViewTrainer>(&pairs[0], side_i.get(),
                                               side_j.get(), cfg, rng);
  }
};

TEST(CrossViewTest, SampledWindowsContainOnlyCommonNodes) {
  Fixture f;
  for (int side = 0; side <= 1; ++side) {
    auto windows = f.cross->SampleCommonWindows(side, f.rng, 10);
    ASSERT_FALSE(windows.empty());
    const auto& common = f.pairs[0].common_nodes;
    for (const auto& w : windows) {
      EXPECT_EQ(w.size(), SmallConfig().translator_seq_len);
      for (NodeId n : w) {
        EXPECT_TRUE(std::binary_search(common.begin(), common.end(), n));
      }
    }
  }
}

TEST(CrossViewTest, IterationsReduceLoss) {
  Fixture f;
  double first = f.cross->RunIteration(f.rng);
  double last = first;
  for (int i = 0; i < 10; ++i) last = f.cross->RunIteration(f.rng);
  EXPECT_LT(last, first);
}

TEST(CrossViewTest, TranslationAlignsViews) {
  // After training, translating a common node's view-i embedding must be
  // closer (cosine) to its view-j embedding than an untrained translator
  // would produce on average.
  Fixture f;
  const auto& common = f.pairs[0].common_nodes;
  auto mean_alignment = [&]() {
    double total = 0.0;
    size_t count = 0;
    const size_t len = SmallConfig().translator_seq_len;
    // Translate blocks of common nodes through T_ij.
    for (size_t start = 0; start + len <= common.size() && count < 40;
         start += len) {
      std::vector<size_t> rows_i, rows_j;
      for (size_t k = 0; k < len; ++k) {
        rows_i.push_back(f.side_i->graph().ToLocal(common[start + k]));
        rows_j.push_back(f.side_j->graph().ToLocal(common[start + k]));
      }
      Matrix a = f.side_i->embeddings().GatherRows(rows_i);
      Matrix b = f.side_j->embeddings().GatherRows(rows_j);
      Matrix t = f.cross->translator_ij().Forward(a);
      for (size_t r = 0; r < len; ++r) {
        double tb = vec::Dot(t.Row(r), b.Row(r), t.cols());
        double tt = vec::Dot(t.Row(r), t.Row(r), t.cols());
        double bb = vec::Dot(b.Row(r), b.Row(r), t.cols());
        if (tt > 1e-20 && bb > 1e-20) {
          total += tb / std::sqrt(tt * bb);
          ++count;
        }
      }
    }
    return count > 0 ? total / count : 0.0;
  };

  double before = mean_alignment();
  for (int i = 0; i < 12; ++i) f.cross->RunIteration(f.rng);
  double after = mean_alignment();
  EXPECT_GT(after, before + 0.1);
}

TEST(CrossViewTest, AblationFlagsChangeWork) {
  TransNConfig no_translation = SmallConfig();
  no_translation.enable_translation_tasks = false;
  Fixture f1(no_translation);
  EXPECT_GE(f1.cross->RunIteration(f1.rng), 0.0);

  TransNConfig no_reconstruction = SmallConfig();
  no_reconstruction.enable_reconstruction_tasks = false;
  Fixture f2(no_reconstruction);
  // Loss is finite and the iteration executes.
  double loss = f2.cross->RunIteration(f2.rng);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(CrossViewTest, SimpleTranslatorAblation) {
  TransNConfig cfg = SmallConfig();
  cfg.simple_translator = true;
  Fixture f(cfg);
  EXPECT_EQ(f.cross->translator_ij().num_encoders(), 1u);
  EXPECT_TRUE(f.cross->translator_ij().simple());
  EXPECT_TRUE(std::isfinite(f.cross->RunIteration(f.rng)));
}

TEST(CrossViewTest, EmbeddingsChangeAfterIteration) {
  Fixture f;
  Matrix before = f.side_i->embeddings().values();
  f.cross->RunIteration(f.rng);
  Matrix diff = Sub(f.side_i->embeddings().values(), before);
  EXPECT_GT(diff.FrobeniusNorm(), 0.0);
}

TEST(CrossViewDeathTest, BothTasksDisabledAbortsOnTraining) {
  TransNConfig cfg = SmallConfig();
  cfg.enable_translation_tasks = false;
  cfg.enable_reconstruction_tasks = false;
  Fixture f(cfg);
  EXPECT_DEATH(f.cross->RunIteration(f.rng), "cross-view enabled");
}

}  // namespace
}  // namespace transn
