#include "util/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TablePrinterTest, AlignedOutputContainsAllCells) {
  TablePrinter t({"Method", "Score"});
  t.AddRow({"TransN", "0.88"});
  t.AddRow({"LINE", "0.72"});
  std::string s = t.ToAlignedString();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("TransN"), std::string::npos);
  EXPECT_NE(s.find("0.72"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.12345, 4), "0.1235");  // printf rounding
  EXPECT_EQ(TablePrinter::Num(2.0, 2), "2.00");
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  std::string csv = t.ToCsvString();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only one"}), "Check failed");
}

TEST(CsvRoundTripTest, WriteThenRead) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"with,comma", "2"});
  std::string path = TempPath("round.csv");
  ASSERT_TRUE(t.WriteCsv(path).ok());

  auto rows = ReadDelimitedFile(path, ',');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ((*rows)[2][0], "with,comma");
  std::remove(path.c_str());
}

TEST(ReadDelimitedFileTest, MissingFileIsIoError) {
  auto rows = ReadDelimitedFile("/nonexistent/really/not.csv", ',');
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace transn
