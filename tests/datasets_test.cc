#include "data/datasets.h"

#include <gtest/gtest.h>
#include "graph/graph_stats.h"
#include "graph/view.h"

namespace transn {
namespace {

constexpr double kScale = 0.05;

TEST(DatasetsTest, AminerSchemaMatchesTable2) {
  HeteroGraph g = MakeAminerLike(kScale, 1);
  GraphStats s = ComputeStats(g);
  ASSERT_EQ(s.nodes_per_type.size(), 3u);
  EXPECT_EQ(s.nodes_per_type[0].first, "Author");
  EXPECT_EQ(s.nodes_per_type[1].first, "Paper");
  EXPECT_EQ(s.nodes_per_type[2].first, "Venue");
  ASSERT_EQ(s.edges_per_type.size(), 4u);
  EXPECT_EQ(s.edges_per_type[0].first, "AA");
  EXPECT_EQ(s.edges_per_type[3].first, "PV");
  EXPECT_EQ(s.labeled_type, "Paper");
  // Unit weights everywhere.
  for (size_t e = 0; e < g.num_edges(); ++e) {
    ASSERT_DOUBLE_EQ(g.edge_weight(e), 1.0);
  }
}

TEST(DatasetsTest, BlogSchemaMatchesTable2) {
  HeteroGraph g = MakeBlogLike(kScale, 2);
  GraphStats s = ComputeStats(g);
  ASSERT_EQ(s.nodes_per_type.size(), 2u);
  EXPECT_EQ(s.nodes_per_type[0].first, "User");
  ASSERT_EQ(s.edges_per_type.size(), 3u);
  EXPECT_EQ(s.labeled_type, "User");
  for (size_t e = 0; e < g.num_edges(); ++e) {
    ASSERT_DOUBLE_EQ(g.edge_weight(e), 1.0);
  }
}

TEST(DatasetsTest, AppNetworksAreWeightedAndPartiallyLabeled) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    HeteroGraph g = seed == 1 ? MakeAppDailyLike(kScale, seed)
                              : MakeAppWeeklyLike(kScale, seed);
    GraphStats s = ComputeStats(g);
    EXPECT_EQ(s.labeled_type, "Applet");
    // Only a fraction of applets labeled (paper: 5375 of 147968).
    EXPECT_LT(s.num_labeled, s.nodes_per_type[0].second);
    bool any_heavy = false;
    for (size_t e = 0; e < g.num_edges(); ++e) {
      if (g.edge_weight(e) > 1.5) any_heavy = true;
    }
    EXPECT_TRUE(any_heavy);
  }
}

TEST(DatasetsTest, BlogDensityExceedsAppDensity) {
  // Table II analysis (§IV-B1): BLOG is over an order of magnitude denser.
  GraphStats blog = ComputeStats(MakeBlogLike(kScale, 3));
  GraphStats app = ComputeStats(MakeAppDailyLike(kScale, 3));
  EXPECT_GT(blog.density, 5.0 * app.density);
}

TEST(DatasetsTest, AllViewsNonEmpty) {
  for (const std::string& name : DatasetNames()) {
    auto g = MakeDataset(name, kScale, 4);
    ASSERT_TRUE(g.ok());
    for (const View& v : BuildViews(*g)) {
      EXPECT_GT(v.graph.num_nodes(), 0u) << name;
    }
  }
}

TEST(DatasetsTest, MakeDatasetDispatch) {
  EXPECT_TRUE(MakeDataset("AMiner", kScale, 5).ok());
  EXPECT_FALSE(MakeDataset("Unknown", kScale, 5).ok());
  EXPECT_FALSE(MakeDataset("AMiner", -1.0, 5).ok());
  EXPECT_EQ(DatasetNames().size(), 4u);
}

TEST(DatasetsTest, RecommendedMetapathsUseRealTypes) {
  for (const std::string& name : DatasetNames()) {
    auto g = MakeDataset(name, kScale, 6);
    ASSERT_TRUE(g.ok());
    std::vector<std::string> path = RecommendedMetapath(name);
    ASSERT_GE(path.size(), 3u) << name;
    EXPECT_EQ(path.front(), path.back());
    for (const std::string& type_name : path) {
      bool found = false;
      for (NodeTypeId t = 0; t < g->num_node_types(); ++t) {
        found |= g->node_type_name(t) == type_name;
      }
      EXPECT_TRUE(found) << name << " / " << type_name;
    }
  }
  EXPECT_TRUE(RecommendedMetapath("nope").empty());
}

TEST(DatasetsTest, ScaleControlsSize) {
  HeteroGraph small = MakeAminerLike(0.05, 7);
  HeteroGraph large = MakeAminerLike(0.15, 7);
  EXPECT_GT(large.num_nodes(), 2 * small.num_nodes());
  EXPECT_GT(large.num_edges(), 2 * small.num_edges());
}

}  // namespace
}  // namespace transn
