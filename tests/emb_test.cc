#include <cmath>

#include <gtest/gtest.h>
#include "emb/embedding_table.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "nn/matrix.h"
#include "util/vec.h"

namespace transn {
namespace {

TEST(EmbeddingTableTest, RandomInitBounded) {
  Rng rng(1);
  EmbeddingTable t(10, 16, rng);
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.dim(), 16u);
  const double bound = 0.5 / 16.0;
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      EXPECT_LT(std::fabs(t.Row(r)[c]), bound + 1e-12);
    }
  }
}

TEST(EmbeddingTableTest, ZeroInit) {
  EmbeddingTable t(3, 4);
  EXPECT_DOUBLE_EQ(t.values().FrobeniusNorm(), 0.0);
}

TEST(EmbeddingTableTest, SgdStep) {
  EmbeddingTable t(2, 3);
  double grad[3] = {1.0, -2.0, 0.5};
  t.SgdStep(1, grad, 0.1);
  EXPECT_DOUBLE_EQ(t.Row(1)[0], -0.1);
  EXPECT_DOUBLE_EQ(t.Row(1)[1], 0.2);
  EXPECT_DOUBLE_EQ(t.Row(1)[2], -0.05);
  EXPECT_DOUBLE_EQ(t.Row(0)[0], 0.0);  // untouched row
}

TEST(EmbeddingTableTest, AdamStepMatchesDenseAdamOnSingleRow) {
  AdamConfig config{.learning_rate = 0.05};
  EmbeddingTable t(1, 4);
  Parameter p(Matrix(1, 4, 0.0));
  AdamOptimizer opt(config);
  opt.Register(&p);
  Rng rng(2);
  for (int step = 0; step < 10; ++step) {
    double grad[4];
    for (double& g : grad) g = rng.NextGaussian();
    t.BeginAdamStep();
    t.AdamStep(0, grad, config);
    for (size_t i = 0; i < 4; ++i) p.grad(0, i) = grad[i];
    opt.Step();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_NEAR(t.Row(0)[i], p.value(0, i), 1e-12);
    }
  }
}

TEST(EmbeddingTableDeathTest, AdamStepRequiresBegin) {
  EmbeddingTable t(1, 2);
  double grad[2] = {1.0, 1.0};
  EXPECT_DEATH(t.AdamStep(0, grad, AdamConfig{}), "BeginAdamStep");
}

TEST(EmbeddingTableTest, GatherRows) {
  Rng rng(3);
  EmbeddingTable t(4, 2, rng);
  Matrix m = t.GatherRows({2, 0, 2});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), t.Row(2)[0]);
  EXPECT_DOUBLE_EQ(m(1, 1), t.Row(0)[1]);
  EXPECT_DOUBLE_EQ(m(2, 0), t.Row(2)[0]);
}

TEST(NegativeSamplerTest, ZeroCountNeverSampled) {
  NegativeSampler s({10.0, 0.0, 5.0});
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(s.Sample(rng, 99), 1u);
}

TEST(NegativeSamplerTest, ExcludesTarget) {
  NegativeSampler s({1.0, 1.0, 1.0});
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(s.Sample(rng, 1), 1u);
}

TEST(NegativeSamplerTest, PowerSmoothsDistribution) {
  // counts 1 vs 16 with power 0.75: ratio 16^0.75 = 8.
  NegativeSampler s({1.0, 16.0});
  Rng rng(6);
  int c1 = 0;
  const int n = 90000;
  for (int i = 0; i < n; ++i) c1 += s.Sample(rng, 99) == 1;
  EXPECT_NEAR(static_cast<double>(c1) / n, 8.0 / 9.0, 0.01);
}

TEST(SgnsTest, PairTrainingReducesLoss) {
  Rng rng(7);
  EmbeddingTable input(4, 8, rng);
  EmbeddingTable context(4, 8);
  NegativeSampler sampler({1.0, 1.0, 1.0, 1.0});
  SgnsTrainer trainer(&input, &context, &sampler,
                      {.negatives = 2, .learning_rate = 0.2});
  double first = trainer.TrainPair(0, 1, rng);
  double last = first;
  for (int i = 0; i < 200; ++i) last = trainer.TrainPair(0, 1, rng);
  EXPECT_LT(last, first);
}

TEST(SgnsTest, LearnsTwoClusterStructure) {
  // Corpus: ids {0,1} always co-occur, ids {2,3} always co-occur.
  Rng rng(8);
  EmbeddingTable input(4, 16, rng);
  EmbeddingTable context(4, 16);
  NegativeSampler sampler({1.0, 1.0, 1.0, 1.0});
  SgnsTrainer trainer(&input, &context, &sampler,
                      {.negatives = 3, .learning_rate = 0.1});
  for (int epoch = 0; epoch < 600; ++epoch) {
    trainer.TrainPair(0, 1, rng);
    trainer.TrainPair(1, 0, rng);
    trainer.TrainPair(2, 3, rng);
    trainer.TrainPair(3, 2, rng);
  }
  auto cosine = [&](size_t a, size_t b) {
    double ab = vec::Dot(input.Row(a), input.Row(b), 16);
    double aa = vec::Dot(input.Row(a), input.Row(a), 16);
    double bb = vec::Dot(input.Row(b), input.Row(b), 16);
    return ab / std::sqrt(aa * bb);
  };
  EXPECT_GT(cosine(0, 1), cosine(0, 2));
  EXPECT_GT(cosine(2, 3), cosine(1, 3));
}

TEST(SgnsDeathTest, DimMismatchAborts) {
  Rng rng(9);
  EmbeddingTable a(2, 4, rng);
  EmbeddingTable b(2, 8, rng);
  NegativeSampler sampler({1.0, 1.0});
  EXPECT_DEATH(SgnsTrainer(&a, &b, &sampler, {}), "Check failed");
}

}  // namespace
}  // namespace transn
