#include "serve/embedding_store.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "serve/serving_format.h"
#include "serve_test_util.h"
#include "util/safe_io.h"
#include "test_graphs.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(EmbeddingStoreTest, RoundTripIsBitExact) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "store_roundtrip.bin");

  EXPECT_EQ(store.dim(), SmallServeConfig().dim);
  EXPECT_EQ(store.seq_len(), SmallServeConfig().translator_seq_len);
  ASSERT_EQ(store.num_nodes(), g.num_nodes());
  ASSERT_EQ(store.views().size(), model.views().size());

  // Node-name index round-trips and the hash lookup inverts it.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(store.node_name(n), g.node_name(n));
    EXPECT_EQ(store.FindNode(g.node_name(n)), n);
  }
  EXPECT_EQ(store.FindNode("no-such-node"), kInvalidNode);

  // Final embeddings are bit-exact (binary f64, not lossy text).
  Matrix final_emb = model.FinalEmbeddings();
  ASSERT_TRUE(store.final_embeddings().SameShape(final_emb));
  for (size_t i = 0; i < final_emb.size(); ++i) {
    EXPECT_EQ(store.final_embeddings().data()[i], final_emb.data()[i]);
  }

  // Per-view tables and local→global maps are bit-exact.
  for (size_t v = 0; v < model.views().size(); ++v) {
    const ServingView& sv = store.view(v);
    const View& mv = model.views()[v];
    EXPECT_EQ(sv.name, g.edge_type_name(mv.edge_type));
    EXPECT_EQ(sv.is_heter, mv.is_heter);
    const SingleViewTrainer* trainer = model.single_view_trainer_or_null(v);
    ASSERT_NE(trainer, nullptr);
    ASSERT_EQ(sv.global_ids.size(), mv.graph.num_nodes());
    for (size_t l = 0; l < sv.global_ids.size(); ++l) {
      EXPECT_EQ(sv.global_ids[l], mv.graph.ToGlobal(
                                      static_cast<ViewGraph::LocalId>(l)));
      EXPECT_EQ(sv.LocalOf(sv.global_ids[l]), static_cast<int64_t>(l));
    }
    const Matrix& values = trainer->embeddings().values();
    ASSERT_TRUE(sv.embeddings.SameShape(values));
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(sv.embeddings.data()[i], values.data()[i]);
    }
  }

  // Both translator directions of the one view-pair are stored bit-exact.
  ASSERT_EQ(store.translators().size(), 2 * model.num_cross_trainers());
  const CrossViewTrainer& cross = model.cross_view_trainer(0);
  const ServingTranslator* t_ij = store.FindTranslator(
      static_cast<uint32_t>(cross.pair().view_i),
      static_cast<uint32_t>(cross.pair().view_j));
  ASSERT_NE(t_ij, nullptr);
  ASSERT_EQ(t_ij->weights.size(), cross.translator_ij().num_encoders());
  for (size_t e = 0; e < t_ij->weights.size(); ++e) {
    const Matrix& w = cross.translator_ij().weight(e).value;
    ASSERT_TRUE(t_ij->weights[e].SameShape(w));
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(t_ij->weights[e].data()[i], w.data()[i]);
    }
    const Matrix& b = cross.translator_ij().bias(e).value;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(t_ij->biases[e].data()[i], b.data()[i]);
    }
  }
  EXPECT_EQ(store.FindTranslator(99, 0), nullptr);
}

TEST(EmbeddingStoreTest, FindViewByName) {
  HeteroGraph g = TwoCommunityNetwork(10, 3);
  TransNModel model(&g, SmallServeConfig());
  EmbeddingStore store = ExportAndLoad(model, "store_names.bin");
  EXPECT_EQ(store.FindViewByName("friendship"), 0);
  EXPECT_EQ(store.FindViewByName("tagging"), 1);
  EXPECT_EQ(store.FindViewByName("bogus"), -1);
}

TEST(EmbeddingStoreTest, MissingFileIsIoError) {
  EXPECT_EQ(EmbeddingStore::Load("/no/such/model.bin").status().code(),
            StatusCode::kIoError);
}

TEST(EmbeddingStoreTest, RejectsWrongMagic) {
  std::string path = TempPath("store_magic.bin");
  std::ofstream(path, std::ios::binary) << "definitely not a model file";
  auto store = EmbeddingStore::Load(path);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, RejectsCorruptedAndTruncatedFiles) {
  HeteroGraph g = TwoCommunityNetwork(10, 3);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("store_corrupt.bin");
  ASSERT_TRUE(ExportServingModel(model, path).ok());

  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(blob.size(), 64u);

  // A single flipped payload byte trips the FNV-1a trailer.
  std::string flipped = blob;
  flipped[blob.size() / 2] = static_cast<char>(flipped[blob.size() / 2] ^ 0x5a);
  std::ofstream(path, std::ios::binary).write(flipped.data(),
                                              flipped.size());
  auto corrupt = EmbeddingStore::Load(path);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos);

  // Truncation at any of a few prefixes is a clean error, never a crash.
  for (size_t keep : {9ul, 40ul, blob.size() / 2, blob.size() - 1}) {
    std::ofstream(path, std::ios::binary).write(blob.data(), keep);
    EXPECT_FALSE(EmbeddingStore::Load(path).ok()) << "prefix " << keep;
  }
  std::remove(path.c_str());
}

// Appends the v2 section CRC covering [*section_start, buf->size()) and
// advances *section_start past it, mirroring the writer.
void AppendSectionCrc(std::string* buf, size_t* section_start) {
  AppendU32(buf, Crc32(buf->data() + *section_start,
                       buf->size() - *section_start));
  *section_start = buf->size();
}

TEST(EmbeddingStoreTest, ChecksummedEmptyModelLoads) {
  // A header-only model (no nodes/views/translators) is valid.
  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, kServingFormatVersion);
  size_t section = buf.size();
  AppendU32(&buf, 4);  // dim
  AppendU32(&buf, 0);  // seq_len
  AppendU32(&buf, 0);  // nodes
  AppendU32(&buf, 0);  // views
  AppendU32(&buf, 0);  // translators
  AppendU8(&buf, 0);   // no final embeddings
  AppendSectionCrc(&buf, &section);  // header
  AppendSectionCrc(&buf, &section);  // node names (empty)
  AppendSectionCrc(&buf, &section);  // final embeddings (absent)
  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));
  std::string path = TempPath("store_empty.bin");
  std::ofstream(path, std::ios::binary).write(buf.data(), buf.size());
  auto store = EmbeddingStore::Load(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->num_nodes(), 0u);
  EXPECT_EQ(store->dim(), 4u);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, V1ModelWithoutSectionCrcsStillLoads) {
  // Pre-CRC files (version 1) carry only the FNV trailer; the reader must
  // keep accepting them byte-for-byte as written by older exporters.
  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, kServingFormatVersionV1);
  AppendU32(&buf, 3);  // dim
  AppendU32(&buf, 0);  // seq_len
  AppendU32(&buf, 1);  // nodes
  AppendU32(&buf, 0);  // views
  AppendU32(&buf, 0);  // translators
  AppendU8(&buf, kServingFlagFinalEmbeddings);
  AppendString(&buf, "only-node");
  AppendF64(&buf, 0.5);
  AppendF64(&buf, -1.25);
  AppendF64(&buf, 3.0);
  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));
  std::string path = TempPath("store_v1.bin");
  std::ofstream(path, std::ios::binary).write(buf.data(), buf.size());
  auto store = EmbeddingStore::Load(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->num_nodes(), 1u);
  EXPECT_EQ(store->node_name(0), "only-node");
  EXPECT_EQ(store->final_embeddings()(0, 1), -1.25);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, SectionCrcMismatchIsDataLoss) {
  // Flip a stored section CRC (not the payload): the FNV trailer is
  // recomputed so only the per-section check can catch it, and it must
  // report kDataLoss naming the section.
  HeteroGraph g = TwoCommunityNetwork(10, 3);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("store_crc.bin");
  ASSERT_TRUE(ExportServingModel(model, path).ok());
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // The header section CRC sits right after magic+version+21 header bytes.
  const size_t header_crc_at = sizeof(kServingMagic) + 4 + 21;
  blob[header_crc_at] = static_cast<char>(blob[header_crc_at] ^ 0xff);
  std::string body = blob.substr(0, blob.size() - 8);
  body.resize(blob.size() - 8);
  std::string rewritten = body;
  AppendU64(&rewritten, ServingChecksum(body.data(), body.size()));
  std::ofstream(path, std::ios::binary)
      .write(rewritten.data(), rewritten.size());
  auto store = EmbeddingStore::Load(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().message().find("header"), std::string::npos)
      << store.status().message();
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, RejectsUnsupportedVersion) {
  std::string buf;
  buf.append(kServingMagic, sizeof(kServingMagic));
  AppendU32(&buf, kServingFormatVersion + 7);
  for (int i = 0; i < 5; ++i) AppendU32(&buf, 0);
  AppendU8(&buf, 0);
  AppendU64(&buf, ServingChecksum(buf.data(), buf.size()));
  std::string path = TempPath("store_version.bin");
  std::ofstream(path, std::ios::binary).write(buf.data(), buf.size());
  auto store = EmbeddingStore::Load(path);
  EXPECT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace transn
