// End-to-end check of the TRANSN_FAULTS environment wiring, exercised by
// the CI fault-injection leg with rotations like `io.write=always`,
// `io.short_write=always`, `io.fsync=always`, and `io.rename=always`
// (see .github/workflows/ci.yml). With no TRANSN_FAULTS set the whole
// suite skips, so a plain `ctest` run is unaffected.
//
// Whatever I/O failpoint the environment arms, the contract is the same:
// an atomic write fails with a descriptive Status, the previous target
// file survives byte-for-byte, and nothing crashes (the CI leg runs this
// under ASan/UBSan to also rule out leaks and UB on the error paths).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "serve_test_util.h"
#include "test_graphs.h"
#include "util/fault.h"
#include "util/safe_io.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool EnvFaultsArmed() {
  const char* env = std::getenv("TRANSN_FAULTS");
  return env != nullptr && env[0] != '\0';
}

#define SKIP_UNLESS_ENV_FAULTS()                                        \
  do {                                                                  \
    if (!EnvFaultsArmed()) {                                            \
      GTEST_SKIP() << "TRANSN_FAULTS not set; nothing to exercise";     \
    }                                                                   \
  } while (false)

TEST(FaultEnvTest, EnvSpecIsArmedAtStartup) {
  SKIP_UNLESS_ENV_FAULTS();
  EXPECT_TRUE(fault::FaultInjector::Default().AnyArmed())
      << "TRANSN_FAULTS=" << std::getenv("TRANSN_FAULTS")
      << " armed nothing";
}

TEST(FaultEnvTest, AtomicWriteFailsWithoutTouchingTarget) {
  SKIP_UNLESS_ENV_FAULTS();
  std::string path = TempPath("env_fault_target.bin");
  { std::ofstream(path, std::ios::binary) << "previous good contents"; }
  AtomicFileWriter w(path);
  w.Write(std::string(1 << 20, 'z'));  // large enough to hit flush paths
  Status s = w.Commit();
  ASSERT_FALSE(s.ok()) << "commit succeeded despite TRANSN_FAULTS="
                       << std::getenv("TRANSN_FAULTS");
  EXPECT_FALSE(s.message().empty());
  EXPECT_EQ(Slurp(path), "previous good contents");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultEnvTest, CheckpointWriterSurfacesTheFailure) {
  SKIP_UNLESS_ENV_FAULTS();
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("env_fault.ckpt");
  { std::ofstream(path, std::ios::binary) << "old checkpoint"; }
  Status s = SaveTransNCheckpoint(model, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(Slurp(path), "old checkpoint");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultEnvTest, ServingExportSurfacesTheFailure) {
  SKIP_UNLESS_ENV_FAULTS();
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("env_fault.bin");
  Status s = ExportServingModel(model, path);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(std::ifstream(path).good()) << "partial export left behind";
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace transn
