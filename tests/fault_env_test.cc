// End-to-end check of the TRANSN_FAULTS environment wiring, exercised by
// the CI fault-injection leg with rotations like `io.write=always`,
// `io.short_write=always`, `io.fsync=always`, `io.rename=always`, and
// `pool.task=once` (see .github/workflows/ci.yml). With no TRANSN_FAULTS
// set the whole suite skips, so a plain `ctest` run is unaffected.
//
// Tests are gated on the subsystem the armed spec targets: under an io.*
// failpoint an atomic write fails with a descriptive Status and the
// previous target file survives byte-for-byte; under pool.task a parallel
// ANN build surfaces a clean Status with no partial graph. Either way
// nothing crashes (the CI leg runs this under ASan/UBSan to also rule out
// leaks and UB on the error paths).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "nn/matrix.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/ann_index.h"
#include "serve_test_util.h"
#include "test_graphs.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/safe_io.h"
#include "util/thread_pool.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool EnvFaultsArmed() {
  const char* env = std::getenv("TRANSN_FAULTS");
  return env != nullptr && env[0] != '\0';
}

/// True when the armed spec targets the given subsystem ("io.", "pool.").
/// Each CI rotation leg arms exactly one failpoint; a test must only assert
/// failure when the failpoint sits on a path its code actually crosses.
bool EnvFaultsHavePrefix(const char* prefix) {
  const char* env = std::getenv("TRANSN_FAULTS");
  return env != nullptr && std::string(env).find(prefix) != std::string::npos;
}

#define SKIP_UNLESS_ENV_FAULTS()                                        \
  do {                                                                  \
    if (!EnvFaultsArmed()) {                                            \
      GTEST_SKIP() << "TRANSN_FAULTS not set; nothing to exercise";     \
    }                                                                   \
  } while (false)

#define SKIP_UNLESS_ENV_FAULT_PREFIX(prefix)                            \
  do {                                                                  \
    SKIP_UNLESS_ENV_FAULTS();                                           \
    if (!EnvFaultsHavePrefix(prefix)) {                                 \
      GTEST_SKIP() << "TRANSN_FAULTS=" << std::getenv("TRANSN_FAULTS")  \
                   << " arms no " << prefix << "* failpoint";           \
    }                                                                   \
  } while (false)

TEST(FaultEnvTest, EnvSpecIsArmedAtStartup) {
  SKIP_UNLESS_ENV_FAULTS();
  EXPECT_TRUE(fault::FaultInjector::Default().AnyArmed())
      << "TRANSN_FAULTS=" << std::getenv("TRANSN_FAULTS")
      << " armed nothing";
}

TEST(FaultEnvTest, AtomicWriteFailsWithoutTouchingTarget) {
  SKIP_UNLESS_ENV_FAULT_PREFIX("io.");
  std::string path = TempPath("env_fault_target.bin");
  { std::ofstream(path, std::ios::binary) << "previous good contents"; }
  AtomicFileWriter w(path);
  w.Write(std::string(1 << 20, 'z'));  // large enough to hit flush paths
  Status s = w.Commit();
  ASSERT_FALSE(s.ok()) << "commit succeeded despite TRANSN_FAULTS="
                       << std::getenv("TRANSN_FAULTS");
  EXPECT_FALSE(s.message().empty());
  EXPECT_EQ(Slurp(path), "previous good contents");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultEnvTest, CheckpointWriterSurfacesTheFailure) {
  SKIP_UNLESS_ENV_FAULT_PREFIX("io.");
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("env_fault.ckpt");
  { std::ofstream(path, std::ios::binary) << "old checkpoint"; }
  Status s = SaveTransNCheckpoint(model, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(Slurp(path), "old checkpoint");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultEnvTest, ServingExportSurfacesTheFailure) {
  SKIP_UNLESS_ENV_FAULT_PREFIX("io.");
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  std::string path = TempPath("env_fault.bin");
  Status s = ExportServingModel(model, path);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(std::ifstream(path).good()) << "partial export left behind";
  std::remove((path + ".tmp").c_str());
}

TEST(FaultEnvTest, PoolTaskFailureAbortsAnnBuildCleanly) {
  SKIP_UNLESS_ENV_FAULT_PREFIX("pool.");
  Rng rng(7);
  Matrix base(600, 8);
  for (size_t i = 0; i < base.size(); ++i) {
    base.data()[i] = rng.NextGaussian();
  }

  // A worker task dying mid-build must come back as a Status, never as a
  // crash or a half-linked graph handed to the caller.
  ThreadPool pool(4);
  StatusOr<AnnIndex> built =
      AnnIndex::Build(base, KnnMetric::kCosine, {}, &pool);
  ASSERT_FALSE(built.ok()) << "parallel build succeeded despite "
                           << "TRANSN_FAULTS=" << std::getenv("TRANSN_FAULTS");
  EXPECT_FALSE(built.status().message().empty());

  // The inline path never dispatches pool tasks, so it is unaffected.
  StatusOr<AnnIndex> serial = AnnIndex::Build(base, KnnMetric::kCosine, {});
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // One-shot modes (pool.task=once) are consumed by the aborted build: the
  // pool must have survived, and the retry must reproduce the serial bytes
  // exactly — no residue from the failed attempt. Under =always the retry
  // fails again, which is equally fine.
  StatusOr<AnnIndex> retry =
      AnnIndex::Build(base, KnnMetric::kCosine, {}, &pool);
  if (retry.ok()) {
    std::string retry_bytes, serial_bytes;
    retry->AppendTo(&retry_bytes);
    serial->AppendTo(&serial_bytes);
    EXPECT_EQ(retry_bytes, serial_bytes);
  }
}

TEST(FaultEnvTest, NetFailpointsDegradeTheServerWithoutCrashing) {
  SKIP_UNLESS_ENV_FAULT_PREFIX("net.");
  const std::string spec = std::getenv("TRANSN_FAULTS");
  obs::Counter* injected = obs::MetricsRegistry::Default().GetCounter(
      obs::kNetFaultsInjectedTotal);
  const uint64_t fired_before = injected->Value();

  net::HttpServer server(
      {}, [](net::HttpRequest&&, net::ResponseHandle handle) {
        handle.Send(200, "text/plain", "ok");
      });
  ASSERT_TRUE(server.Start().ok());

  // Fresh connection per request so net.accept fires every time; one
  // attempt per request so the leg measures the raw failure, not the
  // client's recovery. Under =always nothing may succeed except net.slow
  // (injected latency drops no traffic) — either way the reactors must
  // survive the whole barrage and stop cleanly (ASan/UBSan watch the
  // teardown paths).
  size_t succeeded = 0;
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    net::HttpRetryOptions retry;
    retry.max_attempts = 1;
    net::HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/500,
                           retry);
    auto r = client.Get("/ping");
    if (r.ok() && r->code == 200) ++succeeded;
  }
  server.Stop();

  EXPECT_GT(injected->Value(), fired_before)
      << "TRANSN_FAULTS=" << spec << " never fired on the serving path";
  if (spec.find("net.slow") != std::string::npos) {
    EXPECT_EQ(succeeded, static_cast<size_t>(kRequests))
        << "net.slow only injects latency; it must not drop requests";
  }
}

}  // namespace
}  // namespace transn
