#include "util/fault.h"

#include <gtest/gtest.h>

namespace transn {
namespace fault {
namespace {

// Every test arms the process-wide injector, so teardown must disarm it or
// later tests (and suites) would inherit the faults.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Default().DisarmAll(); }
};

TEST_F(FaultInjectorTest, UnarmedPointNeverFails) {
  EXPECT_FALSE(MaybeFail("io.nothing.armed"));
  EXPECT_FALSE(FaultInjector::Default().AnyArmed());
  EXPECT_EQ(FaultInjector::Default().Hits("io.nothing.armed"), 0u);
}

TEST_F(FaultInjectorTest, AlwaysFailsEveryHit) {
  FaultInjector::Default().Arm(kIoWrite, FaultSpec::Always());
  EXPECT_TRUE(FaultInjector::Default().AnyArmed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(MaybeFail(kIoWrite));
  EXPECT_EQ(FaultInjector::Default().Hits(kIoWrite), 5u);
  // Other points stay unaffected.
  EXPECT_FALSE(MaybeFail(kIoRename));
}

TEST_F(FaultInjectorTest, AfterNSucceedsThenFailsForever) {
  FaultInjector::Default().Arm(kIoFsync, FaultSpec::AfterN(3));
  EXPECT_FALSE(MaybeFail(kIoFsync));  // hit 1
  EXPECT_FALSE(MaybeFail(kIoFsync));  // hit 2
  EXPECT_FALSE(MaybeFail(kIoFsync));  // hit 3
  EXPECT_TRUE(MaybeFail(kIoFsync));   // hit 4: the disk is now full
  EXPECT_TRUE(MaybeFail(kIoFsync));   // ...and stays full
}

TEST_F(FaultInjectorTest, OnceAfterNFiresExactlyOnce) {
  FaultInjector::Default().Arm(kIoRename, FaultSpec::OnceAfterN(2));
  EXPECT_FALSE(MaybeFail(kIoRename));  // hit 1
  EXPECT_FALSE(MaybeFail(kIoRename));  // hit 2
  EXPECT_TRUE(MaybeFail(kIoRename));   // hit 3: the one transient fault
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(MaybeFail(kIoRename));
}

TEST_F(FaultInjectorTest, ProbabilityIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector::Default().Arm("p.test", FaultSpec::Probability(0.5, seed));
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(MaybeFail("p.test") ? 'F' : '.');
    }
    FaultInjector::Default().Disarm("p.test");
    return pattern;
  };
  const std::string a = run(7);
  EXPECT_EQ(a, run(7));     // same seed replays exactly
  EXPECT_NE(a, run(8));     // different seed differs
  EXPECT_NE(a.find('F'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FaultInjectorTest, ProbabilityExtremes) {
  FaultInjector::Default().Arm("p.zero", FaultSpec::Probability(0.0));
  FaultInjector::Default().Arm("p.one", FaultSpec::Probability(1.0));
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(MaybeFail("p.zero"));
    EXPECT_TRUE(MaybeFail("p.one"));
  }
}

TEST_F(FaultInjectorTest, RearmResetsHitCount) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Arm(kIoWrite, FaultSpec::AfterN(1));
  EXPECT_FALSE(MaybeFail(kIoWrite));
  EXPECT_TRUE(MaybeFail(kIoWrite));
  fi.Arm(kIoWrite, FaultSpec::AfterN(1));  // re-arm: counts start over
  EXPECT_EQ(fi.Hits(kIoWrite), 0u);
  EXPECT_FALSE(MaybeFail(kIoWrite));
  EXPECT_TRUE(MaybeFail(kIoWrite));
}

TEST_F(FaultInjectorTest, DisarmRestoresNormalOperation) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Arm(kIoWrite, FaultSpec::Always());
  fi.Arm(kIoFsync, FaultSpec::Always());
  fi.Disarm(kIoWrite);
  EXPECT_FALSE(MaybeFail(kIoWrite));
  EXPECT_TRUE(MaybeFail(kIoFsync));
  EXPECT_TRUE(fi.AnyArmed());
  fi.DisarmAll();
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_FALSE(MaybeFail(kIoFsync));
  fi.Disarm("never.armed");  // disarming an unknown point is a no-op
}

TEST_F(FaultInjectorTest, MaybeThrowRaisesInjectedFaultError) {
  FaultInjector::Default().Arm(kTrainAbort, FaultSpec::Always());
  try {
    MaybeThrow(kTrainAbort);
    FAIL() << "expected InjectedFaultError";
  } catch (const InjectedFaultError& e) {
    EXPECT_EQ(e.point(), kTrainAbort);
    EXPECT_NE(std::string(e.what()).find(kTrainAbort), std::string::npos);
  }
  FaultInjector::Default().DisarmAll();
  MaybeThrow(kTrainAbort);  // disarmed: no throw
}

TEST_F(FaultInjectorTest, SpecStringArmsMultiplePoints) {
  FaultInjector& fi = FaultInjector::Default();
  Status s = fi.ArmFromSpecString(
      "io.write=after:2; pool.task=once ,io.fsync=prob:1.0:3");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(MaybeFail(kIoWrite));
  EXPECT_FALSE(MaybeFail(kIoWrite));
  EXPECT_TRUE(MaybeFail(kIoWrite));
  EXPECT_TRUE(MaybeFail(kPoolTask));   // once with no count: first hit
  EXPECT_FALSE(MaybeFail(kPoolTask));
  EXPECT_TRUE(MaybeFail(kIoFsync));    // prob 1.0
}

TEST_F(FaultInjectorTest, MalformedSpecStringArmsNothing) {
  FaultInjector& fi = FaultInjector::Default();
  // The valid first entry must not be armed when a later entry is bad:
  // a typo'd fault plan fails atomically instead of half-applying.
  for (const char* bad :
       {"io.write", "=always", "io.write=notamode", "io.write=after",
        "io.write=after:-1", "io.write=prob:1.5", "io.write=prob",
        "io.write=always;io.fsync=oops", "io.write=always:1"}) {
    Status s = fi.ArmFromSpecString(bad);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(fi.AnyArmed()) << bad;
  }
  EXPECT_TRUE(fi.ArmFromSpecString("").ok());  // empty spec: nothing armed
  EXPECT_FALSE(fi.AnyArmed());
}

}  // namespace
}  // namespace fault
}  // namespace transn
