#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>
#include "test_graphs.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  HeteroGraph g = Fig4BookRatingNetwork();
  std::string path = TempPath("graph_roundtrip.tsv");
  ASSERT_TRUE(SaveGraph(g, path).ok());

  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const HeteroGraph& h = *loaded;
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  ASSERT_EQ(h.num_node_types(), g.num_node_types());
  ASSERT_EQ(h.num_edge_types(), g.num_edge_types());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(h.node_name(n), g.node_name(n));
    EXPECT_EQ(h.node_type(n), g.node_type(n));
    EXPECT_EQ(h.label(n), g.label(n));
  }
  for (size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_u(e), g.edge_u(e));
    EXPECT_EQ(h.edge_v(e), g.edge_v(e));
    EXPECT_EQ(h.edge_type(e), g.edge_type(e));
    EXPECT_DOUBLE_EQ(h.edge_weight(e), g.edge_weight(e));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripPreservesLabels) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  EdgeTypeId e = b.AddEdgeType("r");
  b.AddNode(t, "x0");
  b.AddNode(t, "x1");
  b.AddEdge(0, 1, e, 2.5);
  b.SetLabel(0, 4);
  HeteroGraph g = b.Build();

  std::string path = TempPath("graph_labels.tsv");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->label(0), 4);
  EXPECT_EQ(loaded->label(1), kUnlabeled);
  EXPECT_EQ(loaded->num_labels(), 5);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_EQ(LoadGraph("/no/such/file.tsv").status().code(),
            StatusCode::kIoError);
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(GraphIoTest, MalformedInputsRejected) {
  std::string path = TempPath("bad_graph.tsv");
  struct Case {
    const char* content;
    const char* what;
  };
  const Case cases[] = {
      {"Q\tx\n", "unknown tag"},
      {"T\tX\nN\tn0\tY\n", "unknown node type"},
      {"T\tX\nN\tn0\tX\nN\tn0\tX\n", "duplicate node"},
      {"T\tX\nR\tr\nN\ta\tX\nN\tb\tX\nE\ta\tc\tr\t1\n", "unknown node"},
      {"T\tX\nR\tr\nN\ta\tX\nN\tb\tX\nE\ta\tb\tr\t-1\n", "bad edge weight"},
      {"T\tX\nR\tr\nN\ta\tX\nN\tb\tX\nE\ta\tb\tq\t1\n", "unknown edge type"},
      {"T\tX\nN\ta\tX\tnotanumber\n", "bad label"},
  };
  for (const Case& c : cases) {
    WriteFile(path, c.content);
    auto loaded = LoadGraph(path);
    EXPECT_FALSE(loaded.ok()) << "content: " << c.content;
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::string path = TempPath("comments.tsv");
  WriteFile(path,
            "# header comment\n\nT\tX\nR\tr\n# mid comment\nN\ta\tX\n"
            "N\tb\tX\nE\ta\tb\tr\t1.5\n");
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 2u);
  EXPECT_EQ(loaded->num_edges(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace transn
