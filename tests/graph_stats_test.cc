#include "graph/graph_stats.h"

#include <gtest/gtest.h>
#include "test_graphs.h"

namespace transn {
namespace {

TEST(GraphStatsTest, Fig2aStats) {
  HeteroGraph g = Fig2aAcademicNetwork();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 6u);
  ASSERT_EQ(s.nodes_per_type.size(), 3u);
  EXPECT_EQ(s.nodes_per_type[0], (std::pair<std::string, size_t>{"Author", 3}));
  EXPECT_EQ(s.nodes_per_type[1], (std::pair<std::string, size_t>{"Paper", 2}));
  ASSERT_EQ(s.edges_per_type.size(), 3u);
  EXPECT_EQ(s.edges_per_type[0],
            (std::pair<std::string, size_t>{"authorship", 3}));
  EXPECT_EQ(s.num_labeled, 0u);
  EXPECT_DOUBLE_EQ(s.average_degree, 2.0);
  EXPECT_NEAR(s.density, 12.0 / 30.0, 1e-12);
}

TEST(GraphStatsTest, LabeledTypeDetected) {
  HeteroGraph g = TwoCommunityNetwork(10, 1);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.labeled_type, "Person");
  EXPECT_EQ(s.num_labeled, 20u);
}

TEST(GraphStatsTest, MixedLabeledTypesClearName) {
  HeteroGraphBuilder b;
  NodeTypeId x = b.AddNodeType("X");
  NodeTypeId y = b.AddNodeType("Y");
  EdgeTypeId e = b.AddEdgeType("r");
  NodeId n0 = b.AddNode(x);
  NodeId n1 = b.AddNode(y);
  b.AddEdge(n0, n1, e);
  b.SetLabel(n0, 0);
  b.SetLabel(n1, 1);
  GraphStats s = ComputeStats(b.Build());
  EXPECT_EQ(s.num_labeled, 2u);
  EXPECT_TRUE(s.labeled_type.empty());
}

TEST(FormatTypeCountsTest, PaperStyleCell) {
  EXPECT_EQ(FormatTypeCounts({{"Author", 2161}, {"Paper", 2555}}),
            "Author(2161), Paper(2555)");
  EXPECT_EQ(FormatTypeCounts({}), "");
}

}  // namespace
}  // namespace transn
