#include "graph/hetero_graph.h"

#include <gtest/gtest.h>
#include "test_graphs.h"

namespace transn {
namespace {

TEST(HeteroGraphBuilderTest, BuildsFig2aNetwork) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.num_node_types(), 3u);
  EXPECT_EQ(g.num_edge_types(), 3u);
  EXPECT_EQ(g.node_type_name(0), "Author");
  EXPECT_EQ(g.edge_type_name(1), "citation");
  EXPECT_EQ(g.node_name(0), "A1");
}

TEST(HeteroGraphTest, AdjacencyIsSymmetric) {
  HeteroGraph g = Fig2aAcademicNetwork();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Adjacency* a = g.NeighborsBegin(u); a != g.NeighborsEnd(u);
         ++a) {
      bool found = false;
      for (const Adjacency* back = g.NeighborsBegin(a->neighbor);
           back != g.NeighborsEnd(a->neighbor); ++back) {
        if (back->neighbor == u && back->edge_type == a->edge_type) {
          found = true;
          EXPECT_DOUBLE_EQ(back->weight, a->weight);
        }
      }
      EXPECT_TRUE(found) << "edge " << u << "->" << a->neighbor;
    }
  }
}

TEST(HeteroGraphTest, DegreesMatchFig2a) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_EQ(g.degree(0), 2u);  // A1: P1, U1
  EXPECT_EQ(g.degree(1), 1u);  // A2: P2
  EXPECT_EQ(g.degree(3), 2u);  // P1: A1, P2
  EXPECT_EQ(g.degree(4), 3u);  // P2: A2, A3, P1
  EXPECT_EQ(g.degree(5), 2u);  // U1: A1, A3
}

TEST(HeteroGraphTest, HasEdge) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_TRUE(g.HasEdge(0, 3));   // A1-P1
  EXPECT_TRUE(g.HasEdge(3, 0));   // symmetric
  EXPECT_FALSE(g.HasEdge(0, 4));  // A1-P2
  EXPECT_FALSE(g.HasEdge(1, 5));  // A2-U1
}

TEST(HeteroGraphTest, LabelsAndLabeledNodes) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  EdgeTypeId e = b.AddEdgeType("r");
  NodeId n0 = b.AddNode(t);
  NodeId n1 = b.AddNode(t);
  NodeId n2 = b.AddNode(t);
  b.AddEdge(n0, n1, e);
  b.AddEdge(n1, n2, e);
  b.SetLabel(n0, 2);
  b.SetLabel(n2, 0);
  HeteroGraph g = b.Build();
  EXPECT_EQ(g.label(n0), 2);
  EXPECT_EQ(g.label(n1), kUnlabeled);
  EXPECT_EQ(g.num_labels(), 3);
  EXPECT_EQ(g.LabeledNodes(), (std::vector<NodeId>{n0, n2}));
}

TEST(HeteroGraphTest, UnnamedNodesGetDefaultNames) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  b.AddEdgeType("r");
  NodeId n = b.AddNode(t);
  b.AddNode(t);
  b.AddEdge(0, 1, 0);
  HeteroGraph g = b.Build();
  EXPECT_EQ(g.node_name(n), "n0");
}

TEST(HeteroGraphTest, EdgeListAccess) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_EQ(g.edge_u(0), 0u);
  EXPECT_EQ(g.edge_v(0), 3u);
  EXPECT_EQ(g.edge_type(3), 1u);  // citation
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(HeteroGraphTest, AverageDegree) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);  // 2*6/6
}

TEST(HeteroGraphBuilderDeathTest, RejectsBadInput) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  EdgeTypeId e = b.AddEdgeType("r");
  NodeId n0 = b.AddNode(t);
  NodeId n1 = b.AddNode(t);
  EXPECT_DEATH(b.AddEdge(n0, n0, e), "self-loops");
  EXPECT_DEATH(b.AddEdge(n0, n1, e, 0.0), "positive");
  EXPECT_DEATH(b.AddEdge(n0, 99, e), "Check failed");
  EXPECT_DEATH(b.AddEdge(n0, n1, 9), "unknown edge type");
  EXPECT_DEATH(b.AddNode(7), "unknown node type");
  EXPECT_DEATH(b.AddNodeType("X"), "duplicate");
  EXPECT_DEATH(b.AddEdgeType("r"), "duplicate");
  EXPECT_DEATH(b.SetLabel(n0, -3), "Check failed");
}

TEST(HeteroGraphBuilderTest, BuilderResetsAfterBuild) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  b.AddEdgeType("r");
  b.AddNode(t);
  b.AddNode(t);
  b.AddEdge(0, 1, 0);
  HeteroGraph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_EQ(b.num_edges(), 0u);
}

}  // namespace
}  // namespace transn
