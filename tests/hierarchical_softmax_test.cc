#include "emb/hierarchical_softmax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/vec.h"

namespace transn {
namespace {

TEST(HuffmanTreeTest, TwoSymbolTree) {
  HuffmanTree tree({3.0, 1.0});
  EXPECT_EQ(tree.vocab_size(), 2u);
  EXPECT_EQ(tree.num_internal_nodes(), 1u);
  EXPECT_EQ(tree.Code(0).size(), 1u);
  EXPECT_EQ(tree.Code(1).size(), 1u);
  EXPECT_NE(tree.Code(0)[0], tree.Code(1)[0]);
  EXPECT_EQ(tree.Path(0)[0], 0u);
}

TEST(HuffmanTreeTest, FrequentSymbolsGetShorterCodes) {
  // Skewed distribution: id 0 dominates.
  HuffmanTree tree({100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  const size_t len0 = tree.Code(0).size();
  for (uint32_t i = 1; i < 8; ++i) {
    EXPECT_LE(len0, tree.Code(i).size());
  }
  EXPECT_LE(len0, 2u);
}

TEST(HuffmanTreeTest, CodesArePrefixFree) {
  HuffmanTree tree({5, 3, 2, 2, 1, 1});
  for (uint32_t a = 0; a < 6; ++a) {
    for (uint32_t b = 0; b < 6; ++b) {
      if (a == b) continue;
      const auto& ca = tree.Code(a);
      const auto& cb = tree.Code(b);
      if (ca.size() > cb.size()) continue;
      bool is_prefix = true;
      for (size_t i = 0; i < ca.size(); ++i) is_prefix &= ca[i] == cb[i];
      EXPECT_FALSE(is_prefix) << a << " prefixes " << b;
    }
  }
}

TEST(HuffmanTreeTest, ExpectedCodeLengthNearEntropy) {
  // For a dyadic distribution the Huffman code is exactly optimal.
  std::vector<double> counts = {8, 4, 2, 1, 1};
  HuffmanTree tree(counts);
  double total = 16.0;
  double expected_len = 0.0;
  for (uint32_t i = 0; i < counts.size(); ++i) {
    expected_len += counts[i] / total * tree.Code(i).size();
  }
  // Entropy of {1/2,1/4,1/8,1/16,1/16} = 1.875.
  EXPECT_NEAR(expected_len, 1.875, 1e-9);
}

TEST(HuffmanTreeTest, PathIdsWithinInternalNodeRange) {
  HuffmanTree tree({2, 3, 4, 5, 6});
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_EQ(tree.Path(i).size(), tree.Code(i).size());
    for (uint32_t node : tree.Path(i)) {
      EXPECT_LT(node, tree.num_internal_nodes());
    }
  }
}

TEST(HuffmanTreeDeathTest, SingleSymbolAborts) {
  EXPECT_DEATH(HuffmanTree({1.0}), "Check failed");
}

TEST(HierarchicalSoftmaxTest, TrainingReducesPairLoss) {
  Rng rng(1);
  EmbeddingTable input(4, 8, rng);
  HierarchicalSoftmaxTrainer trainer(&input, {4, 3, 2, 1}, 0.2);
  double first = trainer.TrainPair(0, 1);
  double last = first;
  for (int i = 0; i < 300; ++i) last = trainer.TrainPair(0, 1);
  EXPECT_LT(last, first * 0.5);
}

TEST(HierarchicalSoftmaxTest, LearnsClusters) {
  Rng rng(2);
  EmbeddingTable input(4, 16, rng);
  HierarchicalSoftmaxTrainer trainer(&input, {1, 1, 1, 1}, 0.1);
  for (int epoch = 0; epoch < 800; ++epoch) {
    trainer.TrainPair(0, 1);
    trainer.TrainPair(1, 0);
    trainer.TrainPair(2, 3);
    trainer.TrainPair(3, 2);
  }
  auto cosine = [&](size_t a, size_t b) {
    double ab = vec::Dot(input.Row(a), input.Row(b), 16);
    double aa = vec::Dot(input.Row(a), input.Row(a), 16);
    double bb = vec::Dot(input.Row(b), input.Row(b), 16);
    return ab / std::sqrt(std::max(aa * bb, 1e-30));
  };
  EXPECT_GT(cosine(0, 1), cosine(0, 2));
  EXPECT_GT(cosine(2, 3), cosine(0, 3));
}

TEST(HierarchicalSoftmaxDeathTest, CountSizeMismatchAborts) {
  Rng rng(3);
  EmbeddingTable input(4, 8, rng);
  EXPECT_DEATH(HierarchicalSoftmaxTrainer(&input, {1, 1}, 0.1),
               "Check failed");
}

}  // namespace
}  // namespace transn
