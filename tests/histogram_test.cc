#include "util/histogram.h"

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(0.010);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.010);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
  // Bucketed percentile carries ~5% relative resolution.
  EXPECT_NEAR(h.Percentile(50), 0.010, 0.010 * 0.06);
}

TEST(LatencyHistogramTest, PercentilesOfUniformRamp) {
  LatencyHistogram h;
  // 1ms .. 1000ms in 1ms steps.
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Percentile(50), 0.500, 0.500 * 0.07);
  EXPECT_NEAR(h.Percentile(95), 0.950, 0.950 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 0.990, 0.990 * 0.07);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.001);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1.000);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) h.Record(1e-5 * (1 + i % 37));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    const double v = i * 1e-4;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(LatencyHistogramTest, MergeIntoEmpty) {
  LatencyHistogram a, b;
  b.Record(0.002);
  b.Record(0.004);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 0.002);
  EXPECT_DOUBLE_EQ(a.max(), 0.004);
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.0);      // below bucket range
  h.Record(1e-12);    // far below
  h.Record(5000.0);   // above bucket range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_LE(h.Percentile(1), h.Percentile(99));
}

TEST(LatencyHistogramTest, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(0.001);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace transn
