#include "util/histogram.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "obs/metrics.h"

namespace transn {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(0.010);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.010);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
  // Bucketed percentile carries ~5% relative resolution.
  EXPECT_NEAR(h.Percentile(50), 0.010, 0.010 * 0.06);
}

TEST(LatencyHistogramTest, PercentilesOfUniformRamp) {
  LatencyHistogram h;
  // 1ms .. 1000ms in 1ms steps.
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Percentile(50), 0.500, 0.500 * 0.07);
  EXPECT_NEAR(h.Percentile(95), 0.950, 0.950 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 0.990, 0.990 * 0.07);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.001);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1.000);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) h.Record(1e-5 * (1 + i % 37));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    const double v = i * 1e-4;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(LatencyHistogramTest, MergeIntoEmpty) {
  LatencyHistogram a, b;
  b.Record(0.002);
  b.Record(0.004);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 0.002);
  EXPECT_DOUBLE_EQ(a.max(), 0.004);
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.0);      // below bucket range
  h.Record(1e-12);    // far below
  h.Record(5000.0);   // above bucket range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_LE(h.Percentile(1), h.Percentile(99));
}

TEST(LatencyHistogramTest, SaturatingBucketPinsAllPercentiles) {
  // Every sample is identical, so one bucket absorbs the entire mass.
  // Any interior percentile rank lands in that saturated bucket and must
  // report its midpoint; p0/p100 stay the exact extremes.
  LatencyHistogram h;
  for (int i = 0; i < 100000; ++i) h.Record(0.005);
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.005);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.005);
  const double p1 = h.Percentile(1);
  for (double p : {25.0, 50.0, 90.0, 99.0, 99.99}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), p1) << "p" << p;
  }
  EXPECT_NEAR(p1, 0.005, 0.005 * 0.06);
  EXPECT_NEAR(h.mean(), 0.005, 1e-12);  // 1e5 summations accumulate ulps
}

TEST(LatencyHistogramTest, SaturatedEdgeBucketAboveRange) {
  // All samples above the top bucket edge clamp into the last bucket; the
  // p99 path must not read past the bucket array or return garbage.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1e9);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e9);
  const double p50 = h.Percentile(50);
  EXPECT_GT(p50, 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), p50);  // same saturated edge bucket
}

// --- obs::Histogram (the registry-level wrapper the p99 reporting uses) ----

TEST(ObsHistogramTest, EmptySnapshot) {
  obs::Histogram h;
  LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.Percentile(99), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogramTest, SingleSampleSnapshot) {
  obs::Histogram h;
  h.Record(0.020);
  LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_DOUBLE_EQ(snap.min(), 0.020);
  EXPECT_DOUBLE_EQ(snap.max(), 0.020);
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 0.020);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 0.020);
  EXPECT_NEAR(snap.Percentile(99), 0.020, 0.020 * 0.06);
}

TEST(ObsHistogramTest, SnapshotMergesShardsAcrossThreads) {
  // Recorders on different threads land in different shards; Snapshot()
  // must merge them into one coherent distribution.
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kSamples = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kSamples; ++i) h.Record(i * 1e-4);
    });
  }
  for (std::thread& t : threads) t.join();
  LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<size_t>(kThreads) * kSamples);
  EXPECT_DOUBLE_EQ(snap.min(), 1e-4);
  EXPECT_DOUBLE_EQ(snap.max(), kSamples * 1e-4);
  EXPECT_NEAR(snap.Percentile(50), 0.0125, 0.0125 * 0.07);
  EXPECT_NEAR(snap.Percentile(99), 0.02475, 0.02475 * 0.07);
}

TEST(LatencyHistogramTest, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(0.001);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace transn
