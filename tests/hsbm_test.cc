#include "data/hsbm.h"

#include <cmath>

#include <gtest/gtest.h>
#include "graph/graph_stats.h"

namespace transn {
namespace {

HsbmSpec TwoTypeSpec() {
  HsbmSpec spec;
  spec.node_types = {{"U", 200}, {"K", 50}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 800,
       .intra_community_prob = 0.9, .community_correlation = 1.0},
      {.name = "UK", .type_a = 0, .type_b = 1, .num_edges = 400,
       .intra_community_prob = 0.9, .community_correlation = 1.0,
       .weighted = true, .weight_intra_mean = 10.0, .weight_inter_mean = 2.0},
  };
  spec.num_communities = 4;
  spec.labeled_type = 0;
  spec.labeled_fraction = 0.5;
  spec.seed = 3;
  return spec;
}

TEST(HsbmTest, RespectsCounts) {
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.nodes_per_type[0].second, 200u);
  EXPECT_EQ(s.nodes_per_type[1].second, 50u);
  // Edge targets are met up to dedup collisions and the repair pass.
  EXPECT_NEAR(static_cast<double>(s.edges_per_type[0].second), 800.0, 40.0);
  EXPECT_NEAR(static_cast<double>(s.edges_per_type[1].second), 400.0, 20.0);
}

TEST(HsbmTest, NoIsolatedNodes) {
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_GT(g.degree(n), 0u) << "node " << n;
  }
}

TEST(HsbmTest, LabeledFractionHonored) {
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_labeled, 100u);
  EXPECT_EQ(s.labeled_type, "U");
  // Labels span the configured communities.
  EXPECT_LE(g.num_labels(), 4);
  EXPECT_GE(g.num_labels(), 3);
}

TEST(HsbmTest, WeightsInformative) {
  // With correlation 1 and distinct means, intra-community UK edges must be
  // heavier on average than inter-community ones. Use labels as community
  // proxies (label = community for labeled nodes)... labels only exist for
  // type U, so compare same-label-endpoint edges via homophily instead:
  // heavier edges should connect users with equal labels more often.
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  double heavy_sum = 0.0, light_sum = 0.0;
  size_t heavy_n = 0, light_n = 0;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) != 1) continue;
    (g.edge_weight(e) > 5.0 ? heavy_sum : light_sum) += 1.0;
    (g.edge_weight(e) > 5.0 ? heavy_n : light_n) += 1;
  }
  // Both heavy (intra) and light (inter) edges exist.
  EXPECT_GT(heavy_n, 0u);
  EXPECT_GT(light_n, 0u);
}

TEST(HsbmTest, UnweightedTypesHaveUnitWeights) {
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) == 0) {
      EXPECT_DOUBLE_EQ(g.edge_weight(e), 1.0);
    }
  }
}

TEST(HsbmTest, DeterministicForSeed) {
  HeteroGraph a = GenerateHsbm(TwoTypeSpec());
  HeteroGraph b = GenerateHsbm(TwoTypeSpec());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_u(e), b.edge_u(e));
    ASSERT_EQ(a.edge_v(e), b.edge_v(e));
    ASSERT_DOUBLE_EQ(a.edge_weight(e), b.edge_weight(e));
  }
}

TEST(HsbmTest, CommunityStructurePresent) {
  // Most UU edges should connect same-label users (labels are communities).
  HeteroGraph g = GenerateHsbm(TwoTypeSpec());
  size_t same = 0, total = 0;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) != 0) continue;
    int lu = g.label(g.edge_u(e));
    int lv = g.label(g.edge_v(e));
    if (lu == kUnlabeled || lv == kUnlabeled) continue;
    ++total;
    same += lu == lv;
  }
  ASSERT_GT(total, 50u);
  // 0.9 intra target vs 0.25 under independence.
  EXPECT_GT(static_cast<double>(same) / total, 0.7);
}

TEST(HsbmTest, LowCorrelationDecouplesViews) {
  HsbmSpec spec = TwoTypeSpec();
  spec.edge_types[0].community_correlation = 0.0;
  HeteroGraph g = GenerateHsbm(spec);
  size_t same = 0, total = 0;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_type(e) != 0) continue;
    int lu = g.label(g.edge_u(e));
    int lv = g.label(g.edge_v(e));
    if (lu == kUnlabeled || lv == kUnlabeled) continue;
    ++total;
    same += lu == lv;
  }
  ASSERT_GT(total, 50u);
  // With decorrelated effective communities, label homophily collapses
  // toward the 0.25 independence baseline.
  EXPECT_LT(static_cast<double>(same) / total, 0.45);
}

}  // namespace
}  // namespace transn
