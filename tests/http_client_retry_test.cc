// HttpClient transport-retry semantics against a deterministic flaky raw-TCP
// server. The retry contract: a request is retried only when it provably
// never executed — connect failure, write failure, or a reused keep-alive
// connection closed cleanly before a single response byte. The flaky server
// half-closes (shutdown(SHUT_WR)) instead of close()ing so the client always
// observes the clean-EOF stale-keep-alive signature, never a racy RST.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "net/http_client.h"
#include "util/rng.h"

namespace transn {
namespace net {
namespace {

/// Serves exactly one HTTP response per accepted connection, then half-closes
/// the socket. The parked half-closed fd stays open until Stop(), so bytes a
/// client writes into the stale connection are ACKed and the client reads a
/// clean EOF — the deterministic version of a server reaping idle keep-alives.
class FlakyServer {
 public:
  enum class Mode {
    kServeThenHalfClose,  // full response, then SHUT_WR
    kTornResponse,        // Content-Length promises more than is sent
  };

  explicit FlakyServer(Mode mode) : mode_(mode) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(listen_fd_, 0);
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(
        bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_EQ(listen(listen_fd_, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len),
        0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Loop(); });
  }

  ~FlakyServer() { Stop(); }

  void Stop() {
    if (listen_fd_ >= 0) {
      shutdown(listen_fd_, SHUT_RDWR);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (thread_.joinable()) thread_.join();
    for (int fd : parked_) close(fd);
    parked_.clear();
  }

  uint16_t port() const { return port_; }
  int accepts() const { return accepts_.load(); }

 private:
  void Loop() {
    while (true) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener closed by Stop()
      accepts_.fetch_add(1);
      std::string req;
      char buf[4096];
      while (req.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        req.append(buf, static_cast<size_t>(n));
      }
      const char full[] = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
      const char torn[] =
          "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort";
      if (mode_ == Mode::kTornResponse) {
        send(fd, torn, sizeof(torn) - 1, MSG_NOSIGNAL);
      } else {
        send(fd, full, sizeof(full) - 1, MSG_NOSIGNAL);
      }
      shutdown(fd, SHUT_WR);
      parked_.push_back(fd);  // only this thread touches parked_ until join
    }
  }

  Mode mode_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> accepts_{0};
  std::vector<int> parked_;
  std::thread thread_;
};

TEST(RetryBackoffTest, DeterministicPerSeedAndExponentialWithinClamps) {
  HttpRetryOptions opts;  // base 10 ms, max 1000 ms
  Rng a(7);
  Rng b(7);
  for (int failures = 1; failures <= 8; ++failures) {
    EXPECT_EQ(RetryBackoffMs(opts, failures, a),
              RetryBackoffMs(opts, failures, b))
        << "same seed must replay the same backoff schedule";
  }

  // Jitter scales the exponential step by [0.5, 1.0).
  Rng c(11);
  const int first = RetryBackoffMs(opts, 1, c);
  EXPECT_GE(first, 5);
  EXPECT_LT(first, 10);
  const int third = RetryBackoffMs(opts, 3, c);  // 10 * 2^2 = 40
  EXPECT_GE(third, 20);
  EXPECT_LT(third, 40);
  const int capped = RetryBackoffMs(opts, 12, c);  // clamped at 1000
  EXPECT_GE(capped, 500);
  EXPECT_LT(capped, 1000);
}

TEST(HttpClientRetryTest, StaleKeepAliveIsRetriedTransparently) {
  FlakyServer server(FlakyServer::Mode::kServeThenHalfClose);
  HttpRetryOptions retry;
  retry.base_backoff_ms = 1;
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/2'000, retry);

  // Request 1 lands on a fresh connection; requests 2 and 3 first hit the
  // half-closed keep-alive socket, read a clean EOF with zero response
  // bytes, and must retry on a fresh connection without surfacing anything.
  for (int i = 0; i < 3; ++i) {
    auto r = client.Get("/ping");
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.status().ToString();
    EXPECT_EQ(r->code, 200);
    EXPECT_EQ(r->body, "ok");
  }
  EXPECT_EQ(server.accepts(), 3) << "each request should land exactly once";
  server.Stop();
}

TEST(HttpClientRetryTest, SingleAttemptBudgetSurfacesTheRawError) {
  FlakyServer server(FlakyServer::Mode::kServeThenHalfClose);
  HttpRetryOptions retry;
  retry.max_attempts = 1;
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/2'000, retry);

  ASSERT_TRUE(client.Get("/one").ok());
  // The stale keep-alive failure is retryable, but the budget says no: the
  // pre-retry error shape (raw status, no attempt wrapper) is preserved.
  auto r = client.Get("/two");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("connection closed"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(r.status().message().find("failed after"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(server.accepts(), 1);
  server.Stop();
}

TEST(HttpClientRetryTest, TornResponseIsNeverRetried) {
  FlakyServer server(FlakyServer::Mode::kTornResponse);
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/2'000);

  // Response bytes arrived before the close, so the request may have
  // executed — surfacing immediately is the only safe behavior.
  auto r = client.Get("/torn");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("connection closed"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(server.accepts(), 1) << "a torn response must not be re-sent";
  server.Stop();
}

TEST(HttpClientRetryTest, ExhaustedBudgetNamesRequestAndAttempts) {
  // Grab an ephemeral port, then close the listener: connecting to it is a
  // deterministic ECONNREFUSED, retryable on every attempt.
  uint16_t dead_port = 0;
  {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    dead_port = ntohs(addr.sin_port);
    close(fd);
  }

  HttpRetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  HttpClient client("127.0.0.1", dead_port, /*timeout_ms=*/500, retry);
  auto r = client.Get("/unreachable");
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("GET /unreachable"), std::string::npos) << msg;
  EXPECT_NE(msg.find("failed after 3 attempt"), std::string::npos) << msg;
  EXPECT_NE(msg.find("connect"), std::string::npos) << msg;
}

}  // namespace
}  // namespace net
}  // namespace transn
