#include "net/http.h"

#include <string>

#include <gtest/gtest.h>

namespace transn {
namespace net {
namespace {

HttpRequest ParseAll(HttpParser& p, const std::string& bytes) {
  EXPECT_EQ(p.Feed(bytes.data(), bytes.size()), ParseState::kDone);
  return p.TakeRequest();
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser p;
  HttpRequest r = ParseAll(p, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/healthz");
  EXPECT_EQ(r.path, "/healthz");
  EXPECT_TRUE(r.params.empty());
  EXPECT_EQ(r.headers.at("host"), "x");
  EXPECT_TRUE(r.keep_alive);
  EXPECT_TRUE(r.body.empty());
}

TEST(HttpParserTest, DecodesQueryParameters) {
  HttpParser p;
  HttpRequest r = ParseAll(
      p, "GET /v1/knn?node=A%2F1&k=5&flag&x=a+b HTTP/1.1\r\n\r\n");
  EXPECT_EQ(r.path, "/v1/knn");
  EXPECT_EQ(r.Param("node"), "A/1");
  EXPECT_EQ(r.Param("k"), "5");
  EXPECT_EQ(r.Param("x"), "a b");
  EXPECT_EQ(r.params.count("flag"), 1u);  // valueless parameter
  EXPECT_EQ(r.Param("absent"), "");
}

TEST(HttpParserTest, MalformedPercentEscapePassesThrough) {
  EXPECT_EQ(PercentDecode("100%"), "100%");
  EXPECT_EQ(PercentDecode("%zz"), "%zz");
  EXPECT_EQ(PercentDecode("%2"), "%2");
  EXPECT_EQ(PercentDecode("a%20b"), "a b");
  EXPECT_EQ(PercentDecode(""), "");
}

TEST(HttpParserTest, IncrementalOneByteAtATime) {
  const std::string raw =
      "POST /admin/reload HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  HttpParser p;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(p.Feed(&raw[i], 1), ParseState::kNeedMore) << "byte " << i;
  }
  ASSERT_EQ(p.Feed(&raw[raw.size() - 1], 1), ParseState::kDone);
  HttpRequest r = p.TakeRequest();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "body");
  EXPECT_FALSE(p.HasBufferedBytes());
}

TEST(HttpParserTest, PipelinedRequestsParseBackToBack) {
  const std::string raw =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpParser p;
  ASSERT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kDone);
  EXPECT_EQ(p.TakeRequest().path, "/a");
  // TakeRequest reparses the buffered second request immediately.
  ASSERT_EQ(p.state(), ParseState::kDone);
  EXPECT_EQ(p.TakeRequest().path, "/b");
  EXPECT_FALSE(p.HasBufferedBytes());
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpParser p;
  HttpRequest r = ParseAll(p, "GET /x HTTP/1.1\nHost: y\n\n");
  EXPECT_EQ(r.path, "/x");
  EXPECT_EQ(r.headers.at("host"), "y");
}

TEST(HttpParserTest, ConnectionHeaderControlsKeepAlive) {
  HttpParser p;
  EXPECT_FALSE(
      ParseAll(p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_FALSE(ParseAll(p, "GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      ParseAll(p, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  HttpParser p;
  const std::string raw = "NOT-HTTP\r\n\r\n";
  EXPECT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kError);
  EXPECT_EQ(p.error_code(), 400);
  // The parser latches: further bytes cannot resurrect the stream.
  EXPECT_EQ(p.Feed("x", 1), ParseState::kError);
}

TEST(HttpParserTest, BadContentLengthIs400) {
  HttpParser p;
  const std::string raw =
      "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  EXPECT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kError);
  EXPECT_EQ(p.error_code(), 400);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpParser p;
  const std::string raw =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  EXPECT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kError);
  EXPECT_EQ(p.error_code(), 501);
}

TEST(HttpParserTest, OversizeHeaderIs413) {
  HttpParser p(/*max_request_bytes=*/64);
  std::string raw = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n";
  EXPECT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kError);
  EXPECT_EQ(p.error_code(), 413);
}

TEST(HttpParserTest, OversizeBodyIs413) {
  HttpParser p(/*max_request_bytes=*/64);
  const std::string raw =
      "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  EXPECT_EQ(p.Feed(raw.data(), raw.size()), ParseState::kError);
  EXPECT_EQ(p.error_code(), 413);
}

TEST(HttpParserTest, SerializeResponseRoundTrips) {
  const std::string out =
      SerializeHttpResponse(429, "application/json", "{}",
                            /*keep_alive=*/true, "Retry-After: 1\r\n");
  EXPECT_NE(out.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(out.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(out.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 6), "\r\n\r\n{}");
}

TEST(HttpParserTest, StatusReasons) {
  EXPECT_STREQ(HttpStatusReason(200), "OK");
  EXPECT_STREQ(HttpStatusReason(404), "Not Found");
  EXPECT_STREQ(HttpStatusReason(999), "Unknown");
}

}  // namespace
}  // namespace net
}  // namespace transn
