#include "nn/init.h"

#include <cmath>

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Matrix m = XavierUniform(30, 50, rng);
  const double bound = std::sqrt(6.0 / 80.0);
  double max_abs = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(m.data()[i]));
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, bound * 0.8);  // actually fills the range
}

TEST(InitTest, UniformRangeAndMean) {
  Rng rng(2);
  Matrix m = UniformInit(100, 100, -0.25, 0.75, rng);
  double mean = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    ASSERT_GE(m.data()[i], -0.25);
    ASSERT_LT(m.data()[i], 0.75);
    mean += m.data()[i];
  }
  EXPECT_NEAR(mean / m.size(), 0.25, 0.01);
}

TEST(InitTest, GaussianMoments) {
  Rng rng(3);
  Matrix m = GaussianInit(120, 120, 0.5, rng);
  double mean = 0.0;
  for (size_t i = 0; i < m.size(); ++i) mean += m.data()[i];
  mean /= m.size();
  double var = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    var += (m.data()[i] - mean) * (m.data()[i] - mean);
  }
  var /= m.size();
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(InitTest, DeterministicPerSeed) {
  Rng a(9), b(9);
  Matrix ma = XavierUniform(4, 4, a);
  Matrix mb = XavierUniform(4, 4, b);
  for (size_t i = 0; i < ma.size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.data()[i], mb.data()[i]);
  }
}

}  // namespace
}  // namespace transn
