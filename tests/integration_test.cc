/// End-to-end pipeline tests: synthetic dataset -> embedding methods ->
/// evaluation protocols, mirroring the bench harness at tiny scale.

#include <cmath>

#include <gtest/gtest.h>
#include "baselines/node2vec.h"
#include "core/model_io.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "eval/link_prediction.h"
#include "eval/node_classification.h"
#include "eval/tsne.h"
#include "graph/graph_io.h"

namespace transn {
namespace {

TransNConfig TinyTransN(uint64_t seed) {
  TransNConfig cfg;
  cfg.dim = 24;
  cfg.iterations = 3;
  cfg.walk.walk_length = 15;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 5;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 5;
  cfg.cross_paths_per_pair = 25;
  cfg.seed = seed;
  return cfg;
}

TEST(IntegrationTest, ClassificationPipelineBeatsChance) {
  HeteroGraph g = MakeAminerLike(0.15, 3);
  TransNModel model(&g, TinyTransN(4));
  model.Fit();
  auto res = EvaluateNodeClassification(g, model.FinalEmbeddings(),
                                        {.repeats = 3, .seed = 1});
  // 8 classes: chance micro-F1 ~ 0.125.
  EXPECT_GT(res.micro_f1, 0.4);
  EXPECT_GT(res.macro_f1, 0.3);
}

TEST(IntegrationTest, LinkPredictionPipelineBeatsChance) {
  HeteroGraph g = MakeBlogLike(0.05, 5);
  LinkPredictionTask task = MakeLinkPredictionTask(g, {.seed = 6});
  TransNModel model(&task.residual, TinyTransN(7));
  model.Fit();
  double auc = ScoreLinkPrediction(model.FinalEmbeddings(), task);
  EXPECT_GT(auc, 0.6);
}

TEST(IntegrationTest, TransNBeatsHomogeneousBaselineOnWeightedNetwork) {
  // The headline qualitative claim of Table III: on the weighted, sparse
  // App-like network the type- and weight-aware TransN outperforms the
  // homogeneous Node2Vec.
  HeteroGraph g = MakeAppDailyLike(0.08, 8);
  TransNModel model(&g, TinyTransN(9));
  model.Fit();
  auto transn_res = EvaluateNodeClassification(g, model.FinalEmbeddings(),
                                               {.repeats = 3, .seed = 2});

  Node2VecBaselineConfig n2v;
  n2v.dim = 24;
  n2v.walk = {.p = 1.0, .q = 1.0, .walk_length = 15, .walks_per_node = 4};
  n2v.window = 3;
  n2v.epochs = 2;
  n2v.seed = 10;
  auto n2v_res = EvaluateNodeClassification(g, RunNode2Vec(g, n2v),
                                            {.repeats = 3, .seed = 2});

  EXPECT_GT(transn_res.micro_f1, n2v_res.micro_f1);
}

TEST(IntegrationTest, FullCrossViewBeatsNoCrossViewOnCorrelatedViews) {
  // Table V's headline: removing the cross-view algorithm hurts most.
  HeteroGraph g = MakeBlogLike(0.04, 11);
  TransNConfig full_cfg = TinyTransN(12);
  full_cfg.iterations = 4;
  TransNModel full(&g, full_cfg);
  full.Fit();
  TransNConfig ablated_cfg = full_cfg;
  ablated_cfg.enable_cross_view = false;
  TransNModel ablated(&g, ablated_cfg);
  ablated.Fit();

  auto full_res = EvaluateNodeClassification(g, full.FinalEmbeddings(),
                                             {.repeats = 5, .seed = 3});
  auto ablated_res = EvaluateNodeClassification(g, ablated.FinalEmbeddings(),
                                                {.repeats = 5, .seed = 3});
  // Allow noise but require no collapse: full >= ablated - small epsilon.
  EXPECT_GT(full_res.micro_f1, ablated_res.micro_f1 - 0.02);
}

TEST(IntegrationTest, SaveTrainReloadRoundTrip) {
  HeteroGraph g = MakeAminerLike(0.05, 13);
  std::string graph_path = std::string(::testing::TempDir()) + "/net.tsv";
  ASSERT_TRUE(SaveGraph(g, graph_path).ok());
  auto reloaded = LoadGraph(graph_path);
  ASSERT_TRUE(reloaded.ok());

  TransNModel model(&*reloaded, TinyTransN(14));
  model.Fit();
  Matrix emb = model.FinalEmbeddings();

  std::string emb_path = std::string(::testing::TempDir()) + "/emb.tsv";
  ASSERT_TRUE(SaveEmbeddings(*reloaded, emb, emb_path).ok());
  auto loaded_emb = LoadEmbeddings(emb_path);
  ASSERT_TRUE(loaded_emb.ok());
  EXPECT_EQ(loaded_emb->embeddings.rows(), emb.rows());
  std::remove(graph_path.c_str());
  std::remove(emb_path.c_str());
}

TEST(IntegrationTest, TsneOnLearnedEmbeddings) {
  // Figure-6 pipeline at tiny scale: embeddings -> t-SNE -> silhouette.
  HeteroGraph g = MakeAppDailyLike(0.05, 15);
  TransNModel model(&g, TinyTransN(16));
  model.Fit();
  Matrix emb = model.FinalEmbeddings();

  std::vector<NodeId> labeled = g.LabeledNodes();
  const size_t take = std::min<size_t>(labeled.size(), 60);
  Matrix features(take, emb.cols());
  std::vector<int> labels(take);
  for (size_t i = 0; i < take; ++i) {
    const double* src = emb.Row(labeled[i]);
    std::copy(src, src + emb.cols(), features.Row(i));
    labels[i] = g.label(labeled[i]);
  }
  Matrix projected = Tsne(features, {.perplexity = 8.0, .iterations = 200});
  EXPECT_EQ(projected.rows(), take);
  EXPECT_EQ(projected.cols(), 2u);
  for (size_t i = 0; i < projected.size(); ++i) {
    ASSERT_TRUE(std::isfinite(projected.data()[i]));
  }
}

}  // namespace
}  // namespace transn
