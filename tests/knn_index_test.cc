#include "serve/knn_index.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "data/hsbm.h"
#include "nn/init.h"
#include "util/rng.h"

namespace transn {
namespace {

/// O(n·d) reference: score every row, full sort by (score desc, row asc).
std::vector<KnnResult> NaiveTopK(const Matrix& base, const double* query,
                                 size_t k, KnnMetric metric) {
  std::vector<KnnResult> all(base.rows());
  double qq = 0.0;
  for (size_t c = 0; c < base.cols(); ++c) qq += query[c] * query[c];
  const double q_norm = std::sqrt(qq);
  for (size_t r = 0; r < base.rows(); ++r) {
    double s = 0.0;
    for (size_t c = 0; c < base.cols(); ++c) s += base(r, c) * query[c];
    if (metric == KnnMetric::kCosine) {
      double rr = 0.0;
      for (size_t c = 0; c < base.cols(); ++c) rr += base(r, c) * base(r, c);
      const double r_norm = std::sqrt(rr);
      s = (r_norm > 0.0 && q_norm > 0.0) ? s / (r_norm * q_norm) : 0.0;
    }
    all[r] = {static_cast<uint32_t>(r), s};
  }
  std::sort(all.begin(), all.end(), [](const KnnResult& a, const KnnResult& b) {
    return a.score != b.score ? a.score > b.score : a.row < b.row;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Embeddings with HSBM community structure: a small heterogeneous block
/// model trained for one TransN iteration (the satellite's "HSBM
/// embeddings" workload for the recall bound).
Matrix HsbmEmbeddings(size_t* out_rows) {
  HsbmSpec spec;
  spec.node_types = {{"user", 220}, {"item", 120}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 900},
      {.name = "UI", .type_a = 0, .type_b = 1, .num_edges = 700},
  };
  spec.num_communities = 4;
  spec.seed = 11;
  HeteroGraph g = GenerateHsbm(spec);

  TransNConfig cfg;
  cfg.dim = 16;
  cfg.iterations = 1;
  cfg.walk.walk_length = 10;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 4;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 20;
  cfg.seed = 3;
  TransNModel model(&g, cfg);
  model.Fit();
  *out_rows = g.num_nodes();
  return model.FinalEmbeddings();
}

TEST(KnnIndexTest, ExactScanMatchesNaiveReference) {
  Rng rng(7);
  Matrix base = GaussianInit(257, 24, 1.0, rng);
  for (KnnMetric metric : {KnnMetric::kCosine, KnnMetric::kDot}) {
    KnnIndex index(&base, {.metric = metric});
    for (int q = 0; q < 20; ++q) {
      Matrix query = GaussianInit(1, 24, 1.0, rng);
      for (size_t k : {1ul, 5ul, 17ul}) {
        std::vector<KnnResult> got = index.Search(query.Row(0), k);
        std::vector<KnnResult> want = NaiveTopK(base, query.Row(0), k, metric);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].row, want[i].row) << "k=" << k << " i=" << i;
          EXPECT_NEAR(got[i].score, want[i].score, 1e-12);
        }
      }
    }
  }
}

TEST(KnnIndexTest, DuplicateRowsBreakTiesByRowId) {
  Matrix base(6, 3);
  for (size_t r = 0; r < 6; ++r) {
    base(r, 0) = 1.0;  // rows 0..5 identical: scores all tie
  }
  KnnIndex index(&base, {.metric = KnnMetric::kCosine});
  const double query[3] = {1.0, 0.0, 0.0};
  std::vector<KnnResult> got = index.Search(query, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].row, 0u);
  EXPECT_EQ(got[1].row, 1u);
  EXPECT_EQ(got[2].row, 2u);
}

TEST(KnnIndexTest, KLargerThanRowsReturnsAllRows) {
  Rng rng(3);
  Matrix base = GaussianInit(5, 4, 1.0, rng);
  KnnIndex index(&base, {});
  Matrix query = GaussianInit(1, 4, 1.0, rng);
  EXPECT_EQ(index.Search(query.Row(0), 50).size(), 5u);
  EXPECT_TRUE(index.Search(query.Row(0), 0).empty());
}

TEST(KnnIndexTest, ZeroQueryIsDeterministicUnderCosine) {
  Rng rng(9);
  Matrix base = GaussianInit(40, 8, 1.0, rng);
  KnnIndex index(&base, {.metric = KnnMetric::kCosine});
  std::vector<double> zeros(8, 0.0);
  std::vector<KnnResult> got = index.Search(zeros.data(), 4);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].row, i);  // all scores 0 → ascending row ids
    EXPECT_EQ(got[i].score, 0.0);
  }
}

TEST(KnnIndexTest, ShardedScanIdenticalToSequential) {
  Rng rng(13);
  // > kMinRowsPerShard per shard so the pool path actually engages.
  Matrix base = GaussianInit(9000, 12, 1.0, rng);
  KnnIndex index(&base, {.metric = KnnMetric::kCosine});
  ThreadPool pool(4);
  for (int q = 0; q < 10; ++q) {
    Matrix query = GaussianInit(1, 12, 1.0, rng);
    std::vector<KnnResult> seq = index.Search(query.Row(0), 10, nullptr);
    std::vector<KnnResult> par = index.Search(query.Row(0), 10, &pool);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].row, par[i].row);
      EXPECT_EQ(seq[i].score, par[i].score);  // bit-identical
    }
  }
}

TEST(KnnIndexTest, QuantizedRecallOnHsbmEmbeddings) {
  size_t rows = 0;
  Matrix base = HsbmEmbeddings(&rows);
  ASSERT_GT(rows, 200u);

  KnnIndexOptions opts;
  opts.metric = KnnMetric::kCosine;
  opts.num_centroids = 16;
  opts.seed = 21;
  KnnIndex index(&base, opts);
  ASSERT_EQ(index.num_centroids(), 16u);

  const size_t k = 10;
  const size_t nprobe = 8;
  size_t hit = 0, total = 0;
  for (size_t q = 0; q < rows; q += 7) {  // ~50 spread-out query nodes
    std::vector<KnnResult> exact = index.Search(base.Row(q), k);
    std::vector<KnnResult> approx = index.SearchQuantized(base.Row(q), k,
                                                          nprobe);
    std::set<uint32_t> truth;
    for (const KnnResult& r : exact) truth.insert(r.row);
    for (const KnnResult& r : approx) hit += truth.count(r.row);
    total += exact.size();
  }
  const double recall = static_cast<double>(hit) / static_cast<double>(total);
  EXPECT_GE(recall, 0.95) << "top-" << k << " recall over " << total / k
                          << " queries";
}

TEST(KnnIndexTest, QuantizedWithAllCellsProbedEqualsExact) {
  Rng rng(31);
  Matrix base = GaussianInit(300, 10, 1.0, rng);
  KnnIndexOptions opts;
  opts.num_centroids = 10;
  KnnIndex index(&base, opts);
  for (int q = 0; q < 10; ++q) {
    Matrix query = GaussianInit(1, 10, 1.0, rng);
    std::vector<KnnResult> exact = index.Search(query.Row(0), 7);
    std::vector<KnnResult> all_cells =
        index.SearchQuantized(query.Row(0), 7, /*nprobe=*/0);
    ASSERT_EQ(exact.size(), all_cells.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact[i].row, all_cells[i].row);
      EXPECT_EQ(exact[i].score, all_cells[i].score);
    }
  }
}

TEST(KnnIndexTest, QuantizerCellsPartitionTheRows) {
  Rng rng(17);
  Matrix base = GaussianInit(200, 6, 1.0, rng);
  KnnIndexOptions opts;
  opts.num_centroids = 8;
  KnnIndex index(&base, opts);
  std::set<uint32_t> seen;
  for (const auto& cell : index.cells()) {
    for (uint32_t r : cell) {
      EXPECT_TRUE(seen.insert(r).second) << "row in two cells";
    }
  }
  EXPECT_EQ(seen.size(), base.rows());
}

TEST(KnnIndexTest, QuantizerBuildDeterministicAcrossPools) {
  Rng rng(23);
  Matrix base = GaussianInit(5000, 8, 1.0, rng);
  KnnIndexOptions opts;
  opts.num_centroids = 12;
  ThreadPool pool(4);
  KnnIndex serial(&base, opts, nullptr);
  KnnIndex parallel(&base, opts, &pool);
  ASSERT_EQ(serial.cells().size(), parallel.cells().size());
  for (size_t c = 0; c < serial.cells().size(); ++c) {
    EXPECT_EQ(serial.cells()[c], parallel.cells()[c]);
  }
}

}  // namespace
}  // namespace transn
