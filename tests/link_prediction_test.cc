#include "eval/link_prediction.h"

#include <gtest/gtest.h>
#include "data/datasets.h"
#include "nn/init.h"
#include "test_graphs.h"

namespace transn {
namespace {

TEST(LinkPredictionTest, RemovesRequestedFraction) {
  HeteroGraph g = MakeAminerLike(0.1, 1);
  LinkPredictionTask task =
      MakeLinkPredictionTask(g, {.removal_fraction = 0.4, .seed = 2});
  EXPECT_NEAR(static_cast<double>(task.positives.size()),
              0.4 * static_cast<double>(g.num_edges()),
              0.02 * g.num_edges() + 4.0);
  EXPECT_EQ(task.residual.num_edges() + task.positives.size(), g.num_edges());
  EXPECT_EQ(task.negatives.size(), task.positives.size());
}

TEST(LinkPredictionTest, ResidualKeepsAllNodesAndIds) {
  HeteroGraph g = TwoCommunityNetwork(20, 3);
  LinkPredictionTask task = MakeLinkPredictionTask(g, {});
  ASSERT_EQ(task.residual.num_nodes(), g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(task.residual.node_type(n), g.node_type(n));
    EXPECT_EQ(task.residual.label(n), g.label(n));
  }
}

TEST(LinkPredictionTest, EveryEdgeTypeRetainsAnEdge) {
  HeteroGraph g = Fig2aAcademicNetwork();
  // Aggressive removal on a tiny graph.
  LinkPredictionTask task =
      MakeLinkPredictionTask(g, {.removal_fraction = 0.8, .seed = 4});
  std::vector<size_t> per_type(g.num_edge_types(), 0);
  for (size_t e = 0; e < task.residual.num_edges(); ++e) {
    ++per_type[task.residual.edge_type(e)];
  }
  for (size_t c : per_type) EXPECT_GE(c, 1u);
}

TEST(LinkPredictionTest, NegativesAreNonAdjacent) {
  HeteroGraph g = TwoCommunityNetwork(20, 5);
  LinkPredictionTask task = MakeLinkPredictionTask(g, {.seed = 6});
  for (const auto& [u, v] : task.negatives) {
    EXPECT_NE(u, v);
    EXPECT_FALSE(g.HasEdge(u, v));
  }
}

TEST(LinkPredictionTest, TypeMatchedNegativesMatchPositiveTypes) {
  HeteroGraph g = MakeAminerLike(0.1, 7);
  LinkPredictionTask task =
      MakeLinkPredictionTask(g, {.type_matched_negatives = true, .seed = 8});
  ASSERT_EQ(task.positives.size(), task.negatives.size());
  for (size_t i = 0; i < task.positives.size(); ++i) {
    auto [pu, pv] = task.positives[i];
    auto [nu, nv] = task.negatives[i];
    EXPECT_EQ(g.node_type(nu), g.node_type(pu));
    EXPECT_EQ(g.node_type(nv), g.node_type(pv));
  }
}

TEST(LinkPredictionTest, AdjacencyOracleScoresPerfectly) {
  // An "embedding" that encodes adjacency directly: score(u,v) = 1 iff the
  // pair was a positive. Build it via indicator features per positive pair.
  HeteroGraph g = TwoCommunityNetwork(10, 9);
  LinkPredictionTask task = MakeLinkPredictionTask(g, {.seed = 10});
  const size_t d = task.positives.size();
  Matrix emb(g.num_nodes(), d, 0.0);
  for (size_t i = 0; i < task.positives.size(); ++i) {
    emb(task.positives[i].first, i) = 1.0;
    emb(task.positives[i].second, i) = 1.0;
  }
  // Some negative pair could accidentally share a coordinate only if one
  // node appears in two positives AND pairs with the other's positive — the
  // score is then >= 1 too; allow a tiny slack.
  EXPECT_GT(ScoreLinkPrediction(emb, task), 0.95);
}

TEST(LinkPredictionTest, RandomEmbeddingScoresNearHalf) {
  HeteroGraph g = MakeBlogLike(0.05, 11);
  LinkPredictionTask task = MakeLinkPredictionTask(g, {.seed = 12});
  Rng rng(13);
  Matrix emb = GaussianInit(g.num_nodes(), 16, 1.0, rng);
  double auc = ScoreLinkPrediction(emb, task);
  EXPECT_GT(auc, 0.4);
  EXPECT_LT(auc, 0.6);
}

TEST(LinkPredictionTest, DeterministicForSeed) {
  HeteroGraph g = TwoCommunityNetwork(15, 14);
  LinkPredictionTask a = MakeLinkPredictionTask(g, {.seed = 20});
  LinkPredictionTask b = MakeLinkPredictionTask(g, {.seed = 20});
  EXPECT_EQ(a.positives, b.positives);
  EXPECT_EQ(a.negatives, b.negatives);
}

}  // namespace
}  // namespace transn
