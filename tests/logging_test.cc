#include "util/logging.h"

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CHECK(true) << "never printed";
  CHECK_EQ(1, 1);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(3, 2);
  CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(CHECK(false) << "context 42", "Check failed: false.*context 42");
}

TEST(LoggingDeathTest, CheckEqPrintsBothValues) {
  int a = 3, b = 7;
  EXPECT_DEATH(CHECK_EQ(a, b), "3 vs 7");
}

TEST(LoggingDeathTest, LogFatalAborts) {
  EXPECT_DEATH(LOG(FATAL) << "boom", "boom");
}

TEST(LoggingTest, MinSeverityFiltersInfo) {
  LogSeverity prev = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  LOG(INFO) << "suppressed";  // must not crash
  SetMinLogSeverity(prev);
}

TEST(LoggingTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  DCHECK(false);  // compiled out
#else
  EXPECT_DEATH(DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace transn
