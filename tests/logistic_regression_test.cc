#include "eval/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>
#include "eval/metrics.h"
#include "util/rng.h"

namespace transn {
namespace {

/// Gaussian blobs around per-class centers.
void MakeBlobs(int classes, int per_class, double spread, uint64_t seed,
               Matrix* x, std::vector<int>* y) {
  Rng rng(seed);
  x->Resize(static_cast<size_t>(classes * per_class), 2);
  y->clear();
  for (int k = 0; k < classes; ++k) {
    const double cx = 4.0 * std::cos(2 * M_PI * k / classes);
    const double cy = 4.0 * std::sin(2 * M_PI * k / classes);
    for (int i = 0; i < per_class; ++i) {
      const size_t row = static_cast<size_t>(k * per_class + i);
      (*x)(row, 0) = cx + spread * rng.NextGaussian();
      (*x)(row, 1) = cy + spread * rng.NextGaussian();
      y->push_back(k);
    }
  }
}

TEST(LogisticRegressionTest, SeparableBinaryIsLearned) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(2, 50, 0.3, 1, &x, &y);
  LogisticRegression clf;
  clf.Fit(x, y, 2);
  EXPECT_DOUBLE_EQ(Accuracy(y, clf.Predict(x)), 1.0);
}

TEST(LogisticRegressionTest, MulticlassBlobs) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(4, 60, 0.5, 2, &x, &y);
  LogisticRegression clf;
  clf.Fit(x, y, 4);
  EXPECT_GT(Accuracy(y, clf.Predict(x)), 0.97);
}

TEST(LogisticRegressionTest, ProbabilitiesAreDistributions) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(3, 30, 0.6, 3, &x, &y);
  LogisticRegression clf;
  clf.Fit(x, y, 3);
  Matrix p = clf.PredictProba(x);
  for (size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < p.cols(); ++c) {
      EXPECT_GE(p(r, c), 0.0);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LogisticRegressionTest, BiasSolvesShiftedClasses) {
  // Identical x distribution shifted only through the intercept: feature is
  // constant 0; classes differ only by prior. With a bias term the model
  // must predict the majority class.
  Matrix x(10, 1, 0.0);
  std::vector<int> y = {0, 0, 0, 0, 0, 0, 0, 1, 1, 1};
  LogisticRegression clf;
  clf.Fit(x, y, 2);
  std::vector<int> pred = clf.Predict(x);
  for (int p : pred) EXPECT_EQ(p, 0);
}

TEST(LogisticRegressionTest, StrongL2ShrinksConfidence) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(2, 40, 0.3, 4, &x, &y);
  LogisticRegression weak({.l2 = 1e-6});
  LogisticRegression strong({.l2 = 10.0});
  weak.Fit(x, y, 2);
  strong.Fit(x, y, 2);
  // Mean max-probability is lower under heavy regularization.
  auto mean_conf = [&](LogisticRegression& clf) {
    Matrix p = clf.PredictProba(x);
    double acc = 0.0;
    for (size_t r = 0; r < p.rows(); ++r) {
      acc += std::max(p(r, 0), p(r, 1));
    }
    return acc / p.rows();
  };
  EXPECT_GT(mean_conf(weak), mean_conf(strong) + 0.05);
}

TEST(LogisticRegressionTest, DeterministicFit) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(3, 20, 0.5, 5, &x, &y);
  LogisticRegression a, b;
  a.Fit(x, y, 3);
  b.Fit(x, y, 3);
  EXPECT_DOUBLE_EQ(a.final_loss(), b.final_loss());
}

TEST(LogisticRegressionDeathTest, PredictBeforeFitAborts) {
  LogisticRegression clf;
  Matrix x(1, 2, 0.0);
  EXPECT_DEATH(clf.Predict(x), "Fit");
}

TEST(LogisticRegressionDeathTest, LabelOutOfRangeAborts) {
  Matrix x(2, 1, 0.0);
  LogisticRegression clf;
  EXPECT_DEATH(clf.Fit(x, {0, 5}, 2), "Check failed");
}

}  // namespace
}  // namespace transn
