#include "nn/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace transn {
namespace {

Matrix A23() { return Matrix::FromRows({{1, 2, 3}, {4, 5, 6}}); }
Matrix B32() { return Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}}); }

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(m.Row(0)[1], -2.0);
}

TEST(MatrixTest, MatMulMatchesHandComputed) {
  Matrix c = MatMul(A23(), B32());
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulVariantsAgree) {
  Rng rng(5);
  Matrix a(4, 6), b(6, 3);
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.NextGaussian();
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.NextGaussian();

  Matrix ab = MatMul(a, b);
  Matrix ab_nt = MatMulNT(a, Transpose(b));
  Matrix ab_tn = MatMulTN(Transpose(a), b);
  for (size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(ab.data()[i], ab_nt.data()[i], 1e-12);
    EXPECT_NEAR(ab.data()[i], ab_tn.data()[i], 1e-12);
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a = A23();
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  Matrix tt = Transpose(t);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], tt.data()[i]);
  }
}

TEST(MatrixTest, RowSoftmaxRowsSumToOne) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {1000, 1001, 999}});
  Matrix s = RowSoftmax(a);
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(s(r, c), 0.0);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Large inputs did not overflow.
  EXPECT_TRUE(std::isfinite(s(1, 0)));
  // Monotone in the logits.
  EXPECT_GT(s(0, 2), s(0, 1));
  EXPECT_GT(s(0, 1), s(0, 0));
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  Matrix sum = Add(a, b);
  EXPECT_DOUBLE_EQ(sum(1, 1), 44);
  Matrix diff = Sub(b, a);
  EXPECT_DOUBLE_EQ(diff(0, 0), 9);
  Matrix prod = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(prod(1, 0), 90);
  Matrix scaled = Scale(a, -2.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), -4);
  EXPECT_DOUBLE_EQ(SumAll(a), 10);
}

TEST(MatrixTest, NormsAndDebugString) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
  EXPECT_NE(a.DebugString().find("1x2"), std::string::npos);
}

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(MatMul(a, b), "Check failed");
  Matrix c(3, 2);
  EXPECT_DEATH(Add(a, c), "Check failed");
}

TEST(SparseMatTest, MultiplyMatchesDense) {
  // 3x4 sparse with a duplicate entry that must be summed.
  std::vector<std::tuple<size_t, size_t, double>> trip = {
      {0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}, {2, 3, -1.0}};
  SparseMat s(3, 4, trip);
  EXPECT_EQ(s.nnz(), 3u);  // duplicates merged

  Matrix dense(3, 4, 0.0);
  dense(0, 1) = 5.0;
  dense(1, 0) = 1.0;
  dense(2, 3) = -1.0;

  Rng rng(3);
  Matrix x(4, 2);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.NextGaussian();

  Matrix got = s.Multiply(x);
  Matrix want = MatMul(dense, x);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-12);
  }
}

TEST(SparseMatTest, TransposedMatchesDenseTranspose) {
  std::vector<std::tuple<size_t, size_t, double>> trip = {
      {0, 2, 1.5}, {1, 0, -2.0}};
  SparseMat s(2, 3, trip);
  SparseMat st = s.Transposed();
  EXPECT_EQ(st.rows(), 3u);
  EXPECT_EQ(st.cols(), 2u);

  Matrix x(2, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  Matrix got = st.Multiply(x);
  EXPECT_DOUBLE_EQ(got(0, 0), -4.0);
  EXPECT_DOUBLE_EQ(got(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(got(2, 0), 1.5);
}

TEST(SparseMatTest, ScaleValues) {
  SparseMat s(1, 1, {{0, 0, 2.0}});
  s.ScaleValues(0.5);
  Matrix x(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(s.Multiply(x)(0, 0), 3.0);
}

}  // namespace
}  // namespace transn
