#include "walk/metapath_walk.h"

#include <gtest/gtest.h>
#include "test_graphs.h"

namespace transn {
namespace {

TEST(MetapathWalkTest, FollowsPatternTypes) {
  HeteroGraph g = Fig2aAcademicNetwork();
  // A-P-A cyclic meta-path (Author=0, Paper=1).
  MetapathWalker walker(&g, {.pattern = {0, 1, 0}, .walk_length = 11});
  Rng rng(1);
  auto walk = walker.Walk(0, rng);
  ASSERT_GE(walk.size(), 2u);
  for (size_t k = 0; k < walk.size(); ++k) {
    EXPECT_EQ(g.node_type(walk[k]), k % 2 == 0 ? 0u : 1u) << "position " << k;
  }
  for (size_t k = 0; k + 1 < walk.size(); ++k) {
    EXPECT_TRUE(g.HasEdge(walk[k], walk[k + 1]));
  }
}

TEST(MetapathWalkTest, StopsWhenNoTypedNeighbor) {
  // A2 has only paper neighbors; pattern A-U-A can't move from A2.
  HeteroGraph g = Fig2aAcademicNetwork();
  MetapathWalker walker(&g, {.pattern = {0, 2, 0}, .walk_length = 9});
  Rng rng(2);
  auto walk = walker.Walk(1, rng);  // A2
  EXPECT_EQ(walk.size(), 1u);
}

TEST(MetapathWalkTest, LongerCycleWraps) {
  HeteroGraph g = Fig2aAcademicNetwork();
  // A-P-P-A style pattern is not cyclic per-position here; use A-P-A wrap
  // already covered. Test the APVPA-analogue on a graph that supports it:
  // A-U-A (author-university-author) starting at A1.
  MetapathWalker walker(&g, {.pattern = {0, 2, 0}, .walk_length = 7});
  Rng rng(3);
  auto walk = walker.Walk(0, rng);  // A1 - U1 - {A1,A3} - U1 ...
  EXPECT_EQ(walk.size(), 7u);
  for (size_t k = 0; k < walk.size(); ++k) {
    EXPECT_EQ(g.node_type(walk[k]), k % 2 == 0 ? 0u : 2u);
  }
}

TEST(MetapathWalkTest, CorpusStartsOnlyAtFirstType) {
  HeteroGraph g = Fig2aAcademicNetwork();
  MetapathWalker walker(
      &g, {.pattern = {1, 0, 1}, .walk_length = 5, .walks_per_node = 2});
  Rng rng(4);
  auto corpus = walker.SampleCorpus(rng);
  EXPECT_EQ(corpus.size(), 4u);  // 2 papers x 2 walks
  for (const auto& walk : corpus) {
    EXPECT_EQ(g.node_type(walk[0]), 1u);
  }
}

TEST(MetapathWalkDeathTest, RejectsNonCyclicPattern) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_DEATH(MetapathWalker(&g, {.pattern = {0, 1}, .walk_length = 5}),
               "cyclic");
}

TEST(MetapathWalkDeathTest, RejectsUnknownType) {
  HeteroGraph g = Fig2aAcademicNetwork();
  EXPECT_DEATH(MetapathWalker(&g, {.pattern = {0, 9, 0}, .walk_length = 5}),
               "Check failed");
}

}  // namespace
}  // namespace transn
