#include "obs/metrics.h"

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace transn {
namespace obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.ops_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Schedule([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, DeltaIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.bytes_total");
  counter->Increment(5);
  counter->Increment();
  counter->Increment(100);
  EXPECT_EQ(counter->Value(), 106u);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.loss_value");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(1.5);
  gauge->Set(-2.25);
  EXPECT_EQ(gauge->Value(), -2.25);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Schedule([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record(1e-4 * static_cast<double>(t + 1));
      }
    });
  }
  pool.Wait();
  LatencyHistogram merged = hist->Snapshot();
  EXPECT_EQ(merged.count(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_GT(merged.mean(), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.same_total", "ops", "first wins");
  Counter* b = registry.GetCounter("test.same_total", "ignored", "ignored");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.other_total"), a);

  std::vector<MetricInfo> metrics = registry.Metrics();
  ASSERT_EQ(metrics.size(), 2u);
  // Name-sorted; first registration's metadata is kept.
  EXPECT_EQ(metrics[0].name, "test.other_total");
  EXPECT_EQ(metrics[1].name, "test.same_total");
  EXPECT_EQ(metrics[1].unit, "ops");
  EXPECT_EQ(metrics[1].help, "first wins");
}

TEST(MetricsRegistryTest, TypeMismatchDies) {
  MetricsRegistry registry;
  registry.GetCounter("test.mismatch");
  EXPECT_DEATH(registry.GetGauge("test.mismatch"), "already registered");
}

TEST(MetricsRegistryTest, LabeledNameFormat) {
  EXPECT_EQ(LabeledName("train.pairs_total", "view", "UU"),
            "train.pairs_total{view=UU}");
}

TEST(MetricsRegistryTest, JsonExportContainsAllMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("test.ops_total", "ops")->Increment(3);
  registry.GetGauge("test.loss_value")->Set(1.5);
  registry.GetHistogram("test.latency_seconds")->Record(0.25);

  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(Contains(json, "\"metrics\"")) << json;
  EXPECT_TRUE(Contains(json, "\"test.ops_total\"")) << json;
  EXPECT_TRUE(Contains(json, "\"value\":3")) << json;
  EXPECT_TRUE(Contains(json, "\"test.loss_value\"")) << json;
  EXPECT_TRUE(Contains(json, "\"test.latency_seconds\"")) << json;
  EXPECT_TRUE(Contains(json, "\"count\":1")) << json;
  EXPECT_TRUE(Contains(json, "\"p99\"")) << json;
}

TEST(MetricsRegistryTest, PrometheusExportManglesNamesAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("train.pairs_total")->Increment(7);
  registry.GetCounter(LabeledName("train.pairs_total", "view", "UU"))
      ->Increment(4);
  registry.GetHistogram("serve.request_latency_seconds")->Record(0.001);

  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_TRUE(Contains(text, "# TYPE transn_train_pairs_total counter"))
      << text;
  EXPECT_TRUE(Contains(text, "transn_train_pairs_total 7")) << text;
  EXPECT_TRUE(Contains(text, "transn_train_pairs_total{view=\"UU\"} 4"))
      << text;
  EXPECT_TRUE(
      Contains(text, "transn_serve_request_latency_seconds{quantile=\"0.99\"}"))
      << text;
  EXPECT_TRUE(Contains(text, "transn_serve_request_latency_seconds_count 1"))
      << text;
}

// Scrapes must be safe while writers are mid-flight (the TSan CI job runs
// this test): the exact totals observed are unconstrained, but there must be
// no data race and the final scrape sees everything.
TEST(MetricsRegistryTest, ScrapeDuringWriteIsRaceFree) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.ops_total");
  Histogram* hist = registry.GetHistogram("test.latency_seconds");
  constexpr int kWriters = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::ostringstream os;
      registry.WriteJson(os);
      registry.WritePrometheus(os);
      EXPECT_FALSE(os.str().empty());
    }
  });
  {
    ThreadPool pool(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      pool.Schedule([&] {
        for (int i = 0; i < kPerThread; ++i) {
          counter->Increment();
          hist->Record(1e-5);
        }
      });
    }
    pool.Wait();
  }
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(hist->Snapshot().count(),
            static_cast<size_t>(kWriters) * kPerThread);
}

// Registration while another thread registers different names must also be
// race-free (both take the registry mutex).
TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Schedule([&registry, t] {
      for (int i = 0; i < 100; ++i) {
        registry
            .GetCounter("test.shared_total")  // same name from all threads
            ->Increment();
        registry.GetGauge(LabeledName("test.gauge_value", "thread",
                                      std::to_string(t)));
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("test.shared_total")->Value(), 400u);
  EXPECT_EQ(registry.Metrics().size(), 5u);
}

TEST(ObservabilityJsonTest, CombinedDumpHasSchemaMetricsAndSpans) {
  MetricsRegistry registry;
  TraceCollector traces;
  registry.GetCounter("test.ops_total")->Increment();
  { TraceSpan span("unit_test", &traces); }

  std::ostringstream os;
  WriteObservabilityJson(registry, traces, os);
  const std::string json = os.str();
  EXPECT_TRUE(Contains(json, "\"schema\":\"transn-obs-v1\"")) << json;
  EXPECT_TRUE(Contains(json, "\"metrics\"")) << json;
  EXPECT_TRUE(Contains(json, "\"spans\"")) << json;
  EXPECT_TRUE(Contains(json, "\"test.ops_total\"")) << json;
  EXPECT_TRUE(Contains(json, "\"unit_test\"")) << json;
}

}  // namespace
}  // namespace obs
}  // namespace transn
