#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(F1Test, PerfectPrediction) {
  std::vector<int> y = {0, 1, 2, 1, 0};
  EXPECT_DOUBLE_EQ(MicroF1(y, y, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(y, y, 3), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(y, y), 1.0);
}

TEST(F1Test, HandComputedExample) {
  // true:  0 0 1 1 1 2
  // pred:  0 1 1 1 2 2
  // class0: tp=1 fp=0 fn=1 -> f1 = 2/3
  // class1: tp=2 fp=1 fn=1 -> f1 = 2*2/(4+2) = 2/3
  // class2: tp=1 fp=1 fn=0 -> f1 = 2/3
  std::vector<int> yt = {0, 0, 1, 1, 1, 2};
  std::vector<int> yp = {0, 1, 1, 1, 2, 2};
  EXPECT_NEAR(MacroF1(yt, yp, 3), 2.0 / 3.0, 1e-12);
  // micro: tp=4, fp=2, fn=2 -> 8/12
  EXPECT_NEAR(MicroF1(yt, yp, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Accuracy(yt, yp), 4.0 / 6.0, 1e-12);
}

TEST(F1Test, MicroEqualsAccuracyForSingleLabel) {
  std::vector<int> yt = {0, 1, 2, 3, 0, 1, 2, 3};
  std::vector<int> yp = {0, 1, 1, 3, 2, 1, 0, 3};
  EXPECT_NEAR(MicroF1(yt, yp, 4), Accuracy(yt, yp), 1e-12);
}

TEST(F1Test, AbsentClassContributesZeroToMacro) {
  // Class 2 never appears: its F1 is 0 in the macro average.
  std::vector<int> yt = {0, 1};
  std::vector<int> yp = {0, 1};
  EXPECT_NEAR(MacroF1(yt, yp, 3), 2.0 / 3.0, 1e-12);
}

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8, 0.2, 0.1}, {true, true, false, false}),
                   1.0);
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.2, 0.8, 0.9}, {true, true, false, false}),
                   0.0);
}

TEST(AucTest, RandomScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5, 0.5, 0.5}, {true, false, true, false}),
                   0.5);
}

TEST(AucTest, HandComputedWithTies) {
  // scores: pos {3, 1}, neg {2, 1}. Pairs: (3,2)=1, (3,1)=1, (1,2)=0,
  // (1,1)=0.5 -> AUC = 2.5/4.
  EXPECT_DOUBLE_EQ(Auc({3, 1, 2, 1}, {true, true, false, false}), 0.625);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(Auc({1.0, 2.0}, {true, true}), 0.5);
}

TEST(SilhouetteTest, WellSeparatedClustersScoreHigh) {
  Matrix pts = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}});
  double s = SilhouetteScore(pts, {0, 0, 0, 1, 1, 1});
  EXPECT_GT(s, 0.95);
}

TEST(SilhouetteTest, InterleavedClustersScoreLow) {
  Matrix pts = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  double s = SilhouetteScore(pts, {0, 1, 0, 1});
  EXPECT_LT(s, 0.1);
}

TEST(SilhouetteTest, DegenerateInputs) {
  Matrix one_cluster = Matrix::FromRows({{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(SilhouetteScore(one_cluster, {0, 0}), 0.0);
  Matrix single(1, 2, 0.0);
  EXPECT_DOUBLE_EQ(SilhouetteScore(single, {0}), 0.0);
}

TEST(MetricsDeathTest, MismatchedSizesAbort) {
  EXPECT_DEATH(MicroF1({0, 1}, {0}, 2), "Check failed");
  EXPECT_DEATH(Auc({1.0}, {true, false}), "Check failed");
}

TEST(MetricsDeathTest, OutOfRangeLabelAborts) {
  EXPECT_DEATH(MicroF1({0, 5}, {0, 1}, 2), "Check failed");
}

}  // namespace
}  // namespace transn
