#include "core/model_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "nn/init.h"
#include "test_graphs.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelIoTest, RoundTripIsBitExact) {
  HeteroGraph g = Fig2aAcademicNetwork();
  Rng rng(1);
  Matrix emb = GaussianInit(g.num_nodes(), 8, 1.0, rng);
  std::string path = TempPath("emb.tsv");
  ASSERT_TRUE(SaveEmbeddings(g, emb, path).ok());

  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->embeddings.rows(), g.num_nodes());
  ASSERT_EQ(loaded->embeddings.cols(), 8u);
  EXPECT_EQ(loaded->names[0], "A1");
  // max_digits10 text output round-trips every double exactly.
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_EQ(loaded->embeddings.data()[i], emb.data()[i]) << "index " << i;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, RoundTripPreservesExtremeValues) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("T");
  b.AddNode(t, "x");
  b.AddNode(t, "y");
  HeteroGraph g = b.Build();
  Matrix emb(2, 3);
  emb(0, 0) = 1.0 / 3.0;                                   // repeating binary
  emb(0, 1) = std::numeric_limits<double>::min();          // smallest normal
  emb(0, 2) = -std::numeric_limits<double>::max();
  emb(1, 0) = 0.1 + 0.2;                                   // 0.30000000000000004
  emb(1, 1) = -0.0;
  emb(1, 2) = std::numeric_limits<double>::epsilon();
  std::string path = TempPath("emb_extreme.tsv");
  ASSERT_TRUE(SaveEmbeddings(g, emb, path).ok());
  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_EQ(loaded->embeddings.data()[i], emb.data()[i]) << "index " << i;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, RowCountMismatchRejected) {
  HeteroGraph g = Fig2aAcademicNetwork();
  Matrix emb(2, 4, 0.0);
  EXPECT_EQ(SaveEmbeddings(g, emb, TempPath("x.tsv")).code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, MalformedFilesRejected) {
  std::string path = TempPath("bad_emb.tsv");
  auto write = [&](const char* content) {
    std::ofstream out(path);
    out << content;
  };
  write("");
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  write("abc\tdef\n");
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  write("2\t3\nn0\t1\t2\t3\n");  // truncated: one row missing
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  write("1\t3\nn0\t1\t2\n");  // wrong arity
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  write("1\t2\nn0\t1\tx\n");  // bad value
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  write("1\t2\nn0\t1\t2\ntrailing junk\n");  // extra non-blank data
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, AbsurdHeaderRejectedWithoutAllocating) {
  // A tiny file claiming billions of rows must fail cleanly (no bad_alloc):
  // the header is checked against what the file could possibly hold.
  std::string path = TempPath("huge_header.tsv");
  {
    std::ofstream out(path);
    out << "4000000000\t4000000000\nn0\t1\t2\n";
  }
  auto loaded = LoadEmbeddings(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ToleratesCrlfAndTrailingWhitespace) {
  std::string path = TempPath("crlf_emb.tsv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "2\t3\r\n"
        << "n0\t1.5\t-2.25\t0.125\t\r\n"   // CRLF + trailing tab
        << "n1\t0.5\t3\t-1 \r\n"           // trailing space
        << "\r\n";                         // blank trailing line
  }
  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->embeddings.rows(), 2u);
  ASSERT_EQ(loaded->embeddings.cols(), 3u);
  EXPECT_EQ(loaded->names[0], "n0");
  EXPECT_EQ(loaded->names[1], "n1");
  EXPECT_EQ(loaded->embeddings(0, 0), 1.5);
  EXPECT_EQ(loaded->embeddings(0, 1), -2.25);
  EXPECT_EQ(loaded->embeddings(0, 2), 0.125);
  EXPECT_EQ(loaded->embeddings(1, 2), -1.0);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ShortRowReportsRowNumber) {
  std::string path = TempPath("short_row.tsv");
  {
    std::ofstream out(path);
    out << "2\t3\nn0\t1\t2\t3\nn1\t1\t2\n";
  }
  auto loaded = LoadEmbeddings(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("row 1"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadEmbeddings("/no/such/emb.tsv").status().code(),
            StatusCode::kIoError);
}

TransNConfig CheckpointTestConfig() {
  TransNConfig cfg;
  cfg.dim = 12;
  cfg.iterations = 1;
  cfg.walk.walk_length = 10;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 3;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 10;
  cfg.seed = 5;
  return cfg;
}

TEST(CheckpointTest, RoundTripRestoresEmbeddings) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel trained(&g, CheckpointTestConfig());
  trained.Fit();
  std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(trained, path).ok());

  // A fresh, untrained model with the same graph/config differs...
  TransNModel fresh(&g, CheckpointTestConfig());
  Matrix before = fresh.FinalEmbeddings();
  Matrix trained_emb = trained.FinalEmbeddings();
  EXPECT_GT(Sub(before, trained_emb).FrobeniusNorm(), 1e-9);

  // ...until the checkpoint is loaded.
  ASSERT_TRUE(LoadTransNCheckpoint(&fresh, path).ok());
  Matrix after = fresh.FinalEmbeddings();
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_DOUBLE_EQ(after.data()[i], trained_emb.data()[i]);
  }
  // Translators restored too.
  const Translator& t_src = trained.cross_view_trainer(0).translator_ij();
  const Translator& t_dst = fresh.cross_view_trainer(0).translator_ij();
  for (size_t e = 0; e < t_src.num_encoders(); ++e) {
    EXPECT_DOUBLE_EQ(
        Sub(t_src.weight(e).value, t_dst.weight(e).value).FrobeniusNorm(),
        0.0);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel trained(&g, CheckpointTestConfig());
  trained.Fit();
  std::string path = TempPath("model_mismatch.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(trained, path).ok());

  TransNConfig other = CheckpointTestConfig();
  other.dim = 16;  // different dimensionality
  TransNModel incompatible(&g, other);
  Status s = LoadTransNCheckpoint(&incompatible, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingMatrixRejected) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel trained(&g, CheckpointTestConfig());
  std::string path = TempPath("model_trunc.ckpt");
  std::ofstream out(path);
  out << "# transn checkpoint v1\nMATRIX\tview0.input\t2\t2\n1\t2\n3\t4\n";
  out.close();
  Status s = LoadTransNCheckpoint(&trained, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumedTrainingContinues) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel trained(&g, CheckpointTestConfig());
  trained.Fit();
  std::string path = TempPath("model_resume.ckpt");
  ASSERT_TRUE(SaveTransNCheckpoint(trained, path).ok());

  TransNModel resumed(&g, CheckpointTestConfig());
  ASSERT_TRUE(LoadTransNCheckpoint(&resumed, path).ok());
  // Further iterations run and keep embeddings finite.
  resumed.RunIteration();
  Matrix emb = resumed.FinalEmbeddings();
  for (size_t i = 0; i < emb.size(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace transn
